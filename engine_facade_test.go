package geofootprint_test

import (
	"math/rand"
	"reflect"
	"testing"

	"geofootprint"
)

// TestQueryEngineFacade exercises the parallel engine through the
// public façade: batched execution must match the serial index
// byte for byte.
func TestQueryEngineFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const users = 120
	ids := make([]int, users)
	fps := make([]geofootprint.Footprint, users)
	for u := range fps {
		ids[u] = u + 1
		n := 1 + rng.Intn(6)
		f := make(geofootprint.Footprint, n)
		for i := range f {
			x, y := rng.Float64(), rng.Float64()
			f[i] = geofootprint.Region{
				Rect:   geofootprint.Rect{MinX: x, MinY: y, MaxX: x + 0.08, MaxY: y + 0.06},
				Weight: 1,
			}
		}
		fps[u] = f
	}
	db, err := geofootprint.NewDB("facade-engine", ids, fps)
	if err != nil {
		t.Fatalf("NewDB: %v", err)
	}
	idx := geofootprint.NewUserCentricIndex(db)
	eng := geofootprint.NewQueryEngine(db, geofootprint.EngineOptions{Workers: 4})

	queries := []geofootprint.Footprint{db.Footprints[3], db.Footprints[50], db.Footprints[99]}
	got := eng.TopKBatch(queries, 5)
	for i, q := range queries {
		want := idx.TopK(q, 5)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("query %d: engine %v, serial %v", i, got[i], want)
		}
		if single := eng.TopK(q, 5); !reflect.DeepEqual(single, want) {
			t.Fatalf("query %d: engine TopK %v, serial %v", i, single, want)
		}
	}
	if eng.Workers() != 4 || eng.Method() != geofootprint.EngineUserCentric {
		t.Errorf("engine config = %d workers, method %v", eng.Workers(), eng.Method())
	}
}
