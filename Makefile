# Developer entry points. `make check` is the gate every PR must pass:
# vet + geolint + build + race detector over the whole module + the
# full test suite (the tier-1 command plus the race and strictsort
# passes).

GO ?= go

.PHONY: check test lint lintstats race chaos cluster-test cluster-chaos bench-fig3a bench-sketch bench-ingest bench-qps bench-restart bench-scatter bench-failover benchdiff clean

check:
	./scripts/check.sh

test:
	$(GO) build ./... && $(GO) test ./...

# Repo-local analyzers (internal/lint): determinism, durability and
# hot-path invariants that go vet cannot see. Exits non-zero on any
# finding; suppressions require an inline justification
# (//lint:ignore <analyzer> <reason>).
lint:
	$(GO) run ./cmd/geolint ./...

# Diff `geolint -json` against the committed lint_baseline.json: new
# findings fail, fixed findings demand a baseline refresh
# (scripts/lintstats.sh -refresh). check.sh runs this after geolint.
lintstats:
	./scripts/lintstats.sh

# No package is excluded: the whole module passes -race in well under
# two minutes (the internal/bench workload dominates at ~20s). If a
# package ever has to be carved out, list it here with the reason.
race:
	$(GO) test -race ./...

# Fault-injection and crash-recovery suite: every test that drives the
# durability layer through a faultfs schedule (ENOSPC, EIO, short
# writes, torn renames), tears WAL tails, or kills/seals the pipeline
# mid-flight. Run under -race because the interesting failures here
# are exactly the racy ones.
chaos:
	$(GO) test -race -run '(Fault|Chaos|Crash|Seal|Epoch)' \
		./internal/faultfs/... ./internal/wal/... ./internal/ingest/... \
		./internal/server/... ./internal/store/... ./internal/cache/... \
		./internal/colstore/...

# Cross-shard equivalence suite: N in-process geoserve shards plus the
# router on loopback, proving scatter-gathered top-k bit-identical to
# single-node LinearScan (all methods, k ∈ {1,5,50}), explicit partial
# results under a degraded shard, and routed-ingest equivalence. Run
# under -race because the fan-out legs, health probes and admission
# gates are all concurrent.
cluster-test:
	$(GO) test -race -count=1 -run 'TestCluster|TestCoordinator' ./internal/router/ ./cmd/georouter/

# Network-chaos suite for the replicated serving plane: the full
# netfault and breaker unit suites, then the chaos matrix (every fault
# schedule × R ∈ {1,2,3} over 4 loopback shards — byte-identical or
# explicit partial naming the lost ring segments, never silently
# wrong), all-methods failover with one shard down, stale-replica /
# hinted-handoff / seq-regression tracking, and segment-restricted
# shard queries. Run under -race: fan-out legs, breaker tokens and
# hint queues are all concurrent.
cluster-chaos:
	$(GO) test -race -count=1 ./internal/netfault/ ./internal/breaker/
	$(GO) test -race -count=1 -run 'Chaos|Failover|Breaker|Stale|Replica|Segment' \
		./internal/router/ ./internal/server/ ./internal/hashring/

# Regenerate the committed BENCH_fig3a.json evidence (serial vs
# parallel batched top-k at geobench scale 0.05).
bench-fig3a:
	$(GO) run ./cmd/geobench -exp fig3a -scale 0.05 -parallel -json .

# Regenerate the committed BENCH_sketch.json evidence (sketch
# filter-and-refine resolution sweep vs linear/user-centric/pruned).
bench-sketch:
	$(GO) run ./cmd/geobench -exp sketch -scale 0.05 -json .

# Regenerate the committed BENCH_ingest.json evidence (WAL-durable
# streaming ingestion throughput per fsync policy + query latency
# during vs after ingest).
bench-ingest:
	$(GO) run ./cmd/geobench -exp ingest -scale 0.05 -json .

# Regenerate the committed BENCH_qps.json evidence (concurrent query
# throughput vs live ingest per serving discipline: locked baseline,
# epoch MVCC, epoch MVCC + result cache).
bench-qps:
	$(GO) run ./cmd/geobench -exp qps -scale 0.05 -json .

# Regenerate the committed BENCH_restart.json evidence (cold-start to
# first answered request per snapshot format/load path: gob decode vs
# columnar read vs columnar mmap, plus flat-kernel scan throughput).
bench-restart:
	$(GO) run ./cmd/geobench -exp restart -scale 0.05 -json .

# Regenerate the committed BENCH_scatter.json evidence (router top-k
# throughput scaling over 1/2/4 ring-split shards, every answer
# verified bit-identical to LinearScan on the union store).
bench-scatter:
	$(GO) run ./cmd/geobench -exp scatter -scale 0.05 -json .

# Regenerate the committed BENCH_failover.json evidence (router top-k
# over 4 shards with shard-1 killed and restarted by fault injection,
# R=1 vs R=2: throughput, complete-vs-partial counts, failed-over leg
# totals, every answer verified exact over its claimed coverage).
bench-failover:
	$(GO) run ./cmd/geobench -exp failover -scale 0.05 -json .

# Compare two BENCH_<exp>.json reports; fails on >15% wall-clock
# regression of any method. Usage:
#   make benchdiff OLD=old/BENCH_fig3a.json NEW=BENCH_fig3a.json
benchdiff:
	./scripts/benchdiff.sh $(OLD) $(NEW)

clean:
	$(GO) clean ./...
