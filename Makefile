# Developer entry points. `make check` is the gate every PR must pass:
# vet + build + race detector over the concurrent packages + the full
# test suite (the tier-1 command plus the race pass).

GO ?= go

.PHONY: check test race bench-fig3a bench-sketch bench-ingest benchdiff clean

check:
	./scripts/check.sh

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/search/... ./internal/server/... \
		./internal/ingest/... ./internal/wal/...

# Regenerate the committed BENCH_fig3a.json evidence (serial vs
# parallel batched top-k at geobench scale 0.05).
bench-fig3a:
	$(GO) run ./cmd/geobench -exp fig3a -scale 0.05 -parallel -json .

# Regenerate the committed BENCH_sketch.json evidence (sketch
# filter-and-refine resolution sweep vs linear/user-centric/pruned).
bench-sketch:
	$(GO) run ./cmd/geobench -exp sketch -scale 0.05 -json .

# Regenerate the committed BENCH_ingest.json evidence (WAL-durable
# streaming ingestion throughput per fsync policy + query latency
# during vs after ingest).
bench-ingest:
	$(GO) run ./cmd/geobench -exp ingest -scale 0.05 -json .

# Compare two BENCH_<exp>.json reports; fails on >15% wall-clock
# regression of any method. Usage:
#   make benchdiff OLD=old/BENCH_fig3a.json NEW=BENCH_fig3a.json
benchdiff:
	./scripts/benchdiff.sh $(OLD) $(NEW)

clean:
	$(GO) clean ./...
