# Developer entry points. `make check` is the gate every PR must pass:
# vet + build + race detector over the concurrent packages + the full
# test suite (the tier-1 command plus the race pass).

GO ?= go

.PHONY: check test race bench-fig3a clean

check:
	./scripts/check.sh

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./internal/engine/... ./internal/search/... ./internal/server/...

# Regenerate the committed BENCH_fig3a.json evidence (serial vs
# parallel batched top-k at geobench scale 0.05).
bench-fig3a:
	$(GO) run ./cmd/geobench -exp fig3a -scale 0.05 -parallel -json .

clean:
	$(GO) clean ./...
