#!/usr/bin/env sh
# lintstats.sh — diff `geolint -json` output against the committed
# baseline (lint_baseline.json).
#
# The baseline is the agreed-upon set of outstanding findings (kept
# empty in this repo: the tree is geolint-clean). The diff is
# two-sided:
#
#   - a finding NOT in the baseline is NEW and fails the gate — fix it
#     or suppress it with a justified //lint:ignore;
#   - a baseline entry that no longer appears was FIXED and also fails
#     the gate, telling you to refresh the baseline so it never drifts
#     from reality: run `scripts/lintstats.sh -refresh` and commit.
#
# Comparison is by sorted whole-line equality of the JSON objects,
# which works because geolint emits findings deterministically sorted
# with module-relative paths.
set -eu
cd "$(dirname "$0")/.."

BASELINE=lint_baseline.json
CURRENT=$(mktemp)
trap 'rm -f "$CURRENT" "$CURRENT.sorted" "$BASELINE.sorted"' EXIT

# Exit 1 (findings) is expected when a baseline entry covers them;
# only exit 2 (load error) is fatal here.
go run ./cmd/geolint -json ./... >"$CURRENT" || {
	status=$?
	if [ "$status" -eq 2 ]; then
		echo "lintstats: geolint failed to load packages (exit 2)" >&2
		exit 2
	fi
}

if [ "${1:-}" = "-refresh" ]; then
	cp "$CURRENT" "$BASELINE"
	echo "lintstats: baseline refreshed ($(wc -l <"$BASELINE" | tr -d ' ') finding(s))"
	exit 0
fi

if [ ! -f "$BASELINE" ]; then
	echo "lintstats: missing $BASELINE (run scripts/lintstats.sh -refresh to create it)" >&2
	exit 2
fi

sort "$CURRENT" >"$CURRENT.sorted"
sort "$BASELINE" >"$BASELINE.sorted"

new=$(comm -23 "$CURRENT.sorted" "$BASELINE.sorted" || true)
fixed=$(comm -13 "$CURRENT.sorted" "$BASELINE.sorted" || true)

fail=0
if [ -n "$new" ]; then
	echo "lintstats: NEW findings not in baseline:" >&2
	printf '%s\n' "$new" >&2
	fail=1
fi
if [ -n "$fixed" ]; then
	echo "lintstats: baseline entries no longer reported (fixed — refresh the baseline with scripts/lintstats.sh -refresh):" >&2
	printf '%s\n' "$fixed" >&2
	fail=1
fi
if [ "$fail" -ne 0 ]; then
	exit 1
fi
echo "lintstats: findings match baseline ($(wc -l <"$BASELINE" | tr -d ' ') entr(y/ies))"
