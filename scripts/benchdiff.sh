#!/usr/bin/env sh
# Compare two BENCH_<exp>.json reports (geobench -json output) and fail
# when any method's wall-clock regressed by more than 15% (override
# with -threshold). Usage:
#
#   scripts/benchdiff.sh old/BENCH_fig3a.json new/BENCH_fig3a.json
#   scripts/benchdiff.sh -threshold 0.10 old.json new.json
#
# JSON parsing lives in cmd/benchdiff (plain Go, no dependencies); this
# wrapper only anchors the working directory so relative report paths
# and the module both resolve.
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchdiff "$@"
