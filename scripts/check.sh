#!/usr/bin/env sh
# Repo-wide static + concurrency checks. `make check` runs this.
#
# Order: cheap static analysis first (vet, then the repo's own
# analyzers), then builds, then the race detector and the test suite.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./... =="
go vet ./...

# Focused copylocks pass over the packages that embed or hand around
# sync primitives (pools, WAL/server mutexes). go vet's default suite
# already includes copylocks; running it alone here makes the gate's
# intent explicit and keeps a hook for extra lock analyzers. On
# toolchains where per-analyzer flags are unavailable, build the
# standalone analyzer and run `go vet -vettool=$(which copylocks)`
# instead.
echo "== go vet -copylocks (store, wal, ingest, server, engine, sweep, core) =="
go vet -copylocks ./internal/store/... ./internal/wal/... ./internal/ingest/... \
	./internal/server/... ./internal/engine/... ./internal/sweep/... ./internal/core/...

# Repo-local analyzers: floatrange (map-order float accumulation),
# atomicwrite (persistence writes outside WriteFileAtomic/-FS),
# hotalloc (allocation in //geo:hotpath kernels), sortedfootprint
# (FootprintDB slice writes outside internal/store), errdiscard
# (dropped Sync/Close/WAL errors), ctxcancel (loops in
# //geo:cancellable functions that never poll ctx), epochmut
# (mutation of epoch-published databases outside the internal/store
# builder seam), plus the flow-sensitive suite: pinleak (epoch pins
# Released on every path), bodyclose (*http.Response bodies closed on
# every path), lockbalance (mutex Lock/Unlock balanced per path), and
# staleignore (//lint:ignore directives that suppress nothing). Any
# finding fails the gate; suppressions need an inline justification.
echo "== geolint ./... =="
go run ./cmd/geolint ./...

# Baseline discipline on top of the binary gate: geolint -json output
# must exactly match the committed lint_baseline.json (kept empty —
# the tree is lint-clean). New findings fail; entries that disappeared
# fail too, forcing a baseline refresh so it never drifts.
echo "== lintstats: geolint -json vs lint_baseline.json =="
./scripts/lintstats.sh

echo "== go build ./... =="
go build ./...

# The strictsort build must stay compilable on its own: it is the
# build operators deploy when they want unsorted-footprint leaks to
# panic instead of silently costing a copy+sort per similarity call.
echo "== go build -tags strictsort ./... =="
go build -tags strictsort ./...

# The chaos suite runs inside `go test -race ./...` below; this
# focused pass runs it first so a durability or epoch-lifecycle
# regression fails the gate before the (longer) full race pass, with a
# log line naming it. The Epoch tests race lock-free queries against
# swap/reclaim and PUT-driven republish, so -race is the whole point.
echo "== chaos: fault-injection, crash-recovery & epoch-swap suite (-race) =="
go test -race -run '(Fault|Chaos|Crash|Seal|Epoch)' \
	./internal/faultfs/... ./internal/wal/... ./internal/ingest/... \
	./internal/server/... ./internal/store/... ./internal/cache/... \
	./internal/colstore/...

# Cross-shard equivalence suite: scatter-gathered top-k through real
# shard servers must be bit-identical to single-node LinearScan, stay
# exact (and explicit) under a degraded shard, and route ingest to the
# right owners. Concurrent fan-out legs, health probes and admission
# gates make -race the point here, as with the chaos pass above.
echo "== cluster: cross-shard scatter-gather equivalence suite (-race) =="
go test -race -count=1 -run 'TestCluster|TestCoordinator' ./internal/router/ ./cmd/georouter/

# Network-chaos suite for the replicated plane: netfault and breaker
# unit suites, then the chaos matrix (fault schedules × R ∈ {1,2,3}:
# byte-identical or explicit partial naming lost ring segments),
# all-methods failover with a shard down, and the stale-replica /
# hinted-handoff / seq-regression machinery. Same -race rationale.
echo "== cluster-chaos: netfault matrix, failover, breaker & stale-replica suite (-race) =="
go test -race -count=1 ./internal/netfault/ ./internal/breaker/
go test -race -count=1 -run 'Chaos|Failover|Breaker|Stale|Replica|Segment' \
	./internal/router/ ./internal/server/ ./internal/hashring/

# Snapshot-format migration self-test: gob -> columnar -> gob must be
# byte-identical, so operators can migrate snapshots in either
# direction without a diffing step.
echo "== columnar migration round-trip (gob -> columnar -> gob byte-identical) =="
go test -count=1 -run 'TestGobColumnarGobRoundTrip' ./internal/store/

echo "== go test -race ./... =="
go test -race ./...

echo "== go test ./... =="
go test ./...

# The strictsort build turns the similarity kernels' silent
# copy+sort fallback into a panic, so any code path that leaks an
# unsorted footprint into Algorithm 4 fails loudly here instead of
# silently costing O(n log n) per call in production builds.
echo "== go test -tags strictsort ./... =="
go test -tags strictsort ./...

echo "check: all passes clean"
