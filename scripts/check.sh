#!/usr/bin/env sh
# Repo-wide static + concurrency checks. `make check` runs this.
#
# The race pass covers the packages that execute or consume parallel
# code paths: the query engine, the search layer it shards, and the
# HTTP server that serves concurrent requests through it.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test -race (engine, search, server, store, sweep, core) =="
go test -race ./internal/engine/... ./internal/search/... ./internal/server/... \
	./internal/store/... ./internal/sweep/... ./internal/core/...

echo "== go test ./... =="
go test ./...

echo "check: all passes clean"
