#!/usr/bin/env sh
# Repo-wide static + concurrency checks. `make check` runs this.
#
# The race pass covers the packages that execute or consume parallel
# code paths: the query engine, the search layer it shards, and the
# HTTP server that serves concurrent requests through it.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test -race (engine, search, server, store, sweep, core, sketch, ingest, wal) =="
go test -race ./internal/engine/... ./internal/search/... ./internal/server/... \
	./internal/store/... ./internal/sweep/... ./internal/core/... \
	./internal/sketch/... ./internal/ingest/... ./internal/wal/...

echo "== go test ./... =="
go test ./...

# The strictsort build turns the similarity kernels' silent
# copy+sort fallback into a panic, so any code path that leaks an
# unsorted footprint into Algorithm 4 fails loudly here instead of
# silently costing O(n log n) per call in production builds.
echo "== go test -tags strictsort ./... =="
go test -tags strictsort ./...

echo "check: all passes clean"
