package geofootprint

// Scaling benchmarks: complexity validation for the core algorithms.
// Algorithm 2 (norm) is O(n²); Algorithm 3 (sweep similarity)
// O((n+m)²); Algorithm 4 (join) O(n log n + K). Run with
//
//	go test -bench=BySize -benchmem
//
// and compare per-op times across sizes.

import (
	"math/rand"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
)

// scaledFootprint draws n paper-sized regions clustered in a few
// hotspots so that overlap (and hence join output K) stays realistic
// as n grows.
func scaledFootprint(rng *rand.Rand, n int) core.Footprint {
	hot := 1 + n/8
	f := make(core.Footprint, n)
	for i := range f {
		cx := float64(i%hot) / float64(hot)
		cy := float64((i*7)%hot) / float64(hot)
		x := cx + rng.Float64()*0.02
		y := cy + rng.Float64()*0.02
		f[i] = core.Region{
			Rect:   geom.Rect{MinX: x, MinY: y, MaxX: x + 0.02, MaxY: y + 0.017},
			Weight: 1,
		}
	}
	core.SortByMinX(f)
	return f
}

func benchSizes(b *testing.B, run func(b *testing.B, n int)) {
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(sizeName(n), func(b *testing.B) { run(b, n) })
	}
}

func sizeName(n int) string {
	switch n {
	case 4:
		return "n=4"
	case 16:
		return "n=16"
	case 64:
		return "n=64"
	default:
		return "n=256"
	}
}

func BenchmarkNormBySize(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		rng := rand.New(rand.NewSource(int64(n)))
		f := scaledFootprint(rng, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.Norm(f)
		}
	})
}

func BenchmarkSimilaritySweepBySize(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		rng := rand.New(rand.NewSource(int64(n)))
		fr := scaledFootprint(rng, n)
		fs := scaledFootprint(rng, n)
		nr, ns := core.Norm(fr), core.Norm(fs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.SimilaritySweep(fr, fs, nr, ns)
		}
	})
}

func BenchmarkSimilarityJoinBySize(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		rng := rand.New(rand.NewSource(int64(n)))
		fr := scaledFootprint(rng, n)
		fs := scaledFootprint(rng, n)
		nr, ns := core.Norm(fr), core.Norm(fs)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.SimilarityJoin(fr, fs, nr, ns)
		}
	})
}

func BenchmarkDisjointRegionsBySize(b *testing.B) {
	benchSizes(b, func(b *testing.B, n int) {
		rng := rand.New(rand.NewSource(int64(n)))
		f := scaledFootprint(rng, n)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.DisjointRegions(f)
		}
	})
}
