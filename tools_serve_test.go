package geofootprint

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestGeoserveEndToEnd builds geoserve, starts it on a free port
// against a freshly extracted FootprintDB, and exercises the HTTP API
// from the outside.
func TestGeoserveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping server integration test in -short mode")
	}
	bin := t.TempDir()
	data := t.TempDir()
	for _, tool := range []string{"geogen", "geoextract", "geoserve"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	ds := filepath.Join(data, "ds.gob")
	dbPath := filepath.Join(data, "fp.db")
	if out, err := exec.Command(filepath.Join(bin, "geogen"), "-part", "A", "-users", "80", "-o", ds).CombinedOutput(); err != nil {
		t.Fatalf("geogen: %v\n%s", err, out)
	}
	if out, err := exec.Command(filepath.Join(bin, "geoextract"), "-i", ds, "-o", dbPath).CombinedOutput(); err != nil {
		t.Fatalf("geoextract: %v\n%s", err, out)
	}

	// Free port.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	srv := exec.Command(filepath.Join(bin, "geoserve"), "-db", dbPath, "-addr", addr)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	base := "http://" + addr
	// Wait for readiness.
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(base + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never became ready: %v", err)
	}
	var health struct {
		Status string `json:"status"`
		Users  int    `json:"users"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health.Status != "ok" || health.Users != 80 {
		t.Fatalf("health = %+v", health)
	}

	// A similarity query over the wire.
	resp, err = http.Get(fmt.Sprintf("%s/v1/users/%d/similar?k=3&exclude_self=true", base, 5))
	if err != nil {
		t.Fatal(err)
	}
	var results []struct {
		ID         int     `json:"id"`
		Similarity float64 `json:"similarity"`
	}
	json.NewDecoder(resp.Body).Decode(&results)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("similar status %d", resp.StatusCode)
	}
	for _, r := range results {
		if r.ID == 5 || r.Similarity <= 0 || r.Similarity > 1 {
			t.Fatalf("bad result %+v", r)
		}
	}
}
