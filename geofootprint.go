// Package geofootprint implements similarity search over
// geo-footprints, a from-scratch reproduction of "Similarity Search
// based on Geo-footprints" (Michalopoulos et al., EDBT 2024).
//
// A geo-footprint concisely summarises where a mobile user dwells
// inside a supervised (e.g. indoor) space: the set of rectangular
// regions of interest extracted from the user's trajectories, where
// overlap encodes visit frequency. Footprints support a cosine-style
// similarity (continuous-space dot product of frequency functions
// divided by Euclidean norms) that powers nearest-neighbour search,
// recommendation and clustering.
//
// The typical pipeline:
//
//	cfg := geofootprint.DefaultExtraction()          // ε=0.02, τ=30
//	db, _ := geofootprint.BuildDB(dataset, cfg)      // Alg. 1 + Alg. 2
//	idx := geofootprint.NewUserCentricIndex(db)      // Sec. 6.2 index
//	top := idx.TopK(db.Footprints[q], 5)             // most similar users
//
// This root package is a thin façade over the internal packages; it
// exposes everything a downstream application needs: the trajectory
// model, footprint extraction, the similarity algorithms (plane-sweep
// Algorithm 3 and join-based Algorithm 4), the three top-k search
// methods of Section 6, average-link clustering (Section 7), the
// duration-weight and 3D extensions (Section 8), and the synthetic
// indoor-mobility generator used by the evaluation harness.
package geofootprint

import (
	"fmt"

	"geofootprint/internal/cluster"
	"geofootprint/internal/core"
	"geofootprint/internal/engine"
	"geofootprint/internal/extract"
	"geofootprint/internal/geom"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
	"geofootprint/internal/synth"
	"geofootprint/internal/traj"
)

// Geometric primitives.
type (
	// Point is a position in the plane.
	Point = geom.Point
	// Rect is a closed axis-aligned rectangle, the shape of every
	// region of interest.
	Rect = geom.Rect
)

// Trajectory model (Definition 3.1).
type (
	// Location is one tracked position with its timestamp.
	Location = traj.Location
	// Trajectory is a regularly sampled sequence of locations (one
	// session, e.g. a store visit).
	Trajectory = traj.Trajectory
	// User is a tracked user with temporally disjoint sessions.
	User = traj.User
	// Dataset is a collection of users (one evaluation "part").
	Dataset = traj.Dataset
)

// Footprints and extraction (Sections 3-4).
type (
	// RoI is an extracted region of interest (Definition 3.2).
	RoI = extract.RoI
	// ExtractionConfig holds the ε and τ bounds of Definition 3.2.
	ExtractionConfig = extract.Config
	// Region is one weighted region of a geo-footprint.
	Region = core.Region
	// Footprint is a user's geo-footprint (Definition 3.3).
	Footprint = core.Footprint
	// WeightedRect is one element of a footprint's disjoint-region
	// decomposition.
	WeightedRect = core.WeightedRect
	// Weighting selects unit (frequency) or duration weights.
	Weighting = core.Weighting
)

// Weighting values.
const (
	// UnitWeight counts each RoI once (the base model).
	UnitWeight = core.UnitWeight
	// DurationWeight weights each RoI by stay duration (Section 8).
	DurationWeight = core.DurationWeight
)

// DefaultExtraction returns the paper's extraction parameters:
// ε=0.02 and τ=30 (≈2 m and ≈3 s in the ATC setting).
func DefaultExtraction() ExtractionConfig {
	return ExtractionConfig{Epsilon: 0.02, Tau: 30}
}

// ExtractRoIs runs Algorithm 1 on a single trajectory.
func ExtractRoIs(t Trajectory, cfg ExtractionConfig) []RoI {
	return extract.Extract(t, cfg)
}

// ExtractFootprint extracts a user's geo-footprint across all
// sessions under the given weighting (Definition 3.3).
func ExtractFootprint(u *User, cfg ExtractionConfig, w Weighting) Footprint {
	return core.FromRoIs(extract.ExtractUser(u, cfg), w)
}

// Norm computes the footprint norm ||F|| (Equation 2) with the
// plane-sweep Algorithm 2.
func Norm(f Footprint) float64 { return core.Norm(f) }

// DisjointRegions decomposes a footprint into disjoint rectangles with
// total weights (Section 5.1).
func DisjointRegions(f Footprint) []WeightedRect { return core.DisjointRegions(f) }

// Similarity computes sim(F(r), F(s)) (Equation 1) in one pass,
// deriving both norms (the combined variant of Algorithm 3).
func Similarity(fr, fs Footprint) float64 { return core.Similarity(fr, fs) }

// SimilaritySweep is Algorithm 3 with precomputed norms.
func SimilaritySweep(fr, fs Footprint, normR, normS float64) float64 {
	return core.SimilaritySweep(fr, fs, normR, normS)
}

// SimilarityJoin is Algorithm 4: join-based similarity with
// precomputed norms — the fastest exact method.
func SimilarityJoin(fr, fs Footprint, normR, normS float64) float64 {
	return core.SimilarityJoin(fr, fs, normR, normS)
}

// FootprintDB is the materialised footprint collection with
// precomputed norms (the preprocessing of Section 5.1).
type FootprintDB = store.FootprintDB

// BuildDB extracts all footprints of a dataset and precomputes their
// norms, using all CPUs.
func BuildDB(d *Dataset, cfg ExtractionConfig) (*FootprintDB, error) {
	return store.Build(d, cfg, core.UnitWeight, 0)
}

// BuildWeightedDB is BuildDB with duration weights (Section 8).
func BuildWeightedDB(d *Dataset, cfg ExtractionConfig) (*FootprintDB, error) {
	return store.Build(d, cfg, core.DurationWeight, 0)
}

// NewDB builds a database from already-materialised footprints.
func NewDB(name string, ids []int, fps []Footprint) (*FootprintDB, error) {
	return store.FromFootprints(name, ids, fps)
}

// LoadDB reads a database saved with FootprintDB.Save.
func LoadDB(path string) (*FootprintDB, error) { return store.Load(path) }

// Search (Section 6).
type (
	// Result is one ranked user: external ID and similarity score.
	Result = search.Result
	// Searcher answers top-k footprint similarity queries.
	Searcher = search.Searcher
	// RoIIndex is the Section 6.1 R-tree over all RoIs, supporting
	// iterative (6.1.1) and batch (6.1.2) search.
	RoIIndex = search.RoIIndex
	// UserCentricIndex is the Section 6.2 R-tree over footprint
	// MBRs, refined with Algorithm 4.
	UserCentricIndex = search.UserCentricIndex
	// LinearScan is the index-free baseline.
	LinearScan = search.LinearScan
)

// NewLinearScan returns the index-free baseline searcher.
func NewLinearScan(db *FootprintDB) *LinearScan { return search.NewLinearScan(db) }

// NewRoIIndex indexes every RoI of every footprint (Section 6.1) with
// STR bulk loading.
func NewRoIIndex(db *FootprintDB) *RoIIndex {
	return search.NewRoIIndex(db, search.BuildSTR, 0)
}

// NewUserCentricIndex indexes one MBR per user (Section 6.2) with STR
// bulk loading.
func NewUserCentricIndex(db *FootprintDB) *UserCentricIndex {
	return search.NewUserCentricIndex(db, search.BuildSTR, 0)
}

// Parallel query execution (internal/engine).
type (
	// QueryEngine executes top-k similarity queries in parallel:
	// batches across a worker pool, and candidate refinement sharded
	// within a query, with results byte-identical to the serial
	// search paths.
	QueryEngine = engine.QueryEngine
	// EngineOptions configures a QueryEngine (workers, method,
	// prebuilt indexes).
	EngineOptions = engine.Options
	// EngineMethod selects which Section 6 search path the engine
	// executes.
	EngineMethod = engine.Method
)

// EngineMethod values.
const (
	// EngineUserCentric refines R-tree candidates with Algorithm 4
	// (the default and fastest method).
	EngineUserCentric = engine.MethodUserCentric
	// EngineLinear is the index-free parallel scan.
	EngineLinear = engine.MethodLinear
	// EngineIterative is the Section 6.1.1 search, parallel across
	// queries.
	EngineIterative = engine.MethodIterative
	// EngineBatch is the Section 6.1.2 search, parallel across
	// queries.
	EngineBatch = engine.MethodBatch
)

// NewQueryEngine builds a parallel query engine over db; the zero
// Options select the user-centric method on GOMAXPROCS workers.
func NewQueryEngine(db *FootprintDB, opts EngineOptions) *QueryEngine {
	return engine.New(db, opts)
}

// MostSimilarUsers is the recommender-system entry point (Section 1):
// the k users most similar to user id, excluding the user itself.
func MostSimilarUsers(db *FootprintDB, idx Searcher, id, k int) ([]Result, error) {
	i, ok := db.IndexOf(id)
	if !ok {
		return nil, errUnknownUser(id)
	}
	res := idx.TopK(db.Footprints[i], k+1)
	out := res[:0]
	for _, r := range res {
		if r.ID != id {
			out = append(out, r)
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// Clustering (Section 7).
type (
	// Linkage selects the agglomerative merge criterion.
	Linkage = cluster.Linkage
	// DistMatrix is a condensed pairwise distance matrix.
	DistMatrix = cluster.Matrix
	// CharacteristicConfig controls characteristic-region
	// extraction (Figure 3(b)).
	CharacteristicConfig = cluster.CharacteristicConfig
)

// Linkage values.
const (
	// AverageLink is the paper's clustering criterion.
	AverageLink = cluster.AverageLink
	// SingleLink uses minimum pairwise distance.
	SingleLink = cluster.SingleLink
	// CompleteLink uses maximum pairwise distance.
	CompleteLink = cluster.CompleteLink
)

// FootprintDistances computes the pairwise distance matrix
// 1 − sim(F(i), F(j)) for the selected users.
func FootprintDistances(db *FootprintDB, idxs []int) *DistMatrix {
	return cluster.DistanceMatrix(db, idxs, 0)
}

// ClusterUsers clusters n users (given their distance matrix) into k
// groups; the matrix is consumed.
func ClusterUsers(m *DistMatrix, k int, link Linkage) ([]int, error) {
	return cluster.Agglomerative(m, k, link)
}

// CharacteristicRegions returns, per cluster, the map cells visited by
// that cluster's members and (almost) nobody else (Figure 3(b)).
func CharacteristicRegions(db *FootprintDB, idxs, labels []int, k int, cfg CharacteristicConfig) ([][]Rect, error) {
	return cluster.CharacteristicRegions(db, idxs, labels, k, cfg)
}

// Synthetic data generation (the evaluation's ATC substitute).
type (
	// SynthConfig parameterises the indoor-mobility simulator.
	SynthConfig = synth.Config
)

// SynthPart returns the generator preset for evaluation part "A"-"D"
// at the given scale (1.0 = the paper's user counts).
func SynthPart(part string, scale float64) (SynthConfig, error) {
	return synth.PartConfig(part, scale)
}

// GenerateDataset runs the simulator, returning the dataset and the
// ground-truth persona of every user.
func GenerateDataset(cfg SynthConfig) (*Dataset, []int, error) {
	return synth.Generate(cfg)
}

func errUnknownUser(id int) error {
	return fmt.Errorf("geofootprint: unknown user ID %d", id)
}
