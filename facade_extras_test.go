package geofootprint

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeExtras exercises the extension surfaces through the public
// API only.
func TestFacadeExtras(t *testing.T) {
	_, db := endToEnd(t)
	n := db.Len()

	// kNN graph.
	uc := NewUserCentricIndex(db)
	g := KNNGraph(uc, 3)
	if len(g) != n {
		t.Fatalf("graph rows = %d", len(g))
	}
	for u, row := range g {
		for _, r := range row {
			if r.ID == db.IDs[u] {
				t.Fatalf("self loop at %d", u)
			}
		}
	}

	// Pruned search parity.
	q := db.Footprints[0]
	want := uc.TopK(q, 5)
	got := TopKPruned(uc, q, 5)
	if len(got) != len(want) {
		t.Fatalf("pruned count mismatch")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pruned result %d differs", i)
		}
	}

	// Grid searcher parity with linear scan.
	gs, err := NewGridSearcher(db, UnitSquare(), 32)
	if err != nil {
		t.Fatal(err)
	}
	lin := NewLinearScan(db)
	a, b := gs.TopK(q, 5), lin.TopK(q, 5)
	if len(a) != len(b) {
		t.Fatalf("grid count mismatch: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("grid result %d: %v vs %v", i, a[i], b[i])
		}
	}

	// Top pairs.
	pairs := TopSimilarPairs(uc, 5)
	if len(pairs) == 0 {
		t.Fatal("no similar pairs")
	}
	for _, p := range pairs {
		if p.A >= p.B || p.Score <= 0 {
			t.Fatalf("bad pair %+v", p)
		}
	}

	// Compaction preserves similarity.
	cf := CompactFootprint(q)
	if d := Similarity(cf, db.Footprints[1]) - Similarity(q, db.Footprints[1]); d > 1e-9 || d < -1e-9 {
		t.Fatalf("compaction changed similarity by %v", d)
	}

	// Silhouette over a small clustering.
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	m := FootprintDistances(db, idxs)
	keep := FootprintDistances(db, idxs) // Silhouette needs the distances after clustering consumed m
	labels, err := ClusterUsers(m, 5, AverageLink)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Silhouette(keep, labels)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Errorf("silhouette %v for persona-structured data, want > 0", s)
	}

	// SVG rendering through the façade.
	var buf bytes.Buffer
	if err := FootprintSVG(&buf, q, 200, 200); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "<svg") {
		t.Error("bad SVG output")
	}
}

func TestFacadeSessionTools(t *testing.T) {
	// Streaming extraction equals batch extraction via the façade.
	ds, _ := endToEnd(t)
	session := ds.Users[0].Sessions[0]
	batch := ExtractRoIs(session, DefaultExtraction())
	var streamed []RoI
	ex, err := NewStreamingExtractor(DefaultExtraction(), func(r RoI) {
		streamed = append(streamed, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range session {
		ex.Push(l)
	}
	ex.Flush()
	if len(streamed) != len(batch) {
		t.Fatalf("streamed %d RoIs, batch %d", len(streamed), len(batch))
	}

	// SplitSessions round-trips a flattened user.
	var stream Trajectory
	for _, s := range ds.Users[0].Sessions {
		stream = append(stream, s...)
	}
	parts := SplitSessions(stream, 600)
	if len(parts) != len(ds.Users[0].Sessions) {
		t.Errorf("split into %d sessions, want %d", len(parts), len(ds.Users[0].Sessions))
	}

	// Parameter sweep runs through the façade.
	stats := SweepExtractionParams(ds, []float64{0.02}, []int{30})
	if len(stats) != 1 || stats[0].AvgRegions <= 0 {
		t.Errorf("sweep stats: %+v", stats)
	}
}

func TestFacadeHTTP(t *testing.T) {
	_, db := endToEnd(t)
	srv := NewServer(db)
	if srv.Handler() == nil {
		t.Fatal("nil handler")
	}
}
