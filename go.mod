module geofootprint

go 1.22
