package geofootprint

// Benchmarks mapping one-to-one onto the paper's evaluation
// (Section 7). Each table/figure has a bench target that exercises the
// same operation the paper times; `go test -bench=. -benchmem` prints
// them all. The full side-by-side against the paper's numbers is
// produced by cmd/geobench (see EXPERIMENTS.md).
//
//	Table 2  -> BenchmarkTable2FootprintExtraction, BenchmarkTable2NormComputation
//	Table 3  -> BenchmarkTable3SimilaritySweep, BenchmarkTable3SimilarityJoin
//	Table 4  -> BenchmarkTable4BuildRoIIndex, BenchmarkTable4BuildUserCentricIndex
//	Fig 3(a) -> BenchmarkFig3aIterative, BenchmarkFig3aBatch, BenchmarkFig3aUserCentric
//	Fig 3(b) -> BenchmarkFig3bDistanceMatrix, BenchmarkFig3bClustering
//	Table 1 has no timing — BenchmarkTable1Extraction covers the
//	generation+extraction pipeline that produces its statistics.
//
// Ablations (design choices called out in DESIGN.md):
//
//	BenchmarkAblationSimilarityWithNorms — Alg. 3 computing norms in-pass
//	BenchmarkAblationSTRBulkLoad         — STR vs insertion build
//	BenchmarkAblationWeightedSimilarity  — Section 8 duration weights
//	BenchmarkAblationSimilarity3D        — Section 8 3D sweep-plane
//	BenchmarkAblationExtractNaive        — Algorithm 1 vs prose reference

import (
	"math/rand"
	"sync"
	"testing"

	"geofootprint/internal/bench"
	"geofootprint/internal/cluster"
	"geofootprint/internal/core"
	"geofootprint/internal/d3"
	"geofootprint/internal/extract"
	"geofootprint/internal/geom"
	"geofootprint/internal/search"
	"geofootprint/internal/synth"
	"geofootprint/internal/traj"
)

var (
	fixtureOnce sync.Once
	fixture     *bench.Workload
)

// workload returns a shared ≈1000-user Part A world (generated once;
// benchmarks must not mutate it).
func workload(b *testing.B) *bench.Workload {
	b.Helper()
	fixtureOnce.Do(func() {
		w, err := bench.NewWorkload("A", 0.0036, 0)
		if err != nil {
			panic(err)
		}
		fixture = w
	})
	return fixture
}

// sessionPool returns flat trajectories for extraction benchmarks.
func sessionPool(w *bench.Workload) []traj.Trajectory {
	var out []traj.Trajectory
	for i := range w.Dataset.Users {
		out = append(out, w.Dataset.Users[i].Sessions...)
	}
	return out
}

func BenchmarkTable1Extraction(b *testing.B) {
	// The full pipeline behind Table 1's statistics: generate one
	// user's trajectories and extract the footprint.
	cfg, _ := synth.PartConfig("A", 0.0001)
	cfg.Users = 1
	ecfg := bench.ExtractionConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		ds, _, err := synth.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		extract.ExtractUser(&ds.Users[0], ecfg)
	}
}

func BenchmarkTable2FootprintExtraction(b *testing.B) {
	w := workload(b)
	sessions := sessionPool(w)
	cfg := bench.ExtractionConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extract.Extract(sessions[i%len(sessions)], cfg)
	}
}

func BenchmarkTable2NormComputation(b *testing.B) {
	w := workload(b)
	fps := w.DB.Footprints
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Norm(fps[i%len(fps)])
	}
}

func BenchmarkTable3SimilaritySweep(b *testing.B) {
	w := workload(b)
	db := w.DB
	n := db.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := i%n, (i*7+1)%n
		core.SimilaritySweep(db.Footprints[a], db.Footprints[c], db.Norms[a], db.Norms[c])
	}
}

func BenchmarkTable3SimilarityJoin(b *testing.B) {
	w := workload(b)
	db := w.DB
	n := db.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := i%n, (i*7+1)%n
		core.SimilarityJoin(db.Footprints[a], db.Footprints[c], db.Norms[a], db.Norms[c])
	}
}

func BenchmarkTable4BuildRoIIndex(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.NewRoIIndex(w.DB, search.BuildInsert, 0)
	}
}

func BenchmarkTable4BuildUserCentricIndex(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.NewUserCentricIndex(w.DB, search.BuildInsert, 0)
	}
}

func BenchmarkFig3aIterative(b *testing.B) {
	w := workload(b)
	ix := search.NewRoIIndex(w.DB, search.BuildInsert, 0)
	n := w.DB.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopKIterative(w.DB.Footprints[i%n], 5)
	}
}

func BenchmarkFig3aBatch(b *testing.B) {
	w := workload(b)
	ix := search.NewRoIIndex(w.DB, search.BuildInsert, 0)
	n := w.DB.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopKBatch(w.DB.Footprints[i%n], 5)
	}
}

func BenchmarkFig3aUserCentric(b *testing.B) {
	w := workload(b)
	ix := search.NewUserCentricIndex(w.DB, search.BuildInsert, 0)
	n := w.DB.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK(w.DB.Footprints[i%n], 5)
	}
}

func BenchmarkFig3bDistanceMatrix(b *testing.B) {
	w := workload(b)
	idxs := make([]int, 200)
	for i := range idxs {
		idxs[i] = i % w.DB.Len()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.DistanceMatrix(w.DB, idxs, 0)
	}
}

func BenchmarkFig3bClustering(b *testing.B) {
	w := workload(b)
	idxs := make([]int, 200)
	for i := range idxs {
		idxs[i] = i % w.DB.Len()
	}
	base := cluster.DistanceMatrix(w.DB, idxs, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := cluster.NewMatrix(base.N())
		for x := 0; x < base.N(); x++ {
			for y := x + 1; y < base.N(); y++ {
				m.Set(x, y, base.At(x, y))
			}
		}
		b.StartTimer()
		if _, err := cluster.Agglomerative(m, 9, cluster.AverageLink); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSimilarityWithNorms(b *testing.B) {
	// Algorithm 3's combined variant: norms derived in the same
	// sweep instead of being precomputed (Section 5.2).
	w := workload(b)
	db := w.DB
	n := db.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := i%n, (i*7+1)%n
		core.SimilarityWithNorms(db.Footprints[a], db.Footprints[c])
	}
}

func BenchmarkAblationSTRBulkLoad(b *testing.B) {
	w := workload(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.NewRoIIndex(w.DB, search.BuildSTR, 0)
	}
}

func BenchmarkAblationWeightedSimilarity(b *testing.B) {
	// Section 8 duration weights: same algorithms, weighted regions.
	w := workload(b)
	rng := rand.New(rand.NewSource(3))
	weighted := make([]core.Footprint, len(w.DB.Footprints))
	norms := make([]float64, len(weighted))
	for i, f := range w.DB.Footprints {
		g := make(core.Footprint, len(f))
		for j, r := range f {
			g[j] = core.Region{Rect: r.Rect, Weight: 3 + rng.Float64()*9}
		}
		weighted[i] = g
		norms[i] = core.Norm(g)
	}
	n := len(weighted)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := i%n, (i*7+1)%n
		core.SimilarityJoin(weighted[a], weighted[c], norms[a], norms[c])
	}
}

func BenchmarkAblationSimilarity3D(b *testing.B) {
	// Section 8's sweep-plane similarity on synthetic 3D footprints
	// of paper-like cardinality.
	rng := rand.New(rand.NewSource(4))
	mk := func() d3.Footprint3 {
		f := make(d3.Footprint3, 17)
		for i := range f {
			x, y, z := rng.Float64(), rng.Float64(), rng.Float64()
			f[i] = d3.Region3{
				Box: geom.Box3{
					MinX: x, MinY: y, MinZ: z,
					MaxX: x + 0.02, MaxY: y + 0.017, MaxZ: z + 0.02,
				},
				Weight: 1,
			}
		}
		return f
	}
	const pool = 64
	fps := make([]d3.Footprint3, pool)
	for i := range fps {
		fps[i] = mk()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d3.Similarity(fps[i%pool], fps[(i*7+1)%pool])
	}
}

func BenchmarkAblationExtractNaive(b *testing.B) {
	// The prose reference of Algorithm 1: how much the incremental
	// window plus back-tracking buys.
	w := workload(b)
	sessions := sessionPool(w)
	cfg := bench.ExtractionConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		extract.ExtractNaive(sessions[i%len(sessions)], cfg)
	}
}
