package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"time"

	"geofootprint/internal/retry"
)

// query mode drives the /v1/topk endpoint of either a single geoserve
// shard or a georouter coordinator with a stream of random weighted
// multi-region queries. Both speak the same request format; the
// responses differ — a shard answers a bare result list, the router an
// envelope carrying the partial-result contract — so the driver
// detects which it is talking to and, against a router, tallies how
// often the cluster answered partial and which shards went missing.
func query(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	url := fs.String("url", "http://localhost:9090", "geoserve or georouter base URL")
	queries := fs.Int("queries", 100, "number of top-k queries to issue")
	k := fs.Int("k", 10, "results per query")
	method := fs.String("method", "", "search method to request (empty: server default)")
	regions := fs.Int("regions", 3, "weighted regions per query footprint")
	seed := fs.Int64("seed", 1, "query-stream seed")
	fs.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	type regionJSON struct {
		Rect   [4]float64 `json:"rect"`
		Weight float64    `json:"weight"`
	}
	type queryJSON struct {
		Regions []regionJSON `json:"regions"`
		K       int          `json:"k"`
		Method  string       `json:"method,omitempty"`
	}
	makeBody := func() []byte {
		q := queryJSON{K: *k, Method: *method}
		for i := 0; i < *regions; i++ {
			x, y := rng.Float64()*0.9, rng.Float64()*0.9
			w, h := 0.02+rng.Float64()*0.2, 0.02+rng.Float64()*0.2
			q.Regions = append(q.Regions, regionJSON{
				Rect:   [4]float64{x, y, x + w, y + h},
				Weight: float64(1 + rng.Intn(3)),
			})
		}
		b, err := json.Marshal(q)
		if err != nil {
			log.Fatal(err)
		}
		return b
	}

	// envelope is the superset response shape; a shard's bare result
	// list is decoded into Results token by token below.
	type result struct {
		ID         int     `json:"id"`
		Similarity float64 `json:"similarity"`
	}
	type envelope struct {
		Results []result `json:"results"`
		Partial bool     `json:"partial"`
		// Missing names lost ring segments: bare shard IDs when the
		// router runs unreplicated, "+"-joined replica tuples otherwise.
		Missing    []string `json:"missing"`
		FailedOver int      `json:"failed_over"`
	}

	client := &http.Client{Timeout: 30 * time.Second}
	// The router serves top-k on /v1/topk, a shard on /v1/query (same
	// request body). Start with the router path and fall back once.
	path := "/v1/topk"
	bo := retry.New(50*time.Millisecond, 2*time.Second, rand.New(rand.NewSource(*seed+1)))
	const maxAttempts = 10
	var (
		answered, partials, results, failedOver int
		missing                                 = map[string]int{}
		totalLatency                            time.Duration
	)
	start := time.Now()
	for qn := 0; qn < *queries; qn++ {
		body := makeBody()
		for attempt := 0; ; attempt++ {
			t0 := time.Now()
			resp, err := client.Post(*url+path, "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			switch resp.StatusCode {
			case http.StatusOK:
				var env envelope
				dec := json.NewDecoder(resp.Body)
				// A shard answers a bare JSON array; the router an
				// object. Peek at the first token to tell them apart.
				if tok, err := dec.Token(); err != nil {
					log.Fatalf("top-k: reading response: %v", err)
				} else if delim, ok := tok.(json.Delim); ok && delim == '[' {
					for dec.More() {
						var r result
						if err := dec.Decode(&r); err != nil {
							log.Fatalf("top-k: decoding shard result: %v", err)
						}
						env.Results = append(env.Results, r)
					}
				} else {
					// Re-fetch the object fields record by record: the
					// opening '{' is consumed, so walk key/value pairs.
					for dec.More() {
						key, err := dec.Token()
						if err != nil {
							log.Fatalf("top-k: decoding envelope: %v", err)
						}
						switch key {
						case "results":
							if err := dec.Decode(&env.Results); err != nil {
								log.Fatalf("top-k: decoding results: %v", err)
							}
						case "partial":
							if err := dec.Decode(&env.Partial); err != nil {
								log.Fatalf("top-k: decoding partial: %v", err)
							}
						case "missing":
							if err := dec.Decode(&env.Missing); err != nil {
								log.Fatalf("top-k: decoding missing: %v", err)
							}
						case "failed_over":
							if err := dec.Decode(&env.FailedOver); err != nil {
								log.Fatalf("top-k: decoding failed_over: %v", err)
							}
						default:
							var skip json.RawMessage
							if err := dec.Decode(&skip); err != nil {
								log.Fatalf("top-k: decoding envelope: %v", err)
							}
						}
					}
				}
				_ = resp.Body.Close()
				totalLatency += time.Since(t0)
				answered++
				results += len(env.Results)
				failedOver += env.FailedOver
				if env.Partial {
					partials++
					for _, id := range env.Missing {
						missing[id]++
					}
				}
				bo.Reset()
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				ra := resp.Header.Get("Retry-After")
				_ = resp.Body.Close()
				if attempt+1 >= maxAttempts {
					log.Fatalf("top-k: shed %d times in a row (last status %d); giving up", maxAttempts, resp.StatusCode)
				}
				time.Sleep(bo.Next(ra))
				continue
			case http.StatusNotFound:
				_ = resp.Body.Close()
				if answered == 0 && path == "/v1/topk" {
					path = "/v1/query"
					continue
				}
				log.Fatalf("POST %s: status 404", path)
			default:
				_ = resp.Body.Close()
				log.Fatalf("POST %s: status %d", path, resp.StatusCode)
			}
			break
		}
	}
	elapsed := time.Since(start).Seconds()
	if answered == 0 {
		fmt.Println("answered 0 queries")
		return
	}
	fmt.Printf("answered %d/%d queries in %.1fs (%.0f queries/s, mean %.1f ms, %d results)\n",
		answered, *queries, elapsed, float64(answered)/elapsed,
		totalLatency.Seconds()*1e3/float64(answered), results)
	if failedOver > 0 {
		fmt.Printf("%d fan-out legs failed over to a replica\n", failedOver)
	}
	if partials > 0 {
		ids := make([]string, 0, len(missing))
		for id := range missing {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Printf("%d partial responses (lost ring segments):\n", partials)
		for _, id := range ids {
			fmt.Printf("  segment %s missing from %d responses\n", id, missing[id])
		}
	} else {
		fmt.Println("no partial responses: every answer covered the full cluster")
	}
}
