package main

import (
	"math/rand"
	"testing"
	"time"
)

// Retry-After takes precedence over the exponential schedule.
func TestBackoffHonoursRetryAfter(t *testing.T) {
	b := newBackoff(50*time.Millisecond, 2*time.Second, rand.New(rand.NewSource(1)))
	if got := b.wait(0, "3"); got != 3*time.Second {
		t.Fatalf("wait with Retry-After: 3 = %v, want 3s", got)
	}
	if got := b.wait(7, "0"); got != 0 {
		t.Fatalf("wait with Retry-After: 0 = %v, want 0", got)
	}
	// Unparsable header falls back to the schedule.
	if got := b.wait(0, "soon"); got < 30*time.Millisecond || got > 70*time.Millisecond {
		t.Fatalf("fallback wait = %v, want ~50ms ±25%%", got)
	}
}

// The schedule doubles per attempt, stays within the jitter envelope,
// and saturates at the cap (including far past shift-overflow range).
func TestBackoffExponentialAndCapped(t *testing.T) {
	base, cap := 50*time.Millisecond, 2*time.Second
	b := newBackoff(base, cap, rand.New(rand.NewSource(2)))
	for attempt := 0; attempt < 12; attempt++ {
		ideal := base << uint(attempt)
		if ideal <= 0 || ideal > cap {
			ideal = cap
		}
		lo := time.Duration(float64(ideal) * 0.75)
		hi := time.Duration(float64(ideal) * 1.25)
		for i := 0; i < 50; i++ {
			if got := b.wait(attempt, ""); got < lo || got > hi {
				t.Fatalf("attempt %d: wait %v outside [%v, %v]", attempt, got, lo, hi)
			}
		}
	}
	// Absurd attempt counts (shift overflow) still return the cap.
	if got := b.wait(200, ""); got > time.Duration(float64(cap)*1.25) {
		t.Fatalf("overflowed attempt: %v, want ≤ cap+jitter", got)
	}
}

// Same seed, same schedule — the firehose stays reproducible.
func TestBackoffDeterministic(t *testing.T) {
	a := newBackoff(50*time.Millisecond, 2*time.Second, rand.New(rand.NewSource(9)))
	b := newBackoff(50*time.Millisecond, 2*time.Second, rand.New(rand.NewSource(9)))
	for i := 0; i < 20; i++ {
		if wa, wb := a.wait(i%6, ""), b.wait(i%6, ""); wa != wb {
			t.Fatalf("attempt %d: %v vs %v", i, wa, wb)
		}
	}
}
