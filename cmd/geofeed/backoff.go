package main

import (
	"math/rand"
	"strconv"
	"time"
)

// backoff schedules retry waits for shed ingest batches (429
// backpressure, 503 unavailable). The server's Retry-After wins when
// present — it knows its own drain or backlog horizon; otherwise the
// wait grows exponentially from base to cap with ±25% jitter, so a
// fleet of feeders that got shed together does not return together.
// Deterministic given the rng seed, which is what makes it testable.
type backoff struct {
	base time.Duration
	cap  time.Duration
	rng  *rand.Rand
}

func newBackoff(base, cap time.Duration, rng *rand.Rand) *backoff {
	return &backoff{base: base, cap: cap, rng: rng}
}

// wait returns how long to sleep before retry number attempt
// (0-based). retryAfter is the raw Retry-After header value, seconds
// per RFC 9110 (an unparsable value falls back to the exponential
// schedule).
func (b *backoff) wait(attempt int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	d := b.base << uint(attempt)
	if d <= 0 || d > b.cap { // <= 0: the shift overflowed
		d = b.cap
	}
	// ±25% jitter.
	j := 0.75 + b.rng.Float64()*0.5
	return time.Duration(float64(d) * j)
}
