// Command geofeed exercises the streaming ingestion path.
//
// Feed mode generates a synthetic location firehose — users dwelling,
// walking, and disappearing past the session gap — and POSTs it to a
// geoserve /v1/ingest endpoint as NDJSON batches, honouring 429
// backpressure with Retry-After:
//
//	geofeed feed -url http://localhost:8080 -users 200 -rate 5000 -duration 30s
//
// Both the single-shard geoserve /v1/ingest and the georouter
// coordinator speak the same NDJSON contract, so the same invocation
// drives a whole cluster through the router.
//
// Query mode issues random weighted multi-region top-k queries against
// /v1/topk — a shard's bare result list or the router's envelope — and
// against a router reports how many answers were partial and which
// shards were missing:
//
//	geofeed query -url http://localhost:9090 -queries 200 -k 10
//
// Inspect mode reads a write-ahead log offline and reports every
// record (LSN, samples, bytes, CRC validity) plus whether the tail is
// torn or corrupt — the first thing to look at after a crash:
//
//	geofeed inspect -wal ingest.wal [-v]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"geofootprint/internal/ingest"
	"geofootprint/internal/retry"
	"geofootprint/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geofeed: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "feed":
		feed(os.Args[2:])
	case "query":
		query(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: geofeed feed|query|inspect [flags]")
	os.Exit(2)
}

// walker is one synthetic user's state in the generated stream.
type walker struct {
	x, y, t float64
}

func feed(args []string) {
	fs := flag.NewFlagSet("feed", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8080", "geoserve base URL")
	users := fs.Int("users", 100, "synthetic user population")
	rate := fs.Float64("rate", 2000, "target samples/second (0: as fast as possible)")
	duration := fs.Duration("duration", 10*time.Second, "how long to feed")
	batch := fs.Int("batch", 200, "samples per POST")
	seed := fs.Int64("seed", 1, "stream seed")
	fs.Parse(args)

	rng := rand.New(rand.NewSource(*seed))
	cur := make([]walker, *users)
	for i := range cur {
		cur[i] = walker{rng.Float64(), rng.Float64(), rng.Float64() * 5}
	}
	next := func() ingest.Sample {
		u := rng.Intn(*users)
		c := &cur[u]
		switch r := rng.Float64(); {
		case r < 0.03: // session break
			c.t += 120 + rng.Float64()*120
			c.x, c.y = rng.Float64(), rng.Float64()
		case r < 0.15: // relocation within the session
			c.t += 1
			c.x, c.y = rng.Float64(), rng.Float64()
		default: // dwell
			c.t += 1
			c.x += (rng.Float64() - 0.5) * 0.01
			c.y += (rng.Float64() - 0.5) * 0.01
		}
		return ingest.Sample{User: u + 1, X: c.x, Y: c.y, T: c.t}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	// Retry schedule for shed batches (decorrelated jitter, shared
	// with the router's fan-out retries); seeded off the stream seed
	// so a run is reproducible end to end.
	bo := retry.New(50*time.Millisecond, 2*time.Second, rand.New(rand.NewSource(*seed+1)))
	const maxAttempts = 10
	var (
		sent, batches, retried429, retried503 int
		buf                                   bytes.Buffer
	)
	start := time.Now()
	deadline := start.Add(*duration)
	for time.Now().Before(deadline) {
		buf.Reset()
		for i := 0; i < *batch; i++ {
			s := next()
			fmt.Fprintf(&buf, `{"user":%d,"x":%g,"y":%g,"t":%g}`+"\n", s.User, s.X, s.Y, s.T)
		}
		for attempt := 0; ; attempt++ {
			resp, err := client.Post(*url+"/v1/ingest", "application/x-ndjson", bytes.NewReader(buf.Bytes()))
			if err != nil {
				log.Fatal(err)
			}
			_ = resp.Body.Close() // response body fully ignored; status code is the signal
			switch resp.StatusCode {
			case http.StatusAccepted:
				sent += *batch
				batches++
				bo.Reset()
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				// 429: backpressure; 503: draining or briefly
				// unavailable. Both are retryable sheds — but a batch
				// shed maxAttempts times in a row means the server is
				// not coming back at this load.
				if attempt+1 >= maxAttempts {
					log.Fatalf("POST /v1/ingest: shed %d times in a row (last status %d); giving up", maxAttempts, resp.StatusCode)
				}
				if resp.StatusCode == http.StatusTooManyRequests {
					retried429++
				} else {
					retried503++
				}
				time.Sleep(bo.Next(resp.Header.Get("Retry-After")))
				continue
			default:
				log.Fatalf("POST /v1/ingest: status %d", resp.StatusCode)
			}
			break
		}
		if *rate > 0 {
			// Pace to the target rate against the wall clock.
			ahead := time.Duration(float64(sent)/(*rate)*float64(time.Second)) - time.Since(start)
			if ahead > 0 {
				time.Sleep(ahead)
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	fmt.Printf("fed %d samples in %d batches over %.1fs (%.0f samples/s); %d retries (%d backpressure, %d unavailable)\n",
		sent, batches, elapsed, float64(sent)/elapsed, retried429+retried503, retried429, retried503)
}

func inspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	path := fs.String("wal", "", "write-ahead log to read (required)")
	verbose := fs.Bool("v", false, "print every record")
	fs.Parse(args)
	if *path == "" {
		fs.Usage()
		os.Exit(2)
	}

	var (
		records, samples  int
		bytesTotal        int64
		firstLSN, lastLSN uint64
	)
	n, damaged, err := wal.Replay(*path, func(rec wal.Record) error {
		if firstLSN == 0 {
			firstLSN = rec.LSN
		}
		lastLSN = rec.LSN
		records++
		bytesTotal += int64(len(rec.Payload))
		batch, derr := ingest.DecodeBatch(rec.Payload)
		if derr != nil {
			// CRC-valid but undecodable: a format-version mismatch.
			fmt.Printf("record LSN %d: %v\n", rec.LSN, derr)
			return nil
		}
		samples += len(batch)
		if *verbose {
			fmt.Printf("LSN %-8d %5d samples  %7d bytes  t=[%g, %g]\n",
				rec.LSN, len(batch), len(rec.Payload), batch[0].T, batch[len(batch)-1].T)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(*path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d records (LSN %d..%d), %d samples, %d payload bytes, %d file bytes\n",
		*path, n, firstLSN, lastLSN, samples, bytesTotal, fi.Size())
	if damaged {
		fmt.Println("TAIL DAMAGED: the last record is torn or corrupt; recovery applies the intact prefix and the next open truncates the tail")
		os.Exit(1)
	}
	fmt.Println("tail clean: every record passes CRC")
}
