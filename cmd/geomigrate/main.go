// Command geomigrate converts FootprintDB snapshot files between the
// legacy gob format and the current columnar format (internal/colstore),
// and diagnoses existing files.
//
// Convert mode reads a snapshot of either format and rewrites it in the
// requested one (atomically, next to the destination):
//
//	geomigrate convert -in partA.db -out partA.col            # → columnar
//	geomigrate convert -in partA.col -out partA.db -to gob    # → legacy gob
//
// Verify mode opens a file the way geoserve would — sniffing the
// format, checking every section CRC on columnar files — and, for
// columnar files, additionally loads it through BOTH the mmap and the
// read path and cross-checks that the two produce identical databases:
//
//	geomigrate verify -in partA.col
//
// Info mode prints what the file is without fully validating payloads:
//
//	geomigrate info -in partA.col
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"geofootprint/internal/colstore"
	"geofootprint/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geomigrate: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "convert":
		convert(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: geomigrate convert|verify|info [flags]")
	os.Exit(2)
}

func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "source snapshot (gob or columnar; required)")
	out := fs.String("out", "", "destination path (required)")
	to := fs.String("to", "columnar", "target format: columnar|gob")
	fs.Parse(args)
	if *in == "" || *out == "" {
		fs.Usage()
		os.Exit(2)
	}
	db, err := store.Load(*in)
	if err != nil {
		log.Fatal(err)
	}
	switch *to {
	case "columnar":
		err = db.Save(*out)
	case "gob":
		err = db.SaveGob(*out)
	default:
		log.Fatalf("unknown target format %q (want columnar or gob)", *to)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s (%s): %d users, %d regions", *out, *to, db.Len(), db.NumRegions())
}

func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "snapshot to verify (required)")
	fs.Parse(args)
	if *in == "" {
		fs.Usage()
		os.Exit(2)
	}
	// The auto path is what geoserve runs: magic sniff, full CRC
	// verification on columnar files, gob decode otherwise.
	db, err := store.Load(*in)
	if err != nil {
		if errors.Is(err, store.ErrCorruptSnapshot) {
			log.Fatalf("CORRUPT: %v", err)
		}
		log.Fatal(err)
	}
	if !db.ColumnarBacked() {
		log.Printf("OK (gob): %d users, %d regions", db.Len(), db.NumRegions())
		return
	}
	// Columnar: cross-check the two load paths against each other. Any
	// divergence means a bug in exactly one of them, which is the
	// failure this subcommand exists to catch before geoserve does.
	viaMmap, err := store.LoadColumnar(*in, colstore.ModeMmap)
	if err != nil {
		log.Fatalf("mmap load: %v", err)
	}
	viaRead, err := store.LoadColumnar(*in, colstore.ModeRead)
	if err != nil {
		log.Fatalf("read load: %v", err)
	}
	if err := diffDBs(viaMmap, viaRead); err != nil {
		log.Fatalf("mmap and read paths disagree: %v", err)
	}
	log.Printf("OK (columnar): %d users, %d regions, sketches=%v; mmap and read paths agree",
		db.Len(), db.NumRegions(), db.SketchesEnabled())
}

// diffDBs compares every persisted field of two databases bit by bit.
func diffDBs(a, b *store.FootprintDB) error {
	if a.Name != b.Name {
		return fmt.Errorf("name %q vs %q", a.Name, b.Name)
	}
	if a.Len() != b.Len() {
		return fmt.Errorf("%d vs %d users", a.Len(), b.Len())
	}
	for u := range a.IDs {
		if a.IDs[u] != b.IDs[u] {
			return fmt.Errorf("user %d: ID %d vs %d", u, a.IDs[u], b.IDs[u])
		}
		if a.Norms[u] != b.Norms[u] {
			return fmt.Errorf("user %d: norm mismatch", u)
		}
		if a.MBRs[u] != b.MBRs[u] {
			return fmt.Errorf("user %d: MBR mismatch", u)
		}
		fa, fb := a.Footprints[u], b.Footprints[u]
		if len(fa) != len(fb) {
			return fmt.Errorf("user %d: %d vs %d regions", u, len(fa), len(fb))
		}
		for r := range fa {
			if fa[r] != fb[r] {
				return fmt.Errorf("user %d region %d mismatch", u, r)
			}
		}
	}
	if a.SketchParams != b.SketchParams {
		return fmt.Errorf("sketch params mismatch")
	}
	if len(a.Sketches) != len(b.Sketches) {
		return fmt.Errorf("%d vs %d sketches", len(a.Sketches), len(b.Sketches))
	}
	for u := range a.Sketches {
		sa, sb := &a.Sketches[u], &b.Sketches[u]
		if len(sa.Cells) != len(sb.Cells) {
			return fmt.Errorf("user %d: sketch size mismatch", u)
		}
		for i := range sa.Cells {
			if sa.Cells[i] != sb.Cells[i] || sa.Mass[i] != sb.Mass[i] || sa.Root[i] != sb.Root[i] {
				return fmt.Errorf("user %d: sketch cell %d mismatch", u, i)
			}
		}
	}
	return nil
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "snapshot to describe (required)")
	fs.Parse(args)
	if *in == "" {
		fs.Usage()
		os.Exit(2)
	}
	st, err := os.Stat(*in)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := colstore.Open(*in, colstore.ModeRead)
	switch {
	case err == nil:
		fmt.Printf("%s: columnar v%d, %d bytes\n", *in, colstore.Version, st.Size())
		fmt.Printf("  users=%d regions=%d sketches=%v", snap.NumUsers(), snap.NumRegions(), snap.HasSketches())
		if snap.HasSketches() {
			fmt.Printf(" (g=%d, %d cells)", snap.SketchG, len(snap.Cells))
		}
		fmt.Println()
		if snap.Meta != nil {
			fmt.Printf("  meta section: %d bytes (ingest checkpoint state)\n", len(snap.Meta))
		}
	case errors.Is(err, colstore.ErrNotColumnar):
		fmt.Printf("%s: legacy gob, %d bytes (convert with `geomigrate convert`)\n", *in, st.Size())
	default:
		log.Fatal(err)
	}
}
