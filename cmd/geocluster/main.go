// Command geocluster reproduces the utility analysis of Section 7 on
// a FootprintDB: it clusters a user sample by footprint similarity
// with average-link agglomerative clustering and prints each cluster's
// characteristic regions as an ASCII map (the textual analogue of
// Figure 3(b)).
//
// Usage:
//
//	geocluster -db partA.db -sample 4000 -k 9
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"geofootprint/internal/cluster"
	"geofootprint/internal/store"
	"geofootprint/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geocluster: ")

	dbPath := flag.String("db", "", "FootprintDB path (required)")
	sample := flag.Int("sample", 4000, "number of users to sample")
	k := flag.Int("k", 9, "number of clusters")
	seed := flag.Int64("seed", 1, "sampling seed")
	grid := flag.Int("grid", 40, "characteristic-region grid resolution")
	minOwn := flag.Float64("min-own", 0.25, "min fraction of a cluster covering a characteristic cell")
	maxOther := flag.Float64("max-other", 0.05, "max fraction of any other cluster covering it")
	linkName := flag.String("linkage", "average", "linkage: average, single or complete")
	svgPath := flag.String("svg", "", "also write the characteristic-region map as SVG to this path")
	dotPath := flag.String("dot", "", "also write the dendrogram as Graphviz DOT to this path")
	flag.Parse()

	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	db, err := store.Load(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	n := db.Len()
	if *sample > n {
		*sample = n
	}
	var link cluster.Linkage
	switch *linkName {
	case "average":
		link = cluster.AverageLink
	case "single":
		link = cluster.SingleLink
	case "complete":
		link = cluster.CompleteLink
	default:
		log.Fatalf("unknown linkage %q", *linkName)
	}

	rng := rand.New(rand.NewSource(*seed))
	idxs := rng.Perm(n)[:*sample]

	start := time.Now()
	m := cluster.DistanceMatrix(db, idxs, 0)
	fmt.Printf("distance matrix: %d users, %.2fs\n", *sample, time.Since(start).Seconds())

	start = time.Now()
	labels, merges, err := cluster.AgglomerativeFull(m, *k, link)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s-link clustering: %.2fs\n", link, time.Since(start).Seconds())

	if *dotPath != "" {
		dot := cluster.DendrogramDOT(*sample, merges, func(i int) string {
			return fmt.Sprintf("u%d", db.IDs[idxs[i]])
		})
		if err := os.WriteFile(*dotPath, []byte(dot), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *dotPath)
	}

	sizes := make([]int, *k)
	for _, l := range labels {
		sizes[l]++
	}
	for c, s := range sizes {
		fmt.Printf("cluster %d: %d users\n", c+1, s)
	}

	cfg := cluster.CharacteristicConfig{GridN: *grid, MinOwnFrac: *minOwn, MaxOtherFrac: *maxOther}
	regions, err := cluster.CharacteristicRegions(db, idxs, labels, *k, cfg)
	if err != nil {
		log.Fatal(err)
	}
	for c, rs := range regions {
		fmt.Printf("cluster %d: %d characteristic cells\n", c+1, len(rs))
	}
	fmt.Println("\ncharacteristic-region map (digit = cluster, '.' = shared/unvisited):")
	fmt.Print(cluster.RenderASCII(regions, *grid))

	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := viz.ClustersSVG(f, regions, 800, 800); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *svgPath)
	}
}
