// Command benchdiff compares two BENCH_<exp>.json reports (as written
// by geobench -json) and fails when any timing regressed by more than
// a threshold — the guard rail that keeps the repo's performance
// trajectory monotone across PRs.
//
// It walks both JSON documents in parallel and compares every numeric
// leaf whose key marks it as a timing ("*_seconds", "*_micros"): the
// new value may exceed the old by at most -threshold (relative).
// Non-timing numbers (counts, rates, ks) are ignored; structural
// differences (a row present on one side only) are reported but do not
// fail the diff, since experiments legitimately grow new rows.
//
// Usage:
//
//	benchdiff old/BENCH_fig3a.json new/BENCH_fig3a.json
//	benchdiff -threshold 0.10 old.json new.json
//
// Exit status: 0 when no timing regressed beyond the threshold, 1 when
// at least one did, 2 on usage or read errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

func main() {
	threshold := flag.Float64("threshold", 0.15,
		"maximum allowed relative wall-clock regression (0.15 = +15%)")
	minSeconds := flag.Float64("min-seconds", 0.001,
		"ignore timings below this many seconds (noise floor; micros are converted)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.15] OLD.json NEW.json")
		os.Exit(2)
	}
	oldDoc, err := readJSON(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := readJSON(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	d := differ{threshold: *threshold, minSeconds: *minSeconds}
	d.walk("", oldDoc, newDoc)
	sort.Strings(d.notes)
	for _, n := range d.notes {
		fmt.Println(n)
	}
	if d.regressions > 0 {
		fmt.Printf("benchdiff: FAIL — %d timing(s) regressed more than %.0f%% (%d compared)\n",
			d.regressions, *threshold*100, d.compared)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK — %d timings compared, none regressed more than %.0f%%\n",
		d.compared, *threshold*100)
}

func readJSON(path string) (interface{}, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v interface{}
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return v, nil
}

type differ struct {
	threshold   float64
	minSeconds  float64
	compared    int
	regressions int
	notes       []string
}

// isTiming reports whether a JSON key names a wall-clock quantity, and
// the factor converting its unit to seconds.
func isTiming(key string) (float64, bool) {
	switch {
	case strings.HasSuffix(key, "_seconds") || strings.Contains(key, "seconds"):
		return 1, true
	case strings.HasSuffix(key, "_micros") || strings.Contains(key, "micros"):
		return 1e-6, true
	}
	return 0, false
}

func (d *differ) walk(path string, oldV, newV interface{}) {
	switch o := oldV.(type) {
	case map[string]interface{}:
		n, ok := newV.(map[string]interface{})
		if !ok {
			d.notes = append(d.notes, fmt.Sprintf("note: %s changed shape (object -> %T)", path, newV))
			return
		}
		for k, ov := range o {
			nv, present := n[k]
			if !present {
				d.notes = append(d.notes, fmt.Sprintf("note: %s.%s only in old report", path, k))
				continue
			}
			d.walk(path+"."+k, ov, nv)
		}
	case []interface{}:
		n, ok := newV.([]interface{})
		if !ok {
			d.notes = append(d.notes, fmt.Sprintf("note: %s changed shape (array -> %T)", path, newV))
			return
		}
		ln := len(o)
		if len(n) < ln {
			ln = len(n)
		}
		if len(o) != len(n) {
			d.notes = append(d.notes, fmt.Sprintf("note: %s has %d rows old vs %d new", path, len(o), len(n)))
		}
		for i := 0; i < ln; i++ {
			d.walk(fmt.Sprintf("%s[%d]", path, i), o[i], n[i])
		}
	case float64:
		nf, ok := newV.(float64)
		if !ok {
			return
		}
		key := path[strings.LastIndexByte(path, '.')+1:]
		toSeconds, timing := isTiming(key)
		if !timing {
			return
		}
		oldS, newS := o*toSeconds, nf*toSeconds
		if oldS < d.minSeconds && newS < d.minSeconds {
			return // both below the noise floor
		}
		d.compared++
		if oldS <= 0 {
			return
		}
		rel := (newS - oldS) / oldS
		if rel > d.threshold {
			d.regressions++
			d.notes = append(d.notes, fmt.Sprintf("REGRESSION: %s %.4gs -> %.4gs (%+.1f%%)",
				path, oldS, newS, rel*100))
		}
	}
}
