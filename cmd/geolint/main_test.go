package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// TestSeededViolationFails proves the gate bites: over a fixture
// package with known violations, geolint prints findings and exits 1.
func TestSeededViolationFails(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(moduleRoot(t), []string{"./internal/lint/testdata/src/floatrange/a"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (seeded violations must fail the gate)\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "floatrange") {
		t.Errorf("findings output missing analyzer name:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "finding(s)") {
		t.Errorf("summary line missing:\n%s", errw.String())
	}
}

// TestBadPatternExits2 distinguishes load errors from findings.
func TestBadPatternExits2(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(moduleRoot(t), []string{"./does/not/exist"}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2 for a load error\nstderr:\n%s", code, errw.String())
	}
}

// TestCleanPackageExitsZero runs the binary's entry point over a
// package known clean (the lint framework itself).
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(moduleRoot(t), []string{"./internal/lint/analysis"}, &out, &errw); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
}

// TestJSONOutput pins the -json wire format: one JSON object per
// finding with module-relative file paths — the contract
// scripts/lintstats.sh diffs against its committed baseline.
func TestJSONOutput(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(moduleRoot(t), []string{"-json", "./internal/lint/testdata/src/floatrange/a"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON findings emitted")
	}
	for _, line := range lines {
		var f struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		if f.Analyzer == "" || f.Message == "" || f.Line == 0 {
			t.Errorf("incomplete finding: %q", line)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("file path not module-relative: %q", f.File)
		}
	}
}

// TestLoadErrorsAllPrinted: exit 2 must carry every failing package's
// diagnostics, not just the first one the loader happened to hit.
func TestLoadErrorsAllPrinted(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(moduleRoot(t), []string{
		"./internal/lint/testdata/src/loaderr/broken",
		"./internal/lint/testdata/src/loaderr/missingdep",
	}, &out, &errw)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr:\n%s", code, errw.String())
	}
	msg := errw.String()
	if !strings.Contains(msg, "loaderr/broken") {
		t.Errorf("stderr missing the broken package:\n%s", msg)
	}
	if !strings.Contains(msg, "loaderr/nonexistent") {
		t.Errorf("stderr missing the unresolvable import:\n%s", msg)
	}
	for _, line := range strings.Split(strings.TrimSpace(msg), "\n") {
		if !strings.HasPrefix(line, "geolint: ") {
			t.Errorf("unprefixed error line: %q", line)
		}
	}
}

// TestSeededPinLeakFailsGate seeds a real pin leak into internal/server
// behind a build tag only this test enables, and proves `make lint`
// would fail: the flow-sensitive analyzers bite on production packages,
// not just fixtures. The tag keeps the seed invisible to every other
// build and to TestRepoClean running in a sibling process.
func TestSeededPinLeakFailsGate(t *testing.T) {
	root := moduleRoot(t)
	seed := filepath.Join(root, "internal", "server", "zz_lintseed_test_probe.go")
	src := `//go:build lintseed

package server

func (s *Server) zzSeededLeak(bad bool) uint64 {
	ep := s.epochs.Acquire()
	if ep == nil {
		return 0
	}
	if bad {
		return 0 // leaks the pin
	}
	seq := ep.Seq()
	ep.Release()
	return seq
}
`
	if err := os.WriteFile(seed, []byte(src), 0o644); err != nil {
		t.Fatalf("writing seed: %v", err)
	}
	t.Cleanup(func() { os.Remove(seed) })
	t.Setenv("GOFLAGS", "-tags=lintseed")

	var out, errw bytes.Buffer
	code := run(root, []string{"./internal/server"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (seeded pin leak must fail the gate)\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "pinleak") {
		t.Errorf("findings missing pinleak:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "zz_lintseed_test_probe.go") {
		t.Errorf("finding not attributed to the seeded file:\n%s", out.String())
	}
}
