package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// TestSeededViolationFails proves the gate bites: over a fixture
// package with known violations, geolint prints findings and exits 1.
func TestSeededViolationFails(t *testing.T) {
	var out, errw bytes.Buffer
	code := run(moduleRoot(t), []string{"./internal/lint/testdata/src/floatrange/a"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (seeded violations must fail the gate)\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "floatrange") {
		t.Errorf("findings output missing analyzer name:\n%s", out.String())
	}
	if !strings.Contains(errw.String(), "finding(s)") {
		t.Errorf("summary line missing:\n%s", errw.String())
	}
}

// TestBadPatternExits2 distinguishes load errors from findings.
func TestBadPatternExits2(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(moduleRoot(t), []string{"./does/not/exist"}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2 for a load error\nstderr:\n%s", code, errw.String())
	}
}

// TestCleanPackageExitsZero runs the binary's entry point over a
// package known clean (the lint framework itself).
func TestCleanPackageExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(moduleRoot(t), []string{"./internal/lint/analysis"}, &out, &errw); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
}
