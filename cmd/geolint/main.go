// Command geolint is the repo's invariant gate: a multichecker that
// runs every analyzer in internal/lint over the given packages and
// exits non-zero on any finding. `make check` runs it between vet and
// the race pass; see internal/lint for what each analyzer enforces and
// DESIGN.md ("Machine-checked invariants") for the incidents behind
// them.
//
// Usage:
//
//	geolint [packages]     # defaults to ./...
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"fmt"
	"io"
	"os"

	"geofootprint/internal/lint"
	"geofootprint/internal/lint/loader"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// run is main, factored for tests: lint the patterns relative to dir,
// print findings to out, and return the exit status.
func run(dir string, patterns []string, out, errw io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(errw, "geolint: %v\n", err)
		return 2
	}
	findings, err := lint.Run(pkgs, lint.Analyzers)
	if err != nil {
		fmt.Fprintf(errw, "geolint: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(errw, "geolint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
