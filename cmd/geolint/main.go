// Command geolint is the repo's invariant gate: a multichecker that
// runs every analyzer in internal/lint over the given packages and
// exits non-zero on any finding. `make check` runs it between vet and
// the race pass; see internal/lint for what each analyzer enforces and
// DESIGN.md ("Machine-checked invariants") for the incidents behind
// them.
//
// Usage:
//
//	geolint [-json] [packages]     # defaults to ./...
//
// With -json, findings are printed as JSON Lines — one object per
// finding with file (module-relative), line, col, analyzer, message —
// stable enough to diff against a committed baseline
// (scripts/lintstats.sh does exactly that).
//
// Exit status: 0 clean, 1 findings, 2 load/usage error. A load error
// prints every failing package, not just the first: CI runs should
// surface the whole breakage in one pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"geofootprint/internal/lint"
	"geofootprint/internal/lint/loader"
)

func main() {
	os.Exit(run(".", os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire form of one finding. File is relative
// to the module root so baselines diff cleanly across checkouts.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is main, factored for tests: lint the patterns relative to dir,
// print findings to out, and return the exit status.
func run(dir string, args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("geolint", flag.ContinueOnError)
	fs.SetOutput(errw)
	jsonOut := fs.Bool("json", false, "emit findings as JSON Lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		// The loader aggregates every load failure into one error;
		// print each on its own prefixed line.
		for _, line := range strings.Split(strings.TrimRight(err.Error(), "\n"), "\n") {
			fmt.Fprintf(errw, "geolint: %s\n", line)
		}
		return 2
	}
	findings, err := lint.Run(pkgs, lint.Analyzers)
	if err != nil {
		for _, line := range strings.Split(strings.TrimRight(err.Error(), "\n"), "\n") {
			fmt.Fprintf(errw, "geolint: %s\n", line)
		}
		return 2
	}
	if *jsonOut {
		root := dir
		if abs, err := filepath.Abs(dir); err == nil {
			root = abs
		}
		enc := json.NewEncoder(out)
		for _, f := range findings {
			file := f.Pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			if err := enc.Encode(jsonFinding{
				File:     file,
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			}); err != nil {
				fmt.Fprintf(errw, "geolint: encoding findings: %v\n", err)
				return 2
			}
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(errw, "geolint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}
