// Command geobench regenerates every table and figure of the paper's
// evaluation (Section 7) on the synthetic ATC-substitute datasets and
// prints them next to the paper's published numbers.
//
// Absolute times are not expected to match the paper (different
// hardware, Go vs g++ -O3, and scaled-down datasets unless
// -scale 1.0); the reproduced quantities are the *relative* results:
// which method wins, by roughly what factor, and where behaviour
// crosses over.
//
// Usage:
//
//	geobench                                   # everything, 5% scale
//	geobench -exp table3 -scale 0.02 -parts A,B
//	geobench -exp fig3b -sample 4000
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"

	"geofootprint/internal/bench"
	"geofootprint/internal/wal"
)

// Paper-published values, for side-by-side reporting.
var (
	paperTable1 = map[string]bench.Table1Row{
		"A": {Part: "A", Users: 278000, AvgRegions: 16, AvgXExtent: 0.020145, AvgYExtent: 0.017232},
		"B": {Part: "B", Users: 236000, AvgRegions: 18, AvgXExtent: 0.019387, AvgYExtent: 0.016651},
		"C": {Part: "C", Users: 317000, AvgRegions: 20, AvgXExtent: 0.019247, AvgYExtent: 0.016606},
		"D": {Part: "D", Users: 377000, AvgRegions: 17, AvgXExtent: 0.025416, AvgYExtent: 0.022551},
	}
	paperTable2Extract = map[string]float64{"A": 60.09, "B": 56.9, "C": 82.15, "D": 90.33}
	paperTable2Norm    = map[string]float64{"A": 6.91, "B": 7.84, "C": 7.97, "D": 11.98}
	paperTable3Alg3    = map[string]float64{"A": 46.24, "B": 59.5, "C": 52.7, "D": 16.39}
	paperTable3Alg4    = map[string]float64{"A": 1.08, "B": 1.28, "C": 1.46, "D": 0.53}
	paperTable4RoI     = map[string]float64{"A": 3.54, "B": 3.68, "C": 5.64, "D": 5.57}
	paperTable4User    = map[string]float64{"A": 0.25, "B": 0.22, "C": 0.31, "D": 0.35}
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geobench: ")

	exp := flag.String("exp", "all",
		"experiment: table1, table2, table3, table4, fig3a, fig3b, sketch, ingest, qps, restart, scatter, failover, mbr-sensitivity, tuning, weighted, grid, cluster-methods, scale-sweep, k-sensitivity or all")
	scale := flag.Float64("scale", 0.05, "fraction of the paper's user counts (1.0 = full size)")
	partsFlag := flag.String("parts", "A,B,C,D", "comma-separated parts to run")
	queries := flag.Int("queries", 50, "query users for table3 (paper: 200)")
	fig3aQueries := flag.Int("fig3a-queries", 200, "queries for fig3a (paper: 1000)")
	k := flag.Int("k", 5, "K for top-K search experiments")
	sample := flag.Int("sample", 1500, "user sample for fig3b clustering (paper: 4000)")
	clusters := flag.Int("clusters", 9, "clusters for fig3b (paper: 9)")
	workers := flag.Int("workers", 0, "parallel workers for preprocessing (0 = all CPUs)")
	seed := flag.Int64("seed", 7, "random seed for query sampling")
	parallel := flag.Bool("parallel", false,
		"also run the fig3a workload through the parallel query engine (serial vs parallel, identical results verified)")
	jsonDir := flag.String("json", ".",
		"directory for machine-readable BENCH_<exp>.json reports (empty = disabled)")
	flag.Parse()

	parts := strings.Split(*partsFlag, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	// emit writes the machine-readable companion of a text table.
	emit := func(name string, rows interface{}) {
		if *jsonDir == "" {
			return
		}
		path, err := bench.WriteReport(*jsonDir, bench.Report{
			Experiment: name, Scale: *scale, Workers: *workers,
			Parallel: *parallel, Rows: rows,
		})
		if err != nil {
			log.Fatalf("writing %s report: %v", name, err)
		}
		fmt.Printf("(wrote %s)\n\n", path)
	}

	if runtime.GOMAXPROCS(0) == 1 {
		log.Print("WARNING: GOMAXPROCS=1 — parallel speedups and concurrent-ingest numbers are not meaningful; the JSON reports carry this warning")
	}

	fmt.Printf("geobench: scale=%.3g parts=%s (paper hardware: i9-10900K, g++ -O3; absolute times differ)\n\n",
		*scale, strings.Join(parts, ","))

	// Fig3b only needs Part A in the paper; build workloads lazily.
	workloads := make(map[string]*bench.Workload)
	get := func(part string) *bench.Workload {
		if w, ok := workloads[part]; ok {
			return w
		}
		w, err := bench.NewWorkload(part, *scale, *workers)
		if err != nil {
			log.Fatal(err)
		}
		workloads[part] = w
		return w
	}

	if want("table1") {
		fmt.Println("== Table 1: statistics of data and extracted RoIs ==")
		fmt.Printf("%-5s %12s %12s %12s %12s   (paper: users/avgReg/x/y)\n",
			"part", "users", "avg#regions", "x-extent", "y-extent")
		for _, p := range parts {
			r := bench.Table1(get(p))
			pp := paperTable1[p]
			fmt.Printf("%-5s %12d %12.1f %12.6f %12.6f   (%dK / %.0f / %.6f / %.6f)\n",
				r.Part, r.Users, r.AvgRegions, r.AvgXExtent, r.AvgYExtent,
				pp.Users/1000, pp.AvgRegions, pp.AvgXExtent, pp.AvgYExtent)
		}
		fmt.Println()
	}

	if want("table2") {
		fmt.Println("== Table 2: footprint extraction & norm computation time ==")
		fmt.Printf("%-5s %14s %14s %16s   (paper: extract/norm at full size)\n",
			"part", "extract (s)", "norms (s)", "footprints/s")
		for _, p := range parts {
			r := bench.Table2(get(p))
			fmt.Printf("%-5s %14s %14s %16.0f   (%.2fs / %.2fs)\n",
				r.Part, bench.FormatSeconds(r.ExtractSeconds), bench.FormatSeconds(r.NormSeconds),
				r.FootprintsPerSec, paperTable2Extract[p], paperTable2Norm[p])
		}
		fmt.Println()
	}

	if want("table3") {
		fmt.Println("== Table 3: avg similarity computation cost (µs) ==")
		fmt.Printf("%-5s %12s %12s %10s   (paper: alg3/alg4 µs)\n",
			"part", "Alg3 (µs)", "Alg4 (µs)", "speedup")
		var rows []bench.Table3Row
		for _, p := range parts {
			r := bench.Table3(get(p), *queries, *seed)
			rows = append(rows, r)
			fmt.Printf("%-5s %12.2f %12.2f %9.1fx   (%.2f / %.2f)\n",
				r.Part, r.Alg3Micros, r.Alg4Micros, r.SpeedupAlg4,
				paperTable3Alg3[p], paperTable3Alg4[p])
		}
		fmt.Println()
		emit("table3", rows)
	}

	if want("table4") {
		fmt.Println("== Table 4: indexing time for R-tree methods ==")
		fmt.Printf("%-5s %14s %14s %14s   (paper: RoI/user-centric s)\n",
			"part", "RoI tree (s)", "user tree (s)", "RoI STR (s)")
		for _, p := range parts {
			r := bench.Table4(get(p))
			fmt.Printf("%-5s %14s %14s %14s   (%.2f / %.2f)\n",
				r.Part, bench.FormatSeconds(r.RoITreeSeconds),
				bench.FormatSeconds(r.UserTreeSeconds),
				bench.FormatSeconds(r.RoITreeSTRSeconds),
				paperTable4RoI[p], paperTable4User[p])
		}
		fmt.Println()
	}

	if want("fig3a") {
		fmt.Printf("== Figure 3(a): total runtime of %d top-%d queries (s) ==\n", *fig3aQueries, *k)
		fmt.Printf("%-5s %14s %14s %14s   (paper shape: user-centric < batch < iterative)\n",
			"part", "iterative", "batch", "user-centric")
		var rows []bench.Fig3aRow
		for _, p := range parts {
			r := bench.Fig3a(get(p), *fig3aQueries, *k, *seed)
			rows = append(rows, r)
			fmt.Printf("%-5s %14s %14s %14s\n",
				r.Part, bench.FormatSeconds(r.IterativeSeconds),
				bench.FormatSeconds(r.BatchSeconds),
				bench.FormatSeconds(r.UserCentricSeconds))
		}
		fmt.Println()
		if *parallel {
			fmt.Printf("== Figure 3(a) parallel: serial vs query-engine batch (s) ==\n")
			fmt.Printf("%-5s %22s %22s %22s %10s %10s\n",
				"part", "iterative ser/par", "batch ser/par", "user-centric ser/par", "speedup", "identical")
			var prows []bench.Fig3aParallelRow
			for _, p := range parts {
				r := bench.Fig3aParallel(get(p), *fig3aQueries, *k, *workers, *seed)
				prows = append(prows, r)
				fmt.Printf("%-5s %10s/%10s %10s/%10s %10s/%10s %9.2fx %10v\n",
					r.Part,
					bench.FormatSeconds(r.SerialIterativeSeconds), bench.FormatSeconds(r.ParallelIterativeSeconds),
					bench.FormatSeconds(r.SerialBatchSeconds), bench.FormatSeconds(r.ParallelBatchSeconds),
					bench.FormatSeconds(r.SerialUserCentricSeconds), bench.FormatSeconds(r.ParallelUserCentricSeconds),
					r.SpeedupUserCentric(), r.Identical)
				if !r.Identical {
					log.Fatalf("part %s: parallel results diverged from serial", p)
				}
			}
			fmt.Println()
			emit("fig3a", map[string]interface{}{"serial": rows, "parallel": prows})
		} else {
			emit("fig3a", rows)
		}
	}

	if want("sketch") {
		fmt.Printf("== Sketch filter-and-refine: resolution sweep, %d top-%d queries ==\n", *fig3aQueries, *k)
		var reps []bench.SketchReport
		for _, p := range parts {
			rep := bench.SketchSweep(get(p), []int{16, 32, 64, 128}, *fig3aQueries, *k, *workers, *seed)
			reps = append(reps, rep)
			fmt.Printf("part %s baselines (s): linear %s, user-centric %s, pruned %s\n",
				rep.Part, bench.FormatSeconds(rep.LinearSeconds),
				bench.FormatSeconds(rep.UserCentricSeconds),
				bench.FormatSeconds(rep.PrunedSeconds))
			fmt.Printf("%-6s %12s %12s %12s %12s %12s %10s %10s\n",
				"G", "build (s)", "sketch (s)", "avg cand", "avg scored", "avg refined", "refine%", "identical")
			for _, r := range rep.Rows {
				fmt.Printf("%-6d %12s %12s %12.1f %12.1f %12.1f %9.1f%% %10v\n",
					r.G, bench.FormatSeconds(r.BuildSeconds), bench.FormatSeconds(r.SketchSeconds),
					r.AvgCandidates, r.AvgScored, r.AvgRefined,
					100*r.RefinementRate, r.Identical)
				if !r.Identical {
					log.Fatalf("part %s G=%d: sketch results diverged from linear scan", p, r.G)
				}
			}
			fmt.Println()
		}
		emit("sketch", reps)
	}

	// The ingest benchmark writes temporary WALs and fsyncs per batch,
	// so like the tuning sweep it only runs when requested explicitly.
	if *exp == "ingest" {
		users := int(10000 * *scale)
		samples := int(2000000 * *scale)
		fmt.Printf("== Streaming ingestion: %d users, %d samples, WAL-durable, per fsync policy ==\n",
			users, samples)
		fmt.Printf("%-10s %14s %12s %10s %10s %16s %16s\n",
			"policy", "samples/s", "wall (s)", "users", "RoIs", "query busy (µs)", "query idle (µs)")
		rows, err := bench.IngestBench(users, samples, 200,
			[]wal.SyncPolicy{wal.SyncEveryAppend, wal.SyncInterval, wal.SyncNone}, *seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("%-10s %14.0f %12.2f %10d %10d %16.1f %16.1f\n",
				r.Policy, r.SamplesPerSec, r.IngestWallSeconds, r.Users, r.RoIs,
				r.QueryDuringMicros, r.QueryIdleMicros)
		}
		fmt.Println()
		emit("ingest", rows)
	}

	// The concurrent-throughput benchmark pits N query goroutines
	// against a live ingest stream under each serving discipline
	// (locked baseline, epoch MVCC, epoch MVCC + result cache). Like
	// the ingest benchmark it writes temporary WALs, so it only runs
	// when requested explicitly.
	if *exp == "qps" {
		users := int(4000 * *scale / 0.05)
		samples := int(100000 * *scale / 0.05)
		goroutines := runtime.GOMAXPROCS(0)
		if goroutines > 8 {
			goroutines = 8
		}
		fmt.Printf("== Concurrent serving: %d query goroutines vs live ingest (%d users, %d samples), per discipline ==\n",
			goroutines, users, samples)
		fmt.Printf("%-12s %12s %14s %14s %12s %12s %14s %14s %8s\n",
			"mode", "queries/s", "query µs", "samples/s", "hits", "misses", "hit µs", "miss µs", "epochs")
		rows, err := bench.QPSBench(users, samples, 500, goroutines, *seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("%-12s %12.0f %14.1f %14.0f %12d %12d %14.1f %14.1f %8d\n",
				r.Mode, r.QueriesPerSec, r.QueryMeanMicros, r.SamplesPerSec,
				r.CacheHits, r.CacheMisses, r.HitMeanMicros, r.MissMeanMicros, r.EpochsPublished)
		}
		fmt.Println()
		emit("qps", rows)
	}

	if want("fig3b") {
		fmt.Printf("== Figure 3(b): average-link clustering of %d users into %d clusters (Part A) ==\n",
			*sample, *clusters)
		res, err := bench.Fig3b(get("A"), *sample, *clusters, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("distance matrix %.2fs, clustering %.2fs, persona purity %.3f\n",
			res.MatrixSeconds, res.ClusterSeconds, res.PersonaPurity)
		for c, size := range res.ClusterSizes {
			fmt.Printf("cluster %d: %4d users, %3d characteristic cells\n",
				c+1, size, len(res.Regions[c]))
		}
		fmt.Println("\ncharacteristic-region map (digit = cluster, '.' = shared/unvisited):")
		fmt.Print(res.ASCIIMap)
		fmt.Println()
	}

	// The restart benchmark saves each part's database in both snapshot
	// formats to a temp dir and times cold-start-to-first-query per
	// load path, plus the flat-kernel scan throughput. Disk-heavy, so
	// it only runs when requested explicitly.
	if *exp == "restart" {
		fmt.Println("== Restart: cold-start to first query, per snapshot format / load path ==")
		fmt.Printf("%-5s %8s %10s %10s %12s %12s %12s %9s %12s %12s %12s %12s\n",
			"part", "users", "gob MB", "col MB", "gob (s)", "col-read", "col-mmap", "speedup",
			"join AoS µs", "join cols", "dot AoS µs", "dot flat")
		var rows []bench.RestartRow
		for _, p := range parts {
			r, err := bench.RestartBench(get(p), *workers, *seed)
			if err != nil {
				log.Fatal(err)
			}
			rows = append(rows, r)
			fmt.Printf("%-5s %8d %10.1f %10.1f %12s %12s %12s %8.1fx %12.0f %12.0f %12.0f %12.0f\n",
				r.Part, r.Users, float64(r.GobBytes)/1e6, float64(r.ColumnarBytes)/1e6,
				bench.FormatSeconds(r.GobColdSeconds), bench.FormatSeconds(r.ColReadColdSeconds),
				bench.FormatSeconds(r.ColMmapColdSeconds), r.MmapSpeedupVsGob,
				r.JoinAoSScanMicros, r.JoinColsScanMicros, r.DotAoSScanMicros, r.DotFlatScanMicros)
		}
		fmt.Println()
		emit("restart", rows)
	}

	if *exp == "k-sensitivity" {
		fmt.Printf("== K sensitivity: user-centric search, %d queries (paper: \"time is not affected by K\") ==\n",
			*fig3aQueries)
		fmt.Printf("%-6s %12s\n", "K", "total (s)")
		for _, r := range bench.KSensitivity(get(parts[0]), []int{1, 5, 20, 100}, *fig3aQueries, *seed) {
			fmt.Printf("%-6d %12s\n", r.K, bench.FormatSeconds(r.Seconds))
		}
		fmt.Println()
	}

	if *exp == "scale-sweep" {
		fmt.Printf("== Scale sweep: Fig. 3(a) methods vs dataset size (%s, %d top-%d queries) ==\n",
			parts[0], *fig3aQueries, *k)
		fmt.Printf("%-8s %10s %14s %14s %14s\n",
			"scale", "users", "iterative (s)", "batch (s)", "user-centric")
		rows, err := bench.ScaleSweep(parts[0], []float64{0.01, 0.05, 0.1, 0.2},
			*fig3aQueries, *k, *workers, *seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rows {
			fmt.Printf("%-8.2f %10d %14s %14s %14s\n",
				r.Scale, r.Users, bench.FormatSeconds(r.IterativeSeconds),
				bench.FormatSeconds(r.BatchSeconds), bench.FormatSeconds(r.UserCentricSeconds))
		}
		fmt.Println()
	}

	// The scatter benchmark ring-splits each part across in-process
	// geoserve shards behind the georouter fan-out, over loopback
	// HTTP; it spins servers and verifies every routed answer against
	// LinearScan, so it only runs when requested explicitly.
	if *exp == "scatter" {
		fmt.Printf("== Scatter-gather: router top-%d over N ring-split shards (%d queries, loopback HTTP) ==\n",
			*k, *fig3aQueries)
		fmt.Printf("%-5s %7s %8s %8s %12s %12s %10s %9s\n",
			"part", "shards", "users", "clients", "queries/s", "mean (µs)", "speedup", "verified")
		var rows []bench.ScatterRow
		for _, p := range parts {
			rs, err := bench.ScatterBench(get(p), []int{1, 2, 4}, *fig3aQueries, *k, 0, *seed)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range rs {
				fmt.Printf("%-5s %7d %8d %8d %12.0f %12.1f %9.2fx %9v\n",
					r.Part, r.Shards, r.Users, r.Clients, r.QueriesPerSec, r.MeanMicros,
					r.SpeedupVs1, r.Verified)
			}
			rows = append(rows, rs...)
		}
		fmt.Println()
		emit("scatter", rows)
	}

	// The failover benchmark prices replication: 4 ring-split shards,
	// one killed and restarted by deterministic fault injection, at
	// R=1 vs R=2 — throughput plus answer quality (complete vs partial,
	// every answer verified exact over the corpus it claims to cover).
	// Spins servers per phase, so it only runs when requested.
	if *exp == "failover" {
		fmt.Printf("== Failover: router top-%d over 4 shards, shard-1 killed/restarted, R=1 vs R=2 (%d queries) ==\n",
			*k, *fig3aQueries)
		fmt.Printf("%-5s %3s %-10s %12s %12s %9s %9s %11s %6s\n",
			"part", "R", "phase", "queries/s", "mean (µs)", "complete", "partial", "failed-over", "exact")
		var rows []bench.FailoverRow
		for _, p := range parts {
			rs, err := bench.FailoverBench(get(p), *fig3aQueries, *k, 0, *seed)
			if err != nil {
				log.Fatal(err)
			}
			for _, r := range rs {
				fmt.Printf("%-5s %3d %-10s %12.0f %12.1f %9d %9d %11d %6v\n",
					r.Part, r.Replicas, r.Phase, r.QueriesPerSec, r.MeanMicros,
					r.Complete, r.Partials, r.FailedOver, r.Exact)
			}
			rows = append(rows, rs...)
		}
		fmt.Println()
		emit("failover", rows)
	}

	if *exp == "cluster-methods" {
		fmt.Printf("== Ablation: clustering methods on the Fig. 3(b) task (%d users, k=%d) ==\n",
			*sample, *clusters)
		rows, err := bench.ClusterMethods(get("A"), *sample, *clusters, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %10s %10s %12s\n", "method", "time (s)", "purity", "silhouette")
		for _, r := range rows {
			fmt.Printf("%-15s %10.2f %10.3f %12.3f\n", r.Method, r.Seconds, r.Purity, r.Silhouette)
		}
		fmt.Println()
	}

	if *exp == "grid" {
		fmt.Println("== Ablation: uniform-grid index vs RoI R-tree (iterative top-k) ==")
		fmt.Printf("%-8s %16s %16s %14s\n", "gridN", "R-tree (µs)", "grid (µs)", "replication")
		for _, gn := range []int{16, 32, 64, 128} {
			row, err := bench.GridComparison(get(parts[0]), 200, *k, gn, *seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8d %16.1f %16.1f %14.2f\n",
				row.GridN, row.RTreeMicros, row.GridMicros, row.GridReplication)
		}
		fmt.Println()
	}

	if *exp == "weighted" {
		fmt.Println("== Ablation: duration weights (Sec. 8) vs unit frequencies ==")
		res, err := bench.WeightedComparison(get(parts[0]), 200, *k, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("queries: %d, k=%d\n", res.Queries, res.K)
		fmt.Printf("top-%d Jaccard overlap:  %.3f\n", res.K, res.MeanJaccard)
		fmt.Printf("top-1 agreement:        %.1f%%\n", 100*res.Top1Agreement)
		fmt.Printf("query cost: %.1f µs unweighted vs %.1f µs weighted\n",
			res.UnweightedMicros, res.WeightedMicros)
		fmt.Println()
	}

	// The tuning sweep re-extracts the dataset 16 times, so it only
	// runs when requested explicitly.
	if *exp == "tuning" {
		fmt.Println("== Ablation: extraction-parameter sensitivity (Sec. 7 tuning procedure) ==")
		fmt.Printf("%-8s %-6s %12s %12s %12s %12s %12s\n",
			"eps", "tau", "avg#regions", "x-extent", "y-extent", "covered", "coverage")
		w := get(parts[0])
		epsilons := []float64{0.005, 0.01, 0.02, 0.04}
		taus := []int{10, 30, 60, 120}
		for _, s := range bench.Tuning(w, epsilons, taus) {
			fmt.Printf("%-8.3f %-6d %12.1f %12.5f %12.5f %11.1f%% %11.1f%%\n",
				s.Epsilon, s.Tau, s.AvgRegions, s.AvgXExtent, s.AvgYExtent,
				100*s.CoveredUsers, 100*s.AvgCoverage)
		}
		fmt.Println()
	}

	if want("mbr-sensitivity") {
		fmt.Println("== Ablation: query-MBR size sensitivity (Sec. 7 prose) ==")
		fmt.Printf("%-8s %14s %18s %14s %12s %12s\n",
			"spread", "batch (µs)", "user-centric (µs)", "pruned (µs)", "refined", "relevant")
		rows := bench.MBRSensitivity(get("A"), []float64{0.05, 0.1, 0.2, 0.4, 0.8}, 50, *k, *seed)
		for _, r := range rows {
			fmt.Printf("%-8.2f %14.1f %18.1f %14.1f %12.1f %12.1f\n",
				r.Spread, r.BatchMicros, r.UserCentricMicros, r.PrunedMicros,
				r.CandidatesRefined, r.CandidatesRelevant)
		}
		fmt.Println()
	}
}
