// Command geoextract runs the preprocessing pipeline of the paper on
// a trajectory dataset: Algorithm 1 extracts every user's regions of
// interest, Algorithm 2 precomputes every footprint norm, and the
// resulting FootprintDB is persisted for geoquery/geocluster.
//
// Usage:
//
//	geoextract -i partA.gob -o partA.db
//	geoextract -i partA.csv -format text -eps 0.02 -tau 30 -weight duration -o partA.db
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"geofootprint/internal/core"
	"geofootprint/internal/extract"
	"geofootprint/internal/store"
	"geofootprint/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geoextract: ")

	in := flag.String("i", "", "input dataset path (required)")
	format := flag.String("format", "auto", "input format: auto, gob, binary or text")
	out := flag.String("o", "", "output FootprintDB path (required)")
	eps := flag.Float64("eps", 0.02, "spatial bound ε of Definition 3.2")
	tau := flag.Int("tau", 30, "minimum locations τ of Definition 3.2")
	mode := flag.String("mode", "diameter", "ε-check mode: diameter (exact pairwise) or extent (MBR diagonal)")
	weight := flag.String("weight", "unit", "region weighting: unit or duration")
	workers := flag.Int("workers", 0, "parallel workers (0 = all CPUs)")
	flag.Parse()

	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var ds *traj.Dataset
	var err error
	switch *format {
	case "auto":
		ds, err = traj.LoadAuto(*in)
	case "gob":
		ds, err = traj.LoadGob(*in)
	case "binary":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			ds, err = traj.ReadBinary(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	case "text":
		var f *os.File
		if f, err = os.Open(*in); err == nil {
			ds, err = traj.ReadText(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}

	cfg := extract.Config{Epsilon: *eps, Tau: *tau}
	switch *mode {
	case "diameter":
		cfg.Mode = extract.DiameterL2
	case "extent":
		cfg.Mode = extract.ExtentMBR
	default:
		log.Fatalf("unknown mode %q", *mode)
	}
	w := core.UnitWeight
	switch *weight {
	case "unit":
	case "duration":
		w = core.DurationWeight
	default:
		log.Fatalf("unknown weighting %q", *weight)
	}

	start := time.Now()
	db, err := store.Build(ds, cfg, w, *workers)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := db.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d users, %d regions (%.1f avg), %.2fs (%.0f footprints/s)\n",
		*out, db.Len(), db.NumRegions(),
		float64(db.NumRegions())/float64(max(db.Len(), 1)),
		elapsed.Seconds(), float64(db.Len())/elapsed.Seconds())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
