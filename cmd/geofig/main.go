// Command geofig regenerates the paper's illustrative figures as SVG
// files from synthetic data:
//
//	fig1-trajectory.svg  — a user trajectory with its extracted RoIs
//	                       (Figure 1(a))
//	fig2-footprint.svg   — a footprint and its disjoint-region
//	                       frequencies (Figure 2(a))
//	fig3b-clusters.svg   — characteristic regions of nine clusters
//	                       (Figure 3(b))
//
// Usage:
//
//	geofig -o figures/
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"geofootprint/internal/bench"
	"geofootprint/internal/cluster"
	"geofootprint/internal/core"
	"geofootprint/internal/extract"
	"geofootprint/internal/geom"
	"geofootprint/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geofig: ")

	out := flag.String("o", "figures", "output directory")
	scale := flag.Float64("scale", 0.004, "dataset scale for the clustering figure")
	sample := flag.Int("sample", 600, "users sampled for the clustering figure")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	w, err := bench.NewWorkload("A", *scale, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1(a): pick a session with several RoIs.
	ecfg := bench.ExtractionConfig()
	var bestSession int = -1
	var bestUser int
	bestCount := 0
	for u := range w.Dataset.Users {
		for si, s := range w.Dataset.Users[u].Sessions {
			if n := len(extract.Extract(s, ecfg)); n > bestCount && n <= 6 {
				bestUser, bestSession, bestCount = u, si, n
			}
		}
		if u > 50 {
			break
		}
	}
	if bestSession < 0 {
		log.Fatal("no session with RoIs found")
	}
	session := w.Dataset.Users[bestUser].Sessions[bestSession]
	rois := extract.Extract(session, ecfg)
	rects := make([]geom.Rect, len(rois))
	for i, r := range rois {
		rects[i] = r.Rect
	}
	writeSVG(filepath.Join(*out, "fig1-trajectory.svg"), func(f *os.File) error {
		return viz.TrajectorySVG(f, session, rects, 640, 640)
	})

	// Figure 2(a): a footprint with overlapping regions.
	var fp core.Footprint
	for u := range w.DB.Footprints {
		if hasOverlap(w.DB.Footprints[u]) {
			fp = w.DB.Footprints[u]
			break
		}
	}
	if fp == nil {
		fp = w.DB.Footprints[0]
	}
	writeSVG(filepath.Join(*out, "fig2-footprint.svg"), func(f *os.File) error {
		return viz.FootprintSVG(f, fp, 640, 640)
	})

	// Figure 3(b): characteristic regions of nine clusters.
	rng := rand.New(rand.NewSource(7))
	n := w.DB.Len()
	if *sample > n {
		*sample = n
	}
	idxs := rng.Perm(n)[:*sample]
	m := cluster.DistanceMatrix(w.DB, idxs, 0)
	labels, err := cluster.Agglomerative(m, 9, cluster.AverageLink)
	if err != nil {
		log.Fatal(err)
	}
	regions, err := cluster.CharacteristicRegions(w.DB, idxs, labels, 9,
		cluster.DefaultCharacteristicConfig())
	if err != nil {
		log.Fatal(err)
	}
	writeSVG(filepath.Join(*out, "fig3b-clusters.svg"), func(f *os.File) error {
		return viz.ClustersSVG(f, regions, 800, 800)
	})

	// Bonus: the aggregate dwell-density heatmap of the whole part.
	writeSVG(filepath.Join(*out, "heatmap.svg"), func(f *os.File) error {
		return viz.HeatmapSVG(f, w.DB.Footprints, 64, 800, 800)
	})
}

func hasOverlap(f core.Footprint) bool {
	for i := range f {
		for j := i + 1; j < len(f); j++ {
			if f[i].Rect.IntersectionArea(f[j].Rect) > 0 {
				return true
			}
		}
	}
	return false
}

func writeSVG(path string, render func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := render(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
