package main

import (
	"net/http"
	"testing"
	"time"
)

// Every listener timeout must be non-zero — in particular
// ReadHeaderTimeout (slow-loris) and IdleTimeout (keep-alive leak),
// which the server historically left unset.
func TestHTTPServerDefaultsAllTimeoutsSet(t *testing.T) {
	s := newHTTPServer(httpOptions{addr: ":0"}, http.NewServeMux())
	if s.ReadTimeout <= 0 {
		t.Error("ReadTimeout unset")
	}
	if s.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset")
	}
	if s.WriteTimeout <= 0 {
		t.Error("WriteTimeout unset")
	}
	if s.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset")
	}
	if s.Addr != ":0" {
		t.Errorf("Addr = %q", s.Addr)
	}
}

// Explicit values pass through unclamped.
func TestHTTPServerExplicitTimeouts(t *testing.T) {
	s := newHTTPServer(httpOptions{
		addr:              ":0",
		readTimeout:       time.Second,
		readHeaderTimeout: 2 * time.Second,
		writeTimeout:      3 * time.Second,
		idleTimeout:       4 * time.Second,
	}, nil)
	if s.ReadTimeout != time.Second || s.ReadHeaderTimeout != 2*time.Second ||
		s.WriteTimeout != 3*time.Second || s.IdleTimeout != 4*time.Second {
		t.Errorf("timeouts not passed through: %+v", s)
	}
}
