// Command geoserve exposes a FootprintDB over HTTP/JSON — the
// integration point for recommender systems and market-analysis
// dashboards.
//
// Usage:
//
//	geoserve -db partA.db -addr :8080
//
// Endpoints: see internal/server. Quick check:
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/users/42/similar?k=5&exclude_self=true
package main

import (
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"geofootprint/internal/server"
	"geofootprint/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geoserve: ")

	dbPath := flag.String("db", "", "FootprintDB path (required)")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	if *dbPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	db, err := store.Load(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	srv := server.New(db)
	log.Printf("loaded %d users (%d regions) in %.2fs; listening on %s",
		db.Len(), db.NumRegions(), time.Since(start).Seconds(), *addr)

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	log.Fatal(httpSrv.ListenAndServe())
}
