// Command geoserve exposes a FootprintDB over HTTP/JSON — the
// integration point for recommender systems and market-analysis
// dashboards.
//
// Two modes, by data source:
//
//	geoserve -db partA.db -addr :8080
//
// serves a static corpus built offline (geobuild). Alternatively,
//
//	geoserve -wal ingest.wal -snapshot ingest.snap -addr :8080
//
// serves a live corpus fed through POST /v1/ingest: on startup the
// durable state is recovered (snapshot + WAL tail replay), and every
// acknowledged sample batch survives a crash. The WAL fsync policy is
// -sync (batch|interval|none); -snapshot-every bounds replay work by
// checkpointing after that many WAL records. On SIGINT/SIGTERM the
// server drains in-flight requests, then checkpoints and closes the
// pipeline, so the next start replays nothing.
//
// Serving is epoch-based MVCC (see internal/server): queries pin an
// immutable snapshot and run lock-free; every mutation publishes the
// next epoch. -cache-size enables the epoch-keyed result cache, and
// -stats-interval logs the epoch/cache counters that /healthz and
// /v1/ingest/stats expose.
//
// As a cluster shard behind georouter, /v1/query additionally accepts
// a segment restriction (the replica tuple whose users this sub-query
// covers — see internal/server segment.go), and /healthz reports
// ingest_seq, the last applied WAL LSN, which the router compares
// against its acked high-water mark to detect replicas that restarted
// onto an older snapshot.
//
// Endpoints: see internal/server. Quick check:
//
//	curl localhost:8080/healthz
//	curl localhost:8080/v1/users/42/similar?k=5&exclude_self=true
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"geofootprint/internal/extract"
	"geofootprint/internal/ingest"
	"geofootprint/internal/server"
	"geofootprint/internal/store"
	"geofootprint/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geoserve: ")

	dbPath := flag.String("db", "", "static FootprintDB path (exclusive with -wal)")
	addr := flag.String("addr", ":8080", "listen address")

	walPath := flag.String("wal", "", "write-ahead log path; enables streaming ingestion")
	snapPath := flag.String("snapshot", "", "snapshot path (default: <wal>.snap)")
	syncMode := flag.String("sync", "batch", "WAL fsync policy: batch|interval|none")
	syncEvery := flag.Duration("sync-interval", 50*time.Millisecond, "fsync period under -sync interval")
	snapEvery := flag.Int("snapshot-every", 4096, "checkpoint after this many WAL records (0: only on shutdown)")
	gap := flag.Float64("session-gap", 60, "seconds of silence that end a user's session")
	eps := flag.Float64("eps", 0.02, "RoI extraction ε (spatial closeness)")
	tau := flag.Int("tau", 30, "RoI extraction τ (minimum dwell samples)")

	shardID := flag.String("shard-id", "", "this instance's id in a georouter shard map; reported by /healthz for routing cross-checks (empty: single-node)")
	cacheSize := flag.Int("cache-size", 0, "epoch-keyed result cache capacity in entries (0: cache disabled)")
	statsEvery := flag.Duration("stats-interval", 0, "log epoch/cache serving stats at this period (0: only on shutdown)")
	allowCorrupt := flag.Bool("allow-corrupt-snapshot", false, "serve despite a corrupt snapshot file: static mode refuses, streaming mode rebuilds from the WAL alone; /healthz reports degraded")
	maxInflight := flag.Int("max-inflight-queries", 0, "cap on concurrent top-k queries; excess get 429 (0: unlimited)")
	queryTimeout := flag.Duration("query-timeout", 0, "default per-request query deadline when the client sends no ?timeout_ms= (0: none)")
	maxQueryTimeout := flag.Duration("max-query-timeout", server.DefaultMaxTimeout, "hard cap on any query deadline, including client-requested ones")
	readTimeout := flag.Duration("read-timeout", defaultReadTimeout, "max duration for reading an entire request")
	readHeaderTimeout := flag.Duration("read-header-timeout", defaultReadHeaderTimeout, "max duration for reading request headers (slow-loris guard)")
	writeTimeout := flag.Duration("write-timeout", defaultWriteTimeout, "max duration for writing a response")
	idleTimeout := flag.Duration("idle-timeout", defaultIdleTimeout, "how long an idle keep-alive connection is kept")
	flag.Parse()

	srvOpts := server.Options{
		MaxInflightQueries: *maxInflight,
		DefaultTimeout:     *queryTimeout,
		MaxTimeout:         *maxQueryTimeout,
		CacheSize:          *cacheSize,
		ShardID:            *shardID,
	}

	if (*dbPath == "") == (*walPath == "") {
		log.Print("need exactly one data source: -db (static) or -wal (streaming)")
		flag.Usage()
		os.Exit(2)
	}

	start := time.Now()
	var (
		db   *store.FootprintDB
		pipe *ingest.Pipeline
	)
	var snapErr error
	if *dbPath != "" {
		var err error
		if db, err = store.Load(*dbPath); err != nil {
			if errors.Is(err, store.ErrCorruptSnapshot) {
				// A static corpus has no WAL to rebuild from, so
				// -allow-corrupt-snapshot cannot help here; name the
				// remedy instead of dying with a generic load error.
				log.Fatalf("%v\nthe database file is damaged; rebuild it with geobuild or restore from a backup (geomigrate verify diagnoses the file)", err)
			}
			log.Fatal(err)
		}
	}

	var srv *server.Server
	if *walPath != "" {
		if *snapPath == "" {
			*snapPath = *walPath + ".snap"
		}
		policy, err := wal.ParsePolicy(*syncMode)
		if err != nil {
			log.Fatal(err)
		}
		cfg := ingest.Config{
			WALPath:              *walPath,
			SnapshotPath:         *snapPath,
			Extract:              extract.Config{Epsilon: *eps, Tau: *tau},
			SessionGap:           *gap,
			Sync:                 policy,
			SyncInterval:         *syncEvery,
			SnapshotEvery:        *snapEvery,
			AllowCorruptSnapshot: *allowCorrupt,
		}
		rec, err := ingest.Recover(cfg)
		if err != nil {
			if errors.Is(err, store.ErrCorruptSnapshot) {
				log.Fatalf("%v\nthe snapshot file is damaged; restore it from a backup, or pass -allow-corrupt-snapshot to rebuild from the WAL alone (records checkpointed before the damage are lost)", err)
			}
			log.Fatal(err)
		}
		if rec.Damaged {
			log.Printf("WAL tail was torn or corrupt; recovered the intact prefix (%d records)", rec.Replayed)
		}
		if rec.SnapshotErr != nil {
			snapErr = rec.SnapshotErr
			log.Printf("snapshot corrupt, serving WAL-only state (-allow-corrupt-snapshot): %v", snapErr)
		}
		log.Printf("recovered %d users from snapshot + %d WAL records", rec.DB.Len(), rec.Replayed)
		db = rec.DB
		srv = server.NewWithOptions(db, srvOpts)
		if pipe, err = srv.AttachPipeline(cfg, rec.State); err != nil {
			log.Fatal(err)
		}
	} else {
		srv = server.NewWithOptions(db, srvOpts)
	}
	if snapErr != nil {
		srv.SetSnapshotError(snapErr)
	}
	log.Printf("loaded %d users (%d regions) in %.2fs; listening on %s",
		db.Len(), db.NumRegions(), time.Since(start).Seconds(), *addr)
	if *cacheSize > 0 {
		log.Printf("result cache enabled: %d entries, keyed by (epoch, method, query, k)", *cacheSize)
	}
	if *statsEvery > 0 {
		go func() {
			t := time.NewTicker(*statsEvery)
			defer t.Stop()
			for range t.C {
				logServingStats(srv)
			}
		}()
	}

	httpSrv := newHTTPServer(httpOptions{
		addr:              *addr,
		readTimeout:       *readTimeout,
		readHeaderTimeout: *readHeaderTimeout,
		writeTimeout:      *writeTimeout,
		idleTimeout:       *idleTimeout,
	}, srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%s: shutting down", s)
	}
	// Shed new arrivals first — the drain gate turns them into 503 +
	// Retry-After so load balancers fail over during the grace period —
	// then drain in-flight requests (ingest acks must not be dropped),
	// then checkpoint and close the pipeline.
	srv.SetDraining(true)
	logServingStats(srv)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if pipe != nil {
		if err := pipe.Close(); err != nil {
			log.Fatalf("pipeline close: %v", err)
		}
		log.Print("checkpointed; WAL empty")
	}
}

// logServingStats reports the epoch lifecycle counters and, when the
// result cache is on, its hit/miss/evict accounting — the same numbers
// /healthz and /v1/ingest/stats expose over HTTP.
func logServingStats(srv *server.Server) {
	es := srv.EpochStats()
	log.Printf("epoch: seq=%d published=%d reclaimed=%d live=%d pinned=%d",
		es.Seq, es.Published, es.Reclaimed, es.Live, es.Pins)
	if cs, ok := srv.CacheStats(); ok {
		log.Printf("cache: hits=%d misses=%d evictions=%d purged=%d entries=%d/%d",
			cs.Hits, cs.Misses, cs.Evictions, cs.Purged, cs.Entries, cs.Cap)
	}
}
