package main

import (
	"net/http"
	"time"
)

// httpOptions collects the listener-level timeout knobs. Zero values
// select the defaults below — every timeout is always set, because an
// http.Server with a zero ReadHeaderTimeout or IdleTimeout holds a
// slow-loris or idle keep-alive connection forever, and enough of
// those starve the accept loop.
type httpOptions struct {
	addr              string
	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
}

const (
	defaultReadTimeout = 10 * time.Second
	// defaultReadHeaderTimeout bounds how long a connection may dribble
	// request headers — the slow-loris window.
	defaultReadHeaderTimeout = 5 * time.Second
	defaultWriteTimeout      = 30 * time.Second
	// defaultIdleTimeout reclaims keep-alive connections that stopped
	// sending requests.
	defaultIdleTimeout = 120 * time.Second
)

// newHTTPServer builds the http.Server geoserve runs, with every
// timeout populated (falling back to the defaults above for zero
// fields).
func newHTTPServer(opts httpOptions, h http.Handler) *http.Server {
	if opts.readTimeout <= 0 {
		opts.readTimeout = defaultReadTimeout
	}
	if opts.readHeaderTimeout <= 0 {
		opts.readHeaderTimeout = defaultReadHeaderTimeout
	}
	if opts.writeTimeout <= 0 {
		opts.writeTimeout = defaultWriteTimeout
	}
	if opts.idleTimeout <= 0 {
		opts.idleTimeout = defaultIdleTimeout
	}
	return &http.Server{
		Addr:              opts.addr,
		Handler:           h,
		ReadTimeout:       opts.readTimeout,
		ReadHeaderTimeout: opts.readHeaderTimeout,
		WriteTimeout:      opts.writeTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
}
