// Command geogen generates a synthetic indoor-mobility dataset (the
// ATC-substitute of the evaluation) and writes it to disk in gob or
// text format.
//
// Usage:
//
//	geogen -part A -scale 0.05 -o partA.gob
//	geogen -part D -scale 0.01 -format text -o partD.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"geofootprint/internal/synth"
	"geofootprint/internal/traj"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geogen: ")

	part := flag.String("part", "A", "evaluation part to generate: A, B, C or D")
	scale := flag.Float64("scale", 0.05, "fraction of the paper's user count (1.0 = full size)")
	out := flag.String("o", "", "output path (required)")
	format := flag.String("format", "gob", "output format: gob, binary or text")
	seed := flag.Int64("seed", 0, "override the part's default random seed (0 = keep default)")
	users := flag.Int("users", 0, "override the user count directly (0 = derive from scale)")
	stats := flag.Bool("stats", false, "print dataset statistics after generation")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := synth.PartConfig(*part, *scale)
	if err != nil {
		log.Fatal(err)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *users > 0 {
		cfg.Users = *users
	}

	ds, _, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	switch *format {
	case "gob":
		err = traj.SaveGob(*out, ds)
	case "binary":
		var f *os.File
		f, err = os.Create(*out)
		if err == nil {
			err = traj.WriteBinary(f, ds)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	case "text":
		var f *os.File
		f, err = os.Create(*out)
		if err == nil {
			err = traj.WriteText(f, ds)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
	default:
		log.Fatalf("unknown format %q (want gob or text)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d users, %d sessions, %d locations\n",
		*out, len(ds.Users), ds.NumSessions(), ds.NumLocations())
	if *stats {
		fmt.Println(traj.Stats(ds))
	}
}
