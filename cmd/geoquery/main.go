// Command geoquery answers top-k footprint-similarity queries against
// a FootprintDB produced by geoextract, using any of the Section 6
// search methods.
//
// Usage:
//
//	geoquery -db partA.db -user 42 -k 5
//	geoquery -db partA.db -user 42 -k 10 -method batch -exclude-self
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("geoquery: ")

	dbPath := flag.String("db", "", "FootprintDB path (required)")
	user := flag.Int("user", -1, "query user ID (or use -adhoc)")
	adhoc := flag.String("adhoc", "",
		"ad-hoc query footprint: semicolon-separated rectangles 'x1,y1,x2,y2[,weight]'")
	k := flag.Int("k", 5, "number of results")
	method := flag.String("method", "user-centric",
		"search method: linear, iterative, batch, user-centric or sketch")
	excludeSelf := flag.Bool("exclude-self", false, "omit the query user from the results")
	explain := flag.Bool("explain", false,
		"show the top contributing region pairs for every result")
	flag.Parse()

	if *dbPath == "" || (*user < 0 && *adhoc == "") {
		flag.Usage()
		os.Exit(2)
	}
	db, err := store.Load(*dbPath)
	if err != nil {
		log.Fatal(err)
	}
	var q core.Footprint
	label := ""
	if *adhoc != "" {
		if q, err = parseAdhoc(*adhoc); err != nil {
			log.Fatal(err)
		}
		label = "ad-hoc footprint"
	} else {
		qi, ok := db.IndexOf(*user)
		if !ok {
			log.Fatalf("user %d not in %s", *user, *dbPath)
		}
		q = db.Footprints[qi]
		if len(q) == 0 {
			log.Fatalf("user %d has an empty footprint", *user)
		}
		label = fmt.Sprintf("user %d (norm %.6f)", *user, db.Norms[qi])
	}
	if err := q.Validate(); err != nil {
		log.Fatal(err)
	}

	want := *k
	if *excludeSelf {
		want++
	}

	var topK func(core.Footprint, int) []search.Result
	buildStart := time.Now()
	switch *method {
	case "linear":
		topK = search.NewLinearScan(db).TopK
	case "iterative":
		topK = search.NewRoIIndex(db, search.BuildSTR, 0).TopKIterative
	case "batch":
		topK = search.NewRoIIndex(db, search.BuildSTR, 0).TopKBatch
	case "user-centric":
		topK = search.NewUserCentricIndex(db, search.BuildSTR, 0).TopK
	case "sketch":
		// Reuse sketches persisted in the database; build them here
		// (counted as index time) when the file predates the layer.
		if !db.SketchesEnabled() {
			db.EnableSketches(0, 0)
		}
		topK = search.NewUserCentricIndex(db, search.BuildSTR, 0).TopKSketch
	default:
		log.Fatalf("unknown method %q", *method)
	}
	buildTime := time.Since(buildStart)

	queryStart := time.Now()
	res := topK(q, want)
	queryTime := time.Since(queryStart)

	if *excludeSelf {
		filtered := res[:0]
		for _, r := range res {
			if r.ID != *user {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) > *k {
			filtered = filtered[:*k]
		}
		res = filtered
	}

	fmt.Printf("query %s, %d RoIs — method %s, index %.1fms, query %.3fms\n",
		label, len(q), *method,
		buildTime.Seconds()*1e3, queryTime.Seconds()*1e3)
	qnorm := core.Norm(q)
	for i, r := range res {
		fmt.Printf("%2d. user %-8d similarity %.6f\n", i+1, r.ID, r.Score)
		if !*explain {
			continue
		}
		ui, _ := db.IndexOf(r.ID)
		ex := search.Explain(db.Footprints[ui], q, db.Norms[ui], qnorm, 3)
		for _, c := range ex.Contributions {
			fmt.Printf("      %.0f%% from overlap %v (area %.6f)\n",
				100*c.Share, c.Overlap, c.Overlap.Area())
		}
	}
	if len(res) == 0 {
		fmt.Println("no users with overlapping footprints")
	}
}

// parseAdhoc builds a footprint from "x1,y1,x2,y2[,w];..." syntax.
func parseAdhoc(s string) (core.Footprint, error) {
	var f core.Footprint
	for i, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ",")
		if len(fields) != 4 && len(fields) != 5 {
			return nil, fmt.Errorf("rect %d: want 4 or 5 comma-separated numbers, got %d", i, len(fields))
		}
		var vals [5]float64
		vals[4] = 1
		for j, fs := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(fs), 64)
			if err != nil {
				return nil, fmt.Errorf("rect %d field %d: %v", i, j, err)
			}
			vals[j] = v
		}
		f = append(f, core.Region{
			Rect:   geom.Rect{MinX: vals[0], MinY: vals[1], MaxX: vals[2], MaxY: vals[3]},
			Weight: vals[4],
		})
	}
	if len(f) == 0 {
		return nil, fmt.Errorf("adhoc query contains no rectangles")
	}
	core.SortByMinX(f)
	return f, nil
}
