// Command georouter is the coordinator of the distributed serving
// plane: it fronts N geoserve shards (each holding a user-disjoint
// slice of the corpus, assigned by internal/hashring) and exposes the
// same ingest/query surface as a single node.
//
//	georouter -map cluster.json -addr :9090
//
// The shard map is a static JSON file:
//
//	{"version":1,"replicas":128,"shards":[
//	  {"id":"shard-0","addr":"http://10.0.0.1:8080"},
//	  {"id":"shard-1","addr":"http://10.0.0.2:8080"}]}
//
// Endpoints:
//
//	GET  /healthz    aggregate cluster health + per-shard states
//	POST /v1/topk    {"regions":[...],"k":10,"method":"..."} — scatter-
//	                 gather; response carries results, partial, missing
//	POST /v1/ingest  NDJSON samples, routed to owners by user ID; 202
//	                 means every owning shard's WAL has its slice
//
// The router polls each shard's /healthz on -health-interval (with
// decorrelated jitter, so a fleet of routers never probes in phase)
// and degrades explicitly: sealed, draining, unreachable, stale or
// misconfigured shards are skipped and every affected query answers
// partial:true with the missing ring-segment IDs — never silently
// wrong. Shard requests get a per-attempt deadline (-shard-timeout),
// bounded retries with Retry-After-aware backoff (-retries,
// -retry-base, -retry-cap), a per-shard admission gate
// (-max-inflight-per-shard), and a per-shard circuit breaker
// (-breaker-window, -breaker-threshold, -breaker-min-samples,
// -breaker-open-for; -no-breaker disables).
//
// With -replicas R > 1 every user lives on R consecutive ring shards:
// ingest replicates each sub-batch to all R owners (durable once ONE
// acks; replicas that missed a batch are marked stale, excluded from
// reads, and healed by background hint redelivery bounded by
// -max-hint-bytes), and top-k fans each ring segment to its first
// in-sync replica, failing over down the replica set on error,
// timeout, staleness, or an open breaker — so any single shard can
// die without partial answers.
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"geofootprint/internal/breaker"
	"geofootprint/internal/hashring"
	"geofootprint/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("georouter: ")

	mapPath := flag.String("map", "", "shard map JSON file (required)")
	addr := flag.String("addr", ":9090", "listen address")
	healthEvery := flag.Duration("health-interval", 2*time.Second, "shard /healthz polling period")
	shardTimeout := flag.Duration("shard-timeout", 2*time.Second, "per-attempt deadline for one shard request")
	retries := flag.Int("retries", 3, "max attempts per shard request (1: no retries)")
	retryBase := flag.Duration("retry-base", 25*time.Millisecond, "backoff base between shard retries")
	retryCap := flag.Duration("retry-cap", time.Second, "backoff cap between shard retries")
	maxInflight := flag.Int("max-inflight-per-shard", 64, "admission gate: concurrent in-flight requests per shard (0: unlimited)")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "deadline for one whole /v1/topk fan-out (0: none)")
	replicas := flag.Int("replicas", 1, "replication factor: ring shards holding each user (clamped to shard count)")
	maxHintBytes := flag.Int("max-hint-bytes", 1<<20, "per-replica budget for queued missed-ingest batches (0: default, negative: disable hinting)")
	noBreaker := flag.Bool("no-breaker", false, "disable per-shard circuit breakers")
	brkWindow := flag.Int("breaker-window", 16, "circuit breaker: sliding outcome window length")
	brkThreshold := flag.Float64("breaker-threshold", 0.5, "circuit breaker: failure fraction over the window that trips it")
	brkMinSamples := flag.Int("breaker-min-samples", 4, "circuit breaker: outcomes required before the threshold is consulted")
	brkOpenFor := flag.Duration("breaker-open-for", 2*time.Second, "circuit breaker: open period before the half-open probe")
	readTimeout := flag.Duration("read-timeout", defaultReadTimeout, "max duration for reading an entire request")
	readHeaderTimeout := flag.Duration("read-header-timeout", defaultReadHeaderTimeout, "max duration for reading request headers")
	writeTimeout := flag.Duration("write-timeout", defaultWriteTimeout, "max duration for writing a response")
	idleTimeout := flag.Duration("idle-timeout", defaultIdleTimeout, "how long an idle keep-alive connection is kept")
	flag.Parse()

	if *mapPath == "" {
		log.Print("need -map: a shard map JSON file")
		flag.Usage()
		os.Exit(2)
	}
	m, err := hashring.LoadMap(*mapPath)
	if err != nil {
		log.Fatal(err)
	}
	gate := *maxInflight
	if gate == 0 {
		gate = -1 // flag 0 means unlimited; Config 0 means default
	}
	r, err := router.New(router.Config{
		Map:                 m,
		RequestTimeout:      *shardTimeout,
		MaxAttempts:         *retries,
		RetryBase:           *retryBase,
		RetryCap:            *retryCap,
		MaxInflightPerShard: gate,
		HealthInterval:      *healthEvery,
		Replicas:            *replicas,
		MaxHintBytes:        *maxHintBytes,
		DisableBreaker:      *noBreaker,
		Breaker: breaker.Config{
			Window:     *brkWindow,
			Threshold:  *brkThreshold,
			MinSamples: *brkMinSamples,
			OpenFor:    *brkOpenFor,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer r.Close()
	for _, h := range r.Shards() {
		log.Printf("shard %s at %s: %s (epoch %d, %d users)", h.ID, h.Addr, h.State, h.Epoch, h.Users)
	}
	log.Printf("routing %d shards (replication factor %d); listening on %s", len(r.Shards()), *replicas, *addr)

	c := &coordinator{r: r, queryTimeout: *queryTimeout, logger: log.Default()}
	httpSrv := newHTTPServer(httpOptions{
		addr:              *addr,
		readTimeout:       *readTimeout,
		readHeaderTimeout: *readHeaderTimeout,
		writeTimeout:      *writeTimeout,
		idleTimeout:       *idleTimeout,
	}, c.handler())
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%s: shutting down", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
}
