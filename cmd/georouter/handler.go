package main

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"time"

	"geofootprint/internal/ingest"
	"geofootprint/internal/router"
)

// maxIngestSamples mirrors the shard-side bound on one POST
// /v1/ingest body — the coordinator enforces the same contract, so a
// batch the router accepts is a batch every owning shard accepts.
const maxIngestSamples = 10000

// coordinator is the georouter HTTP layer over a router.Router.
type coordinator struct {
	r *router.Router
	// queryTimeout bounds one whole /v1/topk fan-out (all legs,
	// including retries). 0: no coordinator-imposed deadline.
	queryTimeout time.Duration
	logger       *log.Logger
}

func (c *coordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("POST /v1/topk", c.handleTopK)
	mux.HandleFunc("POST /v1/ingest", c.handleIngest)
	return mux
}

// handleHealth aggregates the cluster view: "ok" only when every
// shard is serving, "degraded" otherwise — with the per-shard states
// inline so an operator sees which shard and why in one curl.
func (c *coordinator) handleHealth(w http.ResponseWriter, req *http.Request) {
	shards := c.r.Shards()
	status := "ok"
	for _, h := range shards {
		// Stale replicas and open breakers degrade the cluster view even
		// though reads route around them: an operator should see a shard
		// being carried by its siblings before the siblings die too.
		if (h.State != router.StateOK && h.State != router.StateUnknown) ||
			h.Stale || h.Breaker == "open" {
			status = "degraded"
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": status,
		"shards": shards,
	})
}

// topkEnvelope is the coordinator's /v1/topk response. Unlike the
// shard endpoint (a bare result list), the router's answer carries
// the partial-result contract: partial:true plus the missing shard
// IDs whenever any shard was skipped or failed.
type topkEnvelope struct {
	Results []resultJSON      `json:"results"`
	Partial bool              `json:"partial"`
	Missing []string          `json:"missing,omitempty"`
	Queried int               `json:"queried"`
	Epochs  map[string]uint64 `json:"epochs,omitempty"`
	// FailedOver counts fan-out legs rescued by a later replica —
	// nonzero means replication is actively papering over a failure.
	FailedOver int `json:"failed_over,omitempty"`
}

// resultJSON matches the shard's per-result wire form, so a client
// can move between a single node and the cluster without re-parsing.
type resultJSON struct {
	ID         int     `json:"id"`
	Similarity float64 `json:"similarity"`
}

func (c *coordinator) handleTopK(w http.ResponseWriter, req *http.Request) {
	var q router.Query
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	if err := dec.Decode(&q); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx := req.Context()
	if c.queryTimeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, c.queryTimeout)
		defer cancel()
	}
	res, err := c.r.TopK(ctx, q)
	if err != nil {
		switch {
		case errors.Is(err, router.ErrBadQuery):
			http.Error(w, err.Error(), http.StatusBadRequest)
		case errors.Is(err, router.ErrUnavailable):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	env := topkEnvelope{
		Results:    make([]resultJSON, len(res.Results)),
		Partial:    res.Partial,
		Missing:    res.Missing,
		Queried:    res.Queried,
		Epochs:     res.Epochs,
		FailedOver: res.FailedOver,
	}
	for i, r := range res.Results {
		env.Results[i] = resultJSON{ID: r.ID, Similarity: r.Score}
	}
	writeJSON(w, http.StatusOK, env)
}

// handleIngest accepts the same NDJSON batch format as a shard and
// routes each sample to its owner. 202 keeps shard semantics: every
// owning shard's WAL holds its slice of the batch. A failed leg is a
// 503 naming both failed and acked shards — the client must not
// blindly retry the whole batch (the acked slices are durable and
// would double-ingest), and the Retry-After hint from the most loaded
// owner is propagated.
func (c *coordinator) handleIngest(w http.ResponseWriter, req *http.Request) {
	samples, err := ingest.ParseNDJSON(req.Body, maxIngestSamples)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := c.r.RouteIngest(req.Context(), samples)
	if err != nil {
		var ierr *router.IngestError
		if errors.As(err, &ierr) {
			if ra := ierr.RetryAfter(); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
				"error": ierr.Error(),
				"acked": ierr.Acked,
			})
			return
		}
		if errors.Is(err, router.ErrBadQuery) {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusAccepted, res)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to do but log.
		log.Printf("georouter: encoding response: %v", err)
	}
}
