package main

import (
	"net/http"
	"time"
)

// httpOptions collects the listener-level timeout knobs; same shape
// and rationale as geoserve's — an http.Server with a zero
// ReadHeaderTimeout or IdleTimeout holds slow-loris and idle
// keep-alive connections forever.
type httpOptions struct {
	addr              string
	readTimeout       time.Duration
	readHeaderTimeout time.Duration
	writeTimeout      time.Duration
	idleTimeout       time.Duration
}

const (
	defaultReadTimeout       = 10 * time.Second
	defaultReadHeaderTimeout = 5 * time.Second
	// defaultWriteTimeout must cover a full scatter-gather fan-out
	// including shard retries, so it sits above the default
	// -query-timeout rather than above a single shard's deadline.
	defaultWriteTimeout = 30 * time.Second
	defaultIdleTimeout  = 120 * time.Second
)

// newHTTPServer builds the coordinator's http.Server with every
// timeout populated (zero fields fall back to the defaults above).
func newHTTPServer(opts httpOptions, h http.Handler) *http.Server {
	if opts.readTimeout <= 0 {
		opts.readTimeout = defaultReadTimeout
	}
	if opts.readHeaderTimeout <= 0 {
		opts.readHeaderTimeout = defaultReadHeaderTimeout
	}
	if opts.writeTimeout <= 0 {
		opts.writeTimeout = defaultWriteTimeout
	}
	if opts.idleTimeout <= 0 {
		opts.idleTimeout = defaultIdleTimeout
	}
	return &http.Server{
		Addr:              opts.addr,
		Handler:           h,
		ReadTimeout:       opts.readTimeout,
		ReadHeaderTimeout: opts.readHeaderTimeout,
		WriteTimeout:      opts.writeTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
}
