package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"geofootprint/internal/hashring"
	"geofootprint/internal/router"
)

// fakeCluster runs n fake shards and a coordinator over them; the
// shards answer /v1/query with one result carrying their index and
// /v1/ingest with a 202 ack (unless failing[i]).
func fakeCluster(t *testing.T, n int, failing map[int]bool) (*coordinator, []*httptest.Server) {
	t.Helper()
	m := &hashring.Map{Version: hashring.MapVersion}
	var srvs []*httptest.Server
	for i := 0; i < n; i++ {
		i := i
		id := fmt.Sprintf("shard-%d", i)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(map[string]interface{}{
				"status": "ok", "shard_id": id, "epoch_seq": 5, "users": 100,
			})
		})
		mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `[{"id":%d,"similarity":%g}]`, i, 1.0/float64(i+1))
		})
		mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
			if failing[i] {
				w.Header().Set("Retry-After", "3")
				http.Error(w, "sealed", http.StatusServiceUnavailable)
				return
			}
			body, _ := io.ReadAll(r.Body)
			nl := strings.Count(string(body), "\n")
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]interface{}{"lsn": 7, "samples": nl})
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		srvs = append(srvs, srv)
		m.Shards = append(m.Shards, hashring.Shard{ID: id, Addr: srv.URL})
	}
	r, err := router.New(router.Config{
		Map:            m,
		HealthInterval: -1,
		MaxAttempts:    1,
		Logger:         log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	r.CheckHealth(t.Context())
	return &coordinator{r: r, logger: log.New(io.Discard, "", 0)}, srvs
}

func doReq(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var obj map[string]interface{}
	if rec.Body.Len() > 0 && strings.HasPrefix(strings.TrimSpace(rec.Body.String()), "{") {
		if err := json.Unmarshal(rec.Body.Bytes(), &obj); err != nil {
			t.Fatalf("%s %s: bad JSON body %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec, obj
}

func TestCoordinatorHealthAggregates(t *testing.T) {
	c, srvs := fakeCluster(t, 3, nil)
	h := c.handler()
	rec, obj := doReq(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK || obj["status"] != "ok" {
		t.Fatalf("healthy cluster: %d %v", rec.Code, obj)
	}
	if len(obj["shards"].([]interface{})) != 3 {
		t.Fatalf("want 3 shard entries: %v", obj["shards"])
	}

	srvs[2].Close()
	c.r.CheckHealth(t.Context())
	rec, obj = doReq(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK || obj["status"] != "degraded" {
		t.Fatalf("cluster with a dead shard: %d %v", rec.Code, obj)
	}
}

func TestCoordinatorTopKEnvelope(t *testing.T) {
	c, srvs := fakeCluster(t, 3, nil)
	h := c.handler()
	q := `{"regions":[{"rect":[0.1,0.1,0.5,0.5],"weight":1}],"k":10}`

	rec, obj := doReq(t, h, "POST", "/v1/topk", q)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if obj["partial"] != false || obj["queried"].(float64) != 3 {
		t.Fatalf("full answer flagged partial: %v", obj)
	}
	results := obj["results"].([]interface{})
	if len(results) != 3 {
		t.Fatalf("want 3 merged results: %v", results)
	}
	// Merge order: score desc — shard-0 scored 1.0, then 0.5, 0.33…
	if first := results[0].(map[string]interface{}); first["id"].(float64) != 0 || first["similarity"].(float64) != 1.0 {
		t.Fatalf("merge order broken: %v", results)
	}

	// Validation errors are the client's fault, not the cluster's.
	if rec, _ := doReq(t, h, "POST", "/v1/topk", `{"regions":[{"rect":[0,0,1,1],"weight":1}],"k":0}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("k=0: status %d, want 400", rec.Code)
	}
	if rec, _ := doReq(t, h, "POST", "/v1/topk", `not json`); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", rec.Code)
	}

	// One dead shard: still 200, but the contract says so.
	srvs[1].Close()
	c.r.CheckHealth(t.Context())
	rec, obj = doReq(t, h, "POST", "/v1/topk", q)
	if rec.Code != http.StatusOK {
		t.Fatalf("partial answer status %d", rec.Code)
	}
	missing := obj["missing"].([]interface{})
	if obj["partial"] != true || len(missing) != 1 || missing[0] != "shard-1" {
		t.Fatalf("partial contract broken: %v", obj)
	}

	// Whole cluster dead: explicit unavailability, not an empty list.
	srvs[0].Close()
	srvs[2].Close()
	c.r.CheckHealth(t.Context())
	if rec, _ := doReq(t, h, "POST", "/v1/topk", q); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead cluster: status %d, want 503", rec.Code)
	}
}

func TestCoordinatorIngestRoutes(t *testing.T) {
	c, _ := fakeCluster(t, 2, nil)
	h := c.handler()
	var batch strings.Builder
	for u := 1; u <= 20; u++ {
		fmt.Fprintf(&batch, `{"user":%d,"x":0.5,"y":0.5,"t":%d}`+"\n", u, u)
	}
	rec, obj := doReq(t, h, "POST", "/v1/ingest", batch.String())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if obj["samples"].(float64) != 20 {
		t.Fatalf("routed count: %v", obj)
	}
	if len(obj["shards"].(map[string]interface{})) != 2 {
		t.Fatalf("want LSNs from both owners: %v", obj["shards"])
	}

	if rec, _ := doReq(t, h, "POST", "/v1/ingest", "{bad"); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage NDJSON: status %d, want 400", rec.Code)
	}
}

func TestCoordinatorIngestFailedLeg(t *testing.T) {
	c, _ := fakeCluster(t, 2, map[int]bool{1: true})
	h := c.handler()
	var batch strings.Builder
	for u := 1; u <= 20; u++ {
		fmt.Fprintf(&batch, `{"user":%d,"x":0.5,"y":0.5,"t":%d}`+"\n", u, u)
	}
	rec, obj := doReq(t, h, "POST", "/v1/ingest", batch.String())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want the failed owner's hint", got)
	}
	if !strings.Contains(obj["error"].(string), "shard-1") {
		t.Fatalf("error does not name the failed leg: %v", obj)
	}
	if _, ok := obj["acked"].(map[string]interface{})["shard-0"]; !ok {
		t.Fatalf("acked legs missing — client cannot avoid double-ingest: %v", obj)
	}
}
