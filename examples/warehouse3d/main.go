// Warehouse3D: the Section 8 extension in action — objects moving in
// three spatial dimensions. Picker drones operate in a multi-level
// warehouse; their positions are (x, y, z) with z the vertical axis.
// Regions of interest are 4D (space × time) boxes, footprints are 3D,
// and similarity uses volumes in place of areas. Two drones that
// service the same racks *on the same level* are similar; the same
// aisle on different levels is not the same workload — which is
// exactly what a 2D projection would get wrong.
//
// Run with:
//
//	go run ./examples/warehouse3d
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"geofootprint"
)

const (
	drones    = 40
	levels    = 3
	racksPerL = 6
	dwellLen  = 50
	visits    = 12
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(33))

	// Rack service points: racksPerL racks on each of `levels`
	// vertical levels.
	type rack struct{ x, y, z float64 }
	var racks []rack
	for lv := 0; lv < levels; lv++ {
		for r := 0; r < racksPerL; r++ {
			racks = append(racks, rack{
				x: 0.1 + 0.8*float64(r)/float64(racksPerL-1),
				y: 0.2 + 0.6*rng.Float64(),
				z: 0.1 + 0.8*float64(lv)/float64(levels-1),
			})
		}
	}

	// Each drone services racks of one home level (with an
	// occasional cross-level errand).
	cfg := geofootprint.DefaultExtraction()
	cfg.Tau = 20
	footprints := make([]geofootprint.Footprint3, drones)
	norms := make([]float64, drones)
	homeLevel := make([]int, drones)
	for d := 0; d < drones; d++ {
		lv := d % levels
		homeLevel[d] = lv
		var tr geofootprint.Trajectory3
		t := 0.0
		push := func(x, y, z float64) {
			tr = append(tr, geofootprint.Location3{
				P: geofootprint.Point3{X: x, Y: y, Z: z}, T: t,
			})
			t += 0.1
		}
		for v := 0; v < visits; v++ {
			rk := racks[lv*racksPerL+rng.Intn(racksPerL)]
			if rng.Float64() < 0.1 { // cross-level errand
				rk = racks[rng.Intn(len(racks))]
			}
			// Hover at the rack with small jitter.
			for i := 0; i < dwellLen; i++ {
				push(
					rk.x+(rng.Float64()-0.5)*0.008,
					rk.y+(rng.Float64()-0.5)*0.008,
					rk.z+(rng.Float64()-0.5)*0.008,
				)
			}
			// Fast transit (one far sample breaks the region).
			push(rng.Float64(), rng.Float64(), rng.Float64())
		}
		rois := geofootprint.ExtractRoIs3(tr, cfg)
		footprints[d] = geofootprint.FootprintFromRoIs3(rois, true)
		norms[d] = geofootprint.Norm3(footprints[d])
	}
	fmt.Printf("extracted 3D footprints for %d drones (%d racks on %d levels)\n",
		drones, len(racks), levels)

	// Same-level drones should be far more similar than cross-level
	// ones, even though cross-level pairs share (x, y) aisles.
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < drones; i++ {
		for j := i + 1; j < drones; j++ {
			sim := geofootprint.SimilarityJoin3(footprints[i], footprints[j], norms[i], norms[j])
			if homeLevel[i] == homeLevel[j] {
				same += sim
				nSame++
			} else {
				cross += sim
				nCross++
			}
		}
	}
	fmt.Printf("avg similarity, same level:  %.4f\n", same/float64(nSame))
	fmt.Printf("avg similarity, cross level: %.4f\n", cross/float64(nCross))

	// Rank the fleet against drone 0: its level-mates should surface.
	type ranked struct {
		id  int
		sim float64
	}
	var rs []ranked
	for j := 1; j < drones; j++ {
		rs = append(rs, ranked{j, geofootprint.SimilarityJoin3(
			footprints[0], footprints[j], norms[0], norms[j])})
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].sim > rs[b].sim })
	fmt.Printf("\ndrones with workloads most similar to drone 0 (level %d):\n", homeLevel[0])
	for i := 0; i < 5; i++ {
		fmt.Printf("  %d. drone %-3d level %d  similarity %.4f\n",
			i+1, rs[i].id, homeLevel[rs[i].id], rs[i].sim)
	}
}
