// Retail: the department-store recommendation scenario that motivates
// the paper (Section 1). Customers are tracked while shopping; each
// customer's geo-footprint captures the exhibition areas where they
// dwell. For a cold-start customer — one with no purchase history —
// the recommender finds the customers with the most similar footprints
// and recommends the products *they* bought.
//
// The example simulates purchases correlated with visited zones, shows
// a cold-start recommendation, and compares it against a popularity
// baseline.
//
// Run with:
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"geofootprint"
)

// The product catalogue: one product family per store zone, so that a
// customer dwelling near a zone is plausibly interested in its family.
var catalogue = []string{
	"TVs", "Laptops", "Phones", "Cameras", "Audio", "Gaming",
	"Kitchen", "Cookware", "Bedding", "Bath", "Lighting", "Rugs",
	"Menswear", "Womenswear", "Shoes", "Sportswear", "Kids", "Toys",
	"Garden", "Tools", "Paint", "Auto", "Books", "Stationery",
	"Grocery", "Bakery", "Deli", "Wine", "Coffee", "Snacks",
	"Beauty", "Pharmacy", "Optics", "Jewelry", "Watches", "Bags",
	"Bikes", "Camping", "Fishing", "Fitness", "Pets", "Aquatics",
	"Art", "Music", "Film", "Crafts", "Party", "Seasonal",
	"Furniture", "Office", "Storage", "Cleaning", "Laundry", "Baby",
}

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(9))

	// Track ~600 customers through the store.
	cfg, err := geofootprint.SynthPart("A", 0.00216)
	if err != nil {
		log.Fatal(err)
	}
	dataset, _, err := geofootprint.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db, err := geofootprint.BuildDB(dataset, geofootprint.DefaultExtraction())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store traffic: %d customers, %d dwell regions\n", db.Len(), db.NumRegions())

	// Simulate purchase histories: customers buy products whose zone
	// they dwell near (80%) plus the occasional impulse buy (20%).
	// Zone j occupies the j-th cell of the layout grid; rather than
	// reconstruct the layout we derive "zone of a region" from its
	// position, which is exactly what a store planogram join would do.
	purchases := make(map[int][]string, db.Len())
	for i := range db.Footprints {
		seen := map[string]bool{}
		for _, reg := range db.Footprints[i] {
			if rng.Float64() < 0.8 {
				seen[productNear(reg.Rect.Center().X, reg.Rect.Center().Y)] = true
			}
		}
		if rng.Float64() < 0.2 {
			seen[catalogue[rng.Intn(len(catalogue))]] = true
		}
		for p := range seen {
			purchases[db.IDs[i]] = append(purchases[db.IDs[i]], p)
		}
		sort.Strings(purchases[db.IDs[i]])
	}

	// A cold-start customer: tracked in the store today, but no
	// purchase history yet.
	coldStart := db.IDs[17]
	fmt.Printf("\ncold-start customer %d dwelled near: %v\n",
		coldStart, zonesOf(db.Footprints[idxOf(db, coldStart)]))

	// Footprint-based recommendation: neighbours by geo-footprint
	// similarity, recommend what they bought.
	idx := geofootprint.NewUserCentricIndex(db)
	neighbours, err := geofootprint.MostSimilarUsers(db, idx, coldStart, 10)
	if err != nil {
		log.Fatal(err)
	}
	votes := map[string]float64{}
	for _, n := range neighbours {
		for _, p := range purchases[n.ID] {
			votes[p] += n.Score // weight votes by similarity
		}
	}
	fmt.Println("\nfootprint-based recommendations (similarity-weighted neighbour purchases):")
	for i, pv := range topProducts(votes, 5) {
		fmt.Printf("  %d. %-12s score %.3f\n", i+1, pv.name, pv.score)
	}

	// Popularity baseline: what everyone buys, footprints ignored.
	pop := map[string]float64{}
	for _, ps := range purchases {
		for _, p := range ps {
			pop[p]++
		}
	}
	fmt.Println("\npopularity baseline (same for every customer):")
	for i, pv := range topProducts(pop, 5) {
		fmt.Printf("  %d. %-12s bought by %.0f customers\n", i+1, pv.name, pv.score)
	}

	fmt.Println("\nthe footprint-based list reflects where this customer actually dwells;")
	fmt.Println("the popularity list is the same for everyone.")
}

// productNear maps a store position to the product family exhibited
// there (a 9x6 planogram over the unit square).
func productNear(x, y float64) string {
	const cols, rows = 9, 6
	c := int(x * cols)
	if c >= cols {
		c = cols - 1
	}
	r := int(y * rows)
	if r >= rows {
		r = rows - 1
	}
	return catalogue[(r*cols+c)%len(catalogue)]
}

func zonesOf(f geofootprint.Footprint) []string {
	seen := map[string]bool{}
	var out []string
	for _, reg := range f {
		p := productNear(reg.Rect.Center().X, reg.Rect.Center().Y)
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func idxOf(db *geofootprint.FootprintDB, id int) int {
	i, ok := db.IndexOf(id)
	if !ok {
		log.Fatalf("user %d not in db", id)
	}
	return i
}

type productVote struct {
	name  string
	score float64
}

func topProducts(votes map[string]float64, k int) []productVote {
	out := make([]productVote, 0, len(votes))
	for n, s := range votes {
		out = append(out, productVote{n, s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].name < out[j].name
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
