// Geosocial: link recommendation in a geo-social network, the second
// application the paper motivates (Section 1). The profile of each
// network user contains their frequently visited places, modelled as a
// geo-footprint; footprint similarity then models the probability that
// two users meet and become socially connected.
//
// The example builds a synthetic friendship network whose edges are
// biased towards co-located users, hides a fraction of the edges, and
// evaluates footprint similarity as a link predictor: for each user,
// the top-ranked non-friends by footprint similarity are compared with
// the hidden edges (hit-rate@k), against a random-candidate baseline.
//
// Run with:
//
//	go run ./examples/geosocial
package main

import (
	"fmt"
	"log"
	"math/rand"

	"geofootprint"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(21))

	// The "city": tracked visit data of ~700 users (the generator's
	// zones play the role of cafés, gyms, offices...).
	cfg, err := geofootprint.SynthPart("B", 0.003)
	if err != nil {
		log.Fatal(err)
	}
	dataset, _, err := geofootprint.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db, err := geofootprint.BuildDB(dataset, geofootprint.DefaultExtraction())
	if err != nil {
		log.Fatal(err)
	}
	n := db.Len()
	fmt.Printf("geo-social network: %d users with location profiles\n", n)

	// Ground-truth friendships: probability grows with footprint
	// similarity (people who frequent the same places meet), plus a
	// few random long-distance ties.
	idx := geofootprint.NewUserCentricIndex(db)
	friends := make([]map[int]bool, n)
	for i := range friends {
		friends[i] = map[int]bool{}
	}
	addEdge := func(a, b int) {
		if a != b {
			friends[a][b] = true
			friends[b][a] = true
		}
	}
	for i := 0; i < n; i++ {
		for _, r := range idx.TopK(db.Footprints[i], 12) {
			j, _ := db.IndexOf(r.ID)
			if j == i {
				continue
			}
			if rng.Float64() < 0.25+0.5*r.Score {
				addEdge(i, j)
			}
		}
		if rng.Float64() < 0.3 {
			addEdge(i, rng.Intn(n)) // serendipity edge
		}
	}
	edges := 0
	for i := range friends {
		edges += len(friends[i])
	}
	edges /= 2
	fmt.Printf("friendship graph: %d edges\n", edges)

	// Hide 30% of each user's edges; can footprint similarity
	// recover them?
	hidden := make([]map[int]bool, n)
	visible := make([]map[int]bool, n)
	for i := range friends {
		hidden[i] = map[int]bool{}
		visible[i] = map[int]bool{}
		for j := range friends[i] {
			if i < j { // decide once per edge
				if rng.Float64() < 0.3 {
					hidden[i][j] = true
					hidden[j] = ensure(hidden, j)
					hidden[j][i] = true
				} else {
					visible[i][j] = true
					visible[j] = ensure(visible, j)
					visible[j][i] = true
				}
			}
		}
	}

	// Link prediction: rank non-friends by footprint similarity.
	const k = 5
	var hits, trials, randomHits int
	for i := 0; i < n; i++ {
		if len(hidden[i]) == 0 {
			continue
		}
		trials++
		cands := idx.TopK(db.Footprints[i], k+1+len(visible[i]))
		got := 0
		for _, r := range cands {
			j, _ := db.IndexOf(r.ID)
			if j == i || visible[i][j] {
				continue // already known
			}
			if got++; got > k {
				break
			}
			if hidden[i][j] {
				hits++
				break
			}
		}
		// Random baseline: k random non-friends.
		for t := 0; t < k; t++ {
			j := rng.Intn(n)
			if j != i && !visible[i][j] && hidden[i][j] {
				randomHits++
				break
			}
		}
	}
	fmt.Printf("\nlink prediction (hit-rate@%d over %d users with hidden edges):\n", k, trials)
	fmt.Printf("  footprint similarity: %.1f%%\n", 100*float64(hits)/float64(trials))
	fmt.Printf("  random candidates:    %.1f%%\n", 100*float64(randomHits)/float64(trials))
	fmt.Println("\nfootprint similarity recovers hidden ties far above chance because")
	fmt.Println("friendships in the simulation — as in reality — form where people co-dwell.")
}

func ensure(m []map[int]bool, i int) map[int]bool {
	if m[i] == nil {
		m[i] = map[int]bool{}
	}
	return m[i]
}
