// Liveops: running geo-footprints as a live service. Location events
// stream in while the system is serving queries: the online extractor
// turns each closed session into RoIs, the footprint database absorbs
// them with incremental norm updates, the search index is maintained
// in place, and an HTTP API answers similarity queries throughout —
// the full deployment story around the paper's algorithms.
//
// Run with:
//
//	go run ./examples/liveops
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"geofootprint"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(5))

	// Bootstrap: an initial corpus of 200 tracked customers.
	cfg, err := geofootprint.SynthPart("A", 0.00072)
	if err != nil {
		log.Fatal(err)
	}
	dataset, _, err := geofootprint.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db, err := geofootprint.BuildDB(dataset, geofootprint.DefaultExtraction())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrapped %d customers, %d regions\n", db.Len(), db.NumRegions())

	// Serve the corpus over HTTP (an in-process test server here; in
	// production this is cmd/geoserve).
	api := httptest.NewServer(geofootprint.NewServer(db).Handler())
	defer api.Close()

	var health struct {
		Users   int `json:"users"`
		Regions int `json:"regions"`
	}
	getJSON(api.URL+"/healthz", &health)
	fmt.Printf("service up: %d users / %d regions\n", health.Users, health.Regions)

	// A new customer walks the store. Their positions stream through
	// the online extractor; each dwell becomes an RoI the moment it
	// is finalized.
	newID := 999999
	var live []geofootprint.Region
	extractor, err := geofootprint.NewStreamingExtractor(geofootprint.DefaultExtraction(),
		func(r geofootprint.RoI) {
			live = append(live, geofootprint.Region{Rect: r.Rect, Weight: 1})
			fmt.Printf("  live RoI #%d at (%.3f, %.3f), %d samples\n",
				len(live), r.Rect.Center().X, r.Rect.Center().Y, r.Count)
		})
	if err != nil {
		log.Fatal(err)
	}

	// Simulate the visit: three dwells at popular areas of the store
	// (picked from existing customers' regions), transit in between.
	host := db.Footprints[rng.Intn(db.Len())]
	t := 0.0
	for stop := 0; stop < 3; stop++ {
		c := host[rng.Intn(len(host))].Rect.Center()
		cx, cy := c.X, c.Y
		for i := 0; i < 60; i++ {
			extractor.Push(geofootprint.Location{
				P: geofootprint.Point{
					X: cx + (rng.Float64()-0.5)*0.01,
					Y: cy + (rng.Float64()-0.5)*0.01,
				},
				T: t,
			})
			t += 0.1
		}
		// Fast transit breaks the region.
		extractor.Push(geofootprint.Location{
			P: geofootprint.Point{X: cx + 0.2, Y: cy + 0.3}, T: t,
		})
		t += 0.1
	}
	extractor.Flush()
	fmt.Printf("session closed with %d RoIs\n", len(live))

	// Publish the new footprint through the API: the index updates
	// incrementally, no rebuild.
	body, _ := json.Marshal(regionsJSON(live))
	req, _ := http.NewRequest(http.MethodPut,
		fmt.Sprintf("%s/v1/users/%d", api.URL, newID), bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	_ = resp.Body.Close() // status code is the only signal used
	fmt.Printf("published footprint for customer %d (HTTP %d)\n", newID, resp.StatusCode)

	// The customer is immediately queryable.
	var similar []struct {
		ID         int     `json:"id"`
		Similarity float64 `json:"similarity"`
	}
	getJSON(fmt.Sprintf("%s/v1/users/%d/similar?k=5&exclude_self=true", api.URL, newID), &similar)
	fmt.Println("\ncustomers most similar to the live visitor:")
	for i, r := range similar {
		fmt.Printf("  %d. customer %-6d similarity %.4f\n", i+1, r.ID, r.Similarity)
	}
	if len(similar) == 0 {
		fmt.Println("  (no overlapping customers — the store is quiet today)")
	}
}

type regionWire struct {
	Rect   [4]float64 `json:"rect"`
	Weight float64    `json:"weight"`
}

func regionsJSON(regs []geofootprint.Region) []regionWire {
	out := make([]regionWire, len(regs))
	for i, r := range regs {
		out[i] = regionWire{
			Rect:   [4]float64{r.Rect.MinX, r.Rect.MinY, r.Rect.MaxX, r.Rect.MaxY},
			Weight: r.Weight,
		}
	}
	return out
}

func getJSON(url string, v interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
