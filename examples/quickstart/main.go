// Quickstart: the minimal end-to-end pipeline of the geofootprint
// library — generate a small synthetic indoor-mobility dataset,
// extract every user's geo-footprint (Algorithm 1), precompute norms
// (Algorithm 2), compute a pairwise similarity (Equation 1), and run a
// top-k similarity search (Section 6).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"geofootprint"
)

func main() {
	log.SetFlags(0)

	// 1. A small synthetic "shopping mall" of 400 users, the stand-in
	//    for a real indoor tracking deployment.
	cfg, err := geofootprint.SynthPart("A", 0.00144) // ≈400 users
	if err != nil {
		log.Fatal(err)
	}
	dataset, _, err := geofootprint.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d users, %d sessions, %d tracked locations\n",
		len(dataset.Users), dataset.NumSessions(), dataset.NumLocations())

	// 2. Extract geo-footprints with the paper's parameters (ε=0.02,
	//    τ=30) and precompute every footprint's norm.
	db, err := geofootprint.BuildDB(dataset, geofootprint.DefaultExtraction())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("footprints: %d regions total (%.1f per user)\n",
		db.NumRegions(), float64(db.NumRegions())/float64(db.Len()))

	// 3. Pairwise similarity, three ways (they agree; Algorithm 4 is
	//    the fastest when norms are precomputed).
	a, b := db.Footprints[0], db.Footprints[1]
	fmt.Printf("similarity(user %d, user %d):\n", db.IDs[0], db.IDs[1])
	fmt.Printf("  one-pass sweep (Alg. 3 + norms): %.6f\n", geofootprint.Similarity(a, b))
	fmt.Printf("  sweep w/ precomputed norms:      %.6f\n",
		geofootprint.SimilaritySweep(a, b, db.Norms[0], db.Norms[1]))
	fmt.Printf("  join-based (Alg. 4):             %.6f\n",
		geofootprint.SimilarityJoin(a, b, db.Norms[0], db.Norms[1]))

	// 4. Top-k similarity search with the user-centric index
	//    (Section 6.2), the paper's fastest method.
	idx := geofootprint.NewUserCentricIndex(db)
	queryUser := db.IDs[42]
	results, err := geofootprint.MostSimilarUsers(db, idx, queryUser, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nusers most similar to user %d:\n", queryUser)
	for i, r := range results {
		fmt.Printf("  %d. user %-6d similarity %.4f\n", i+1, r.ID, r.Score)
	}
}
