// Segmentation: customer segmentation via geo-footprint clustering,
// the utility analysis of Section 7 (Figure 3(b)). Customers are
// clustered by footprint similarity with average-link agglomerative
// clustering; each cluster is then characterised by the store areas
// its members visit that other clusters do not — the regions a
// marketing team would target with cluster-specific promotions.
//
// Run with:
//
//	go run ./examples/segmentation
package main

import (
	"fmt"
	"log"

	"geofootprint"
	"geofootprint/internal/cluster"
)

func main() {
	log.SetFlags(0)

	cfg, err := geofootprint.SynthPart("A", 0.0018) // ≈500 customers
	if err != nil {
		log.Fatal(err)
	}
	dataset, personas, err := geofootprint.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db, err := geofootprint.BuildDB(dataset, geofootprint.DefaultExtraction())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segmenting %d customers by geo-footprint\n", db.Len())

	// Pairwise footprint distances (1 - similarity), then
	// average-link agglomerative clustering into nine segments, as
	// in the paper's experiment.
	idxs := make([]int, db.Len())
	for i := range idxs {
		idxs[i] = i
	}
	m := geofootprint.FootprintDistances(db, idxs)
	labels, err := geofootprint.ClusterUsers(m, 9, geofootprint.AverageLink)
	if err != nil {
		log.Fatal(err)
	}

	sizes := make([]int, 9)
	for _, l := range labels {
		sizes[l]++
	}

	// The generator plants ground-truth "personas"; report how well
	// the segments recover them (with real data one would instead
	// validate against purchase categories or survey groups).
	majority := make(map[int]map[int]int)
	for i, l := range labels {
		if majority[l] == nil {
			majority[l] = map[int]int{}
		}
		majority[l][personas[i]]++
	}
	correct := 0
	for _, pc := range majority {
		best := 0
		for _, c := range pc {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	fmt.Printf("segments recover the planted customer groups with %.1f%% purity\n\n",
		100*float64(correct)/float64(len(labels)))

	// Characteristic regions per segment: where to place targeted
	// promotions.
	ccfg := geofootprint.CharacteristicConfig{GridN: 30, MinOwnFrac: 0.25, MaxOtherFrac: 0.05}
	regions, err := geofootprint.CharacteristicRegions(db, idxs, labels, 9, ccfg)
	if err != nil {
		log.Fatal(err)
	}
	for c := 0; c < 9; c++ {
		fmt.Printf("segment %d: %3d customers, %2d characteristic store cells\n",
			c+1, sizes[c], len(regions[c]))
	}

	fmt.Println("\nstore map — digit marks the segment that 'owns' each area")
	fmt.Println("(customers of that segment dwell there, others rarely do):")
	fmt.Print(cluster.RenderASCII(regions, ccfg.GridN))
}
