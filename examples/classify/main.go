// Classify: nearest-neighbour classification over geo-footprints, the
// third data-mining application the paper's introduction motivates.
// A loyalty program knows the segment ("electronics buff", "family
// shopper", ...) of customers who answered a survey; movement data
// exists for everyone. The kNN classifier infers the segment of the
// silent majority from footprint similarity alone, and leave-one-out
// evaluation quantifies how well movement predicts segment.
//
// Run with:
//
//	go run ./examples/classify
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"geofootprint"
	"geofootprint/internal/classify"
)

var segments = []string{
	"electronics buff", "home maker", "fashion first",
	"grocery runner", "sports lover", "book worm",
	"garden pro", "deal hunter", "family shopper",
}

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(27))

	cfg, err := geofootprint.SynthPart("A", 0.002) // ≈556 customers
	if err != nil {
		log.Fatal(err)
	}
	dataset, personas, err := geofootprint.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	db, err := geofootprint.BuildDB(dataset, geofootprint.DefaultExtraction())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tracked customers: %d\n", db.Len())

	// The survey reached 30% of customers; their true segment is the
	// generator's persona.
	labels := map[int]string{}
	for i, id := range db.IDs {
		if rng.Float64() < 0.3 {
			labels[id] = segments[personas[i]%len(segments)]
		}
	}
	fmt.Printf("surveyed (labelled): %d customers\n", len(labels))

	idx := geofootprint.NewUserCentricIndex(db)
	cls, err := geofootprint.NewClassifier(db, idx, labels, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Leave-one-out on the surveyed customers: how reliable is
	// movement as a segment signal?
	fmt.Printf("leave-one-out accuracy on surveyed customers: %.1f%%\n", 100*cls.Evaluate())

	// Classify the silent majority and compare against the hidden
	// ground truth.
	correct, total := 0, 0
	perSegment := map[string][2]int{} // predicted: correct, total
	for i, id := range db.IDs {
		if _, surveyed := labels[id]; surveyed {
			continue
		}
		p, err := cls.ClassifyUser(id)
		if err != nil || p.Label == "" {
			continue
		}
		total++
		want := segments[personas[i]%len(segments)]
		stats := perSegment[want]
		stats[1]++
		if p.Label == want {
			correct++
			stats[0]++
		}
		perSegment[want] = stats
	}
	fmt.Printf("inferred segments for %d unsurveyed customers: %.1f%% correct\n\n",
		total, 100*float64(correct)/float64(total))

	names := make([]string, 0, len(perSegment))
	for n := range perSegment {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("per-segment accuracy (on hidden ground truth):")
	for _, n := range names {
		s := perSegment[n]
		fmt.Printf("  %-18s %3d/%3d  (%.0f%%)\n", n, s[0], s[1], 100*float64(s[0])/float64(s[1]))
	}

	// One concrete prediction, with its vote breakdown.
	var demo classify.Prediction
	var demoID int
	for _, id := range db.IDs {
		if _, surveyed := labels[id]; !surveyed {
			if p, err := cls.ClassifyUser(id); err == nil && p.Neighbours > 0 {
				demo, demoID = p, id
				break
			}
		}
	}
	fmt.Printf("\nexample: customer %d → %q (votes: %v)\n", demoID, demo.Label, demo.Votes)
}
