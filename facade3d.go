package geofootprint

import (
	"geofootprint/internal/classify"
	"geofootprint/internal/core"
	"geofootprint/internal/d3"
	"geofootprint/internal/extract"
	"geofootprint/internal/geom"
	"geofootprint/internal/search"
	"geofootprint/internal/traj"
)

// This file exposes the extension surfaces of the library: the
// streaming extractor, the 3D pipeline of Section 8, and the kNN
// classifier built on footprint similarity.

// StreamingExtractor is the online form of Algorithm 1: push locations
// as they arrive, receive finalized RoIs through the emit callback,
// Flush at session end.
type StreamingExtractor = extract.Extractor

// NewStreamingExtractor returns a streaming extractor that calls emit
// for every finalized RoI.
func NewStreamingExtractor(cfg ExtractionConfig, emit func(RoI)) (*StreamingExtractor, error) {
	return extract.NewExtractor(cfg, emit)
}

// 3D extension (Section 8): objects moving in 3D space, 4D RoIs, 3D
// footprints.
type (
	// Point3 is a position in 3D space.
	Point3 = geom.Point3
	// Box3 is a closed axis-aligned 3D box.
	Box3 = geom.Box3
	// Location3 is one tracked 3D position with its timestamp.
	Location3 = d3.Location3
	// Trajectory3 is a regularly sampled 3D location sequence.
	Trajectory3 = d3.Trajectory3
	// RoI3 is an extracted 4D (space × time) region of interest.
	RoI3 = d3.RoI3
	// Region3 is one weighted region of a 3D footprint.
	Region3 = d3.Region3
	// Footprint3 is a user's 3D geo-footprint.
	Footprint3 = d3.Footprint3
)

// ExtractRoIs3 runs the 3D Algorithm 1 on one 3D trajectory.
func ExtractRoIs3(t Trajectory3, cfg ExtractionConfig) []RoI3 {
	return d3.Extract3(t, cfg)
}

// FootprintFromRoIs3 converts 4D RoIs into a 3D footprint. unit selects
// unit weights; otherwise durations are used (Section 8).
func FootprintFromRoIs3(rois []RoI3, unit bool) Footprint3 {
	if unit {
		return d3.FromRoIs3(rois, d3.UnitWeight)
	}
	return d3.FromRoIs3(rois, d3.DurationWeight)
}

// Norm3 computes the 3D footprint norm with the sweep-plane
// generalisation of Algorithm 2 (O(n³), as the paper states).
func Norm3(f Footprint3) float64 { return d3.Norm(f) }

// Similarity3 computes the 3D similarity (volumes in place of areas)
// with the sweep-plane generalisation of Algorithm 3, deriving both
// norms in the same pass.
func Similarity3(fr, fs Footprint3) float64 { return d3.Similarity(fr, fs) }

// SimilarityJoin3 is the 3D Algorithm 4: join-based similarity with
// precomputed norms.
func SimilarityJoin3(fr, fs Footprint3, normR, normS float64) float64 {
	return d3.SimilarityJoin(fr, fs, normR, normS)
}

// BuildingConfig parameterises the 3D mobility generator (the 3D
// counterpart of the Part A-D simulator).
type BuildingConfig = d3.BuildingConfig

// DefaultBuilding returns a three-level building configuration.
func DefaultBuilding(agents int, seed int64) BuildingConfig {
	return d3.DefaultBuilding(agents, seed)
}

// GenerateBuilding simulates 3D agent trajectories, returning them
// with each agent's ground-truth home level.
func GenerateBuilding(cfg BuildingConfig) ([]Trajectory3, []int, error) {
	return d3.GenerateBuilding(cfg)
}

// FootprintDB3 is a collection of 3D footprints with precomputed
// norms, answering top-k similarity queries (Section 8).
type FootprintDB3 = d3.DB

// Result3 is one ranked user of a 3D query.
type Result3 = d3.Result3

// NewDB3 builds a 3D footprint database.
func NewDB3(ids []int, fps []Footprint3) (*FootprintDB3, error) {
	return d3.NewDB(ids, fps)
}

// Classifier predicts user labels (e.g. customer segments) from
// footprint similarity via k-nearest-neighbour voting.
type Classifier = classify.Classifier

// Prediction is a classification result.
type Prediction = classify.Prediction

// NewClassifier builds a kNN classifier over the labelled subset of
// db. labels maps external user IDs to class labels.
func NewClassifier(db *FootprintDB, idx Searcher, labels map[int]string, k int) (*Classifier, error) {
	return classify.New(db, idx, labels, k)
}

// UpdateRoIIndex incrementally re-indexes user u (a dense index of db)
// after db.Upsert, db.AppendRoIs or db.Remove.
func UpdateRoIIndex(ix *RoIIndex, u int) { ix.UpdateUser(u) }

// UpdateUserCentricIndex incrementally re-indexes user u after a
// database mutation.
func UpdateUserCentricIndex(ix *UserCentricIndex, u int) { ix.UpdateUser(u) }

// ExtractDataset extracts the RoIs of every user of a dataset in
// parallel, returning one slice per user in d.Users order.
func ExtractDataset(d *Dataset, cfg ExtractionConfig) [][]RoI {
	return extract.ExtractDataset(d, cfg, 0)
}

// Pair is one ranked user pair with its footprint similarity.
type Pair = search.Pair

// TopSimilarPairs returns the k most similar distinct user pairs in
// the index's database (the similarity self-join), best-first, using
// all CPUs.
func TopSimilarPairs(ix *UserCentricIndex, k int) []Pair {
	return search.TopSimilarPairs(ix, k, 0)
}

// CompactFootprint rewrites a footprint as its disjoint-region
// decomposition (Section 5.1's alternative representation); norms and
// similarities are preserved exactly.
func CompactFootprint(f Footprint) Footprint { return core.Compact(f) }

// SplitSessions divides a continuous location stream into temporally
// disjoint sessions wherever the sampling gap exceeds maxGap seconds.
func SplitSessions(stream Trajectory, maxGap float64) []Trajectory {
	return traj.SplitSessions(stream, maxGap)
}

// ParamStats summarises one (ε, τ) extraction-parameter choice.
type ParamStats = extract.ParamStats

// SweepExtractionParams evaluates a grid of extraction parameters over
// a dataset, mechanising the paper's tuning procedure ("values that
// led to a reasonable number of RoIs for each user").
func SweepExtractionParams(d *Dataset, epsilons []float64, taus []int) []ParamStats {
	return extract.SweepParams(d, epsilons, taus, extract.DiameterL2, 0)
}

// compile-time checks that the façade searchers satisfy Searcher.
var (
	_ Searcher = (*search.LinearScan)(nil)
	_ Searcher = (*search.RoIIndex)(nil)
	_ Searcher = (*search.UserCentricIndex)(nil)
	_          = core.Footprint(nil)
	_          = traj.Dataset{}
)
