package geofootprint_test

import (
	"fmt"

	"geofootprint"
)

// ExampleSimilarity shows the footprint similarity measure on a
// hand-built pair of footprints (Equation 1 of the paper).
func ExampleSimilarity() {
	// F(r): two overlapping regions — the overlap has frequency 2.
	fr := geofootprint.Footprint{
		{Rect: geofootprint.Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}, Weight: 1},
		{Rect: geofootprint.Rect{MinX: 2, MinY: 0, MaxX: 6, MaxY: 4}, Weight: 1},
	}
	// F(s): one region over the high-frequency area.
	fs := geofootprint.Footprint{
		{Rect: geofootprint.Rect{MinX: 3, MinY: 0, MaxX: 5, MaxY: 2}, Weight: 1},
	}
	fmt.Printf("%.4f\n", geofootprint.Similarity(fr, fs))
	// Output: 0.4330
}

// ExampleExtractRoIs extracts regions of interest from a trajectory
// with Algorithm 1: the dwell qualifies, the transit does not.
func ExampleExtractRoIs() {
	var t geofootprint.Trajectory
	// Dwell: ten samples jittering around (0.5, 0.5).
	for i := 0; i < 10; i++ {
		t = append(t, geofootprint.Location{
			P: geofootprint.Point{X: 0.5 + float64(i%2)*0.001, Y: 0.5},
			T: float64(i),
		})
	}
	// Transit: three fast samples.
	for i := 10; i < 13; i++ {
		t = append(t, geofootprint.Location{
			P: geofootprint.Point{X: 0.5 + float64(i-9)*0.1, Y: 0.5},
			T: float64(i),
		})
	}
	rois := geofootprint.ExtractRoIs(t, geofootprint.ExtractionConfig{Epsilon: 0.02, Tau: 5})
	fmt.Printf("%d region(s), %d samples in the first\n", len(rois), rois[0].Count)
	// Output: 1 region(s), 10 samples in the first
}

// ExampleNorm computes a footprint norm (Equation 2): a single
// 2×3 rectangle with weight 1 has norm sqrt(6).
func ExampleNorm() {
	f := geofootprint.Footprint{
		{Rect: geofootprint.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 3}, Weight: 1},
	}
	fmt.Printf("%.4f\n", geofootprint.Norm(f))
	// Output: 2.4495
}

// ExampleDisjointRegions decomposes overlapping regions into disjoint
// rectangles with frequencies, the (X, f_X) model of Section 4.
func ExampleDisjointRegions() {
	f := geofootprint.Footprint{
		{Rect: geofootprint.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 1}, Weight: 1},
		{Rect: geofootprint.Rect{MinX: 1, MinY: 0, MaxX: 3, MaxY: 1}, Weight: 1},
	}
	for _, d := range geofootprint.DisjointRegions(f) {
		fmt.Printf("[%g,%g]x[%g,%g] f=%g\n",
			d.Rect.MinX, d.Rect.MaxX, d.Rect.MinY, d.Rect.MaxY, d.Weight)
	}
	// Unordered output:
	// [0,1]x[0,1] f=1
	// [1,2]x[0,1] f=2
	// [2,3]x[0,1] f=1
}

// ExampleClipFootprint scopes similarity to one department of the
// store: identical inside the window, different elsewhere.
func ExampleClipFootprint() {
	shared := geofootprint.Region{
		Rect: geofootprint.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}, Weight: 1}
	a := geofootprint.Footprint{shared,
		{Rect: geofootprint.Rect{MinX: 0.8, MinY: 0.8, MaxX: 0.9, MaxY: 0.9}, Weight: 1}}
	b := geofootprint.Footprint{shared,
		{Rect: geofootprint.Rect{MinX: 0.5, MinY: 0.1, MaxX: 0.6, MaxY: 0.2}, Weight: 1}}
	dept := geofootprint.Rect{MinX: 0, MinY: 0, MaxX: 0.3, MaxY: 0.3}
	fmt.Printf("global %.2f, in-department %.2f\n",
		geofootprint.Similarity(a, b),
		geofootprint.Similarity(
			geofootprint.ClipFootprint(a, dept),
			geofootprint.ClipFootprint(b, dept)))
	// Output: global 0.50, in-department 1.00
}

// ExampleExplainSimilarity shows the per-pair breakdown of a score.
func ExampleExplainSimilarity() {
	a := geofootprint.Footprint{
		{Rect: geofootprint.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Weight: 1}}
	b := geofootprint.Footprint{
		{Rect: geofootprint.Rect{MinX: 0.5, MinY: 0, MaxX: 1.5, MaxY: 1}, Weight: 1}}
	ex := geofootprint.ExplainSimilarity(a, b, geofootprint.Norm(a), geofootprint.Norm(b), 0)
	fmt.Printf("similarity %.2f from %d pair(s); top share %.0f%%\n",
		ex.Similarity, ex.PairsExamined, 100*ex.Contributions[0].Share)
	// Output: similarity 0.50 from 1 pair(s); top share 100%
}
