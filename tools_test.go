package geofootprint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools builds every cmd/ binary and drives the full
// pipeline through their CLI surfaces:
//
//	geogen → geoextract → geoquery / geocluster, plus geobench.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI integration test in -short mode")
	}
	bin := t.TempDir()
	data := t.TempDir()

	tools := []string{"geogen", "geoextract", "geoquery", "geocluster", "geobench", "geoserve", "geofig"}
	for _, tool := range tools {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, tool), args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", tool, args, err, out)
		}
		return string(out)
	}

	dsGob := filepath.Join(data, "ds.gob")
	dsText := filepath.Join(data, "ds.csv")
	dbPath := filepath.Join(data, "fp.db")

	// geogen: gob and text outputs.
	out := run("geogen", "-part", "A", "-users", "120", "-o", dsGob)
	if !strings.Contains(out, "120 users") {
		t.Errorf("geogen output: %q", out)
	}
	run("geogen", "-part", "B", "-users", "30", "-format", "text", "-o", dsText)
	if fi, err := os.Stat(dsText); err != nil || fi.Size() == 0 {
		t.Fatalf("geogen text output missing: %v", err)
	}

	// geoextract on the gob dataset.
	out = run("geoextract", "-i", dsGob, "-o", dbPath)
	if !strings.Contains(out, "120 users") {
		t.Errorf("geoextract output: %q", out)
	}
	// ... and on the text dataset (duration weights, extent mode).
	out = run("geoextract", "-i", dsText, "-format", "text", "-weight", "duration",
		"-mode", "extent", "-o", filepath.Join(data, "fp2.db"))
	if !strings.Contains(out, "30 users") {
		t.Errorf("geoextract text output: %q", out)
	}

	// geoquery across all methods.
	for _, method := range []string{"linear", "iterative", "batch", "user-centric"} {
		out = run("geoquery", "-db", dbPath, "-user", "5", "-k", "3", "-method", method)
		if !strings.Contains(out, "similarity") {
			t.Errorf("geoquery %s output: %q", method, out)
		}
	}
	out = run("geoquery", "-db", dbPath, "-user", "5", "-k", "3", "-exclude-self")
	if strings.Contains(out, "user 5       ") {
		t.Errorf("exclude-self still returned the query user: %q", out)
	}
	// Explanations attach contributing overlaps.
	out = run("geoquery", "-db", dbPath, "-user", "5", "-k", "2", "-explain")
	if !strings.Contains(out, "from overlap") {
		t.Errorf("explain output missing overlaps: %q", out)
	}
	// Ad-hoc footprints query without a user ID.
	out = run("geoquery", "-db", dbPath, "-adhoc", "0,0,1,1", "-k", "2")
	if !strings.Contains(out, "ad-hoc footprint") {
		t.Errorf("adhoc output: %q", out)
	}

	// geocluster.
	out = run("geocluster", "-db", dbPath, "-sample", "60", "-k", "3")
	if !strings.Contains(out, "cluster 3:") {
		t.Errorf("geocluster output: %q", out)
	}

	// geobench, single cheap experiment.
	out = run("geobench", "-exp", "table1", "-scale", "0.0006", "-parts", "A")
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "avg#regions") {
		t.Errorf("geobench output: %q", out)
	}
}

// TestCommandLineErrors verifies the tools fail loudly on bad input.
func TestCommandLineErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI integration test in -short mode")
	}
	bin := t.TempDir()
	cmd := exec.Command("go", "build", "-o", filepath.Join(bin, "geogen"), "./cmd/geogen")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building geogen: %v\n%s", err, out)
	}
	// Unknown part must exit non-zero.
	c := exec.Command(filepath.Join(bin, "geogen"), "-part", "Z", "-o", filepath.Join(bin, "x"))
	if err := c.Run(); err == nil {
		t.Error("geogen with unknown part succeeded")
	}
	// Missing -o must exit non-zero.
	c = exec.Command(filepath.Join(bin, "geogen"), "-part", "A")
	if err := c.Run(); err == nil {
		t.Error("geogen without -o succeeded")
	}
}
