package geofootprint

import (
	"io"

	"geofootprint/internal/cluster"
	"geofootprint/internal/geom"
	"geofootprint/internal/search"
	"geofootprint/internal/server"
	"geofootprint/internal/viz"
)

// This file exposes the operational extras of the library: cluster
// quality metrics, batch graph construction, SVG rendering and the
// HTTP service.

// Silhouette returns the mean silhouette coefficient of a labeling
// over a distance matrix, in [-1, 1] (higher is better).
func Silhouette(m *DistMatrix, labels []int) (float64, error) {
	return cluster.Silhouette(m, labels)
}

// SilhouetteSweep clusters for every k in ks and reports the mean
// silhouette per k, for choosing the number of clusters.
func SilhouetteSweep(m *DistMatrix, ks []int, link Linkage) (map[int]float64, error) {
	return cluster.SilhouetteSweep(m, ks, link)
}

// KNNGraph returns, per user, the k most similar other users — the
// footprint kNN graph behind geo-social link recommendation.
func KNNGraph(ix *UserCentricIndex, k int) [][]Result {
	return search.KNNGraph(ix, k, 0)
}

// TopKPruned is the user-centric search with upper-bound pruning; it
// returns exactly the same ranking as TopK.
func TopKPruned(ix *UserCentricIndex, q Footprint, k int) []Result {
	return ix.TopKPruned(q, k)
}

// GridSearcher is the uniform-grid alternative to the RoI R-tree.
type GridSearcher = search.GridIndex

// NewGridSearcher indexes every RoI on an n×n grid over the world
// rectangle.
func NewGridSearcher(db *FootprintDB, world Rect, n int) (*GridSearcher, error) {
	return search.NewGridIndex(db, world, n)
}

// FootprintSVG renders a footprint with its frequency decomposition as
// SVG (the paper's Figure 2(a) style).
func FootprintSVG(w io.Writer, f Footprint, widthPx, heightPx int) error {
	return viz.FootprintSVG(w, f, widthPx, heightPx)
}

// TrajectorySVG renders a trajectory with its extracted RoIs as SVG
// (Figure 1(a) style).
func TrajectorySVG(w io.Writer, t Trajectory, rois []Rect, widthPx, heightPx int) error {
	return viz.TrajectorySVG(w, t, rois, widthPx, heightPx)
}

// ClustersSVG renders per-cluster characteristic regions as SVG
// (Figure 3(b) style).
func ClustersSVG(w io.Writer, regions [][]Rect, widthPx, heightPx int) error {
	return viz.ClustersSVG(w, regions, widthPx, heightPx)
}

// HeatmapSVG renders the aggregate dwell density of a footprint
// collection as SVG.
func HeatmapSVG(w io.Writer, fps []Footprint, gridN, widthPx, heightPx int) error {
	return viz.HeatmapSVG(w, fps, gridN, widthPx, heightPx)
}

// ClipFootprint restricts a footprint to a window, enabling
// area-scoped similarity (e.g. within one department).
func ClipFootprint(f Footprint, window Rect) Footprint { return f.Clip(window) }

// Explanation decomposes one similarity score into per-region-pair
// contributions ("why was this user recommended").
type Explanation = search.Explanation

// Contribution is one overlapping region pair of an Explanation.
type Contribution = search.Contribution

// ExplainSimilarity returns the per-pair breakdown of
// sim(user, query), best contributors first, truncated to maxPairs
// (0 = all).
func ExplainSimilarity(user, query Footprint, userNorm, queryNorm float64, maxPairs int) Explanation {
	return search.Explain(user, query, userNorm, queryNorm, maxPairs)
}

// Server wraps a FootprintDB behind an HTTP/JSON API (see
// internal/server for the routes).
type Server = server.Server

// NewServer builds the HTTP service over db.
func NewServer(db *FootprintDB) *Server { return server.New(db) }

// UnitSquare is the world rectangle of normalized datasets.
func UnitSquare() Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1} }
