package geofootprint

import (
	"math"
	"testing"
)

// endToEnd builds a small synthetic world through the public API only.
func endToEnd(t *testing.T) (*Dataset, *FootprintDB) {
	t.Helper()
	cfg, err := SynthPart("A", 0.0005) // ~139 users
	if err != nil {
		t.Fatalf("SynthPart: %v", err)
	}
	ds, personas, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	if len(personas) != len(ds.Users) {
		t.Fatalf("personas/users mismatch")
	}
	db, err := BuildDB(ds, DefaultExtraction())
	if err != nil {
		t.Fatalf("BuildDB: %v", err)
	}
	return ds, db
}

func TestPublicPipeline(t *testing.T) {
	ds, db := endToEnd(t)
	if db.Len() != len(ds.Users) {
		t.Fatalf("db has %d users, dataset %d", db.Len(), len(ds.Users))
	}

	// Extraction through the single-user entry point agrees with
	// the bulk path.
	u := &ds.Users[0]
	f := ExtractFootprint(u, DefaultExtraction(), UnitWeight)
	if len(f) != len(db.Footprints[0]) {
		t.Errorf("per-user extraction: %d regions, bulk: %d", len(f), len(db.Footprints[0]))
	}
	if got, want := Norm(f), db.Norms[0]; math.Abs(got-want) > 1e-12 {
		t.Errorf("Norm = %v, stored %v", got, want)
	}

	// All similarity entry points agree.
	q := db.Footprints[0]
	other := db.Footprints[1]
	full := Similarity(q, other)
	sweep := SimilaritySweep(q, other, db.Norms[0], db.Norms[1])
	join := SimilarityJoin(q, other, db.Norms[0], db.Norms[1])
	if math.Abs(full-sweep) > 1e-9 || math.Abs(full-join) > 1e-9 {
		t.Errorf("similarity entry points disagree: %v %v %v", full, sweep, join)
	}

	// Disjoint-region decomposition preserves the norm.
	var ssq float64
	for _, dr := range DisjointRegions(q) {
		ssq += dr.Rect.Area() * dr.Weight * dr.Weight
	}
	if n := Norm(q); math.Abs(math.Sqrt(ssq)-n) > 1e-9 {
		t.Errorf("decomposition norm %v != %v", math.Sqrt(ssq), n)
	}
}

func TestPublicSearch(t *testing.T) {
	_, db := endToEnd(t)
	lin := NewLinearScan(db)
	roi := NewRoIIndex(db)
	uc := NewUserCentricIndex(db)

	q := db.Footprints[3]
	want := lin.TopK(q, 5)
	if len(want) == 0 {
		t.Fatal("no results from linear scan")
	}
	for _, s := range []Searcher{roi, uc} {
		got := s.TopK(q, 5)
		if len(got) != len(want) {
			t.Fatalf("result count mismatch: %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	}

	// Batch search agrees too.
	batch := roi.TopKBatch(q, 5)
	for i := range want {
		if batch[i].ID != want[i].ID {
			t.Fatalf("batch result %d: %+v vs %+v", i, batch[i], want[i])
		}
	}
}

func TestMostSimilarUsers(t *testing.T) {
	_, db := endToEnd(t)
	uc := NewUserCentricIndex(db)
	id := db.IDs[7]
	res, err := MostSimilarUsers(db, uc, id, 3)
	if err != nil {
		t.Fatalf("MostSimilarUsers: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no recommendations")
	}
	for _, r := range res {
		if r.ID == id {
			t.Error("self returned as its own neighbour")
		}
	}
	if _, err := MostSimilarUsers(db, uc, -99, 3); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestPublicClustering(t *testing.T) {
	_, db := endToEnd(t)
	n := db.Len()
	idxs := make([]int, n)
	for i := range idxs {
		idxs[i] = i
	}
	m := FootprintDistances(db, idxs)
	labels, err := ClusterUsers(m, 9, AverageLink)
	if err != nil {
		t.Fatalf("ClusterUsers: %v", err)
	}
	if len(labels) != n {
		t.Fatalf("got %d labels", len(labels))
	}
	cfg := CharacteristicConfig{GridN: 20, MinOwnFrac: 0.3, MaxOtherFrac: 0.1}
	regions, err := CharacteristicRegions(db, idxs, labels, 9, cfg)
	if err != nil {
		t.Fatalf("CharacteristicRegions: %v", err)
	}
	if len(regions) != 9 {
		t.Fatalf("got %d region groups", len(regions))
	}
}

func TestWeightedDB(t *testing.T) {
	ds, _ := endToEnd(t)
	db, err := BuildWeightedDB(ds, DefaultExtraction())
	if err != nil {
		t.Fatalf("BuildWeightedDB: %v", err)
	}
	// Duration weights: every region's weight should be a real dwell
	// duration (≈ tau·Δt or more), not 1.
	sawHeavy := false
	for _, f := range db.Footprints {
		for _, r := range f {
			if r.Weight > 1.5 {
				sawHeavy = true
			}
		}
	}
	if !sawHeavy {
		t.Error("duration weighting produced no weights > 1.5")
	}
}

func TestSaveLoadThroughFacade(t *testing.T) {
	_, db := endToEnd(t)
	path := t.TempDir() + "/db.gob"
	if err := db.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := LoadDB(path)
	if err != nil {
		t.Fatalf("LoadDB: %v", err)
	}
	if got.Len() != db.Len() {
		t.Errorf("loaded %d users, want %d", got.Len(), db.Len())
	}
}
