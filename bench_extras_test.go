package geofootprint

// Benchmarks of the extension surfaces built on top of the paper's
// algorithms: the similarity self-join, the kNN graph, and score
// explanations.

import (
	"testing"

	"geofootprint/internal/search"
)

func BenchmarkExtrasTopPairs(b *testing.B) {
	w := workload(b)
	ix := search.NewUserCentricIndex(w.DB, search.BuildSTR, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.TopSimilarPairs(ix, 20, 0)
	}
}

func BenchmarkExtrasKNNGraph(b *testing.B) {
	w := workload(b)
	ix := search.NewUserCentricIndex(w.DB, search.BuildSTR, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.KNNGraph(ix, 5, 0)
	}
}

func BenchmarkExtrasExplain(b *testing.B) {
	w := workload(b)
	db := w.DB
	n := db.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := i%n, (i*7+1)%n
		search.Explain(db.Footprints[a], db.Footprints[c], db.Norms[a], db.Norms[c], 5)
	}
}

func BenchmarkExtrasPrunedSearch(b *testing.B) {
	w := workload(b)
	ix := search.NewUserCentricIndex(w.DB, search.BuildSTR, 0)
	ix.WarmPruning()
	n := w.DB.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopKPruned(w.DB.Footprints[i%n], 5)
	}
}
