package geofootprint

// R-tree fanout ablation: how the node capacity M shapes build and
// query cost for the RoI index. Run with -bench=Fanout.

import (
	"testing"

	"geofootprint/internal/search"
)

func BenchmarkAblationFanoutBuild(b *testing.B) {
	w := workload(b)
	for _, m := range []int{8, 32, 128} {
		b.Run(fanoutName(m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				search.NewRoIIndex(w.DB, search.BuildInsert, m)
			}
		})
	}
}

func BenchmarkAblationFanoutQuery(b *testing.B) {
	w := workload(b)
	n := w.DB.Len()
	for _, m := range []int{8, 32, 128} {
		ix := search.NewRoIIndex(w.DB, search.BuildInsert, m)
		b.Run(fanoutName(m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix.TopKIterative(w.DB.Footprints[i%n], 5)
			}
		})
	}
}

func fanoutName(m int) string {
	switch m {
	case 8:
		return "M=8"
	case 32:
		return "M=32"
	default:
		return "M=128"
	}
}
