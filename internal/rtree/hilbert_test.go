package rtree

import (
	"math/rand"
	"testing"

	"geofootprint/internal/geom"
)

func TestHilbertDProperties(t *testing.T) {
	const n = 1 << 4 // 16x16 grid
	seen := map[uint64]bool{}
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			d := hilbertD(n, x, y)
			if d >= n*n {
				t.Fatalf("d(%d,%d) = %d out of range", x, y, d)
			}
			if seen[d] {
				t.Fatalf("duplicate curve index %d", d)
			}
			seen[d] = true
		}
	}
	if len(seen) != n*n {
		t.Fatalf("curve covers %d cells, want %d", len(seen), n*n)
	}
	// Consecutive curve positions are adjacent cells (the defining
	// locality property of the Hilbert curve).
	pos := make(map[uint64][2]uint32, n*n)
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			pos[hilbertD(n, x, y)] = [2]uint32{x, y}
		}
	}
	for d := uint64(0); d+1 < n*n; d++ {
		a, b := pos[d], pos[d+1]
		dx := int(a[0]) - int(b[0])
		dy := int(a[1]) - int(b[1])
		if dx*dx+dy*dy != 1 {
			t.Fatalf("curve jump between d=%d (%v) and d=%d (%v)", d, a, d+1, b)
		}
	}
}

func TestBulkHilbertMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	for _, n := range []int{0, 1, 33, 2000} {
		es := randEntries(rng, n, 100)
		tr := BulkHilbert(es, world, 16)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: Validate: %v", n, err)
		}
		for trial := 0; trial < 25; trial++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			q := geom.Rect{MinX: x, MinY: y, MaxX: x + 15, MaxY: y + 15}
			got := collectSearch(tr, q)
			want := linearSearch(es, q)
			if !sameIDs(got, want) {
				t.Fatalf("n=%d trial %d: %d hits, want %d", n, trial, len(got), len(want))
			}
		}
	}
}

func TestBulkHilbertEntriesOutsideWorld(t *testing.T) {
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	es := []Entry{
		{Rect: geom.Rect{MinX: -5, MinY: -5, MaxX: -4, MaxY: -4}, Data: 1},
		{Rect: geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}, Data: 2},
		{Rect: geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}, Data: 3},
	}
	tr := BulkHilbert(es, world, 4)
	got := collectSearch(tr, geom.Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10})
	if !sameIDs(got, []int64{1, 2, 3}) {
		t.Errorf("hits = %v", got)
	}
}
