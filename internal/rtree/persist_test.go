package rtree

import (
	"bytes"
	"math/rand"
	"testing"

	"geofootprint/internal/geom"
)

func TestPersistRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, build := range []string{"insert", "bulk"} {
		es := randEntries(rng, 2000, 100)
		var tr *Tree
		if build == "insert" {
			tr = insertAll(es, 16)
		} else {
			tr = Bulk(es, 16)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("%s: Write: %v", build, err)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("%s: ReadFrom: %v", build, err)
		}
		if got.Len() != tr.Len() || got.Height() != tr.Height() {
			t.Fatalf("%s: shape mismatch after round trip", build)
		}
		for trial := 0; trial < 30; trial++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			q := geom.Rect{MinX: x, MinY: y, MaxX: x + 10, MaxY: y + 10}
			a, b := collectSearch(tr, q), collectSearch(got, q)
			if !sameIDs(a, b) {
				t.Fatalf("%s: query mismatch after round trip", build)
			}
		}
		// The loaded tree remains mutable.
		got.Insert(geom.Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}, 99999)
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: insert after load: %v", build, err)
		}
	}
}

func TestPersistEmptyTree(t *testing.T) {
	var buf bytes.Buffer
	if err := New(8).Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if got.Len() != 0 || got.Height() != 1 {
		t.Errorf("empty tree shape wrong after round trip")
	}
}

func TestReadFromGarbage(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("not a tree"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
}
