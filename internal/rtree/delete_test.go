package rtree

import (
	"math/rand"
	"testing"

	"geofootprint/internal/geom"
)

func TestDeleteSimple(t *testing.T) {
	tr := New(4)
	r1 := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	r2 := geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}
	tr.Insert(r1, 1)
	tr.Insert(r2, 2)
	if !tr.Delete(r1, 1) {
		t.Fatal("Delete of present entry returned false")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	hits := collectSearch(tr, geom.Rect{MinX: -1, MinY: -1, MaxX: 10, MaxY: 10})
	if !sameIDs(hits, []int64{2}) {
		t.Errorf("remaining = %v, want [2]", hits)
	}
	// Deleting again fails.
	if tr.Delete(r1, 1) {
		t.Error("Delete of absent entry returned true")
	}
	// Wrong payload fails.
	if tr.Delete(r2, 99) {
		t.Error("Delete with wrong payload returned true")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	es := randEntries(rng, 500, 50)
	tr := insertAll(es, 6)
	// Delete in random order.
	order := rng.Perm(len(es))
	for i, oi := range order {
		if !tr.Delete(es[oi].Rect, es[oi].Data) {
			t.Fatalf("delete %d (entry %d) failed", i, oi)
		}
		if tr.Len() != len(es)-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
		if i%50 == 0 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("Validate after %d deletes: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("emptied tree: Len=%d Height=%d", tr.Len(), tr.Height())
	}
}

func TestDeleteKeepsQueriesCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	es := randEntries(rng, 1200, 100)
	tr := insertAll(es, 16)
	alive := make(map[int]bool, len(es))
	for i := range es {
		alive[i] = true
	}
	for round := 0; round < 40; round++ {
		// Delete a random batch of 20.
		deleted := 0
		for i := range alive {
			if !alive[i] {
				continue
			}
			if !tr.Delete(es[i].Rect, es[i].Data) {
				t.Fatalf("delete of live entry %d failed", i)
			}
			alive[i] = false
			if deleted++; deleted == 20 {
				break
			}
		}
		// Check random queries against a filtered linear scan.
		var live []Entry
		for i, e := range es {
			if alive[i] {
				live = append(live, e)
			}
		}
		for q := 0; q < 5; q++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			query := geom.Rect{MinX: x, MinY: y, MaxX: x + 15, MaxY: y + 15}
			got := collectSearch(tr, query)
			want := linearSearch(live, query)
			if !sameIDs(got, want) {
				t.Fatalf("round %d: query mismatch: %d vs %d hits", round, len(got), len(want))
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("round %d: Validate: %v", round, err)
		}
	}
}

func TestDeleteFromBulkTree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	es := randEntries(rng, 800, 50)
	tr := Bulk(es, 16)
	for i := 0; i < 400; i++ {
		if !tr.Delete(es[i].Rect, es[i].Data) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 400 {
		t.Errorf("Len = %d, want 400", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	got := collectSearch(tr, geom.Rect{MinX: -1, MinY: -1, MaxX: 200, MaxY: 200})
	want := linearSearch(es[400:], geom.Rect{MinX: -1, MinY: -1, MaxX: 200, MaxY: 200})
	if !sameIDs(got, want) {
		t.Errorf("%d entries remain, want %d", len(got), len(want))
	}
}

func TestDeleteDuplicates(t *testing.T) {
	tr := New(4)
	r := geom.Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}
	for i := 0; i < 30; i++ {
		tr.Insert(r, 7)
	}
	for i := 0; i < 30; i++ {
		if !tr.Delete(r, 7) {
			t.Fatalf("duplicate delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all duplicates", tr.Len())
	}
	if tr.Delete(r, 7) {
		t.Error("extra delete succeeded")
	}
}

func TestInsertDeleteInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tr := New(8)
	type rec struct {
		r geom.Rect
		d int64
	}
	var live []rec
	nextID := int64(0)
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Float64() < 0.55 {
			x, y := rng.Float64()*50, rng.Float64()*50
			r := geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*3, MaxY: y + rng.Float64()*3}
			tr.Insert(r, nextID)
			live = append(live, rec{r, nextID})
			nextID++
		} else {
			i := rng.Intn(len(live))
			if !tr.Delete(live[i].r, live[i].d) {
				t.Fatalf("step %d: delete failed", step)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if tr.Len() != len(live) {
			t.Fatalf("step %d: Len=%d, live=%d", step, tr.Len(), len(live))
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("final Validate: %v", err)
	}
	// Final full comparison.
	es := make([]Entry, len(live))
	for i, l := range live {
		es[i] = Entry{Rect: l.r, Data: l.d}
	}
	q := geom.Rect{MinX: 10, MinY: 10, MaxX: 30, MaxY: 30}
	if got, want := collectSearch(tr, q), linearSearch(es, q); !sameIDs(got, want) {
		t.Errorf("final query: %d vs %d hits", len(got), len(want))
	}
}
