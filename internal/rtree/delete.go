package rtree

import "geofootprint/internal/geom"

// Delete removes one entry with exactly the given rectangle and
// payload, returning whether one was found. Removal follows Guttman's
// CondenseTree along the deletion path: nodes on the path that fall
// below the minimum fill are dissolved and their remaining entries
// reinserted, and the root collapses while it has a single child.
// Among duplicate entries, an arbitrary one is removed.
//
// Only the path actually touched by the deletion is condensed, so the
// (legally) underfull edge nodes of an STR bulk-loaded tree are left
// alone until a deletion passes through them.
func (t *Tree) Delete(r geom.Rect, data int64) bool {
	path, idx := t.findLeafPath(t.root, r, data, nil)
	if path == nil {
		return false
	}
	leaf := path[len(path)-1]
	leaf.rects = append(leaf.rects[:idx], leaf.rects[idx+1:]...)
	leaf.data = append(leaf.data[:idx], leaf.data[idx+1:]...)
	t.size--

	// CondenseTree: walk the path bottom-up; dissolve underfull
	// non-root nodes, refresh stored MBRs otherwise.
	var orphans []*node
	for level := len(path) - 1; level >= 1; level-- {
		n := path[level]
		parent := path[level-1]
		ci := childIndex(parent, n)
		if len(n.rects) < t.min {
			parent.rects = append(parent.rects[:ci], parent.rects[ci+1:]...)
			parent.children = append(parent.children[:ci], parent.children[ci+1:]...)
			if len(n.rects) > 0 {
				orphans = append(orphans, n)
			}
			continue
		}
		parent.rects[ci] = mbrOf(n)
	}

	// Reinsert entries of dissolved subtrees at leaf level.
	for _, n := range orphans {
		n.each(func(e Entry) {
			t.size-- // Insert re-increments
			t.Insert(e.Rect, e.Data)
		})
	}
	// Collapse a root left with a single child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root.leaf && len(t.root.rects) == 0 {
		t.root.data = t.root.data[:0] // keep the empty-leaf invariant tidy
	}
	return true
}

// findLeafPath locates a leaf containing the exact (rect, data) entry,
// returning the root-to-leaf path and the entry's index in the leaf.
func (t *Tree) findLeafPath(n *node, r geom.Rect, data int64, prefix []*node) ([]*node, int) {
	path := append(prefix, n)
	if n.leaf {
		for i := range n.rects {
			if n.rects[i] == r && n.data[i] == data {
				out := make([]*node, len(path))
				copy(out, path)
				return out, i
			}
		}
		return nil, -1
	}
	for i, cr := range n.rects {
		if cr.ContainsRect(r) {
			if found, idx := t.findLeafPath(n.children[i], r, data, path); found != nil {
				return found, idx
			}
		}
	}
	return nil, -1
}

func childIndex(parent, child *node) int {
	for i, c := range parent.children {
		if c == child {
			return i
		}
	}
	panic("rtree: child not under parent")
}

// each visits every entry under n.
func (n *node) each(fn func(Entry)) {
	if n.leaf {
		for i := range n.rects {
			fn(Entry{Rect: n.rects[i], Data: n.data[i]})
		}
		return
	}
	for _, c := range n.children {
		c.each(fn)
	}
}
