package rtree

import (
	"math/rand"
	"testing"

	"geofootprint/internal/geom"
)

func BenchmarkBulkHilbert10k(b *testing.B) {
	rng := rand.New(rand.NewSource(71))
	es := randEntries(rng, 10000, 100)
	world := geom.Rect{MinX: 0, MinY: 0, MaxX: 105, MaxY: 105}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkHilbert(es, world, 32)
	}
}
