package rtree

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"

	"geofootprint/internal/geom"
)

// Persistence: trees serialise to a flat wire format (pre-order node
// list with child counts) so a service can load a prebuilt index at
// startup instead of re-inserting millions of entries.

// wireTree is the gob wire format.
type wireTree struct {
	Max, Min int
	Size     int
	Nodes    []wireNode
}

type wireNode struct {
	Leaf     bool
	Rects    []geom.Rect
	Data     []int64 // leaves only
	Children int     // inner nodes: number of direct children
}

// Write serialises the tree to w.
func (t *Tree) Write(w io.Writer) error {
	wt := wireTree{Max: t.max, Min: t.min, Size: t.size}
	var flatten func(n *node)
	flatten = func(n *node) {
		wn := wireNode{Leaf: n.leaf, Rects: n.rects, Data: n.data, Children: len(n.children)}
		wt.Nodes = append(wt.Nodes, wn)
		for _, c := range n.children {
			flatten(c)
		}
	}
	flatten(t.root)
	bw := bufio.NewWriter(w)
	if err := gob.NewEncoder(bw).Encode(&wt); err != nil {
		return fmt.Errorf("rtree: encoding: %w", err)
	}
	return bw.Flush()
}

// ReadFrom deserialises a tree previously written with Write.
func ReadFrom(r io.Reader) (*Tree, error) {
	var wt wireTree
	if err := gob.NewDecoder(bufio.NewReader(r)).Decode(&wt); err != nil {
		return nil, fmt.Errorf("rtree: decoding: %w", err)
	}
	if len(wt.Nodes) == 0 {
		return nil, fmt.Errorf("rtree: empty wire format")
	}
	if wt.Max < 4 || wt.Min < 0 || wt.Min > wt.Max {
		return nil, fmt.Errorf("rtree: implausible fanout [%d,%d]", wt.Min, wt.Max)
	}
	pos := 0
	var rebuild func() (*node, error)
	rebuild = func() (*node, error) {
		if pos >= len(wt.Nodes) {
			return nil, fmt.Errorf("rtree: truncated wire format")
		}
		wn := wt.Nodes[pos]
		pos++
		n := &node{leaf: wn.Leaf, rects: wn.Rects, data: wn.Data}
		if wn.Leaf {
			if len(n.data) != len(n.rects) {
				return nil, fmt.Errorf("rtree: leaf shape mismatch")
			}
			return n, nil
		}
		if wn.Children != len(wn.Rects) {
			return nil, fmt.Errorf("rtree: inner shape mismatch")
		}
		for i := 0; i < wn.Children; i++ {
			c, err := rebuild()
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, c)
		}
		return n, nil
	}
	root, err := rebuild()
	if err != nil {
		return nil, err
	}
	if pos != len(wt.Nodes) {
		return nil, fmt.Errorf("rtree: %d trailing nodes in wire format", len(wt.Nodes)-pos)
	}
	t := &Tree{root: root, size: wt.Size, max: wt.Max, min: wt.Min}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("rtree: deserialised tree invalid: %w", err)
	}
	return t, nil
}
