package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"geofootprint/internal/geom"
)

func randEntries(rng *rand.Rand, n int, world float64) []Entry {
	es := make([]Entry, n)
	for i := range es {
		x := rng.Float64() * world
		y := rng.Float64() * world
		es[i] = Entry{
			Rect: geom.Rect{
				MinX: x, MinY: y,
				MaxX: x + rng.Float64()*world/20,
				MaxY: y + rng.Float64()*world/20,
			},
			Data: int64(i),
		}
	}
	return es
}

// linearSearch is the oracle: scan all entries for intersection.
func linearSearch(es []Entry, q geom.Rect) []int64 {
	var out []int64
	for _, e := range es {
		if e.Rect.Intersects(q) {
			out = append(out, e.Data)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collectSearch(t *Tree, q geom.Rect) []int64 {
	var out []int64
	t.Search(q, func(e Entry) bool {
		out = append(out, e.Data)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Len() != 0 {
		t.Errorf("Len = %d, want 0", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("Height = %d, want 1", tr.Height())
	}
	hits := collectSearch(tr, geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100})
	if len(hits) != 0 {
		t.Errorf("search on empty tree returned %v", hits)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	called := false
	tr.SearchLeaves(geom.Rect{MaxX: 1, MaxY: 1}, func(m geom.Rect, es []Entry) { called = true })
	if called {
		t.Error("SearchLeaves on empty tree should not call back")
	}
}

func TestInsertSmall(t *testing.T) {
	tr := New(4)
	rects := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3},
		{MinX: 0.5, MinY: 0.5, MaxX: 1.5, MaxY: 1.5},
	}
	for i, r := range rects {
		tr.Insert(r, int64(i))
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	hits := collectSearch(tr, geom.Rect{MinX: 0.6, MinY: 0.6, MaxX: 0.7, MaxY: 0.7})
	if !sameIDs(hits, []int64{0, 2}) {
		t.Errorf("hits = %v, want [0 2]", hits)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestInsertManyMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, maxEntries := range []int{4, 8, 32} {
		es := randEntries(rng, 2000, 100)
		tr := New(maxEntries)
		for _, e := range es {
			tr.Insert(e.Rect, e.Data)
		}
		if tr.Len() != len(es) {
			t.Fatalf("M=%d: Len = %d, want %d", maxEntries, tr.Len(), len(es))
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("M=%d: Validate: %v", maxEntries, err)
		}
		if tr.Height() < 2 {
			t.Fatalf("M=%d: tree of 2000 entries should have split", maxEntries)
		}
		for trial := 0; trial < 50; trial++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			q := geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*20, MaxY: y + rng.Float64()*20}
			got := collectSearch(tr, q)
			want := linearSearch(es, q)
			if !sameIDs(got, want) {
				t.Fatalf("M=%d trial %d: got %d hits, want %d", maxEntries, trial, len(got), len(want))
			}
		}
	}
}

func TestBulkMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 5, 31, 32, 33, 1000, 5000} {
		es := randEntries(rng, n, 100)
		tr := Bulk(es, 32)
		if tr.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: Validate: %v", n, err)
		}
		for trial := 0; trial < 30; trial++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			q := geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*30, MaxY: y + rng.Float64()*30}
			got := collectSearch(tr, q)
			want := linearSearch(es, q)
			if !sameIDs(got, want) {
				t.Fatalf("n=%d trial %d: got %d hits, want %d", n, trial, len(got), len(want))
			}
		}
	}
}

func TestBulkDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	es := randEntries(rng, 100, 10)
	before := make([]Entry, len(es))
	copy(before, es)
	Bulk(es, 8)
	for i := range es {
		if es[i] != before[i] {
			t.Fatal("Bulk reordered the caller's slice")
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	es := randEntries(rng, 500, 10)
	tr := Bulk(es, 16)
	count := 0
	tr.Search(geom.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, func(e Entry) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d entries, want 5", count)
	}
}

func TestSearchLeavesCoversAllHits(t *testing.T) {
	// Every entry intersecting q must appear in some visited leaf,
	// and visited leaves' MBRs must intersect q.
	rng := rand.New(rand.NewSource(5))
	es := randEntries(rng, 3000, 100)
	for _, tr := range []*Tree{Bulk(es, 32), insertAll(es, 32)} {
		for trial := 0; trial < 20; trial++ {
			x, y := rng.Float64()*100, rng.Float64()*100
			q := geom.Rect{MinX: x, MinY: y, MaxX: x + 20, MaxY: y + 20}
			seen := map[int64]bool{}
			tr.SearchLeaves(q, func(mbr geom.Rect, leaf []Entry) {
				if !mbr.Intersects(q) {
					t.Fatalf("visited leaf with MBR %v not intersecting %v", mbr, q)
				}
				for _, e := range leaf {
					seen[e.Data] = true
				}
			})
			for _, want := range linearSearch(es, q) {
				if !seen[want] {
					t.Fatalf("entry %d intersects %v but was not in any visited leaf", want, q)
				}
			}
		}
	}
}

func insertAll(es []Entry, m int) *Tree {
	tr := New(m)
	for _, e := range es {
		tr.Insert(e.Rect, e.Data)
	}
	return tr
}

func TestAll(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	es := randEntries(rng, 300, 10)
	tr := insertAll(es, 8)
	seen := map[int64]bool{}
	tr.All(func(e Entry) bool {
		seen[e.Data] = true
		return true
	})
	if len(seen) != len(es) {
		t.Errorf("All visited %d entries, want %d", len(seen), len(es))
	}
	// Early stop.
	count := 0
	tr.All(func(e Entry) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("All early stop visited %d, want 1", count)
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	es := randEntries(rng, 1000, 10)
	tr := Bulk(es, 16)
	s := tr.Stats()
	if s.Entries != 1000 {
		t.Errorf("Entries = %d", s.Entries)
	}
	if s.Height != tr.Height() {
		t.Errorf("Height mismatch: %d vs %d", s.Height, tr.Height())
	}
	if s.LeafNodes < 1000/16 {
		t.Errorf("LeafNodes = %d, implausibly few", s.LeafNodes)
	}
	if s.InnerNodes < 1 {
		t.Errorf("InnerNodes = %d", s.InnerNodes)
	}
}

func TestDuplicateRects(t *testing.T) {
	// Many identical rectangles: splits must still terminate and
	// queries find all of them.
	tr := New(4)
	r := geom.Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}
	for i := 0; i < 100; i++ {
		tr.Insert(r, int64(i))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	hits := collectSearch(tr, r)
	if len(hits) != 100 {
		t.Errorf("found %d duplicates, want 100", len(hits))
	}
}

func TestDegenerateRects(t *testing.T) {
	// Point and line rectangles index and query correctly.
	tr := New(8)
	tr.Insert(geom.Rect{MinX: 5, MinY: 5, MaxX: 5, MaxY: 5}, 1)  // point
	tr.Insert(geom.Rect{MinX: 0, MinY: 3, MaxX: 10, MaxY: 3}, 2) // h-line
	hits := collectSearch(tr, geom.Rect{MinX: 4, MinY: 2, MaxX: 6, MaxY: 6})
	if !sameIDs(hits, []int64{1, 2}) {
		t.Errorf("hits = %v, want [1 2]", hits)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	es := randEntries(rng, b.N+1, 100)
	tr := New(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(es[i].Rect, es[i].Data)
	}
}

func BenchmarkBulk10k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	es := randEntries(rng, 10000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bulk(es, 32)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	es := randEntries(rng, 100000, 100)
	tr := Bulk(es, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		q := geom.Rect{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1}
		tr.Search(q, func(e Entry) bool { return true })
	}
}
