package rtree

import (
	"sort"

	"geofootprint/internal/geom"
)

// BulkHilbert builds an R-tree by Hilbert packing (Kamel & Faloutsos,
// VLDB'94): entries sort by the Hilbert-curve index of their center
// and pack into full leaves in that order, then levels pack upward
// exactly as in STR. Hilbert packing preserves locality along a single
// dimension-free order and is the classic alternative to STR; the
// benchmarks compare the two.
//
// world is the rectangle the Hilbert curve spans (entries outside
// clamp to its boundary); pass the dataset MBR or the unit square.
// maxEntries <= 0 selects DefaultMaxEntries.
func BulkHilbert(entries []Entry, world geom.Rect, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(entries) == 0 {
		return t
	}
	t.size = len(entries)

	type keyed struct {
		key uint64
		e   Entry
	}
	ks := make([]keyed, len(entries))
	for i, e := range entries {
		ks[i] = keyed{key: hilbertIndex(world, e.Rect.Center()), e: e}
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })

	var leaves []*node
	for s := 0; s < len(ks); s += t.max {
		e := s + t.max
		if e > len(ks) {
			e = len(ks)
		}
		leaf := &node{leaf: true}
		for _, k := range ks[s:e] {
			leaf.rects = append(leaf.rects, k.e.Rect)
			leaf.data = append(leaf.data, k.e.Data)
		}
		leaves = append(leaves, leaf)
	}
	level := leaves
	for len(level) > 1 {
		var up []*node
		for s := 0; s < len(level); s += t.max {
			e := s + t.max
			if e > len(level) {
				e = len(level)
			}
			inner := &node{}
			for _, c := range level[s:e] {
				inner.rects = append(inner.rects, mbrOf(c))
				inner.children = append(inner.children, c)
			}
			up = append(up, inner)
		}
		level = up
	}
	t.root = level[0]
	return t
}

// hilbertOrder is the curve resolution: 2^16 cells per axis, giving a
// 32-bit key.
const hilbertOrder = 16

// hilbertIndex maps a point to its position along the Hilbert curve
// over the world rectangle.
func hilbertIndex(world geom.Rect, p geom.Point) uint64 {
	n := uint32(1) << hilbertOrder
	x := quantize(p.X, world.MinX, world.MaxX, n)
	y := quantize(p.Y, world.MinY, world.MaxY, n)
	return hilbertD(n, x, y)
}

func quantize(v, lo, hi float64, n uint32) uint32 {
	if hi <= lo {
		return 0
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f >= 1 {
		f = 1 - 1e-12
	}
	return uint32(f * float64(n))
}

// hilbertD converts (x, y) cell coordinates to the distance along the
// Hilbert curve of side n (n a power of two) — the standard iterative
// xy-to-d transform.
func hilbertD(n, x, y uint32) uint64 {
	var rx, ry uint32
	var d uint64
	for s := n / 2; s > 0; s /= 2 {
		if x&s > 0 {
			rx = 1
		} else {
			rx = 0
		}
		if y&s > 0 {
			ry = 1
		} else {
			ry = 0
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
