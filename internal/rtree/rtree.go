// Package rtree implements an in-memory R-tree over 2D rectangles
// with integer payloads, the index substrate of Section 6 of the
// paper. Two construction paths are provided:
//
//   - one-by-one insertion in the style of Guttman (SIGMOD'84) with
//     quadratic split, and
//   - STR bulk loading (sort-tile-recursive), which packs a static
//     entry set into a tree with full nodes.
//
// Both trees answer intersection range queries; SearchLeaves exposes
// leaf-level traversal for the per-leaf spatial joins of the batch
// similarity search (Section 6.1.2).
package rtree

import (
	"fmt"
	"math"
	"sort"

	"geofootprint/internal/geom"
)

// Entry is one indexed item: a rectangle key and an opaque integer
// payload (a user ID in the RoI index, or a footprint ID in the
// user-centric index).
type Entry struct {
	Rect geom.Rect
	Data int64
}

// DefaultMaxEntries is the default node capacity M; the minimum fill
// m defaults to M*2/5 (40%), Guttman's recommendation.
const DefaultMaxEntries = 32

// Tree is an R-tree. The zero value is not usable; construct with New
// or Bulk.
type Tree struct {
	root *node
	size int
	max  int
	min  int
}

type node struct {
	leaf     bool
	rects    []geom.Rect
	children []*node // internal nodes only
	data     []int64 // leaves only
}

// New returns an empty R-tree with node capacity maxEntries
// (DefaultMaxEntries if <= 0).
func New(maxEntries int) *Tree {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	t := &Tree{max: maxEntries, min: maxEntries * 2 / 5}
	t.root = &node{leaf: true}
	return t
}

// Len returns the number of entries in the tree.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (a tree holding only a root
// leaf has height 1).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Insert adds an entry to the tree (Guttman insertion with quadratic
// split).
func (t *Tree) Insert(r geom.Rect, data int64) {
	t.size++
	split := t.insert(t.root, r, data)
	if split != nil {
		// Root overflowed: grow the tree by one level.
		old := t.root
		t.root = &node{
			leaf:     false,
			rects:    []geom.Rect{mbrOf(old), mbrOf(split)},
			children: []*node{old, split},
		}
	}
}

// insert descends to a leaf and returns the new sibling if the node
// split, nil otherwise.
func (t *Tree) insert(n *node, r geom.Rect, data int64) *node {
	if n.leaf {
		n.rects = append(n.rects, r)
		n.data = append(n.data, data)
		if len(n.rects) > t.max {
			return t.splitNode(n)
		}
		return nil
	}
	i := chooseSubtree(n, r)
	n.rects[i] = n.rects[i].Extend(r)
	split := t.insert(n.children[i], r, data)
	if split == nil {
		return nil
	}
	n.rects[i] = mbrOf(n.children[i])
	n.rects = append(n.rects, mbrOf(split))
	n.children = append(n.children, split)
	if len(n.rects) > t.max {
		return t.splitNode(n)
	}
	return nil
}

// chooseSubtree picks the child needing the least area enlargement to
// cover r, breaking ties by smaller area (Guttman's ChooseLeaf).
func chooseSubtree(n *node, r geom.Rect) int {
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, c := range n.rects {
		enl := c.Enlargement(r)
		area := c.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitNode performs Guttman's quadratic split, moving roughly half of
// n's entries into a returned new sibling.
func (t *Tree) splitNode(n *node) *node {
	count := len(n.rects)
	// PickSeeds: the pair wasting the most area together.
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < count; i++ {
		for j := i + 1; j < count; j++ {
			d := n.rects[i].Extend(n.rects[j]).Area() - n.rects[i].Area() - n.rects[j].Area()
			if d > worst {
				worst, seedA, seedB = d, i, j
			}
		}
	}

	assigned := make([]int8, count) // 0 = pending, 1 = stay, 2 = move
	assigned[seedA], assigned[seedB] = 1, 2
	mbrA, mbrB := n.rects[seedA], n.rects[seedB]
	nA, nB := 1, 1
	pending := count - 2

	for pending > 0 {
		// Force-assign when one group must take all remaining
		// entries to reach minimum fill.
		if nA+pending == t.min {
			for i := range assigned {
				if assigned[i] == 0 {
					assigned[i] = 1
					mbrA = mbrA.Extend(n.rects[i])
				}
			}
			break
		}
		if nB+pending == t.min {
			for i := range assigned {
				if assigned[i] == 0 {
					assigned[i] = 2
					mbrB = mbrB.Extend(n.rects[i])
				}
			}
			break
		}
		// PickNext: the pending entry with the greatest preference
		// for one group.
		next, nextDiff := -1, -1.0
		var nextDA, nextDB float64
		for i := range assigned {
			if assigned[i] != 0 {
				continue
			}
			dA := mbrA.Enlargement(n.rects[i])
			dB := mbrB.Enlargement(n.rects[i])
			if diff := math.Abs(dA - dB); diff > nextDiff {
				next, nextDiff, nextDA, nextDB = i, diff, dA, dB
			}
		}
		toA := nextDA < nextDB
		if nextDA == nextDB {
			// Resolve by smaller area, then by fewer entries.
			if mbrA.Area() != mbrB.Area() {
				toA = mbrA.Area() < mbrB.Area()
			} else {
				toA = nA <= nB
			}
		}
		if toA {
			assigned[next] = 1
			mbrA = mbrA.Extend(n.rects[next])
			nA++
		} else {
			assigned[next] = 2
			mbrB = mbrB.Extend(n.rects[next])
			nB++
		}
		pending--
	}

	// Partition in place: group 1 stays in n, group 2 moves out.
	sib := &node{leaf: n.leaf}
	keepRects := n.rects[:0]
	var keepChildren []*node
	var keepData []int64
	if n.leaf {
		keepData = n.data[:0]
	} else {
		keepChildren = n.children[:0]
	}
	for i, a := range assigned {
		if a == 1 {
			keepRects = append(keepRects, n.rects[i])
			if n.leaf {
				keepData = append(keepData, n.data[i])
			} else {
				keepChildren = append(keepChildren, n.children[i])
			}
		} else {
			sib.rects = append(sib.rects, n.rects[i])
			if n.leaf {
				sib.data = append(sib.data, n.data[i])
			} else {
				sib.children = append(sib.children, n.children[i])
			}
		}
	}
	n.rects = keepRects
	n.data = keepData
	n.children = keepChildren
	return sib
}

func mbrOf(n *node) geom.Rect {
	return geom.MBR(n.rects)
}

// Search calls fn for every entry whose rectangle intersects q
// (closed-box semantics). Traversal stops early if fn returns false.
func (t *Tree) Search(q geom.Rect, fn func(Entry) bool) {
	t.search(t.root, q, fn)
}

func (t *Tree) search(n *node, q geom.Rect, fn func(Entry) bool) bool {
	if n.leaf {
		for i, r := range n.rects {
			if r.Intersects(q) {
				if !fn(Entry{Rect: r, Data: n.data[i]}) {
					return false
				}
			}
		}
		return true
	}
	for i, r := range n.rects {
		if r.Intersects(q) {
			if !t.search(n.children[i], q, fn) {
				return false
			}
		}
	}
	return true
}

// SearchLeaves visits every leaf whose MBR intersects q and passes the
// leaf's full entry set to fn, together with the leaf MBR. This is the
// access path of the batch similarity search (Section 6.1.2): the
// caller joins the leaf contents against the whole query footprint.
// The callback must not retain the slice.
func (t *Tree) SearchLeaves(q geom.Rect, fn func(leafMBR geom.Rect, entries []Entry)) {
	var buf []Entry
	var walk func(n *node, nodeMBR geom.Rect)
	walk = func(n *node, nodeMBR geom.Rect) {
		if n.leaf {
			buf = buf[:0]
			for i, r := range n.rects {
				buf = append(buf, Entry{Rect: r, Data: n.data[i]})
			}
			fn(nodeMBR, buf)
			return
		}
		for i, r := range n.rects {
			if r.Intersects(q) {
				walk(n.children[i], r)
			}
		}
	}
	if t.size == 0 {
		return
	}
	if root := mbrOf(t.root); root.Intersects(q) {
		walk(t.root, root)
	}
}

// All calls fn for every entry in the tree.
func (t *Tree) All(fn func(Entry) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n.leaf {
			for i, r := range n.rects {
				if !fn(Entry{Rect: r, Data: n.data[i]}) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// Stats summarises the tree's shape.
type Stats struct {
	Entries    int
	Height     int
	LeafNodes  int
	InnerNodes int
}

// Stats returns size statistics of the tree.
func (t *Tree) Stats() Stats {
	s := Stats{Entries: t.size, Height: t.Height()}
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			s.LeafNodes++
			return
		}
		s.InnerNodes++
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return s
}

// Validate checks the structural invariants of the tree: parent MBRs
// exactly cover their children, node occupancy is within [min, max]
// (except the root), all leaves are at the same depth, and the entry
// count matches Len. It returns the first violation found.
func (t *Tree) Validate() error {
	leafDepth := -1
	entries := 0
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		count := len(n.rects)
		// Occupancy: every non-root node holds at least one entry
		// (STR packing can leave edge nodes below Guttman's minimum
		// fill, so the lower bound here is 1, not t.min) and no node
		// exceeds the capacity.
		if n != t.root && count < 1 {
			return fmt.Errorf("rtree: empty node at depth %d", depth)
		}
		if count > t.max {
			return fmt.Errorf("rtree: node at depth %d has %d entries, max %d",
				depth, count, t.max)
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaves at depths %d and %d", leafDepth, depth)
			}
			entries += count
			if n.children != nil {
				return fmt.Errorf("rtree: leaf with children")
			}
			if len(n.data) != count {
				return fmt.Errorf("rtree: leaf data/rects length mismatch")
			}
			return nil
		}
		if len(n.children) != count {
			return fmt.Errorf("rtree: inner children/rects length mismatch")
		}
		for i, c := range n.children {
			if got := mbrOf(c); got != n.rects[i] {
				return fmt.Errorf("rtree: stale MBR at depth %d child %d: stored %v, actual %v",
					depth, i, n.rects[i], got)
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if entries != t.size {
		return fmt.Errorf("rtree: counted %d entries, Len says %d", entries, t.size)
	}
	return nil
}

// Bulk builds an R-tree over the given entries with STR
// (sort-tile-recursive) packing: entries are sorted by x-center,
// tiled into vertical slabs, each slab sorted by y-center and cut
// into full leaves; the process repeats on the leaf MBRs until a
// single root remains. maxEntries <= 0 selects DefaultMaxEntries.
func Bulk(entries []Entry, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(entries) == 0 {
		return t
	}
	t.size = len(entries)

	leaves := packLeaves(entries, t.max)
	level := leaves
	for len(level) > 1 {
		level = packInner(level, t.max)
	}
	t.root = level[0]
	return t
}

func packLeaves(entries []Entry, m int) []*node {
	es := make([]Entry, len(entries))
	copy(es, entries)
	sort.Slice(es, func(i, j int) bool {
		return es[i].Rect.Center().X < es[j].Rect.Center().X
	})
	nLeaves := (len(es) + m - 1) / m
	nSlabs := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	slabSize := nSlabs * m

	var leaves []*node
	for s := 0; s < len(es); s += slabSize {
		e := s + slabSize
		if e > len(es) {
			e = len(es)
		}
		slab := es[s:e]
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].Rect.Center().Y < slab[j].Rect.Center().Y
		})
		for ls := 0; ls < len(slab); ls += m {
			le := ls + m
			if le > len(slab) {
				le = len(slab)
			}
			leaf := &node{leaf: true}
			for _, en := range slab[ls:le] {
				leaf.rects = append(leaf.rects, en.Rect)
				leaf.data = append(leaf.data, en.Data)
			}
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func packInner(level []*node, m int) []*node {
	type boxed struct {
		mbr geom.Rect
		n   *node
	}
	bs := make([]boxed, len(level))
	for i, n := range level {
		bs[i] = boxed{mbrOf(n), n}
	}
	sort.Slice(bs, func(i, j int) bool {
		return bs[i].mbr.Center().X < bs[j].mbr.Center().X
	})
	nNodes := (len(bs) + m - 1) / m
	nSlabs := int(math.Ceil(math.Sqrt(float64(nNodes))))
	slabSize := nSlabs * m

	var out []*node
	for s := 0; s < len(bs); s += slabSize {
		e := s + slabSize
		if e > len(bs) {
			e = len(bs)
		}
		slab := bs[s:e]
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].mbr.Center().Y < slab[j].mbr.Center().Y
		})
		for ns := 0; ns < len(slab); ns += m {
			ne := ns + m
			if ne > len(slab) {
				ne = len(slab)
			}
			inner := &node{}
			for _, b := range slab[ns:ne] {
				inner.rects = append(inner.rects, b.mbr)
				inner.children = append(inner.children, b.n)
			}
			out = append(out, inner)
		}
	}
	return out
}
