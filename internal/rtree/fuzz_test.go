package rtree

import (
	"sort"
	"testing"

	"geofootprint/internal/geom"
)

// FuzzTreeOps drives an R-tree with a byte-coded operation sequence
// (insert / delete / search) and cross-checks every state against a
// linear model plus the structural validator. Shared coordinates are
// forced by deriving geometry from small byte values.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{10, 200, 30, 44, 0, 0, 0, 1, 2, 250})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 512 {
			ops = ops[:512]
		}
		tr := New(4) // small fanout: splits and underflows happen fast
		type rec struct {
			r geom.Rect
			d int64
		}
		var live []rec
		nextID := int64(0)
		for i := 0; i+2 < len(ops); i += 3 {
			op, a, b := ops[i], ops[i+1], ops[i+2]
			x, y := float64(a%16), float64(b%16)
			w, h := float64(op%4)+0.5, float64((op/4)%4)+0.5
			r := geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
			switch op % 3 {
			case 0: // insert
				tr.Insert(r, nextID)
				live = append(live, rec{r, nextID})
				nextID++
			case 1: // delete a live entry (if any)
				if len(live) == 0 {
					continue
				}
				vi := int(a) % len(live)
				v := live[vi]
				if !tr.Delete(v.r, v.d) {
					t.Fatalf("delete of live entry failed")
				}
				live[vi] = live[len(live)-1]
				live = live[:len(live)-1]
			default: // search and compare with the model
				q := geom.Rect{MinX: x - 2, MinY: y - 2, MaxX: x + 3, MaxY: y + 3}
				var got []int64
				tr.Search(q, func(e Entry) bool {
					got = append(got, e.Data)
					return true
				})
				var want []int64
				for _, v := range live {
					if v.r.Intersects(q) {
						want = append(want, v.d)
					}
				}
				sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if len(got) != len(want) {
					t.Fatalf("search: %d hits, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("search hit %d: %d, want %d", i, got[i], want[i])
					}
				}
			}
			if tr.Len() != len(live) {
				t.Fatalf("Len %d, model %d", tr.Len(), len(live))
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	})
}
