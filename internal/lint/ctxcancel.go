package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"geofootprint/internal/lint/analysis"
)

// CtxCancel guards PR 5's cancellation contract: a function that
// advertises cooperative cancellation with a `//geo:cancellable` doc
// marker must actually poll its context from every outermost loop —
// otherwise a cancelled or expired query keeps burning CPU across the
// whole corpus and the deadline middleware's 503 is a lie.
//
// The check is syntactic on purpose, which is why the cancellation
// points in internal/search and internal/engine are written as inline
// `ctx.Err()` polls rather than hidden behind a helper: each OUTERMOST
// for/range statement in a marked function must contain, anywhere in
// its subtree, a call to the context's Err method or a receive from
// its Done channel. Closures spawned inside the loop count through
// containment (the worker-pool pattern: the loop body launches
// goroutines that do the polling). Nested loops are not checked
// separately — one poll anywhere under the outermost loop bounds the
// work between polls, because every iteration of an inner loop is
// inside some iteration of the outer one.
//
// Loops whose trip count is small and bounded (over the handful of
// query regions, over k results) are suppressed case by case with
// `//lint:ignore ctxcancel <reason>`.
var CtxCancel = &analysis.Analyzer{
	Name: "ctxcancel",
	Doc: "flag outermost loops in //geo:cancellable functions that never poll " +
		"ctx.Err() or receive from ctx.Done()",
	Run: runCtxCancel,
}

// cancellableMarker tags a function that promises cooperative
// cancellation.
const cancellableMarker = "//geo:cancellable"

func runCtxCancel(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isCancellable(fd) {
				continue
			}
			checkCancellableFunc(pass, fd)
		}
	}
	return nil
}

// isCancellable reports whether the function's doc comment carries the
// //geo:cancellable marker. Directive-style comments are stripped by
// CommentGroup.Text, so the raw comment list is scanned.
func isCancellable(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, cancellableMarker) {
			return true
		}
	}
	return false
}

// checkCancellableFunc reports every outermost for/range statement in
// fd that has no cancellation point in its subtree. The walk stops at
// each loop it finds, so nested loops are covered by their enclosing
// loop's poll.
func checkCancellableFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body ast.Node
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n
		case *ast.RangeStmt:
			body = n
		default:
			return true
		}
		if !pollsContext(pass, body) {
			pass.Reportf(n.Pos(),
				"loop in //geo:cancellable function %s never polls the context; add a ctx.Err() check or <-ctx.Done() receive (or //lint:ignore ctxcancel <reason> for a bounded loop)",
				fd.Name.Name)
		}
		return false // nested loops are contained; do not re-check them
	})
}

// pollsContext reports whether the subtree contains a cancellation
// point: a call to (context.Context).Err, or a receive from
// (context.Context).Done. Identified by the method's defining package
// being "context", so it also matches user-defined interfaces that
// embed context.Context.
func pollsContext(pass *analysis.Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isContextMethod(pass, n, "Err") {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isContextMethod(pass, call, "Done") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isContextMethod reports whether the call invokes the named method of
// package context's Context interface.
func isContextMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	return fn != nil && fn.Name() == name &&
		fn.Pkg() != nil && fn.Pkg().Path() == "context"
}
