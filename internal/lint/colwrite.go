package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"geofootprint/internal/lint/analysis"
)

// ColWrite guards the columnar snapshot writer seam, the same way
// atomicwrite guards the rename dance one level below it. The columnar
// format's integrity contract — every section CRC-consistent, the file
// either complete under its final name or absent — holds only when the
// encode happens inside store.WriteColumnarFS, which runs it through
// WriteFileAtomicFS (temp file, fsync, rename, directory fsync). A
// colstore.Snapshot.EncodeTo call anywhere else on a persistence path
// (package path segment store, wal or ingest) is a snapshot that can
// land torn under its final name, so this analyzer flags it unless the
// enclosing function is the WriteColumnar helper family itself.
//
// Package colstore is not a persistence package (it encodes to an
// abstract io.Writer and never touches file names), so its own tests
// and the encoder implementation are naturally out of scope.
var ColWrite = &analysis.Analyzer{
	Name: "colwrite",
	Doc: "flag colstore.Snapshot.EncodeTo on persistence paths outside the " +
		"WriteColumnar/WriteColumnarFS writer seam",
	Run: runColWrite,
}

// colHelperName prefixes the functions allowed to encode a columnar
// snapshot on a persistence path: WriteColumnar and its
// explicit-filesystem form WriteColumnarFS.
const colHelperName = "WriteColumnar"

func runColWrite(pass *analysis.Pass) error {
	if !persistencePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasPrefix(fd.Name.Name, colHelperName) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isSnapshotEncodeTo(pass.TypesInfo, call) {
					pass.Reportf(call.Pos(),
						"colstore Snapshot.EncodeTo outside %s on a persistence path; columnar snapshots must go through the atomic writer seam",
						colHelperName)
				}
				return true
			})
		}
	}
	return nil
}

// isSnapshotEncodeTo reports whether the call is the EncodeTo method of
// colstore.Snapshot (directly or through a pointer receiver).
func isSnapshotEncodeTo(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "EncodeTo" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOrPointee(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "Snapshot" &&
		named.Obj().Pkg() != nil && pathHasSegment(named.Obj().Pkg().Path(), "colstore")
}
