package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"geofootprint/internal/lint/analysis"
)

// AtomicWrite guards the durability layer's crash-atomicity contract
// (the PR 3 truncated-checkpoint class: a snapshot written with a raw
// os.Create could be half on disk when the WAL was reset). In the
// persistence packages (path segment store, wal or ingest) it flags:
//
//   - os.Create and os.WriteFile anywhere outside WriteFileAtomic —
//     a raw write leaves a torn file under the final name on crash;
//   - os.Rename outside WriteFileAtomic — rename-based commits belong
//     in the one audited helper;
//   - os.Rename inside WriteFileAtomic that is not followed by a
//     parent-directory fsync — without it the rename itself is not
//     durable, and a crash can un-commit an acknowledged checkpoint.
//
// Append-only file handling (os.OpenFile, as the WAL uses) is out of
// scope: it has no rename commit point.
var AtomicWrite = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "flag raw file writes (os.Create/os.WriteFile/os.Rename) on persistence paths " +
		"outside WriteFileAtomic, and renames without a parent-directory fsync",
	Run: runAtomicWrite,
}

// atomicHelperName is the one function allowed to perform the
// tmp-write + fsync + rename + dir-fsync dance.
const atomicHelperName = "WriteFileAtomic"

func runAtomicWrite(pass *analysis.Pass) error {
	if !persistencePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncWrites(pass, fd)
		}
	}
	return nil
}

func checkFuncWrites(pass *analysis.Pass, fd *ast.FuncDecl) {
	inHelper := fd.Name.Name == atomicHelperName
	var renames []*ast.CallExpr
	var lastSyncEnd token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch osFuncName(pass.TypesInfo, call) {
		case "Create", "WriteFile":
			if !inHelper {
				pass.Reportf(call.Pos(),
					"os.%s on a persistence path is not crash-atomic; write through store.%s",
					osFuncName(pass.TypesInfo, call), atomicHelperName)
			}
		case "Rename":
			if !inHelper {
				pass.Reportf(call.Pos(),
					"os.Rename outside %s on a persistence path; rename commits belong in the audited helper",
					atomicHelperName)
			} else {
				renames = append(renames, call)
			}
		}
		if isFileSyncCall(pass.TypesInfo, call) && call.End() > lastSyncEnd {
			lastSyncEnd = call.End()
		}
		return true
	})
	for _, r := range renames {
		if lastSyncEnd <= r.End() {
			pass.Reportf(r.Pos(),
				"os.Rename without a parent-directory fsync after it; the rename is not durable until the directory entry is synced")
		}
	}
}

// osFuncName returns the name of the called package-level os function,
// or "" when the call is not into package os.
func osFuncName(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "" // method on os.File etc., not a package function
	}
	return fn.Name()
}

// isFileSyncCall reports whether the call is (*os.File).Sync — the
// fsync WriteFileAtomic must issue on the parent directory after its
// rename.
func isFileSyncCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	named := namedOrPointee(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "File" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os"
}
