package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"geofootprint/internal/lint/analysis"
)

// AtomicWrite guards the durability layer's crash-atomicity contract
// (the PR 3 truncated-checkpoint class: a snapshot written with a raw
// os.Create could be half on disk when the WAL was reset). In the
// persistence packages (path segment store, wal or ingest) it flags:
//
//   - os.Create and os.WriteFile anywhere outside WriteFileAtomic —
//     a raw write leaves a torn file under the final name on crash;
//   - os.Rename outside WriteFileAtomic — rename-based commits belong
//     in the one audited helper;
//   - os.Rename inside WriteFileAtomic that is not followed by a
//     parent-directory fsync — without it the rename itself is not
//     durable, and a crash can un-commit an acknowledged checkpoint.
//
// Since the durability layer moved onto the faultfs.FS seam (PR 5),
// the same three rules apply to its Rename method and its File.Sync —
// a raw fsys.Rename outside the helper tears files exactly as
// os.Rename does, just through one more interface. WriteFileAtomicFS,
// the explicit-filesystem form of the helper, is covered by the same
// allowance as WriteFileAtomic.
//
// Append-only file handling (os.OpenFile, as the WAL uses) is out of
// scope: it has no rename commit point.
var AtomicWrite = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc: "flag raw file writes (os.Create/os.WriteFile and os/faultfs Rename) on persistence paths " +
		"outside WriteFileAtomic/WriteFileAtomicFS, and renames without a parent-directory fsync",
	Run: runAtomicWrite,
}

// atomicHelperName prefixes the functions allowed to perform the
// tmp-write + fsync + rename + dir-fsync dance: WriteFileAtomic and
// its explicit-filesystem form WriteFileAtomicFS.
const atomicHelperName = "WriteFileAtomic"

func runAtomicWrite(pass *analysis.Pass) error {
	if !persistencePkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncWrites(pass, fd)
		}
	}
	return nil
}

func checkFuncWrites(pass *analysis.Pass, fd *ast.FuncDecl) {
	inHelper := strings.HasPrefix(fd.Name.Name, atomicHelperName)
	var renames []*ast.CallExpr
	var lastSyncEnd token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch osFuncName(pass.TypesInfo, call) {
		case "Create", "WriteFile":
			if !inHelper {
				pass.Reportf(call.Pos(),
					"os.%s on a persistence path is not crash-atomic; write through store.%s",
					osFuncName(pass.TypesInfo, call), atomicHelperName)
			}
		case "Rename":
			if !inHelper {
				pass.Reportf(call.Pos(),
					"os.Rename outside %s on a persistence path; rename commits belong in the audited helper",
					atomicHelperName)
			} else {
				renames = append(renames, call)
			}
		}
		if isFaultFSRename(pass.TypesInfo, call) {
			if !inHelper {
				pass.Reportf(call.Pos(),
					"faultfs Rename outside %s on a persistence path; rename commits belong in the audited helper",
					atomicHelperName)
			} else {
				renames = append(renames, call)
			}
		}
		if isFileSyncCall(pass.TypesInfo, call) && call.End() > lastSyncEnd {
			lastSyncEnd = call.End()
		}
		return true
	})
	for _, r := range renames {
		if lastSyncEnd <= r.End() {
			pass.Reportf(r.Pos(),
				"rename without a parent-directory fsync after it; the rename is not durable until the directory entry is synced")
		}
	}
}

// isFaultFSRename reports whether the call is the Rename method of the
// faultfs filesystem seam (the interface or any implementation defined
// in a faultfs package) — the crash-atomicity rules follow the
// operation, not which seam issues it.
func isFaultFSRename(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Rename" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return fn.Pkg() != nil && pathHasSegment(fn.Pkg().Path(), "faultfs")
}

// osFuncName returns the name of the called package-level os function,
// or "" when the call is not into package os.
func osFuncName(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "" // method on os.File etc., not a package function
	}
	return fn.Name()
}

// isFileSyncCall reports whether the call is (*os.File).Sync or
// (faultfs.File).Sync — the fsync WriteFileAtomic must issue on the
// parent directory after its rename, through either seam.
func isFileSyncCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Name() != "Sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if fn.Pkg() != nil && pathHasSegment(fn.Pkg().Path(), "faultfs") {
		return true
	}
	named := namedOrPointee(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "File" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "os"
}
