package lint

import (
	"go/ast"
	"go/types"

	"geofootprint/internal/lint/analysis"
)

// BodyClose is the flow-sensitive *http.Response body-leak analyzer.
//
// The serving plane makes HTTP calls in three places — the router's
// shard fan-out (internal/router), the feed client (cmd/geofeed) and
// the scatter-gather CLI (cmd/georouter) — and every one of them must
// close the response body on every path, or the underlying connection
// is never returned to the Transport's pool. Under the router's
// scatter-gather load the symptom is not an error but a slow
// starvation: each leaked body pins a connection, the pool drains, and
// tail latency climbs until the process runs out of file descriptors.
//
// The contract: every call returning an *http.Response must reach a
// Body.Close on every returning path — directly, via `defer
// resp.Body.Close()`, through a body alias (`b := resp.Body; b.Close()`),
// or inside a deferred closure. The error leg of the idiomatic
// `resp, err := client.Do(req); if err != nil { return err }` is NOT a
// leak: on that edge the response is nil by the net/http contract, and
// the analyzer's branch refinement discharges the obligation there.
// Escapes (returning the response, storing it, passing it on) transfer
// responsibility to the receiver.
var BodyClose = &analysis.Analyzer{
	Name: "bodyclose",
	Doc:  "*http.Response bodies must be closed on every returning path",
	Run:  runBodyClose,
}

var bodyCloseSpec = &leakSpec{
	isResourceType: isHTTPResponsePointer,
	releaseIdent: func(call *ast.CallExpr) (*ast.Ident, holderKind, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
			return nil, 0, false
		}
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.Ident:
			// b.Close() where b aliases resp.Body.
			return x, holderDerived, true
		case *ast.SelectorExpr:
			// resp.Body.Close().
			if x.Sel.Name != "Body" {
				return nil, 0, false
			}
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				return id, holderResource, true
			}
		}
		return nil, 0, false
	},
	deriveSel:    func(name string) bool { return name == "Body" },
	discardMsg:   "http response discarded without closing its body",
	leakMsg:      "response body is not closed on every path",
	reacquireMsg: "response overwritten by a new request before its body was closed",
}

func runBodyClose(pass *analysis.Pass) error {
	return runLeakAnalyzer(pass, bodyCloseSpec)
}

// isHTTPResponsePointer reports whether t is *net/http.Response.
func isHTTPResponsePointer(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Response" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "net/http"
}
