package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"geofootprint/internal/lint/analysis"
)

// PinLeak is the flow-sensitive epoch-pin leak analyzer.
//
// PR 6's MVCC store hands out read pins: EpochStore.Acquire returns a
// *store.Epoch whose refcount keeps the whole epoch — its FootprintDB
// and aux view — alive. A pin that is acquired but not Released on
// some path permanently blocks epoch reclamation: every snapshot from
// that point on is retained, memory grows without bound, and nothing
// crashes — the race detector is silent because a leak is not a race.
// The one incident class this analyzer exists for is the early-return
// handler leg (`if err != nil { http.Error(...); return }`) that was
// added after the Acquire but before the Release.
//
// The contract enforced on every function outside internal/store:
// every call to an acquire-shaped callee (named Acquire, or a wrapper
// whose name ends in Acquire, returning a *store.Epoch) must reach a
// Release on every path that returns — directly, via `defer
// ep.Release()`, or inside a deferred closure. Paths that panic or
// os.Exit are exempt (defers run during unwinding; os.Exit forfeits
// the process). Escapes discharge the local obligation: a pin that is
// returned, stored into a struct, or passed to another function is
// that code's responsibility, not this function's.
//
// Publish also returns a *Epoch but takes no pin — it is excluded by
// the acquire-name rule, not by type.
var PinLeak = &analysis.Analyzer{
	Name: "pinleak",
	Doc:  "epoch pins (store.Epoch Acquire) must be Released on every returning path",
	Run:  runPinLeak,
}

var pinLeakSpec = &leakSpec{
	skipPkg: func(pkg *types.Package) bool {
		// The store package implements the pin protocol; its internal
		// refcount plumbing is not subject to the caller-side contract.
		return pathHasSegment(pkg.Path(), "store")
	},
	isResourceType: isEpochPointer,
	isAcquire: func(info *types.Info, call *ast.CallExpr) bool {
		fn := calleeFunc(info, call)
		if fn == nil {
			return false
		}
		name := fn.Name()
		return strings.EqualFold(name, "acquire") || strings.HasSuffix(name, "Acquire")
	},
	releaseIdent: func(call *ast.CallExpr) (*ast.Ident, holderKind, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
			return nil, 0, false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return nil, 0, false
		}
		return id, holderResource, true
	},
	discardMsg:   "epoch pin acquired and discarded: the pin can never be Released",
	leakMsg:      "epoch pin is not Released on every path",
	reacquireMsg: "epoch pin overwritten by a new Acquire before being Released",
}

func runPinLeak(pass *analysis.Pass) error {
	return runLeakAnalyzer(pass, pinLeakSpec)
}

// isEpochPointer reports whether t is *store.Epoch: a pointer to a
// named type Epoch whose defining package path has a "store" segment.
func isEpochPointer(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Name() != "Epoch" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pathHasSegment(pkg.Path(), "store")
}
