package lint

import (
	"go/ast"
	"go/types"

	"geofootprint/internal/lint/analysis"
)

// EpochMut guards PR 6's MVCC contract: a database reached through an
// Epoch (a published, immutable snapshot) or through an EpochBuilder's
// DB() accessor must never be mutated directly. Published epochs are
// read lock-free by concurrent queries, and the builder's database is
// aliased by every snapshot frozen from it — an in-place mutation
// outside the builder's copy-on-write methods is a data race on the
// serving hot path that -race only catches when a query happens to
// look. The analyzer flags, outside the Epoch types' defining package
// (internal/store):
//
//   - calls to a mutating FootprintDB method (Upsert, AppendRoIs,
//     Remove, Merge, Compact, ComputeNorms, ComputeNormsBalanced,
//     EnableSketches, DisableSketches) whose receiver is `x.DB()` for
//     an Epoch or EpochBuilder x;
//   - the same calls on a local variable assigned (possibly through a
//     chain of local aliases) from such a `DB()` call.
//
// Reads (Len, IndexOf, TopK via the engine, EncodeTo) are untouched,
// and mutation through the EpochBuilder's own methods — the one legal
// seam, which copy-on-writes and republishes — is what the diagnostic
// points to.
var EpochMut = &analysis.Analyzer{
	Name: "epochmut",
	Doc: "flag direct mutation of epoch-published databases outside internal/store; " +
		"published epochs are immutable — mutate through an EpochBuilder and republish",
	Run: runEpochMut,
}

// footprintDBMutators are the FootprintDB methods that mutate the
// database in place.
var footprintDBMutators = map[string]bool{
	"Upsert":               true,
	"AppendRoIs":           true,
	"Remove":               true,
	"Merge":                true,
	"Compact":              true,
	"ComputeNorms":         true,
	"ComputeNormsBalanced": true,
	"EnableSketches":       true,
	"DisableSketches":      true,
}

// epochTypes are the internal/store types whose DB() yields
// epoch-published (or snapshot-aliased) state.
var epochTypes = map[string]bool{
	"Epoch":        true,
	"EpochBuilder": true,
}

func runEpochMut(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkEpochMutFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkEpochMutFunc analyzes one function body: first propagate
// "derived from <epoch>.DB()" through local assignment chains to a
// fixed point, then report mutating method calls on tainted values.
func checkEpochMutFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	tainted := map[types.Object]bool{}
	isEpochDB := func(e ast.Expr) bool {
		if epochDBCall(pass, e) {
			return true
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return tainted[pass.TypesInfo.ObjectOf(id)]
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !isEpochDB(as.Rhs[i]) {
					continue
				}
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !footprintDBMutators[sel.Sel.Name] {
			return true
		}
		if !isForeignFootprintDB(pass, sel) || !isEpochDB(sel.X) {
			return true
		}
		pass.Reportf(call.Pos(),
			"mutating call FootprintDB.%s on an epoch-published database; published epochs are immutable and read lock-free — mutate through an EpochBuilder and republish",
			sel.Sel.Name)
		return true
	})
}

// epochDBCall reports whether e is `x.DB()` for an Epoch or
// EpochBuilder x defined outside the current package.
func epochDBCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "DB" {
		return false
	}
	named := namedOrPointee(pass.TypesInfo.TypeOf(sel.X))
	if named == nil || !epochTypes[named.Obj().Name()] {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg() != pass.Pkg
}
