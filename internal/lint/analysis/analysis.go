// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis API surface that geolint's analyzers
// are written against.
//
// The container this repo builds in has no module proxy access and an
// empty module cache, so the real x/tools framework cannot be
// vendored. Rather than give up the analyzer discipline, geolint
// defines the same shapes — Analyzer, Pass, Diagnostic — with the same
// field names and semantics, so each analyzer's Run function is
// line-for-line portable to the upstream framework (and to `go vet
// -vettool`) the day the dependency becomes available. Only the
// driver (internal/lint/loader plus lint.Run) is bespoke.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check: a name, a human-readable
// contract, and the function that applies it to a package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore <name> suppression directives.
	Name string
	// Doc states the invariant the analyzer enforces and why.
	Doc string
	// Run applies the analyzer to a single type-checked package,
	// reporting violations through pass.Report.
	Run func(*Pass) error
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers a diagnostic to the driver, which applies
	// //lint:ignore suppression before surfacing it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
