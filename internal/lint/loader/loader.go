// Package loader type-checks Go packages for geolint without any
// dependency outside the standard library.
//
// It shells out to `go list -export -json -deps`, which both resolves
// the package graph and compiles export data for every dependency into
// the build cache. The requested (root) packages are then parsed and
// type-checked from source — geolint needs their ASTs — while every
// import is satisfied from the compiler's export data via
// go/importer's gc lookup mode. This is the same division of labour as
// golang.org/x/tools/go/packages in LoadSyntax mode, implemented on
// stdlib only.
//
// Roots are parsed and type-checked in parallel, one worker per
// GOMAXPROCS slot. Each worker owns a private token.FileSet and a
// private importer: importer.ForCompiler instances memoize loaded
// packages in an unguarded map and intern positions into their
// FileSet, so sharing either across goroutines would race. The exports
// map is read-only after listing and safe to share. A consequence
// callers see: positions must be resolved through each Package's own
// Fset field, never through a FileSet captured from some other
// package.
//
// Errors do not short-circuit. A CI run that dies on the first broken
// package hides every other broken package behind it, so listing,
// parsing and type-checking each collect everything they hit
// (type-check errors capped per package) and the joined error reports
// them all, ordered by root import path.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// Package is one type-checked root package.
type Package struct {
	Path  string // import path
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test Go files, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *listErr
	DepsErrors []*listErr
}

type listErr struct {
	Err string
}

// maxTypeErrors caps how many type-check errors one package
// contributes to the aggregate, so a package missing an import does
// not bury every other package's diagnostics under its cascade.
const maxTypeErrors = 10

// Load lists, parses, and type-checks the packages matched by patterns,
// resolved relative to dir (the module root or any directory inside
// it). Test files are deliberately excluded: geolint gates production
// code; tests create scratch files and drop errors legitimately.
//
// On failure the returned error aggregates every load error across all
// roots (use errors.Join semantics: the message is one line per
// failure), never just the first.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []listPkg
	var listErrs []error
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Error != nil {
			listErrs = append(listErrs, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err))
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}

	// Parse and type-check roots in parallel. Per-worker state only:
	// see the package comment for why fset and importer cannot be
	// shared.
	type result struct {
		pkg *Package
		err error
	}
	results := make([]result, len(roots))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range roots {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i].pkg, results[i].err = checkRoot(&roots[i], exports)
		}()
	}
	wg.Wait()

	errs := listErrs
	var pkgs []*Package
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, r.err)
		} else if r.pkg != nil {
			pkgs = append(pkgs, r.pkg)
		}
	}
	if len(errs) > 0 {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, errors.Join(errs...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// checkRoot parses and type-checks one root package with its own
// FileSet and importer. A nil, nil return means the root has no Go
// files (e.g. a directory of build-tagged-out sources).
func checkRoot(r *listPkg, exports map[string]string) (*Package, error) {
	if len(r.GoFiles) == 0 {
		return nil, nil
	}
	fset := token.NewFileSet()
	var parseErrs []error
	files := make([]*ast.File, 0, len(r.GoFiles))
	for _, gf := range r.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(r.Dir, gf), nil, parser.ParseComments)
		if err != nil {
			parseErrs = append(parseErrs, fmt.Errorf("loader: %v", err))
			continue
		}
		files = append(files, f)
	}
	if len(parseErrs) > 0 {
		return nil, errors.Join(parseErrs...)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (stale build cache? rerun go build)", path)
		}
		return os.Open(f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			if len(typeErrs) < maxTypeErrors {
				typeErrs = append(typeErrs, fmt.Errorf("loader: type-checking %s: %v", r.ImportPath, err))
			}
		},
	}
	tpkg, err := conf.Check(r.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, errors.Join(typeErrs...)
	}
	if err != nil {
		// Errors the handler did not see (e.g. importer failures are
		// sometimes returned directly).
		return nil, fmt.Errorf("loader: type-checking %s: %v", r.ImportPath, err)
	}
	return &Package{
		Path:  r.ImportPath,
		Name:  r.Name,
		Dir:   r.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
