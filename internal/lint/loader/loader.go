// Package loader type-checks Go packages for geolint without any
// dependency outside the standard library.
//
// It shells out to `go list -export -json -deps`, which both resolves
// the package graph and compiles export data for every dependency into
// the build cache. The requested (root) packages are then parsed and
// type-checked from source — geolint needs their ASTs — while every
// import is satisfied from the compiler's export data via
// go/importer's gc lookup mode. This is the same division of labour as
// golang.org/x/tools/go/packages in LoadSyntax mode, implemented on
// stdlib only.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked root package.
type Package struct {
	Path  string // import path
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test Go files, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Incomplete bool
	Error      *listErr
	DepsErrors []*listErr
}

type listErr struct {
	Err string
}

// Load lists, parses, and type-checks the packages matched by patterns,
// resolved relative to dir (the module root or any directory inside
// it). Test files are deliberately excluded: geolint gates production
// code; tests create scratch files and drop errors legitimately.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, r := range roots {
		if len(r.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(r.GoFiles))
		for _, gf := range r.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(r.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("loader: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(r.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %v", r.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  r.ImportPath,
			Name:  r.Name,
			Dir:   r.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
