package loader_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"geofootprint/internal/lint/loader"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatalf("not in a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod)
}

// TestBrokenRootAggregatesTypeErrors pins the fallback behaviour for a
// package that parses but does not type-check: a diagnostic error (all
// type errors, not just the first), never a panic, never a half-built
// Package.
func TestBrokenRootAggregatesTypeErrors(t *testing.T) {
	pkgs, err := loader.Load(moduleRoot(t), "./internal/lint/testdata/src/loaderr/broken")
	if err == nil {
		t.Fatal("want error for broken fixture, got nil")
	}
	if pkgs != nil {
		t.Fatalf("want nil packages on error, got %d", len(pkgs))
	}
	msg := err.Error()
	// The failure may surface through go list's compile attempt (the
	// -export build) or through the loader's own type-check; either
	// way it must name the package.
	if !strings.Contains(msg, "loaderr/broken") {
		t.Errorf("error does not name the broken package: %v", msg)
	}
	// Both independent errors in the fixture must be present.
	if !strings.Contains(msg, "cannot use") || !strings.Contains(msg, "undefinedFunction") {
		t.Errorf("error does not aggregate both type errors: %v", msg)
	}
}

// TestMissingImportSurfacesListError: a root importing a nonexistent
// package must produce the go list error for the missing path — the
// export-data lookup can never succeed — as a diagnostic, not a panic.
func TestMissingImportSurfacesListError(t *testing.T) {
	_, err := loader.Load(moduleRoot(t), "./internal/lint/testdata/src/loaderr/missingdep")
	if err == nil {
		t.Fatal("want error for missing import, got nil")
	}
	if !strings.Contains(err.Error(), "loaderr/nonexistent") {
		t.Errorf("error does not name the missing import: %v", err)
	}
}

// TestMultipleBrokenRootsAllReported: one Load call over two broken
// fixtures reports both — the aggregation contract that keeps CI from
// peeling failures one run at a time.
func TestMultipleBrokenRootsAllReported(t *testing.T) {
	_, err := loader.Load(moduleRoot(t),
		"./internal/lint/testdata/src/loaderr/broken",
		"./internal/lint/testdata/src/loaderr/missingdep")
	if err == nil {
		t.Fatal("want error, got nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, "loaderr/broken") {
		t.Errorf("aggregate error missing the broken root: %v", msg)
	}
	if !strings.Contains(msg, "loaderr/nonexistent") {
		t.Errorf("aggregate error missing the unresolvable import: %v", msg)
	}
}

// TestHealthyMix: loading a broken root together with a healthy one
// still fails (the healthy package must not mask the broken one).
func TestHealthyMix(t *testing.T) {
	pkgs, err := loader.Load(moduleRoot(t),
		"./internal/lint/testdata/src/loaderr/clean",
		"./internal/lint/testdata/src/loaderr/broken")
	if err == nil {
		t.Fatalf("want error from broken root, got %d packages", len(pkgs))
	}
}

// TestColdBuildCache points GOCACHE at an empty directory: go list
// -export must rebuild export data from scratch and Load must still
// succeed for a dependency-free package. Guarded by -short because the
// cold rebuild does real compiler work.
func TestColdBuildCache(t *testing.T) {
	if testing.Short() {
		t.Skip("cold-cache rebuild in -short mode")
	}
	t.Setenv("GOCACHE", t.TempDir())
	pkgs, err := loader.Load(moduleRoot(t), "./internal/lint/testdata/src/loaderr/clean")
	if err != nil {
		t.Fatalf("cold-cache load failed: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "clean" {
		t.Fatalf("unexpected packages: %+v", pkgs)
	}
}

// TestParallelLoadDeterministic: repeated loads of the same pattern
// set return identical package orderings (path-sorted) even though
// type-checking is parallel, and each package carries its own FileSet.
func TestParallelLoadDeterministic(t *testing.T) {
	root := moduleRoot(t)
	load := func() []string {
		t.Helper()
		pkgs, err := loader.Load(root, "./internal/lint/...")
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		var paths []string
		seenFsets := make(map[interface{}]string)
		for _, p := range pkgs {
			paths = append(paths, p.Path)
			if prev, dup := seenFsets[p.Fset]; dup {
				t.Fatalf("packages %s and %s share a FileSet", prev, p.Path)
			}
			seenFsets[p.Fset] = p.Path
		}
		return paths
	}
	a := load()
	b := load()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("orders differ:\n%v\n%v", a, b)
	}
}
