package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"geofootprint/internal/lint/analysis"
)

// FloatRange flags floating-point accumulation inside `for range` over
// a map. Go randomises map iteration order, and float addition is not
// associative, so the accumulated value drifts by ULPs from run to run
// — the PR 3 bug class where map-ordered sketch/norm accumulation made
// recovered databases differ from the uninterrupted run at the last
// bit. The fix is to accumulate in a canonical order (collect keys,
// sort, then sum); where a loop is provably order-independent it can
// be annotated `//lint:deterministic <reason>` on the range statement
// (or the line above), with the justification mandatory.
var FloatRange = &analysis.Analyzer{
	Name: "floatrange",
	Doc: "flag non-deterministic floating-point accumulation in map iteration order " +
		"(sort keys first, or annotate //lint:deterministic with a reason)",
	Run: runFloatRange,
}

func runFloatRange(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		det := deterministicLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !rangesOverMap(pass.TypesInfo, rs) {
				return true
			}
			if line := pass.Fset.Position(rs.Pos()).Line; det[line] || det[line-1] {
				// The annotation vouches for the whole loop; nested
				// map ranges inside it are still visited on their own.
				return true
			}
			checkMapLoopBody(pass, rs)
			return true
		})
	}
	return nil
}

func rangesOverMap(info *types.Info, rs *ast.RangeStmt) bool {
	t := info.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapLoopBody reports float accumulations in the loop body. It
// does not descend into nested map ranges — those are checked (and
// suppressible) independently.
func checkMapLoopBody(pass *analysis.Pass, loop *ast.RangeStmt) {
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.RangeStmt); ok && inner != loop && rangesOverMap(pass.TypesInfo, inner) {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if len(as.Lhs) == 1 && isFloat(typeOf(pass, as.Lhs[0])) &&
				!declaredInside(pass, as.Lhs[0], loop) {
				pass.Reportf(as.Pos(),
					"floating-point accumulation in map iteration order is non-deterministic (ULP drift); "+
						"iterate over sorted keys or annotate the loop //lint:deterministic with a reason")
			}
		case token.ASSIGN:
			// x = x + e (or -, *, /) spelled out.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs := as.Lhs[0]
			if !isFloat(typeOf(pass, lhs)) || declaredInside(pass, lhs, loop) {
				return true
			}
			if accumulatesInto(pass, lhs, as.Rhs[0]) {
				pass.Reportf(as.Pos(),
					"floating-point accumulation in map iteration order is non-deterministic (ULP drift); "+
						"iterate over sorted keys or annotate the loop //lint:deterministic with a reason")
			}
		}
		return true
	})
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return types.Typ[types.Invalid]
	}
	return t
}

// declaredInside reports whether the written variable is declared
// within the loop itself (iteration variables or body-local
// accumulators reset each iteration), which makes the accumulation
// order-independent across iterations.
func declaredInside(pass *analysis.Pass, lhs ast.Expr, loop *ast.RangeStmt) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() >= loop.Pos() && obj.Pos() < loop.End()
}

// accumulatesInto reports whether rhs is a binary arithmetic
// expression with lhs as a direct operand (the spelled-out `x = x + e`
// accumulation shape).
func accumulatesInto(pass *analysis.Pass, lhs ast.Expr, rhs ast.Expr) bool {
	be, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	want := types.ExprString(ast.Unparen(lhs))
	if types.ExprString(ast.Unparen(be.X)) == want {
		return true
	}
	// For commutative operators the accumulator may sit on the right.
	if be.Op == token.ADD || be.Op == token.MUL {
		return types.ExprString(ast.Unparen(be.Y)) == want
	}
	return false
}

// deterministicLines maps source lines carrying a valid
// `//lint:deterministic <reason>` annotation.
func deterministicLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:deterministic")
			if !ok || strings.TrimSpace(text) == "" {
				continue // justification is mandatory
			}
			out[fset.Position(c.Pos()).Line] = true
		}
	}
	return out
}
