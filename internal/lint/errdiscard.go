package lint

import (
	"go/ast"
	"go/types"

	"geofootprint/internal/lint/analysis"
)

// ErrDiscard flags silently dropped errors on the calls where a
// dropped error costs durability or correctness:
//
//   - methods named Close or Sync that return an error — a dropped
//     Close/Sync error is how a full disk or failed flush goes
//     unnoticed (the write looked acknowledged, the data is gone);
//   - any error-returning function or method defined in a package
//     with path segment "wal" — Append, Replay, Reset and friends are
//     the durability protocol itself.
//
// A call is "dropped" when it stands alone as a statement (or behind
// `go`). `_ = f.Close()` passes: the blank assignment is an explicit,
// review-visible discard. Deferred calls are flagged only inside the
// durability packages (store, wal, ingest), where a deferred Close on
// a written file can swallow the only signal that the write failed;
// elsewhere `defer f.Close()` on read paths stays idiomatic.
var ErrDiscard = &analysis.Analyzer{
	Name: "errdiscard",
	Doc: "flag discarded errors from Close/Sync and WAL-API calls; " +
		"handle them or discard explicitly with _ =",
	Run: runErrDiscard,
}

func runErrDiscard(pass *analysis.Pass) error {
	durable := persistencePkg(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkDiscard(pass, call, "")
				}
			case *ast.GoStmt:
				checkDiscard(pass, n.Call, "go ")
			case *ast.DeferStmt:
				if durable {
					checkDiscard(pass, n.Call, "defer ")
				}
			}
			return true
		})
	}
	return nil
}

func checkDiscard(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !returnsError(sig) {
		return
	}
	switch {
	case fn.Name() == "Close" || fn.Name() == "Sync":
	case fn.Pkg() != nil && pathHasSegment(fn.Pkg().Path(), "wal"):
	default:
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s%s is discarded; handle it or assign it explicitly (_ = ...)",
		how, calleeLabel(fn))
}

// calleeLabel renders the callee as Recv.Name or pkg.Name for the
// diagnostic.
func calleeLabel(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil {
		if named := namedOrPointee(sig.Recv().Type()); named != nil {
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
