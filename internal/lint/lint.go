// Package lint is geolint: the suite of custom analyzers that machine-
// check the invariants this repo's correctness and performance rest
// on, so that rules which previously lived in review comments fail
// `make check` instead. Each analyzer encodes one incident or one
// pinned property:
//
//   - floatrange      — PR 3's ULP-drift bug class: float accumulation
//     in map iteration order is non-deterministic.
//   - atomicwrite     — PR 3's truncated-checkpoint bug class: raw
//     file writes on persistence paths bypass WriteFileAtomic.
//   - hotalloc        — PR 1's 0-alloc kernels: allocation sources in
//     //geo:hotpath functions.
//   - sortedfootprint — PR 2's strictsort invariant: direct writes to
//     FootprintDB's parallel slices outside internal/store.
//   - errdiscard      — dropped errors from Sync/Close and the WAL
//     API on durability paths.
//   - ctxcancel       — PR 5's cancellation contract: loops in
//     //geo:cancellable functions must poll ctx.
//   - epochmut        — PR 6's MVCC contract: databases reached
//     through an Epoch or EpochBuilder's DB() are read lock-free and
//     must not be mutated outside internal/store's builder seam.
//   - colwrite        — PR 7's columnar-snapshot contract: a
//     colstore.Snapshot encode on a persistence path must go through
//     the WriteColumnar atomic writer seam, never a raw writer.
//
// Suppression: a diagnostic is suppressed by a comment
// `//lint:ignore <analyzer> <reason>` on the offending line or the
// line above. The reason is mandatory — a bare directive suppresses
// nothing — so every suppression is self-justifying, which `make
// check` effectively enforces repo-wide. floatrange additionally
// honours `//lint:deterministic <reason>` on a range statement (see
// floatrange.go).
package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"

	"geofootprint/internal/lint/analysis"
	"geofootprint/internal/lint/loader"
)

// Analyzers is the full geolint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	FloatRange,
	AtomicWrite,
	ColWrite,
	HotAlloc,
	SortedFootprint,
	ErrDiscard,
	CtxCancel,
	EpochMut,
	PinLeak,
	BodyClose,
	LockBalance,
}

// Finding is one surfaced (non-suppressed) diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// StaleIgnore is the pseudo-analyzer name under which the driver
// reports suppression directives that no longer suppress anything, or
// that name an analyzer that does not exist. A stale //lint:ignore is
// a lie in the source — it claims a diagnostic is being waved through
// when there is none — and it rots into cover for a future real
// finding on the same line, so the driver treats it as a finding of
// its own.
const StaleIgnore = "staleignore"

// Run applies every analyzer to every package — packages in parallel,
// bounded by GOMAXPROCS — and returns the surviving findings sorted by
// position, so the output order is deterministic regardless of
// scheduling. Suppression directives are applied centrally, and
// directives that suppressed nothing across the whole suite are
// reported under the staleignore pseudo-analyzer.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	results := make([][]Finding, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = RunPackage(pkg, analyzers)
		}()
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	var all []Finding
	for _, fs := range results {
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, nil
}

// RunPackage applies a suite of analyzers to one package with a single
// shared suppression index, so directive usage can be tracked across
// the whole suite: after every analyzer has run, any directive that
// suppressed nothing becomes a staleignore finding.
func RunPackage(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	sup := newSuppressions(pkg.Fset, pkg.Files)
	var out []Finding
	for _, a := range analyzers {
		fs, err := runWith(pkg, a, sup)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	out = append(out, staleFindings(sup, analyzers)...)
	return out, nil
}

// RunOne applies a single analyzer to a single package, returning the
// findings that survive //lint:ignore suppression. Used by fixture
// tests, which exercise one analyzer at a time; stale-suppression
// detection deliberately does not run here (a fixture's directives for
// other analyzers would all read as stale).
func RunOne(pkg *loader.Package, a *analysis.Analyzer) ([]Finding, error) {
	return runWith(pkg, a, newSuppressions(pkg.Fset, pkg.Files))
}

func runWith(pkg *loader.Package, a *analysis.Analyzer, sup *suppressions) ([]Finding, error) {
	var out []Finding
	seen := make(map[string]bool)
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report: func(d analysis.Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if sup.suppressed(a.Name, pos) {
				return
			}
			key := fmt.Sprintf("%s:%d:%d:%s", pos.Filename, pos.Line, pos.Column, d.Message)
			if seen[key] {
				return
			}
			seen[key] = true
			out = append(out, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message})
		},
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
	}
	return out, nil
}

// staleFindings reports unused directives after a suite run. A
// directive naming an analyzer in the run set that suppressed nothing
// is stale; a directive naming an analyzer that exists in neither the
// run set nor the full registry is a typo that silently suppresses
// nothing. A directive for a registered analyzer outside the run set
// is left alone — a partial run cannot tell whether it is live.
func staleFindings(sup *suppressions, ran []*analysis.Analyzer) []Finding {
	inRun := make(map[string]bool, len(ran))
	for _, a := range ran {
		inRun[a.Name] = true
	}
	registered := make(map[string]bool, len(Analyzers))
	for _, a := range Analyzers {
		registered[a.Name] = true
	}
	var out []Finding
	for _, d := range sup.directives {
		if d.used {
			continue
		}
		switch {
		case inRun[d.name]:
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: StaleIgnore,
				Message: fmt.Sprintf(
					"//lint:ignore %s suppresses nothing: no %s diagnostic on this or the next line",
					d.name, d.name),
			})
		case !registered[d.name]:
			out = append(out, Finding{
				Pos:      d.pos,
				Analyzer: StaleIgnore,
				Message: fmt.Sprintf(
					"//lint:ignore names unknown analyzer %q", d.name),
			})
		}
	}
	return out
}

// directive is one //lint:ignore occurrence, with a usage bit so the
// driver can tell live suppressions from stale ones after a full
// suite run.
type directive struct {
	pos  token.Position
	name string
	used bool
}

// suppressions indexes //lint:ignore directives by file and line.
type suppressions struct {
	fset *token.FileSet
	// directives holds every parsed directive in file order.
	directives []*directive
	// byLine maps filename → line → directives located there.
	byLine map[string]map[int][]*directive
}

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{fset: fset, byLine: make(map[string]map[int][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &directive{pos: pos, name: name}
				s.directives = append(s.directives, d)
				m := s.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]*directive)
					s.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d)
			}
		}
	}
	return s
}

// parseIgnore recognises `//lint:ignore <analyzer> <reason>` and
// returns the analyzer name. A directive without a reason is invalid
// and ignored: suppressions must carry their justification.
func parseIgnore(comment string) (string, bool) {
	text, ok := strings.CutPrefix(comment, "//lint:ignore")
	if !ok {
		return "", false
	}
	fields := strings.Fields(text)
	if len(fields) < 2 { // analyzer name plus at least one reason word
		return "", false
	}
	return fields[0], true
}

// suppressed reports whether a directive for the analyzer sits on the
// diagnostic's line or the line directly above it, marking the
// directive used when it matches.
func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	m := s.byLine[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range m[line] {
			if d.name == analyzer {
				d.used = true
				return true
			}
		}
	}
	return false
}

// ---- shared helpers used by several analyzers ----

// pathHasSegment reports whether importPath contains seg as a whole
// path segment (e.g. "geofootprint/internal/store" has "store").
func pathHasSegment(importPath, seg string) bool {
	for _, s := range strings.Split(importPath, "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// persistencePkg reports whether the package is part of the durability
// layer, where atomicwrite applies and errdiscard also checks defers.
func persistencePkg(importPath string) bool {
	return pathHasSegment(importPath, "store") ||
		pathHasSegment(importPath, "wal") ||
		pathHasSegment(importPath, "ingest")
}

// calleeFunc resolves the called function or method of a call
// expression, or nil for builtins, conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// returnsError reports whether the function signature includes an
// error result.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

// isFloat reports whether t is a floating-point type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// namedOrPointee unwraps pointers and returns the named type, if any.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
