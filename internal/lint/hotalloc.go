package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"geofootprint/internal/lint/analysis"
)

// HotAlloc guards the 0-alloc kernels pinned by the AllocsPerRun
// regression tests since PR 1 (SimilarityJoin, the Algorithm 2/3
// sweeps, the sketch dot, the top-k heaps). A function opts in with a
// `//geo:hotpath` line in its doc comment; inside such a function the
// analyzer statically flags the common allocation sources:
//
//   - calls into package fmt (every fmt call allocates);
//   - closure literals (captures may force a heap allocation);
//   - address-taken composite literals (&T{...} escapes);
//   - make and new (fresh allocations; hot paths draw from pools or
//     caller-provided buffers);
//   - append to a slice declared in the same function without
//     capacity (guaranteed growth reallocations).
//
// The escape analysis here is deliberately conservative — it flags
// syntactic allocation sites, not proven escapes. Sites the compiler
// provably keeps on the stack (e.g. non-escaping sort closures) carry
// a //lint:ignore hotalloc justification referencing the AllocsPerRun
// test that pins them.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flag allocation sources (fmt, closures, &T{}, make/new, growing append) " +
		"inside functions marked //geo:hotpath",
	Run: runHotAlloc,
}

// hotPathMarker tags a function whose allocation behaviour is pinned.
const hotPathMarker = "//geo:hotpath"

func runHotAlloc(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

// isHotPath reports whether the function's doc comment carries the
// //geo:hotpath marker. Directive-style comments are stripped by
// CommentGroup.Text, so the raw comment list is scanned.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotPathMarker) {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	uncapped := uncappedSlices(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"closure literal in //geo:hotpath function %s may heap-allocate its captures", fd.Name.Name)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(),
						"address-taken composite literal escapes in //geo:hotpath function %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				pass.Reportf(n.Pos(),
					"fmt.%s allocates in //geo:hotpath function %s", fn.Name(), fd.Name.Name)
				return true
			}
			if isBuiltin(pass.TypesInfo, n, "make") || isBuiltin(pass.TypesInfo, n, "new") {
				pass.Reportf(n.Pos(),
					"%s allocates in //geo:hotpath function %s; use a pooled or caller-provided buffer",
					ast.Unparen(n.Fun).(*ast.Ident).Name, fd.Name.Name)
				return true
			}
			if isBuiltin(pass.TypesInfo, n, "append") && len(n.Args) > 0 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil && uncapped[obj] {
						pass.Reportf(n.Pos(),
							"append grows %s, declared without capacity, in //geo:hotpath function %s; preallocate with make(..., 0, n)",
							id.Name, fd.Name.Name)
					}
				}
			}
		}
		return true
	})
}

// uncappedSlices collects slice variables declared inside fd with no
// capacity — `var s []T` or `s := []T{}` — whose growth through append
// is a guaranteed reallocation. Slices built with make (any form) or
// arriving as parameters are assumed deliberately sized.
func uncappedSlices(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					mark(name)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if cl, ok := ast.Unparen(n.Rhs[i]).(*ast.CompositeLit); ok && len(cl.Elts) == 0 {
					mark(id)
				}
			}
		}
		return true
	})
	return out
}
