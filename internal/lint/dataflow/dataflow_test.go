package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"

	"geofootprint/internal/lint/cfg"
)

// The test problem tracks the set of variable names that "hold a
// resource": `x = acquire()` adds x, `x = release()` removes x, and a
// branch on `x == nil` removes x on the true edge. Purely syntactic —
// no type info needed — which keeps the fixture functions tiny.

type fact map[string]bool

func union(a, b fact) fact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(fact, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func equal(a, b fact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func without(f fact, name string) fact {
	if !f[name] {
		return f
	}
	out := make(fact, len(f))
	for k := range f {
		if k != name {
			out[k] = true
		}
	}
	return out
}

func with(f fact, name string) fact {
	if f[name] {
		return f
	}
	out := make(fact, len(f)+1)
	for k := range f {
		out[k] = true
	}
	out[name] = true
	return out
}

func transfer(n ast.Node, f fact) fact {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return f
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return f
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return f
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return f
	}
	switch fn.Name {
	case "acquire":
		return with(f, id.Name)
	case "release":
		return without(f, id.Name)
	}
	return f
}

func branch(cond ast.Expr, taken bool, f fact) fact {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return f
	}
	id, ok := be.X.(*ast.Ident)
	if !ok {
		return f
	}
	if nilIdent, ok := be.Y.(*ast.Ident); !ok || nilIdent.Name != "nil" {
		return f
	}
	// x == nil on the true edge, x != nil on the false edge: x is nil,
	// so nothing is held.
	if (be.Op == token.EQL && taken) || (be.Op == token.NEQ && !taken) {
		return without(f, id.Name)
	}
	return f
}

func solve(t *testing.T, body string) (fact, bool) {
	t.Helper()
	src := "package x\nfunc acquire() *int { return nil }\nfunc release() *int { return nil }\nfunc f(b bool, n int) {\n" + body + "\n}"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var fd *ast.FuncDecl
	for _, d := range file.Decls {
		if d, ok := d.(*ast.FuncDecl); ok && d.Name.Name == "f" {
			fd = d
		}
	}
	g := cfg.New(fd.Body, nil)
	p := Problem[fact]{
		Join:     union,
		Equal:    equal,
		Transfer: transfer,
		Branch:   branch,
	}
	r := Forward(g, p)
	return r.ExitFact(p)
}

func names(f fact) string {
	var ns []string
	for k := range f {
		ns = append(ns, k)
	}
	sort.Strings(ns)
	return strings.Join(ns, ",")
}

func TestStraightLineAcquireRelease(t *testing.T) {
	f, ok := solve(t, "x := acquire()\nx = release()")
	if !ok {
		t.Fatal("exit unreachable")
	}
	if len(f) != 0 {
		t.Fatalf("held at exit: %s", names(f))
	}
}

func TestLeakOnOnePathJoins(t *testing.T) {
	f, ok := solve(t, "x := acquire()\nif b {\n\tx = release()\n}")
	if !ok {
		t.Fatal("exit unreachable")
	}
	if !f["x"] {
		t.Fatalf("x leaked on the else path but not in exit fact: %s", names(f))
	}
}

func TestBothPathsRelease(t *testing.T) {
	f, _ := solve(t, "x := acquire()\nif b {\n\tx = release()\n} else {\n\tx = release()\n}")
	if len(f) != 0 {
		t.Fatalf("held at exit: %s", names(f))
	}
}

func TestNilBranchRefinement(t *testing.T) {
	// On the x == nil leg nothing is held; the other leg releases.
	f, _ := solve(t, "x := acquire()\nif x == nil {\n\treturn\n}\nx = release()")
	if len(f) != 0 {
		t.Fatalf("held at exit: %s", names(f))
	}
}

func TestNeqBranchRefinement(t *testing.T) {
	// x != nil: the false edge means x is nil — the early return on
	// the false edge is clean; the true leg must release.
	f, _ := solve(t, "x := acquire()\nif x != nil {\n\tx = release()\n}")
	if len(f) != 0 {
		t.Fatalf("held at exit: %s", names(f))
	}
}

func TestLoopFixpointTerminatesAndJoins(t *testing.T) {
	// The loop body acquires without releasing: the back edge carries
	// the held fact around; fixpoint must terminate and report x held.
	f, _ := solve(t, "for i := 0; i < n; i++ {\n\tx := acquire()\n\t_ = x\n}")
	// x is function-scoped per iteration syntactically, but the fact
	// is name-keyed here: held on exit via the loop-exit edge.
	if !f["x"] {
		t.Fatalf("x not held at exit: %s", names(f))
	}
}

func TestLoopReleaseEachIteration(t *testing.T) {
	f, _ := solve(t, "for i := 0; i < n; i++ {\n\tx := acquire()\n\tx = release()\n}")
	if len(f) != 0 {
		t.Fatalf("held at exit: %s", names(f))
	}
}

func TestUnreachableExit(t *testing.T) {
	_, ok := solve(t, "x := acquire()\n_ = x\nfor {\n}")
	if ok {
		t.Fatal("exit should be unreachable")
	}
}
