// Package dataflow is geolint's forward dataflow framework: a worklist
// fixpoint over an internal/lint/cfg graph that analyzers program
// against instead of hand-rolling their own traversals.
//
// An analyzer states its problem as a lattice (Join, Equal), a
// transfer function applied to each node of a basic block in order,
// and an optional Branch hook that refines the fact along the true and
// false edges of a condition block — the piece that lets `if err !=
// nil { return }` discharge a "response body pending close" obligation
// on the error leg, or `if ep == nil { return }` discharge a pin
// obligation on the nil leg.
//
// The framework is a may-analysis as used here (facts join by union
// and the interesting question is "can a bad state reach Exit?"), but
// nothing in it assumes that: any finite-height lattice with a
// monotone transfer terminates.
package dataflow

import (
	"go/ast"

	"geofootprint/internal/lint/cfg"
)

// Problem describes one forward dataflow analysis over facts of type F.
// F values must be treated as immutable: Transfer and Branch return a
// fresh fact when they change anything (sharing unchanged facts is
// fine and keeps small functions allocation-light).
type Problem[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Join merges facts at control-flow merges. It must be
	// commutative, associative and idempotent.
	Join func(a, b F) F
	// Equal reports fact equality; the fixpoint stops when no block's
	// input fact changes under Join.
	Equal func(a, b F) bool
	// Transfer applies one block node (a statement or an evaluated
	// condition expression) to the fact.
	Transfer func(n ast.Node, f F) F
	// Branch, if non-nil, refines the fact along the outgoing edges of
	// a condition block: cond is Block.Cond and taken tells which edge
	// (true edge = Succs[0]). Called after Transfer has processed the
	// condition node itself.
	Branch func(cond ast.Expr, taken bool, f F) F
}

// Result holds the fixpoint solution, indexed by cfg.Block.Index.
type Result[F any] struct {
	// In and Out are the facts at block entry and exit. Only valid
	// where Reached is true.
	In, Out []F
	// Reached marks blocks reachable from entry under the analysis
	// (identical to graph reachability: transfer never prunes edges;
	// only Branch refines facts along them).
	Reached []bool
	g       *cfg.CFG
}

// ExitFact returns the joined fact over every edge into the Exit block
// — the "what can be true at some return" answer — and whether any
// exit is reachable at all (false for functions that cannot return,
// e.g. an unconditional `for {}`).
func (r *Result[F]) ExitFact(p Problem[F]) (F, bool) {
	var out F
	have := false
	exit := r.g.Exit
	for _, pred := range exit.Preds {
		if !r.Reached[pred.Index] {
			continue
		}
		f := r.edgeFact(p, pred, exit)
		if !have {
			out, have = f, true
		} else {
			out = p.Join(out, f)
		}
	}
	return out, have
}

// edgeFact is pred's out-fact refined along the pred→succ edge.
func (r *Result[F]) edgeFact(p Problem[F], pred, succ *cfg.Block) F {
	f := r.Out[pred.Index]
	if pred.Cond == nil || p.Branch == nil {
		return f
	}
	for i, s := range pred.Succs {
		if s == succ {
			return p.Branch(pred.Cond, i == 0, f)
		}
	}
	return f
}

// Forward solves the problem to fixpoint and returns the solution.
func Forward[F any](g *cfg.CFG, p Problem[F]) *Result[F] {
	n := len(g.Blocks)
	r := &Result[F]{
		In:      make([]F, n),
		Out:     make([]F, n),
		Reached: make([]bool, n),
		g:       g,
	}
	if n == 0 {
		return r
	}
	entry := g.Blocks[0]
	r.In[entry.Index] = p.Entry
	r.Reached[entry.Index] = true

	// Worklist of block indexes; inQueue dedupes.
	queue := []int{entry.Index}
	inQueue := make([]bool, n)
	inQueue[entry.Index] = true

	for len(queue) > 0 {
		bi := queue[0]
		queue = queue[1:]
		inQueue[bi] = false
		blk := g.Blocks[bi]

		f := r.In[bi]
		for _, node := range blk.Nodes {
			f = p.Transfer(node, f)
		}
		r.Out[bi] = f

		for i, succ := range blk.Succs {
			sf := f
			if blk.Cond != nil && p.Branch != nil {
				sf = p.Branch(blk.Cond, i == 0, f)
			}
			si := succ.Index
			if !r.Reached[si] {
				r.Reached[si] = true
				r.In[si] = sf
			} else {
				joined := p.Join(r.In[si], sf)
				if p.Equal(joined, r.In[si]) {
					continue
				}
				r.In[si] = joined
			}
			if !inQueue[si] {
				inQueue[si] = true
				queue = append(queue, si)
			}
		}
	}
	return r
}
