package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"geofootprint/internal/lint/analysis"
	"geofootprint/internal/lint/cfg"
	"geofootprint/internal/lint/dataflow"
)

// flowleak.go is the shared engine behind the flow-sensitive leak
// analyzers (pinleak, bodyclose): a forward may-leak dataflow over the
// internal/lint/cfg graph. The per-analyzer part is a leakSpec — what
// counts as acquiring the resource, what counts as releasing it, and
// the report wording; everything else (aliasing, escape discharge,
// nil- and err-branch refinement, defer handling, fixpoint, exit-join
// reporting) lives here once.
//
// The obligation model: an acquire site creates an obligation keyed by
// its source position, held by one or more local variables (aliases
// accumulate: `v := resp` and `b := resp.Body` both hold resp's
// obligation, the latter with a distinct holder kind so the release
// matcher knows `b.Close()` and `resp.Body.Close()` are the same
// discharge). An obligation is discharged by:
//
//   - a release call on any holder (including `defer x.Release()` —
//     from that program point on, every exit runs it — and releases
//     inside a deferred or spawned function literal);
//   - escape: a holder returned to the caller, passed as a call
//     argument, stored into a field/slice/map/channel, or its address
//     taken. Responsibility conservatively transfers with the value;
//   - branch refinement: on the edge where the holder is known nil, or
//     where the error paired with the acquire is known non-nil, there
//     is nothing to release.
//
// Paths that end in panic/os.Exit/log.Fatal* never reach the Exit
// block (see internal/lint/cfg) and are not leak paths: deferred
// releases run during unwinding, and os.Exit forfeits the process.
// An obligation alive on any path into Exit is reported at its
// acquire site.

// holderKind distinguishes a variable holding the resource itself from
// one holding a derived sub-object with its own release form
// (*http.Response vs its .Body).
type holderKind uint8

const (
	holderResource holderKind = iota
	holderDerived             // e.g. b := resp.Body
)

// leakSpec is one analyzer's parameterization of the engine.
type leakSpec struct {
	// skipPkg suppresses the whole analyzer inside a package (e.g.
	// pinleak inside the package that implements the pin protocol).
	skipPkg func(pkg *types.Package) bool
	// isResourceType reports whether a call-result type is the tracked
	// resource.
	isResourceType func(t types.Type) bool
	// isAcquire reports whether a call with at least one resource
	// result actually creates an obligation (pinleak restricts by
	// callee name: Publish returns *Epoch without pinning).
	isAcquire func(info *types.Info, call *ast.CallExpr) bool
	// releaseIdent recognizes a release call structurally and returns
	// the holder ident plus the holder kind it applies to; ok=false
	// when the call is not a release form.
	releaseIdent func(call *ast.CallExpr) (id *ast.Ident, kind holderKind, ok bool)
	// deriveSel reports whether selecting sel.Sel from a resource
	// holder yields a derived holder (e.g. Body). nil when the
	// resource has no derived form.
	deriveSel func(name string) bool
	// discardMsg is reported when an acquire's resource result is
	// discarded outright (expression statement or blank identifier).
	discardMsg string
	// leakMsg is reported at an acquire whose obligation survives to
	// some function exit.
	leakMsg string
	// reacquireMsg is reported when a variable holding a live
	// obligation is overwritten by a new acquire (the old resource can
	// no longer be released through it).
	reacquireMsg string
}

// oblig is one open obligation: the variables that can still discharge
// it and the error variable paired with its acquire, if any.
type oblig struct {
	holders map[types.Object]holderKind
	errObj  types.Object
}

// leakFact maps acquire position → open obligation. Treated as
// immutable; all mutations copy.
type leakFact map[token.Pos]*oblig

func (f leakFact) clone() leakFact {
	out := make(leakFact, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	return out
}

func cloneOblig(o *oblig) *oblig {
	h := make(map[types.Object]holderKind, len(o.holders)+1)
	for k, v := range o.holders {
		h[k] = v
	}
	return &oblig{holders: h, errObj: o.errObj}
}

func leakJoin(a, b leakFact) leakFact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := a.clone()
	for pos, ob := range b {
		cur, ok := out[pos]
		if !ok {
			out[pos] = ob
			continue
		}
		// Same acquire reached along two paths with (possibly)
		// different alias sets: union the holders.
		merged := cloneOblig(cur)
		for obj, k := range ob.holders {
			merged.holders[obj] = k
		}
		if merged.errObj == nil {
			merged.errObj = ob.errObj
		}
		out[pos] = merged
	}
	return out
}

func leakEqual(a, b leakFact) bool {
	if len(a) != len(b) {
		return false
	}
	for pos, ao := range a {
		bo, ok := b[pos]
		if !ok || len(ao.holders) != len(bo.holders) {
			return false
		}
		for obj, k := range ao.holders {
			if bk, ok := bo.holders[obj]; !ok || bk != k {
				return false
			}
		}
	}
	return true
}

// leakEngine runs one spec over one function body.
type leakEngine struct {
	pass *analysis.Pass
	spec *leakSpec
	body *ast.BlockStmt
	seen map[string]bool // dedup for in-transfer reports across fixpoint iterations
}

// runLeakAnalyzer applies spec to every function declaration and
// function literal in the package, each as its own intraprocedural
// problem.
func runLeakAnalyzer(pass *analysis.Pass, spec *leakSpec) error {
	if spec.skipPkg != nil && spec.skipPkg(pass.Pkg) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				e := &leakEngine{pass: pass, spec: spec, body: body, seen: make(map[string]bool)}
				e.run()
			}
			return true
		})
	}
	return nil
}

func (e *leakEngine) run() {
	g := cfg.New(e.body, cfg.MayReturn(e.pass.TypesInfo))
	p := dataflow.Problem[leakFact]{
		Entry:    nil,
		Join:     leakJoin,
		Equal:    leakEqual,
		Transfer: e.transfer,
		Branch:   e.branchWithErr,
	}
	r := dataflow.Forward(g, p)
	exit, ok := r.ExitFact(p)
	if !ok {
		return
	}
	for pos := range exit {
		e.reportOnce(pos, e.spec.leakMsg)
	}
}

func (e *leakEngine) reportOnce(pos token.Pos, msg string) {
	key := e.pass.Fset.Position(pos).String() + "\x00" + msg
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	e.pass.Reportf(pos, "%s", msg)
}

// localObj resolves id to its object and reports whether it is
// declared inside the analyzed body — obligations are only tracked
// through function-local variables; writes through captured variables
// escape.
func (e *leakEngine) localObj(id *ast.Ident) (types.Object, bool) {
	if id == nil || id.Name == "_" {
		return nil, false
	}
	obj := e.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil, false
	}
	local := obj.Pos() >= e.body.Pos() && obj.Pos() < e.body.End()
	return obj, local
}

// resourceResults returns the result positions of call whose type is
// the spec's resource, and the position of an error result if any.
// A non-call or non-acquire yields no positions.
func (e *leakEngine) resourceResults(call *ast.CallExpr) (res []int, errPos int) {
	errPos = -1
	t := e.pass.TypesInfo.TypeOf(call)
	if t == nil {
		return nil, -1
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if e.spec.isResourceType(t.At(i).Type()) {
				res = append(res, i)
			} else if isErrorType(t.At(i).Type()) {
				errPos = i
			}
		}
	default:
		if e.spec.isResourceType(t) {
			res = []int{0}
		}
	}
	if len(res) > 0 && e.spec.isAcquire != nil && !e.spec.isAcquire(e.pass.TypesInfo, call) {
		return nil, -1
	}
	return res, errPos
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// ---- transfer ----

func (e *leakEngine) transfer(n ast.Node, f leakFact) leakFact {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return e.assign(n.Lhs, n.Rhs, f)

	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return f
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, name := range vs.Names {
				lhs[i] = name
			}
			f = e.assign(lhs, vs.Values, f)
		}
		return f

	case *ast.ReturnStmt:
		for _, res := range n.Results {
			f = e.scan(res, true, f)
		}
		return f

	case *ast.DeferStmt:
		return e.deferOrGo(n.Call, f)
	case *ast.GoStmt:
		return e.deferOrGo(n.Call, f)

	case *ast.SendStmt:
		f = e.scan(n.Chan, false, f)
		return e.scan(n.Value, true, f)

	case *ast.ExprStmt:
		// A discarded acquire (results never bound) leaks immediately.
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if res, _ := e.resourceResults(call); len(res) > 0 {
				e.reportOnce(call.Pos(), e.spec.discardMsg)
			}
		}
		return e.scan(n.X, false, f)

	case *ast.RangeStmt:
		// Head node of a range loop: only the operand is evaluated
		// here; the body has its own blocks.
		return e.scan(n.X, false, f)

	case *ast.IncDecStmt:
		return e.scan(n.X, false, f)

	case ast.Expr:
		// A condition evaluated at the end of a block.
		return e.scan(n, false, f)
	}
	return f
}

// assign handles both `x, err := call()` (tuple form) and 1:1
// assignment lists, threading acquires, aliases, rebinds and escapes.
func (e *leakEngine) assign(lhs, rhs []ast.Expr, f leakFact) leakFact {
	// Tuple form: one call, many results.
	if len(rhs) == 1 && len(lhs) > 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			if res, errPos := e.resourceResults(call); len(res) > 0 {
				f = e.scan(call, false, f)
				return e.bindAcquire(call, lhs, res, errPos, f)
			}
		}
		for _, l := range lhs {
			f = e.rebind(l, f)
		}
		return e.scan(rhs[0], false, f)
	}

	for i := range rhs {
		var l ast.Expr
		if i < len(lhs) {
			l = lhs[i]
		}
		f = e.assignOne(l, rhs[i], f)
	}
	return f
}

func (e *leakEngine) assignOne(lhs, rhs ast.Expr, f leakFact) leakFact {
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		if res, errPos := e.resourceResults(call); len(res) > 0 {
			f = e.scan(call, false, f)
			return e.bindAcquire(call, []ast.Expr{lhs}, res, errPos, f)
		}
	}

	// `_ = x` is a no-op: it neither releases nor escapes.
	if lid, ok := lhs.(*ast.Ident); ok && lid.Name == "_" {
		if _, ok := ast.Unparen(rhs).(*ast.Ident); ok {
			return f
		}
	}

	// Alias forms: v := x (same resource) and v := x.Body (derived).
	if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if srcObj := e.pass.TypesInfo.ObjectOf(id); srcObj != nil {
			if pos, ob := findHolder(f, srcObj, holderResource); ob != nil {
				if lid, ok := lhs.(*ast.Ident); ok {
					if dst, local := e.localObj(lid); local {
						return addHolder(f, pos, dst, holderResource)
					}
					// Assigned to a captured or package-level variable:
					// the resource escapes this function.
					return discharge(f, pos)
				}
				// Stored into a field/element: escapes.
				f = discharge(f, pos)
				return e.rebindOrEscape(lhs, f)
			}
		}
	}
	if sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr); ok && e.spec.deriveSel != nil && e.spec.deriveSel(sel.Sel.Name) {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if srcObj := e.pass.TypesInfo.ObjectOf(id); srcObj != nil {
				if pos, ob := findHolder(f, srcObj, holderResource); ob != nil {
					if lid, ok := lhs.(*ast.Ident); ok {
						if dst, local := e.localObj(lid); local {
							return addHolder(f, pos, dst, holderDerived)
						}
						return discharge(f, pos)
					}
					f = discharge(f, pos)
				}
			}
		}
	}

	f = e.scan(rhs, true, f)
	return e.rebindOrEscape(lhs, f)
}

// bindAcquire installs the obligation for an acquire call whose
// results bind to lhs (len(lhs) may exceed the result count only in
// the tuple form, where positions line up 1:1).
func (e *leakEngine) bindAcquire(call *ast.CallExpr, lhs []ast.Expr, res []int, errPos int, f leakFact) leakFact {
	var errObj types.Object
	if errPos >= 0 && errPos < len(lhs) {
		if id, ok := lhs[errPos].(*ast.Ident); ok && id.Name != "_" {
			errObj = e.pass.TypesInfo.ObjectOf(id)
		}
	}
	for _, ri := range res {
		var target *ast.Ident
		if ri < len(lhs) {
			target, _ = lhs[ri].(*ast.Ident)
		}
		if target == nil || target.Name == "_" {
			// The resource result is structurally discarded.
			e.reportOnce(call.Pos(), e.spec.discardMsg)
			continue
		}
		obj, local := e.localObj(target)
		if obj == nil || !local {
			// Acquired straight into a captured/global variable:
			// responsibility escapes this function.
			continue
		}
		// Overwriting a variable that still holds a live obligation
		// orphans the old resource. A same-position hit is the loop
		// back edge re-running this very acquire: the per-iteration
		// leak is already covered by the exit report.
		if pos, ob := findHolder(f, obj, holderResource); ob != nil && len(ob.holders) == 1 {
			if pos != call.Pos() {
				e.reportOnce(call.Pos(), e.spec.reacquireMsg)
			}
			f = discharge(f, pos)
		} else if ob != nil {
			// Other aliases can still release it; just drop this one.
			f = dropHolder(f, pos, obj)
		}
		nf := f.clone()
		nf[call.Pos()] = &oblig{holders: map[types.Object]holderKind{obj: holderResource}, errObj: errObj}
		f = nf
	}
	return f
}

// rebind drops lhs (an ident being overwritten by a non-resource
// value) from any obligation it holds; if it was the last holder the
// obligation stays open — the resource is orphaned and will be
// reported at exit.
func (e *leakEngine) rebind(lhs ast.Expr, f leakFact) leakFact {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return f
	}
	obj := e.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return f
	}
	for _, kind := range []holderKind{holderResource, holderDerived} {
		if pos, ob := findHolder(f, obj, kind); ob != nil && len(ob.holders) > 1 {
			f = dropHolder(f, pos, obj)
		}
		// Last holder: keep the obligation open under this object —
		// releases through the new value are impossible, and the exit
		// report points at the original acquire.
	}
	return f
}

func (e *leakEngine) rebindOrEscape(lhs ast.Expr, f leakFact) leakFact {
	if lhs == nil {
		return f
	}
	if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return e.rebind(lhs, f)
	}
	// Assignment target with sub-expressions (a[i], s.f): scan them as
	// reads.
	return e.scan(lhs, false, f)
}

// deferOrGo applies a deferred or spawned call: releases through it
// count (defer runs at every subsequent exit; a goroutine owns what it
// captures), and resources passed to it escape.
func (e *leakEngine) deferOrGo(call *ast.CallExpr, f leakFact) leakFact {
	if id, kind, ok := e.spec.releaseIdent(call); ok {
		if obj := e.pass.TypesInfo.ObjectOf(id); obj != nil {
			if pos, ob := findHolder(f, obj, kind); ob != nil {
				return discharge(f, pos)
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Scan the literal's entire body for release calls on tracked
		// holders: `defer func() { ep.Release() }()`.
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, kind, ok := e.spec.releaseIdent(inner); ok {
				if obj := e.pass.TypesInfo.ObjectOf(id); obj != nil {
					if pos, ob := findHolder(f, obj, kind); ob != nil {
						f = discharge(f, pos)
					}
				}
			}
			return true
		})
		return f
	}
	return e.scan(call, false, f)
}

// scan walks an expression, applying releases and escapes. escaping
// marks value context: a tracked ident used as a value there transfers
// responsibility (call argument, return value, composite literal
// element, channel send, address-of).
func (e *leakEngine) scan(x ast.Expr, escaping bool, f leakFact) leakFact {
	switch x := x.(type) {
	case nil:
		return f

	case *ast.Ident:
		if !escaping {
			return f
		}
		if obj := e.pass.TypesInfo.ObjectOf(x); obj != nil {
			for _, kind := range []holderKind{holderResource, holderDerived} {
				if pos, ob := findHolder(f, obj, kind); ob != nil {
					f = discharge(f, pos)
				}
			}
		}
		return f

	case *ast.ParenExpr:
		return e.scan(x.X, escaping, f)

	case *ast.SelectorExpr:
		// Receiver/field access reads the base; it does not escape.
		// But a derived sub-object used as a value does: f(resp.Body).
		if escaping && e.spec.deriveSel != nil && e.spec.deriveSel(x.Sel.Name) {
			// Passing resp.Body to an arbitrary function does NOT
			// discharge: readers do not close. Keep the obligation.
			return e.scan(x.X, false, f)
		}
		return e.scan(x.X, false, f)

	case *ast.CallExpr:
		if id, kind, ok := e.spec.releaseIdent(x); ok {
			if obj := e.pass.TypesInfo.ObjectOf(id); obj != nil {
				if pos, ob := findHolder(f, obj, kind); ob != nil {
					f = discharge(f, pos)
					// Arguments of a release call still get scanned.
					for _, arg := range x.Args {
						f = e.scan(arg, true, f)
					}
					return f
				}
			}
		}
		f = e.scan(x.Fun, false, f)
		for _, arg := range x.Args {
			f = e.scan(arg, true, f)
		}
		return f

	case *ast.BinaryExpr:
		// Comparisons and arithmetic read their operands.
		f = e.scan(x.X, false, f)
		return e.scan(x.Y, false, f)

	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return e.scan(x.X, true, f) // address taken: escapes
		}
		return e.scan(x.X, false, f)

	case *ast.StarExpr:
		return e.scan(x.X, false, f)

	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			f = e.scan(elt, true, f)
		}
		return f

	case *ast.KeyValueExpr:
		f = e.scan(x.Key, false, f)
		return e.scan(x.Value, true, f)

	case *ast.IndexExpr:
		f = e.scan(x.X, false, f)
		return e.scan(x.Index, false, f)

	case *ast.IndexListExpr:
		return e.scan(x.X, false, f)

	case *ast.SliceExpr:
		f = e.scan(x.X, false, f)
		f = e.scan(x.Low, false, f)
		f = e.scan(x.High, false, f)
		return e.scan(x.Max, false, f)

	case *ast.TypeAssertExpr:
		return e.scan(x.X, escaping, f)

	case *ast.FuncLit:
		// Analyzed separately as its own function; what it captures is
		// visible to this function only through the statements that
		// call or defer it.
		return f
	}
	return f
}

// branch refines the fact on a condition edge: on the edge where a
// holder is nil, or where the paired error is non-nil, the obligation
// cannot exist.
func (e *leakEngine) branch(cond ast.Expr, taken bool, f leakFact) leakFact {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return f
	}
	var idExpr ast.Expr
	switch {
	case isNilIdent(e.pass.TypesInfo, be.Y):
		idExpr = be.X
	case isNilIdent(e.pass.TypesInfo, be.X):
		idExpr = be.Y
	default:
		return f
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return f
	}
	obj := e.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return f
	}
	isNilEdge := (be.Op == token.EQL && taken) || (be.Op == token.NEQ && !taken)

	// Holder known nil: nothing to release on this edge.
	if isNilEdge {
		for _, kind := range []holderKind{holderResource, holderDerived} {
			if pos, ob := findHolder(f, obj, kind); ob != nil {
				f = discharge(f, pos)
			}
		}
	}
	return f
}

// branchWithErr extends branch with the error-pairing refinement;
// split out because the "err is non-nil" edge is the NEQ-taken/
// EQL-not-taken side — the opposite of the holder-nil side.
func (e *leakEngine) branchWithErr(cond ast.Expr, taken bool, f leakFact) leakFact {
	f = e.branch(cond, taken, f)
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return f
	}
	var idExpr ast.Expr
	switch {
	case isNilIdent(e.pass.TypesInfo, be.Y):
		idExpr = be.X
	case isNilIdent(e.pass.TypesInfo, be.X):
		idExpr = be.Y
	default:
		return f
	}
	id, ok := ast.Unparen(idExpr).(*ast.Ident)
	if !ok {
		return f
	}
	obj := e.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return f
	}
	errNonNilEdge := (be.Op == token.NEQ && taken) || (be.Op == token.EQL && !taken)
	if !errNonNilEdge {
		return f
	}
	for pos, ob := range f {
		if ob.errObj != nil && ob.errObj == obj {
			f = discharge(f, pos)
		}
	}
	return f
}

func isNilIdent(info *types.Info, x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

// ---- fact helpers ----

// findHolder returns the obligation (and its key) that obj holds with
// the given kind, or nil.
func findHolder(f leakFact, obj types.Object, kind holderKind) (token.Pos, *oblig) {
	for pos, ob := range f {
		if k, ok := ob.holders[obj]; ok && k == kind {
			return pos, ob
		}
	}
	return token.NoPos, nil
}

func discharge(f leakFact, pos token.Pos) leakFact {
	if _, ok := f[pos]; !ok {
		return f
	}
	out := make(leakFact, len(f))
	for k, v := range f {
		if k != pos {
			out[k] = v
		}
	}
	return out
}

func addHolder(f leakFact, pos token.Pos, obj types.Object, kind holderKind) leakFact {
	ob, ok := f[pos]
	if !ok || obj == nil {
		return f
	}
	nf := f.clone()
	nob := cloneOblig(ob)
	nob.holders[obj] = kind
	nf[pos] = nob
	return nf
}

func dropHolder(f leakFact, pos token.Pos, obj types.Object) leakFact {
	ob, ok := f[pos]
	if !ok {
		return f
	}
	if _, has := ob.holders[obj]; !has {
		return f
	}
	nf := f.clone()
	nob := cloneOblig(ob)
	delete(nob.holders, obj)
	nf[pos] = nob
	return nf
}
