package lint_test

import (
	"strings"
	"testing"

	"geofootprint/internal/lint"
	"geofootprint/internal/lint/analysistest"
	"geofootprint/internal/lint/loader"
)

func TestFloatRange(t *testing.T) {
	analysistest.Run(t, lint.FloatRange,
		"./internal/lint/testdata/src/floatrange/a")
}

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, lint.AtomicWrite,
		"./internal/lint/testdata/src/atomicwrite/store",
		"./internal/lint/testdata/src/atomicwrite/wal",
		"./internal/lint/testdata/src/atomicwrite/other",
		"./internal/lint/testdata/src/atomicwrite/ingest")
}

func TestColWrite(t *testing.T) {
	analysistest.Run(t, lint.ColWrite,
		"./internal/lint/testdata/src/colwrite/store",
		"./internal/lint/testdata/src/colwrite/ingest",
		"./internal/lint/testdata/src/colwrite/other")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, lint.HotAlloc,
		"./internal/lint/testdata/src/hotalloc/a")
}

func TestSortedFootprint(t *testing.T) {
	analysistest.Run(t, lint.SortedFootprint,
		"./internal/lint/testdata/src/sortedfootprint/a")
}

func TestEpochMut(t *testing.T) {
	analysistest.Run(t, lint.EpochMut,
		"./internal/lint/testdata/src/epochmut/a")
}

func TestCtxCancel(t *testing.T) {
	analysistest.Run(t, lint.CtxCancel,
		"./internal/lint/testdata/src/ctxcancel/a")
}

func TestErrDiscard(t *testing.T) {
	analysistest.Run(t, lint.ErrDiscard,
		"./internal/lint/testdata/src/errdiscard/wal",
		"./internal/lint/testdata/src/errdiscard/app")
}

func TestPinLeak(t *testing.T) {
	analysistest.Run(t, lint.PinLeak,
		"./internal/lint/testdata/src/pinleak/a")
}

func TestBodyClose(t *testing.T) {
	analysistest.Run(t, lint.BodyClose,
		"./internal/lint/testdata/src/bodyclose/a")
}

func TestLockBalance(t *testing.T) {
	analysistest.Run(t, lint.LockBalance,
		"./internal/lint/testdata/src/lockbalance/a")
}

// TestStaleIgnore pins the driver-level stale-suppression detection:
// after a full suite run over the fixture, the unused lockbalance
// directive and the typo'd analyzer name are findings, and the live
// suppression is not. Asserted directly (not via // want) because the
// finding lands on the directive's own line, where a want comment
// cannot sit.
func TestStaleIgnore(t *testing.T) {
	root := analysistest.ModuleRoot(t)
	pkgs, err := loader.Load(root, "./internal/lint/testdata/src/staleignore/a")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	findings, err := lint.RunPackage(pkgs[0], lint.Analyzers)
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	var stale []lint.Finding
	for _, f := range findings {
		if f.Analyzer == lint.StaleIgnore {
			stale = append(stale, f)
		} else {
			t.Errorf("unexpected non-stale finding: %s", f)
		}
	}
	if len(stale) != 2 {
		t.Fatalf("got %d staleignore findings, want 2: %v", len(stale), stale)
	}
	if got := stale[0].Message; !strings.Contains(got, "lockbalance suppresses nothing") {
		t.Errorf("first stale finding = %q, want lockbalance-suppresses-nothing", got)
	}
	if got := stale[1].Message; !strings.Contains(got, `unknown analyzer "lockbalanec"`) {
		t.Errorf("second stale finding = %q, want unknown-analyzer", got)
	}
	for _, f := range stale {
		if f.Pos.Line == 0 || f.Pos.Filename == "" {
			t.Errorf("stale finding missing position: %+v", f)
		}
	}
}
