package lint_test

import (
	"testing"

	"geofootprint/internal/lint"
	"geofootprint/internal/lint/analysistest"
)

func TestFloatRange(t *testing.T) {
	analysistest.Run(t, lint.FloatRange,
		"./internal/lint/testdata/src/floatrange/a")
}

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, lint.AtomicWrite,
		"./internal/lint/testdata/src/atomicwrite/store",
		"./internal/lint/testdata/src/atomicwrite/wal",
		"./internal/lint/testdata/src/atomicwrite/other",
		"./internal/lint/testdata/src/atomicwrite/ingest")
}

func TestColWrite(t *testing.T) {
	analysistest.Run(t, lint.ColWrite,
		"./internal/lint/testdata/src/colwrite/store",
		"./internal/lint/testdata/src/colwrite/ingest",
		"./internal/lint/testdata/src/colwrite/other")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, lint.HotAlloc,
		"./internal/lint/testdata/src/hotalloc/a")
}

func TestSortedFootprint(t *testing.T) {
	analysistest.Run(t, lint.SortedFootprint,
		"./internal/lint/testdata/src/sortedfootprint/a")
}

func TestEpochMut(t *testing.T) {
	analysistest.Run(t, lint.EpochMut,
		"./internal/lint/testdata/src/epochmut/a")
}

func TestCtxCancel(t *testing.T) {
	analysistest.Run(t, lint.CtxCancel,
		"./internal/lint/testdata/src/ctxcancel/a")
}

func TestErrDiscard(t *testing.T) {
	analysistest.Run(t, lint.ErrDiscard,
		"./internal/lint/testdata/src/errdiscard/wal",
		"./internal/lint/testdata/src/errdiscard/app")
}
