// Package a is the lockbalance fixture: sync Lock/RLock must reach a
// side-matched Unlock/RUnlock on every returning path, and a mutex
// must not be re-Locked while held. Unlock without a visible Lock is
// deliberately unreported (the xLocked() helper convention).
package a

import (
	"errors"
	"sync"
)

type state struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// LeakOnEarlyReturn is the incident shape: the early-return leg added
// inside the critical section skips the Unlock and the next caller
// blocks forever.
func (s *state) LeakOnEarlyReturn(bad bool) error {
	s.mu.Lock() // want `s\.mu\.Lock\(\) is not released on every path`
	if bad {
		return errors.New("early out") // still holding s.mu
	}
	s.n++
	s.mu.Unlock()
	return nil
}

// DeferredUnlock is the idiom: defer covers every return.
func (s *state) DeferredUnlock(bad bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bad {
		return errors.New("early out")
	}
	s.n++
	return nil
}

// ExplicitBothPaths unlocks on each leg by hand.
func (s *state) ExplicitBothPaths(fast bool) int {
	s.mu.Lock()
	if fast {
		n := s.n
		s.mu.Unlock()
		return n
	}
	s.n++
	s.mu.Unlock()
	return s.n
}

// DoubleLock re-locks while held: sync.Mutex is not reentrant, this
// self-deadlocks at runtime.
func (s *state) DoubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu\.Lock\(\) while already held`
	s.n++
	s.mu.Unlock()
}

// SideMismatchUnlock releases a read lock with the writer-side call:
// panics at runtime ("Unlock of unlocked RWMutex" under a reader).
func (s *state) SideMismatchUnlock() int {
	s.rw.RLock()
	n := s.n
	s.rw.Unlock() // want `s\.rw\.Unlock\(\) but s\.rw is read-locked \(want RUnlock\)`
	return n
}

// SideMismatchRUnlock releases a write lock with the reader-side call.
func (s *state) SideMismatchRUnlock() {
	s.rw.Lock()
	s.n++
	s.rw.RUnlock() // want `s\.rw\.RUnlock\(\) but s\.rw is write-locked \(want Unlock\)`
}

// ReadPath balances the reader side.
func (s *state) ReadPath() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.n
}

// RLeakOnBranch leaks the read side on one leg.
func (s *state) RLeakOnBranch(bad bool) int {
	s.rw.RLock() // want `s\.rw\.RLock\(\) is not released on every path`
	if bad {
		return -1
	}
	n := s.n
	s.rw.RUnlock()
	return n
}

// DeferredClosureUnlock releases inside a deferred function literal.
func (s *state) DeferredClosureUnlock() {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	s.n++
}

// embedded promotes sync.Mutex: s.Lock() resolves to (*sync.Mutex).Lock
// and the discipline applies to the embedding receiver.
type embedded struct {
	sync.Mutex
	n int
}

func (e *embedded) Balanced() {
	e.Lock()
	defer e.Unlock()
	e.n++
}

func (e *embedded) Leaks(bad bool) error {
	e.Lock() // want `e\.Lock\(\) is not released on every path`
	if bad {
		return errors.New("early out")
	}
	e.n++
	e.Unlock()
	return nil
}

// UnlockedHelper runs under the caller's lock: no Lock in sight, and
// deliberately no finding — the xLocked() convention.
func (s *state) bumpLocked() {
	s.n++
}

// UnlockOnly is a split-phase helper that releases what its paired
// helper acquired; intraprocedurally unmatched, deliberately quiet.
func (s *state) UnlockOnly() {
	s.mu.Unlock()
}

// PanicLeg: a panicking path is not an unlock leak; deferred unlocks
// run during unwinding and the CFG dead-ends the path.
func (s *state) PanicLeg(bad bool) {
	s.mu.Lock()
	if bad {
		panic("invariant violated")
	}
	s.n++
	s.mu.Unlock()
}

// Suppressed: the lock-helper convention, justified.
func (s *state) lockForCaller() {
	//lint:ignore lockbalance split-phase helper; UnlockOnly is the paired release
	s.mu.Lock()
}

// TwoMutexes keeps distinct receivers distinct.
func TwoMutexes(a, b *sync.Mutex) {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}
