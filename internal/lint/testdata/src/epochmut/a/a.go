// Package a is the epochmut fixture: direct mutation of a database
// reached through an Epoch or EpochBuilder's DB() accessor is flagged;
// reads, engine queries and mutation through the builder's own
// copy-on-write methods are not.
package a

import (
	"geofootprint/internal/core"
	"geofootprint/internal/store"
)

// MutatePinned mutates a published, lock-free-read snapshot in place:
// every call is a data race with concurrent queries.
func MutatePinned(ep *store.Epoch, f core.Footprint) {
	ep.DB().Upsert(1, f)      // want `mutating call FootprintDB.Upsert on an epoch-published database`
	db := ep.DB()
	db.Remove(3)              // want `mutating call FootprintDB.Remove on an epoch-published database`
	db.ComputeNorms(0)        // want `mutating call FootprintDB.ComputeNorms on an epoch-published database`
	alias := db               // taint survives local aliasing
	alias.Compact()           // want `mutating call FootprintDB.Compact on an epoch-published database`
}

// MutateBuilderDB bypasses the builder's copy-on-write seam: the raw
// database is aliased by every snapshot frozen from this builder.
func MutateBuilderDB(b *store.EpochBuilder) {
	b.DB().EnableSketches(0, 0) // want `mutating call FootprintDB.EnableSketches on an epoch-published database`
	db := b.DB()
	db.AppendRoIs(7, nil)       // want `mutating call FootprintDB.AppendRoIs on an epoch-published database`
}

// ReadOnly: reads and queries against a pinned epoch are the whole
// point of the design; nothing to flag.
func ReadOnly(ep *store.Epoch) (int, bool) {
	db := ep.DB()
	_, ok := db.IndexOf(1)
	return db.Len(), ok
}

// BuilderSeam mutates through the EpochBuilder's own methods — the one
// legal mutation path (copy-on-write, then Freeze and republish).
func BuilderSeam(b *store.EpochBuilder, f core.Footprint) *store.FootprintDB {
	b.Upsert(1, f)
	b.Remove(2)
	return b.Freeze()
}

// PlainDB: a database that never came from an epoch is outside this
// analyzer's contract (sortedfootprint and the store API govern it).
func PlainDB(db *store.FootprintDB, f core.Footprint) {
	db.Upsert(1, f)
}

// Suppressed: a justified ignore is honoured (e.g. a test harness
// deliberately corrupting a snapshot to exercise race detection).
func Suppressed(ep *store.Epoch) {
	//lint:ignore epochmut deliberately racing a pinned snapshot to exercise the chaos suite
	ep.DB().Remove(9)
}
