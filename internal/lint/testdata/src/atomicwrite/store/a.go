// Package store is the atomicwrite fixture for a persistence package
// (its import path ends in the segment "store"): raw os writes are
// flagged outside WriteFileAtomic, and the compliant helper — rename
// followed by a parent-directory fsync — passes.
package store

import (
	"io"
	"os"
)

// SaveRaw commits state with raw writes: every call is a torn-file
// hazard.
func SaveRaw(path string, b []byte) error {
	f, err := os.Create(path) // want `os.Create on a persistence path is not crash-atomic`
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.WriteFile(path+".meta", b, 0o644) // want `os.WriteFile on a persistence path is not crash-atomic`
}

// Promote renames outside the audited helper.
func Promote(tmp, final string) error {
	return os.Rename(tmp, final) // want `os.Rename outside WriteFileAtomic`
}

// WriteFileAtomic is the compliant shape: temp file, fsync, rename,
// parent-directory fsync. Nothing to flag.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(".", "tmp*")
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(f.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(".")
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// Suppressed: a justified //lint:ignore is honoured.
func Suppressed(path string) error {
	//lint:ignore atomicwrite scratch debug dump, never read back after a crash
	return os.WriteFile(path, nil, 0o600)
}
