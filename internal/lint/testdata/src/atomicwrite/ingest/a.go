// Package ingest is the atomicwrite fixture for the faultfs seam (its
// import path ends in the segment "ingest", so it is in scope): the
// durability rules follow the Rename operation through the filesystem
// interface, not just package os.
package ingest

import (
	"io"

	"geofootprint/internal/faultfs"
)

// CommitRaw renames through the seam outside the audited helper: the
// same torn-commit hazard as a raw os.Rename.
func CommitRaw(fsys faultfs.FS, tmp, path string) error {
	return fsys.Rename(tmp, path) // want `faultfs Rename outside WriteFileAtomic on a persistence path`
}

// WriteFileAtomicFS is the compliant helper shape: temp write, file
// sync, rename, then a parent-directory sync that makes the rename
// durable.
func WriteFileAtomicFS(fsys faultfs.FS, dir, tmp, path string, w io.Writer) error {
	f, err := fsys.Open(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return err
	}
	return d.Close()
}

// WriteFileAtomicHalf carries the helper name but forgets the
// directory sync after its rename: the commit can be lost in a crash.
func WriteFileAtomicHalf(fsys faultfs.FS, tmp, path string) error {
	f, err := fsys.Open(tmp)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, path) // want `rename without a parent-directory fsync after it`
}
