// Package wal is the atomicwrite fixture for the rename-durability
// rule: a WriteFileAtomic whose rename is not followed by a
// parent-directory fsync is flagged even inside the helper.
package wal

import (
	"io"
	"os"
)

// WriteFileAtomic fsyncs the file but forgets the directory: the
// rename itself is not durable.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(".", "tmp*")
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(f.Name(), path) // want `rename without a parent-directory fsync`
}
