// Package other is the atomicwrite negative fixture: it is not a
// persistence package (no store/wal/ingest path segment), so raw os
// writes are out of the analyzer's scope.
package other

import "os"

// Dump writes a scratch file; fine outside the durability layer.
func Dump(path string, b []byte) error {
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	return os.Rename(path, path+".done")
}
