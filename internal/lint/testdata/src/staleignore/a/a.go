// Package a is the staleignore fixture: the driver must flag
// //lint:ignore directives that suppress nothing after a full suite
// run, and directives that name an analyzer that does not exist, while
// leaving live suppressions alone.
package a

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// LiveSuppression: the directive suppresses a real lockbalance
// finding (the helper intentionally returns holding the lock), so it
// must NOT be reported as stale.
func (g *guarded) LiveSuppression() {
	//lint:ignore lockbalance split-phase helper returns holding the lock by design
	g.mu.Lock()
}

// StaleSuppression: nothing on this or the next line produces a
// lockbalance diagnostic — the Unlock is balanced — so the directive
// is dead weight and must be flagged.
func (g *guarded) StaleSuppression() {
	//lint:ignore lockbalance leftover from a refactor that removed the early return
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// TypoSuppression names an analyzer that does not exist: it can never
// suppress anything and silently lies about doing so.
func (g *guarded) TypoSuppression() int {
	//lint:ignore lockbalanec typo in the analyzer name
	return g.n
}
