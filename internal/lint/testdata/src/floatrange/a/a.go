// Package a is the floatrange fixture: float accumulation in map
// iteration order must be flagged; sorted-key iteration, integer
// accumulation, body-local accumulators and annotated loops must not.
package a

import "sort"

// SumCompound accumulates with += directly in map order.
func SumCompound(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v // want `floating-point accumulation in map iteration order`
	}
	return s
}

// SumSpelled accumulates with the spelled-out form, accumulator on
// either side of a commutative operator.
func SumSpelled(m map[int]float64) (float64, float64) {
	var s, p float64
	p = 1
	for k, v := range m {
		s = s + float64(k) // want `floating-point accumulation in map iteration order`
		p = v * p          // want `floating-point accumulation in map iteration order`
	}
	return s, p
}

// SumNested: the accumulation sits in a slice loop nested inside the
// map loop — still map-ordered overall.
func SumNested(m map[string][]float64) float64 {
	var s float64
	for _, vs := range m {
		for _, v := range vs {
			s -= v // want `floating-point accumulation in map iteration order`
		}
	}
	return s
}

// SumSorted is the canonical fix: collect keys, sort, accumulate in
// key order. Nothing to flag — the float loop ranges over a slice.
func SumSorted(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var s float64
	for _, k := range keys {
		s += m[k]
	}
	return s
}

// CountInts: integer accumulation is exact in any order.
func CountInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// LocalAccumulator: the accumulator is reset every iteration, so map
// order cannot leak into any value that outlives the loop body.
func LocalAccumulator(m map[string][]float64, out map[string]float64) {
	for k, vs := range m { // map-ordered writes of per-key values are fine
		var rowSum float64
		for _, v := range vs {
			rowSum += v
		}
		out[k] = rowSum
	}
}

// Annotated: the loop adds the same constant for every key, so the
// result is order-independent; the annotation records the argument.
func Annotated(m map[string]float64) float64 {
	var s float64
	//lint:deterministic every term is the constant 1, so order cannot change the sum
	for range m {
		s += 1
	}
	return s
}

// BareAnnotation: a //lint:deterministic with no justification does
// not suppress.
func BareAnnotation(m map[string]float64) float64 {
	var s float64
	//lint:deterministic
	for _, v := range m {
		s += v // want `floating-point accumulation in map iteration order`
	}
	return s
}
