// Package wal is the errdiscard fixture for a durability package (its
// import path ends in the segment "wal"): dropped Close/Sync and
// WAL-API errors are flagged, including deferred ones.
package wal

import (
	"os"

	realwal "geofootprint/internal/wal"
)

// Flush drops every durability signal.
func Flush(f *os.File, l *realwal.Log, payload []byte) {
	f.Sync()           // want `error from File.Sync is discarded`
	f.Close()          // want `error from File.Close is discarded`
	l.Append(payload)  // want `error from Log.Append is discarded`
	l.Reset()          // want `error from Log.Reset is discarded`
	go l.Sync()        // want `error from go Log.Sync is discarded`
	defer l.Close()    // want `error from defer Log.Close is discarded`
}

// Handled returns or explicitly discards every error: nothing fires.
func Handled(f *os.File, l *realwal.Log, payload []byte) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if _, err := l.Append(payload); err != nil {
		return err
	}
	_ = f.Close() // explicit, review-visible discard
	return l.Close()
}

// Suppressed carries a justification for an intentional drop.
func Suppressed(f *os.File) {
	//lint:ignore errdiscard read-only handle, close error carries no data-loss signal
	f.Close()
}
