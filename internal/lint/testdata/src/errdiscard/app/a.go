// Package app is the errdiscard fixture for a non-durability package:
// bare Close/Sync statements still fire, but deferred closes on read
// paths stay idiomatic and unflagged.
package app

import "os"

// Report drops a Close in statement position: flagged everywhere.
func Report(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	f.Close() // want `error from File.Close is discarded`
	return nil
}

// ReadAll uses the idiomatic deferred close on a read-only file: not a
// durability package, so the defer is fine.
func ReadAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}
