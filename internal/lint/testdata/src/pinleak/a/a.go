// Package a is the pinleak fixture: an epoch pin from Acquire must
// reach Release on every returning path. Positive cases leak on one
// leg; negative cases release directly, by defer, via nil-check
// refinement or by escaping the pin to a caller; one suppressed case
// carries its justification.
package a

import (
	"errors"

	"geofootprint/internal/store"
)

// LeakOnEarlyReturn is the incident shape: the error leg added after
// the Acquire returns without releasing the pin.
func LeakOnEarlyReturn(es *store.EpochStore, bad bool) error {
	ep := es.Acquire() // want `epoch pin is not Released on every path`
	if bad {
		return errors.New("early out") // leaks ep
	}
	ep.Release()
	return nil
}

// Discarded never binds the pin at all: it can never be Released.
func Discarded(es *store.EpochStore) {
	es.Acquire() // want `epoch pin acquired and discarded`
}

// BlankBound discards through the blank identifier.
func BlankBound(es *store.EpochStore) {
	_ = es.Acquire() // want `epoch pin acquired and discarded`
}

// Reacquired overwrites a live pin: the first epoch can no longer be
// released through ep.
func Reacquired(es *store.EpochStore) {
	ep := es.Acquire()
	ep = es.Acquire() // want `epoch pin overwritten by a new Acquire before being Released`
	ep.Release()
}

// StraightLine releases on the only path.
func StraightLine(es *store.EpochStore) uint64 {
	ep := es.Acquire()
	seq := ep.Seq()
	ep.Release()
	return seq
}

// Deferred releases by defer: every later return is covered.
func Deferred(es *store.EpochStore, bad bool) error {
	ep := es.Acquire()
	defer ep.Release()
	if bad {
		return errors.New("early out")
	}
	return nil
}

// DeferredClosure releases inside a deferred function literal.
func DeferredClosure(es *store.EpochStore) {
	ep := es.Acquire()
	defer func() {
		ep.Release()
	}()
	_ = ep.DB()
}

// NilChecked: before the first Publish, Acquire returns nil. On the
// nil leg there is no pin to release.
func NilChecked(es *store.EpochStore) *store.FootprintDB {
	ep := es.Acquire()
	if ep == nil {
		return nil
	}
	defer ep.Release()
	return ep.DB()
}

// BothBranchesRelease covers each leg explicitly.
func BothBranchesRelease(es *store.EpochStore, fast bool) uint64 {
	ep := es.Acquire()
	if fast {
		seq := ep.Seq()
		ep.Release()
		return seq
	}
	ep.Release()
	return 0
}

// Escapes hands the pin to the caller: releasing it is the caller's
// contract, not this function's.
func Escapes(es *store.EpochStore) *store.Epoch {
	return es.Acquire()
}

// EscapesVar binds then returns the pin.
func EscapesVar(es *store.EpochStore) *store.Epoch {
	ep := es.Acquire()
	return ep
}

// holder retains a pin across calls; storing the pin in a struct is an
// escape (released elsewhere by the holder's own discipline).
type holder struct {
	ep *store.Epoch
}

func (h *holder) Pin(es *store.EpochStore) {
	ep := es.Acquire()
	h.ep = ep
}

// WrapperAcquire is an acquire-shaped helper (name ends in Acquire):
// its own body escapes the pin via return, and its caller owns the
// obligation.
func WrapperAcquire(es *store.EpochStore) (*store.Epoch, error) {
	ep := es.Acquire()
	if ep == nil {
		return nil, errors.New("no epoch published")
	}
	return ep, nil
}

// ErrPaired: the error leg of an acquire wrapper means no pin was
// taken; branch refinement keeps it quiet.
func ErrPaired(es *store.EpochStore) uint64 {
	ep, err := WrapperAcquire(es)
	if err != nil {
		return 0
	}
	defer ep.Release()
	return ep.Seq()
}

// Published: Publish returns a *store.Epoch but takes no pin — it must
// not create an obligation (the serving plane publishes under a lock
// and never releases the returned handle).
func Published(es *store.EpochStore, db *store.FootprintDB) uint64 {
	ep := es.Publish(db, nil)
	return ep.Seq()
}

// PanicPath: a panicking leg is not a leak — deferred releases run
// during unwinding and the analyzer's CFG dead-ends the path.
func PanicPath(es *store.EpochStore, bad bool) {
	ep := es.Acquire()
	if bad {
		panic("invariant violated")
	}
	ep.Release()
}

// Suppressed: a justified ignore is honoured (a benchmark fixture that
// holds a pin for the process lifetime on purpose).
func Suppressed(es *store.EpochStore) {
	//lint:ignore pinleak benchmark holds the pin for the process lifetime on purpose
	ep := es.Acquire()
	_ = ep
}

// LoopRelease acquires and releases per iteration.
func LoopRelease(es *store.EpochStore, n int) {
	for i := 0; i < n; i++ {
		ep := es.Acquire()
		ep.Release()
	}
}

// LoopLeak leaks one pin per iteration.
func LoopLeak(es *store.EpochStore, n int) {
	for i := 0; i < n; i++ {
		ep := es.Acquire() // want `epoch pin is not Released on every path`
		_ = ep.Seq()
	}
}
