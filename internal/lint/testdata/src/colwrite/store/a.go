// Package store is the colwrite fixture for a persistence package
// (its import path ends in the segment "store"): encoding a columnar
// snapshot outside the WriteColumnar helper family is flagged, the
// helpers themselves pass, and a justified suppression is honoured.
package store

import (
	"io"
	"os"

	"geofootprint/internal/colstore"
)

// SaveRaw encodes straight into a file it created itself: on a crash
// the final name can hold a truncated, CRC-inconsistent snapshot.
func SaveRaw(path string, snap *colstore.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.EncodeTo(f); err != nil { // want `colstore Snapshot.EncodeTo outside WriteColumnar`
		_ = f.Close()
		return err
	}
	return f.Close()
}

// WriteColumnarFS is the compliant seam shape: the encode happens
// inside the helper the analyzer trusts (the real one funnels into
// WriteFileAtomicFS).
func WriteColumnarFS(w io.Writer, snap *colstore.Snapshot) error {
	return snap.EncodeTo(w)
}

// Suppressed: a justified //lint:ignore is honoured.
func Suppressed(w io.Writer, snap *colstore.Snapshot) error {
	//lint:ignore colwrite round-trip self-test buffer, never a durable file
	return snap.EncodeTo(w)
}
