// Package ingest is the colwrite fixture for the checkpoint writer's
// package: the ingest path segment is part of the durability layer, so
// a raw snapshot encode is flagged there exactly as in store.
package ingest

import (
	"io"

	"geofootprint/internal/colstore"
)

// Checkpoint bypasses the writer seam.
func Checkpoint(w io.Writer, snap *colstore.Snapshot) error {
	return snap.EncodeTo(w) // want `colstore Snapshot.EncodeTo outside WriteColumnar`
}
