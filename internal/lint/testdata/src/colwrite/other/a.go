// Package other is the colwrite negative fixture: not a persistence
// package (no store/wal/ingest path segment), so encoding a snapshot
// to an arbitrary writer — a network response, a test buffer — is out
// of the analyzer's scope.
package other

import (
	"io"

	"geofootprint/internal/colstore"
)

// Stream serialises a snapshot for transport; fine outside the
// durability layer.
func Stream(w io.Writer, snap *colstore.Snapshot) error {
	return snap.EncodeTo(w)
}
