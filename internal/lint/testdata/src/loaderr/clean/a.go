// Package clean is a dependency-free fixture used by the cold-cache
// loader test: with GOCACHE pointed at an empty directory, go list
// -export must rebuild export data from scratch and Load must still
// succeed.
package clean

// Answer is deliberately trivial; the package exists to be loadable
// with no imports at all.
func Answer() int { return 42 }
