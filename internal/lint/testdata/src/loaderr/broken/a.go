// Package broken parses but does not type-check: the loader must
// surface the type errors as a diagnostic, not panic, and keep them
// alongside errors from other roots in the same Load call.
package broken

func Mismatched() int {
	var x int = "definitely not an int"
	return x
}

func AlsoBad() {
	undefinedFunction(42)
}
