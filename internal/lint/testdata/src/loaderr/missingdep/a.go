// Package missingdep imports a package that does not exist: go list
// reports the broken import and the loader must aggregate that error
// (and the resulting export-data miss) instead of dying on it or
// panicking later.
package missingdep

import nowhere "geofootprint/internal/lint/testdata/src/loaderr/nonexistent"

func Use() {
	nowhere.Nothing()
}
