// Package a is the ctxcancel fixture: outermost loops in functions
// marked //geo:cancellable must poll the context; everything else is
// out of scope.
package a

import "context"

type item struct{ score float64 }

// Scan sweeps the corpus with a poll per iteration: compliant.
//
//geo:cancellable
func Scan(ctx context.Context, items []item) ([]item, error) {
	var out []item
	for i := range items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out = append(out, items[i])
	}
	return out, nil
}

// ScanStrided polls on a stride inside a nested loop — the inner loop
// needs no poll of its own because the outer one's covers it.
//
//geo:cancellable
func ScanStrided(ctx context.Context, grid [][]item) error {
	for i := range grid {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		for range grid[i] {
		}
	}
	return nil
}

// ScanWorkers launches goroutines from the loop; the poll lives in the
// closure, which counts through containment.
//
//geo:cancellable
func ScanWorkers(ctx context.Context, items []item) {
	for range items {
		go func() {
			select {
			case <-ctx.Done():
			default:
			}
		}()
	}
}

// ScanForever never polls: a cancelled query would spin here until the
// corpus runs out.
//
//geo:cancellable
func ScanForever(ctx context.Context, items []item) float64 {
	var sum float64
	for i := range items { // want `loop in //geo:cancellable function ScanForever never polls the context`
		sum += items[i].score
	}
	return sum
}

// ScanTwoLoops polls in its first loop but not its second — each
// outermost loop needs its own cancellation point.
//
//geo:cancellable
func ScanTwoLoops(ctx context.Context, items []item) error {
	for range items {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	for range items { // want `loop in //geo:cancellable function ScanTwoLoops never polls the context`
	}
	return nil
}

// ScanBounded suppresses the diagnostic for a trip count that is small
// by construction.
//
//geo:cancellable
func ScanBounded(ctx context.Context, k int) int {
	_ = ctx
	n := 0
	//lint:ignore ctxcancel k is the result size, bounded by the API to double digits
	for i := 0; i < k; i++ {
		n++
	}
	return n
}

// Unmarked functions may loop however they like.
func Unmarked(items []item) float64 {
	var sum float64
	for i := range items {
		sum += items[i].score
	}
	return sum
}
