// Package a is the bodyclose fixture: every *http.Response must have
// its Body closed on every returning path. The error leg of the
// `resp, err := Do(req); if err != nil` idiom is refined away (resp is
// nil there by the net/http contract); escapes transfer the obligation
// to the receiver.
package a

import (
	"fmt"
	"io"
	"net/http"
)

// LeakOnStatusCheck is the incident shape: the status-code early
// return added between Do and the Close.
func LeakOnStatusCheck(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req) // want `response body is not closed on every path`
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode) // leaks the body
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.Body.Close()
}

// Deferred is the idiom the serving plane uses: close immediately
// after the error check, covering every later return.
func Deferred(c *http.Client, req *http.Request) (int, error) {
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	return int(n), err
}

// DiscardedResponse never binds the response at all.
func DiscardedResponse(url string) {
	http.Get(url) // want `http response discarded without closing its body`
}

// BlankBound discards the response through the blank identifier.
func BlankBound(url string) error {
	_, err := http.Get(url) // want `http response discarded without closing its body`
	return err
}

// BodyAlias closes through an alias of the body: same obligation.
func BodyAlias(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	b := resp.Body
	_, _ = io.Copy(io.Discard, b)
	return b.Close()
}

// UnderscoreClose discharges via the checked-discard form.
func UnderscoreClose(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	_ = resp.Body.Close()
	return nil
}

// DeferredClosure closes inside a deferred function literal.
func DeferredClosure(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer func() {
		_ = resp.Body.Close()
	}()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// Escapes hands the open response to the caller, which owns the close.
func Escapes(c *http.Client, req *http.Request) (*http.Response, error) {
	return c.Do(req)
}

// EscapesVar binds then returns the open response.
func EscapesVar(c *http.Client, req *http.Request) (*http.Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Reassigned overwrites a response whose body is still open.
func Reassigned(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	resp, err = http.Get(url) // want `response overwritten by a new request before its body was closed`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// PerCaseClose mirrors cmd/geofeed's switch: each reachable case
// closes (or dead-ends) explicitly.
func PerCaseClose(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		_ = resp.Body.Close()
		return nil
	case http.StatusNotFound:
		_ = resp.Body.Close()
		return fmt.Errorf("not found")
	default:
		_ = resp.Body.Close()
		return fmt.Errorf("status %d", resp.StatusCode)
	}
}

// PanicLeg: a panicking path is not a leak; defers run during
// unwinding and the CFG dead-ends the path.
func PanicLeg(url string, strict bool) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	if strict && resp.StatusCode != http.StatusOK {
		panic("bad status")
	}
	_ = resp.Body.Close()
}

// Suppressed: a justified ignore is honoured (a connection-starvation
// probe leaks bodies on purpose).
func Suppressed(url string) {
	//lint:ignore bodyclose chaos probe leaks the body on purpose to starve the pool
	resp, _ := http.Get(url)
	_ = resp
}

// ProbeDrainClose is the router health-probe shape: a deferred
// closure that drains a bounded prefix (for keep-alive reuse) through
// a LimitReader alias, then closes. Both the wrap and the close are
// on the same body; the obligation is discharged.
func ProbeDrainClose(c *http.Client, req *http.Request) (int, error) {
	resp, err := c.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close()
	}()
	return resp.StatusCode, nil
}

// RoundTripperRewrap is the netfault transport shape: a RoundTripper
// swaps the body for a wrapper (which owns closing the inner reader)
// and returns the response — the obligation escapes to the caller
// with the response, exactly as with an untouched body.
func RoundTripperRewrap(inner http.RoundTripper, req *http.Request) (*http.Response, error) {
	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	resp.Body = io.NopCloser(io.LimitReader(resp.Body, 16))
	return resp, nil
}

// RedeliveryLoopLeak is the hint-redelivery hazard shape: a per-item
// request inside a loop where a later status check breaks out without
// closing that iteration's body.
func RedeliveryLoopLeak(c *http.Client, urls []string) error {
	for _, u := range urls {
		resp, err := c.Get(u) // want `response body is not closed on every path`
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusAccepted {
			break // leaks this iteration's body
		}
		_ = resp.Body.Close()
	}
	return nil
}

// RedeliveryLoopClosed is the same loop with the close hoisted ahead
// of the status decision — the shape replica redelivery actually uses.
func RedeliveryLoopClosed(c *http.Client, urls []string) error {
	for _, u := range urls {
		resp, err := c.Get(u)
		if err != nil {
			return err
		}
		status := resp.StatusCode
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		if status != http.StatusAccepted {
			break
		}
	}
	return nil
}
