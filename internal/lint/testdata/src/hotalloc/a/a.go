// Package a is the hotalloc fixture: allocation sources inside
// //geo:hotpath functions are flagged; the same constructs in
// unmarked functions, and preallocated or suppressed sites in marked
// ones, are not.
package a

import "fmt"

// Kernel is the positive case: every statically visible allocation
// source fires.
//
//geo:hotpath
func Kernel(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	_ = fmt.Sprintf("sum=%v", s) // want `fmt.Sprintf allocates in //geo:hotpath function Kernel`
	cb := func() float64 { return s } // want `closure literal in //geo:hotpath function Kernel`
	p := &point{x: s}                 // want `address-taken composite literal escapes in //geo:hotpath function Kernel`
	buf := make([]float64, 0, 8)      // want `make allocates in //geo:hotpath function Kernel`
	buf = append(buf, cb(), p.x)
	var grow []float64
	grow = append(grow, s) // want `append grows grow, declared without capacity, in //geo:hotpath function Kernel`
	return grow[0] + buf[0]
}

type point struct{ x float64 }

// Cold has the same shapes but no marker: out of scope.
func Cold(xs []float64) string {
	var grow []float64
	grow = append(grow, xs...)
	f := func() int { return len(grow) }
	return fmt.Sprint(f())
}

// Pinned is a hot function whose one closure is provably
// stack-allocated and pinned by an AllocsPerRun test; the suppression
// carries that justification.
//
//geo:hotpath
func Pinned(xs []float64, lo float64) int {
	n := 0
	for _, x := range xs {
		if x >= lo {
			n++
		}
	}
	//lint:ignore hotalloc non-escaping comparison closure, stack-allocated; pinned at 0 allocs by the fixture's imaginary alloc test
	cmp := func(a, b float64) bool { return a < b }
	if cmp(lo, 0) {
		return -n
	}
	return n
}

// PreSized appends only into caller-provided or make-sized slices:
// nothing fires on the append rule (the make itself is the only
// report).
//
//geo:hotpath
func PreSized(dst []float64, xs []float64) []float64 {
	for _, x := range xs {
		dst = append(dst, x)
	}
	tmp := make([]float64, 0, len(xs)) // want `make allocates in //geo:hotpath function PreSized`
	tmp = append(tmp, xs...)
	if len(tmp) > 0 {
		return tmp
	}
	return dst
}
