// Package a is the sortedfootprint fixture: direct writes to
// store.FootprintDB's parallel slices from outside internal/store are
// flagged; reads and API-mediated mutation are not.
package a

import (
	"geofootprint/internal/core"
	"geofootprint/internal/geom"
	"geofootprint/internal/store"
)

// Clobber mutates the parallel slices directly: every write bypasses
// the MinX-sorted/aligned-slices invariant.
func Clobber(db *store.FootprintDB, f core.Footprint) {
	db.Footprints[0] = f                       // want `direct write to FootprintDB.Footprints`
	db.Footprints = append(db.Footprints, f)   // want `direct write to FootprintDB.Footprints` `direct write to FootprintDB.Footprints`
	db.Footprints[0][0].Weight = 2             // want `direct write to FootprintDB.Footprints`
	db.Norms[0] = 1                            // want `direct write to FootprintDB.Norms`
	db.Norms[0]++                              // want `direct write to FootprintDB.Norms`
	db.MBRs[0] = geom.Rect{}                   // want `direct write to FootprintDB.MBRs`
	db.IDs = nil                               // want `direct write to FootprintDB.IDs`
	db.Sketches = db.Sketches[:0]              // want `direct write to FootprintDB.Sketches`
}

// Read-only access and value copies are fine.
func ReadOnly(db *store.FootprintDB) (float64, int) {
	var total float64
	for i := range db.Footprints {
		total += db.Norms[i]
	}
	f := db.Footprints[0] // copying the slice header for reading is fine
	return total, len(f)
}

// Rebuild goes through the store API: nothing to flag.
func Rebuild(name string, ids []int, fps []core.Footprint) (*store.FootprintDB, error) {
	return store.FromFootprints(name, ids, fps)
}

// Suppressed: a justified ignore is honoured (e.g. a test harness
// deliberately corrupting a database to exercise strictsort).
func Suppressed(db *store.FootprintDB) {
	//lint:ignore sortedfootprint deliberately desorting to exercise the strictsort panic path
	db.Footprints[0][0].Rect.MinX = 1e18
}
