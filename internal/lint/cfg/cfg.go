// Package cfg builds intraprocedural control-flow graphs from Go ASTs
// for geolint's flow-sensitive analyzers.
//
// It is a dependency-free mirror of golang.org/x/tools/go/cfg — the
// same playbook as internal/lint/analysis: the container this repo
// builds in has no module proxy access, so the upstream package cannot
// be vendored, and the shapes here (CFG, Block, a mayReturn hook for
// no-return calls) are kept close enough that a consumer ports to the
// upstream package mechanically. Where this package deliberately goes
// beyond the upstream surface:
//
//   - There is a single synthetic Exit block. Every `return` and every
//     fall-off-the-end path gets an edge to it, so a dataflow analyzer
//     asks one question — "what fact reaches Exit?" — to reason about
//     all exits at once.
//   - Calls that cannot return (panic, os.Exit, log.Fatal*,
//     runtime.Goexit) terminate their block with NO successor. A pin or
//     lock held on a panicking path is not a leak the way a held pin on
//     a returning path is: deferred releases still run during
//     unwinding, and os.Exit forfeits the process anyway. Analyzers
//     that disagree can pass their own mayReturn.
//   - Condition blocks expose their branch expression via Block.Cond
//     with Succs[0] the true edge and Succs[1] the false edge, so
//     analyzers can refine facts along edges (`if err != nil { return }`
//     kills the "response body pending" obligation on the error leg).
//
// Function literals are NOT inlined: a FuncLit appears as an opaque
// expression inside whatever statement mentions it, and callers build
// a separate CFG per literal. Defer statements are ordinary block
// nodes — an analyzer models "from this point on, every exit runs the
// deferred call" by applying the deferred effect at the DeferStmt
// itself, which is sound for the monotone facts geolint tracks.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CFG is the control-flow graph of one function body.
// Blocks[0] is the entry block; Exit is the single synthetic exit.
type CFG struct {
	Blocks []*Block
	Exit   *Block
}

// Block is a basic block: a maximal sequence of nodes executed in
// order, ended by a transfer of control.
type Block struct {
	Index int
	Kind  string // "entry", "exit", "if.then", "for.body", ... for debugging
	// Nodes holds the statements and evaluated expressions of the
	// block in execution order. Entries are *ast.Stmt (most
	// statements) or ast.Expr (an if/for/switch condition or range
	// operand evaluated at the end of the block).
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Cond, when non-nil, is the branch condition evaluated last in
	// this block: Succs[0] is taken when it is true, Succs[1] when
	// false.
	Cond ast.Expr
}

// New builds the CFG of body. mayReturn reports whether a call
// expression can return to its caller; pass nil for "every call
// returns". Use MayReturn(info) for the standard panic/os.Exit/
// log.Fatal* classifier.
func New(body *ast.BlockStmt, mayReturn func(*ast.CallExpr) bool) *CFG {
	if mayReturn == nil {
		mayReturn = func(*ast.CallExpr) bool { return true }
	}
	b := &builder{
		cfg:       &CFG{},
		mayReturn: mayReturn,
		labels:    make(map[string]*labelInfo),
	}
	entry := b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = entry
	b.stmtList(body.List)
	// Fall off the end of the body: implicit return — but only when
	// the end is actually reachable (a body ending in return/panic
	// leaves the builder in a dead block; an edge from it would give
	// Exit a spurious predecessor).
	for _, blk := range b.cfg.Reachable() {
		if blk == b.cur {
			b.edge(b.cur, b.cfg.Exit)
			break
		}
	}
	return b.cfg
}

// MayReturn returns the standard no-return classifier: panic, os.Exit,
// runtime.Goexit and the log.Fatal/log.Panic family (package functions
// and *log.Logger methods) are treated as terminating the path.
func MayReturn(info *types.Info) func(*ast.CallExpr) bool {
	return func(call *ast.CallExpr) bool {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
				return false
			}
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				return !noReturnFunc(fn)
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				return !noReturnFunc(fn)
			}
		}
		return true
	}
}

// noReturnFunc reports whether fn is a known no-return function.
func noReturnFunc(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	name := fn.Name()
	switch pkg.Path() {
	case "os":
		return name == "Exit"
	case "runtime":
		return name == "Goexit"
	case "log":
		return strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")
	case "testing":
		// Tests are outside geolint's scope, but fixtures may use
		// these; (*T).Fatal stops the goroutine like Goexit.
		return name == "Fatal" || name == "Fatalf" || name == "SkipNow" || name == "Skip" || name == "Skipf"
	}
	return false
}

// labelInfo tracks the targets of a labeled statement.
type labelInfo struct {
	_break    *Block // labeled break target (after the construct)
	_continue *Block // labeled continue target (loop post/head)
	_goto     *Block // the labeled statement itself
}

type builder struct {
	cfg       *CFG
	cur       *Block
	mayReturn func(*ast.CallExpr) bool

	// Innermost enclosing loop/switch/select targets.
	breakTarget    *Block
	continueTarget *Block

	labels map[string]*labelInfo
	// label pending on the next loop/switch (labeled construct).
	curLabel *labelInfo
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an unconditional edge to to and
// leaves the builder in a fresh unreachable block (for any dead code
// that follows).
func (b *builder) jump(to *Block) {
	b.edge(b.cur, to)
	b.cur = b.newBlock("unreachable")
}

func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.LabeledStmt:
		b.labeledStmt(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		lbl := b.curLabel
		b.curLabel = nil
		b.forStmt(s, lbl)

	case *ast.RangeStmt:
		lbl := b.curLabel
		b.curLabel = nil
		b.rangeStmt(s, lbl)

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, s.Body, nil)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Body, s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && !b.mayReturn(call) {
			// No-return call: the path ends here, deliberately with no
			// edge to Exit (see package comment).
			b.cur = b.newBlock("unreachable")
		}

	default:
		// Assign, Decl, IncDec, Send, Go, Defer, Empty, ...: straight-line.
		b.add(s)
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	if s.Tok == token.FALLTHROUGH {
		// Always the last statement of a case body; switchStmt wires
		// the edge to the next case block structurally.
		b.add(s)
		return
	}
	var target *Block
	switch s.Tok {
	case token.BREAK:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				target = li._break
			}
		} else {
			target = b.breakTarget
		}
	case token.CONTINUE:
		if s.Label != nil {
			if li := b.labels[s.Label.Name]; li != nil {
				target = li._continue
			}
		} else {
			target = b.continueTarget
		}
	case token.GOTO:
		if s.Label != nil {
			li := b.labels[s.Label.Name]
			if li == nil {
				// Forward goto: allocate the label's block now; the
				// labeled statement will adopt it.
				li = &labelInfo{_goto: b.newBlock("label." + s.Label.Name)}
				b.labels[s.Label.Name] = li
			}
			target = li._goto
		}
	}
	b.add(s)
	if target != nil {
		b.jump(target)
	} else {
		b.cur = b.newBlock("unreachable")
	}
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	li := b.labels[s.Label.Name]
	if li == nil {
		li = &labelInfo{_goto: b.newBlock("label." + s.Label.Name)}
		b.labels[s.Label.Name] = li
	}
	// The label's block begins the labeled statement.
	b.jumpTo(li._goto)
	done := b.newBlock("label." + s.Label.Name + ".done")
	li._break = done
	b.curLabel = li
	b.stmt(s.Stmt)
	b.curLabel = nil
	b.jumpTo(done)
}

// jumpTo ends the current block with an edge to, and continues
// building IN to (unlike jump, which continues in a dead block).
func (b *builder) jumpTo(to *Block) {
	b.edge(b.cur, to)
	b.cur = to
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	condBlock := b.cur
	condBlock.Cond = s.Cond

	then := b.newBlock("if.then")
	done := b.newBlock("if.done")
	b.edge(condBlock, then) // Succs[0]: condition true

	b.cur = then
	b.stmt(s.Body)
	b.jumpTo(done)

	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(condBlock, els) // Succs[1]: condition false
		b.cur = els
		b.stmt(s.Else)
		b.jumpTo(done)
	} else {
		b.edge(condBlock, done) // Succs[1]: condition false
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label *labelInfo) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.jumpTo(head)
	if s.Cond != nil {
		b.add(s.Cond)
		head.Cond = s.Cond
		b.edge(head, body) // true
		b.edge(head, done) // false
	} else {
		b.edge(head, body) // for {}: only way out is break/return
	}
	if label != nil {
		label._break, label._continue = done, post
	}
	prevB, prevC := b.breakTarget, b.continueTarget
	b.breakTarget, b.continueTarget = done, post
	b.cur = body
	b.stmt(s.Body)
	if s.Post != nil {
		b.jumpTo(post)
		b.add(s.Post)
		b.jump(head)
	} else {
		b.jump(head)
	}
	b.breakTarget, b.continueTarget = prevB, prevC
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label *labelInfo) {
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	// The whole RangeStmt is the head's node: it evaluates the range
	// operand and, per iteration, assigns Key/Value.
	b.jumpTo(head)
	b.add(s)
	b.edge(head, body) // another element
	b.edge(head, done) // exhausted
	if label != nil {
		label._break, label._continue = done, head
	}
	prevB, prevC := b.breakTarget, b.continueTarget
	b.breakTarget, b.continueTarget = done, head
	b.cur = body
	b.stmt(s.Body)
	b.jump(head)
	b.breakTarget, b.continueTarget = prevB, prevC
	b.cur = done
}

// switchStmt handles both expression switches (tag may be nil) and
// type switches (ts non-nil). The model is conservative: the head
// block evaluates Init and the tag, then branches to every case body;
// case-clause expressions are not treated as refinement conditions.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, ts *ast.TypeSwitchStmt) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if ts != nil {
		b.add(ts.Assign)
	}
	head := b.cur
	done := b.newBlock("switch.done")
	if b.curLabel != nil {
		b.curLabel._break = done
		b.curLabel = nil
	}
	prevB := b.breakTarget
	b.breakTarget = done

	var caseBlocks []*Block
	var clauses []*ast.CaseClause
	hasDefault := false
	for _, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		blk := b.newBlock("switch.case")
		b.edge(head, blk)
		caseBlocks = append(caseBlocks, blk)
		clauses = append(clauses, cc)
	}
	if !hasDefault {
		b.edge(head, done) // no case matched
	}
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		// Case expressions are evaluated (conservatively in the case
		// body block: they may contain calls).
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(caseBlocks) {
			b.jump(caseBlocks[i+1])
		} else {
			b.jumpTo(done)
		}
	}
	b.breakTarget = prevB
	b.cur = done
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	// The head evaluates the comm operands; each clause's Comm
	// statement is re-added in its own block, where its effect (the
	// receive/send actually happening) belongs.
	head := b.cur
	done := b.newBlock("select.done")
	if b.curLabel != nil {
		b.curLabel._break = done
		b.curLabel = nil
	}
	prevB := b.breakTarget
	b.breakTarget = done
	anyBody := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		anyBody = true
		blk := b.newBlock("select.comm")
		b.edge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jumpTo(done)
	}
	if !anyBody {
		// select {} blocks forever: no successor.
		b.cur = b.newBlock("unreachable")
		b.breakTarget = prevB
		return
	}
	b.breakTarget = prevB
	b.cur = done
}

// Reachable returns the blocks reachable from entry, in index order.
func (g *CFG) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	var stack []*Block
	if len(g.Blocks) > 0 {
		stack = append(stack, g.Blocks[0])
		seen[0] = true
	}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				stack = append(stack, s)
			}
		}
	}
	var out []*Block
	for i, blk := range g.Blocks {
		if seen[i] {
			out = append(out, blk)
		}
	}
	return out
}

// Format renders the CFG for debugging and tests.
func (g *CFG) Format(fset *token.FileSet) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s):", blk.Index, blk.Kind)
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
