package cfg

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// buildCFG type-checks one function body from src (a complete file)
// and builds its CFG with the standard no-return classifier.
func buildCFG(t *testing.T, src, fn string) (*CFG, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Uses: make(map[*ast.Ident]types.Object),
		Defs: make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default(), Error: func(error) {}}
	// Type errors are tolerated: the builder only needs Uses for the
	// no-return classifier.
	conf.Check("x", fset, []*ast.File{f}, info)
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if ok && fd.Name.Name == fn {
			return New(fd.Body, MayReturn(info)), fset
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// exitReachableFrom reports whether Exit is reachable from entry.
func exitReachable(g *CFG) bool {
	for _, blk := range g.Reachable() {
		if blk == g.Exit {
			return true
		}
	}
	return false
}

// stmtAt returns the reachable block containing a node whose source
// text starts with prefix, or nil.
func blockWith(g *CFG, fset *token.FileSet, src, prefix string) *Block {
	for _, blk := range g.Reachable() {
		for _, n := range blk.Nodes {
			start := fset.Position(n.Pos()).Offset
			end := fset.Position(n.End()).Offset
			if start >= 0 && end <= len(src) && strings.HasPrefix(src[start:end], prefix) {
				return blk
			}
		}
	}
	return nil
}

func TestStraightLine(t *testing.T) {
	src := `package x
func f() int {
	a := 1
	a++
	return a
}`
	g, _ := buildCFG(t, src, "f")
	if !exitReachable(g) {
		t.Fatal("exit not reachable")
	}
	// entry -> exit, one return edge.
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1", len(g.Exit.Preds))
	}
}

func TestIfElseBothReachExit(t *testing.T) {
	src := `package x
func f(b bool) int {
	if b {
		return 1
	}
	return 2
}`
	g, fset := buildCFG(t, src, "f")
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2 (both returns)", len(g.Exit.Preds))
	}
	cond := blockWith(g, fset, src, "b")
	if cond == nil || cond.Cond == nil {
		t.Fatal("condition block missing Cond")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs = %d, want 2", len(cond.Succs))
	}
}

func TestPanicPathHasNoExitEdge(t *testing.T) {
	src := `package x
func f(b bool) int {
	if b {
		panic("boom")
	}
	return 2
}`
	g, _ := buildCFG(t, src, "f")
	// Only the return reaches exit; the panic path dead-ends.
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1 (panic path must not reach exit)", len(g.Exit.Preds))
	}
}

func TestOsExitAndLogFatalNoReturn(t *testing.T) {
	src := `package x
import (
	"log"
	"os"
)
func f(n int) int {
	switch n {
	case 0:
		os.Exit(1)
	case 1:
		log.Fatalf("bad %d", n)
	}
	return n
}`
	g, _ := buildCFG(t, src, "f")
	// Exit preds: the switch.done fallthrough path only (both case
	// bodies dead-end). done receives head's no-default edge plus two
	// case bodies' unreachable continuations; but only one *reachable*
	// return edge exists into exit.
	reach := map[*Block]bool{}
	for _, blk := range g.Reachable() {
		reach[blk] = true
	}
	n := 0
	for _, p := range g.Exit.Preds {
		if reach[p] {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("reachable exit preds = %d, want 1", n)
	}
}

func TestForLoopShape(t *testing.T) {
	src := `package x
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	g, fset := buildCFG(t, src, "f")
	head := blockWith(g, fset, src, "i < n")
	if head == nil || head.Cond == nil || len(head.Succs) != 2 {
		t.Fatalf("loop head malformed: %+v", head)
	}
	if !exitReachable(g) {
		t.Fatal("exit unreachable")
	}
}

func TestInfiniteLoopNoExit(t *testing.T) {
	src := `package x
func f() {
	for {
	}
}`
	g, _ := buildCFG(t, src, "f")
	if exitReachable(g) {
		t.Fatal("exit reachable through for {}")
	}
}

func TestBreakEscapesInfiniteLoop(t *testing.T) {
	src := `package x
func f(b bool) {
	for {
		if b {
			break
		}
	}
}`
	g, _ := buildCFG(t, src, "f")
	if !exitReachable(g) {
		t.Fatal("break did not reach exit")
	}
}

func TestLabeledBreak(t *testing.T) {
	src := `package x
func f(m [][]int) int {
	s := 0
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				break outer
			}
			s += v
		}
	}
	return s
}`
	g, _ := buildCFG(t, src, "f")
	if !exitReachable(g) {
		t.Fatal("exit unreachable with labeled break")
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	src := `package x
func f(b bool) int {
	i := 0
loop:
	i++
	if b {
		goto done
	}
	if i < 10 {
		goto loop
	}
done:
	return i
}`
	g, _ := buildCFG(t, src, "f")
	if !exitReachable(g) {
		t.Fatal("exit unreachable with gotos")
	}
	if len(g.Exit.Preds) != 1 {
		t.Fatalf("exit preds = %d, want 1", len(g.Exit.Preds))
	}
}

func TestSwitchAllCasesJoin(t *testing.T) {
	src := `package x
func f(n int) int {
	s := 0
	switch n {
	case 0:
		s = 1
	case 1:
		s = 2
		fallthrough
	case 2:
		s += 10
	default:
		s = -1
	}
	return s
}`
	g, fset := buildCFG(t, src, "f")
	if !exitReachable(g) {
		t.Fatal("exit unreachable")
	}
	// The fallthrough case body must have the next case body as a
	// successor.
	ft := blockWith(g, fset, src, "s = 2")
	next := blockWith(g, fset, src, "s += 10")
	if ft == nil || next == nil {
		t.Fatal("case blocks not found")
	}
	found := false
	for _, s := range ft.Succs {
		if s == next {
			found = true
		}
	}
	if !found {
		t.Fatalf("fallthrough edge missing: %s", g.Format(fset))
	}
}

func TestSelectBranches(t *testing.T) {
	src := `package x
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case <-b:
		return 0
	}
}`
	g, _ := buildCFG(t, src, "f")
	if len(g.Exit.Preds) != 2 {
		t.Fatalf("exit preds = %d, want 2", len(g.Exit.Preds))
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	src := `package x
func f() int {
	return 1
	x := 2
	return x
}`
	g, fset := buildCFG(t, src, "f")
	if blk := blockWith(g, fset, src, "x := 2"); blk != nil {
		t.Fatal("statement after return should be unreachable")
	}
}

func TestRangeLoopShape(t *testing.T) {
	src := `package x
func f(xs []int) int {
	s := 0
	for _, v := range xs {
		s += v
	}
	return s
}`
	g, _ := buildCFG(t, src, "f")
	if !exitReachable(g) {
		t.Fatal("exit unreachable")
	}
	var rangeHead *Block
	for _, blk := range g.Reachable() {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				rangeHead = blk
			}
		}
	}
	if rangeHead == nil || len(rangeHead.Succs) != 2 {
		t.Fatalf("range head malformed")
	}
}
