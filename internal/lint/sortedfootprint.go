package lint

import (
	"go/ast"

	"geofootprint/internal/lint/analysis"
)

// SortedFootprint makes the store invariants a compile-time report
// instead of (only) a `-tags strictsort` runtime panic. FootprintDB's
// parallel slices — IDs, Footprints, Norms, MBRs, Sketches — are kept
// index-aligned, MinX-sorted (Footprints) and norm/sketch-consistent
// by the store mutation API (Upsert, AppendRoIs, Remove, Merge,
// Compact, ComputeNorms). A direct write from any other package can
// silently break the sorted fast path of Algorithm 4 or desynchronise
// norms from footprints, so the analyzer flags, outside FootprintDB's
// defining package:
//
//   - assignments through db.<slice> (including element and
//     sub-element writes and compound assignment);
//   - append with db.<slice> as the destination.
//
// Reads — indexing, ranging, passing slices to the similarity kernels
// — are untouched.
var SortedFootprint = &analysis.Analyzer{
	Name: "sortedfootprint",
	Doc: "flag direct writes to FootprintDB's parallel slices outside internal/store; " +
		"mutations must go through the invariant-preserving store API",
	Run: runSortedFootprint,
}

// dbSliceFields are the invariant-bearing parallel slices of
// store.FootprintDB.
var dbSliceFields = map[string]bool{
	"IDs":        true,
	"Footprints": true,
	"Norms":      true,
	"MBRs":       true,
	"Sketches":   true,
}

func runSortedFootprint(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportDBWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				reportDBWrite(pass, n.X)
			case *ast.CallExpr:
				if isBuiltin(pass.TypesInfo, n, "append") && len(n.Args) > 0 {
					reportDBWrite(pass, n.Args[0])
				}
			}
			return true
		})
	}
	return nil
}

// reportDBWrite flags e when it writes into a FootprintDB parallel
// slice defined outside the current package.
func reportDBWrite(pass *analysis.Pass, e ast.Expr) {
	sel := dbSliceSelector(pass, e)
	if sel == nil {
		return
	}
	pass.Reportf(e.Pos(),
		"direct write to FootprintDB.%s outside its defining package bypasses the MinX-sorted/aligned-slices invariant; use the store mutation API",
		sel.Sel.Name)
}

// dbSliceSelector peels indexing/slicing/derefs off e and returns the
// underlying db.<slice> selector when db is a store.FootprintDB from
// another package.
func dbSliceSelector(pass *analysis.Pass, e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if dbSliceFields[x.Sel.Name] && isForeignFootprintDB(pass, x) {
				return x
			}
			e = x.X
		default:
			return nil
		}
	}
}

func isForeignFootprintDB(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	named := namedOrPointee(t)
	if named == nil || named.Obj().Name() != "FootprintDB" {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg() != pass.Pkg
}
