package lint_test

import (
	"testing"

	"geofootprint/internal/lint"
	"geofootprint/internal/lint/analysistest"
	"geofootprint/internal/lint/loader"
)

// TestRepoClean is the gate behind `make check`'s geolint pass in test
// form: the whole module (testdata fixtures excluded by ./... as
// usual) must be clean under every analyzer. A failure here prints
// the exact findings a `go run ./cmd/geolint ./...` would.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo lint in -short mode (compiles every package)")
	}
	root := analysistest.ModuleRoot(t)
	pkgs, err := loader.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading ./...: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader matched no packages")
	}
	findings, err := lint.Run(pkgs, lint.Analyzers)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
