// Package analysistest runs a geolint analyzer over fixture packages
// under internal/lint/testdata and compares its diagnostics against
// `// want "regexp"` expectations embedded in the fixtures — the same
// convention as golang.org/x/tools/go/analysis/analysistest, so the
// fixtures are portable to the upstream framework.
//
// An expectation is a trailing comment on the offending line:
//
//	s += v // want `floating-point accumulation`
//
// Multiple expectations on one line each need a matching diagnostic.
// Both `...` and "..." quote forms are accepted; the text is a regular
// expression matched against the diagnostic message. Every diagnostic
// must be matched by an expectation and vice versa — fixtures are
// exact, covering positive, suppressed and negative cases.
//
// Fixture packages live inside testdata, so `go build ./...` and
// `go vet ./...` skip them, but they are real packages of this module:
// the loader lists them by explicit path and they must type-check.
package analysistest

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"geofootprint/internal/lint"
	"geofootprint/internal/lint/analysis"
	"geofootprint/internal/lint/loader"
)

// Run loads each fixture package (a path relative to the module root,
// e.g. "./internal/lint/testdata/src/floatrange/a"), applies the
// analyzer, and reports mismatches against the // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	root := ModuleRoot(t)
	pkgs, err := loader.Load(root, fixtures...)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", fixtures, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %v", fixtures)
	}
	for _, pkg := range pkgs {
		findings, err := lint.RunOne(pkg, a)
		if err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
		}
		check(t, pkg, findings)
	}
}

// ModuleRoot locates the module root directory via the go command.
func ModuleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatalf("not in a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod)
}

// expectation is one // want entry.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func check(t *testing.T, pkg *loader.Package, findings []lint.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					lit := m[1]
					if lit == "" {
						lit = m[2]
					}
					rx, err := regexp.Compile(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, lit, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}

	used := make([]bool, len(findings))
finding:
	for i, f := range findings {
		for _, w := range wants {
			if !w.met && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
				w.met = true
				used[i] = true
				continue finding
			}
		}
	}
	for i, f := range findings {
		if !used[i] {
			t.Errorf("unexpected diagnostic: %s", f)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}
