package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"geofootprint/internal/lint/analysis"
	"geofootprint/internal/lint/cfg"
	"geofootprint/internal/lint/dataflow"
)

// LockBalance is the flow-sensitive mutex-discipline analyzer.
//
// internal/server and internal/store use sync.Mutex/RWMutex around the
// publish path and the columnar builders; the bug class this analyzer
// pins is the early-return leg that skips the Unlock — the process
// does not crash, it wedges: the next Lock blocks forever and every
// request behind it queues. The secondary class is side confusion on
// an RWMutex: Unlock after RLock (panics at runtime, but only on the
// rarely-taken path that testing missed).
//
// The contract, per function: every sync Lock/RLock must reach its
// matching Unlock/RUnlock on every returning path (directly, by defer,
// or inside a deferred closure); a mutex must not be re-Locked while
// the same function still holds it (self-deadlock — sync.Mutex is not
// reentrant); and the release must match the acquire side. Lock-
// helper functions that intentionally return holding the lock (the
// `foo()` / `fooLocked()` pairing) are the false-positive escape
// hatch: suppress with //lint:ignore lockbalance and the pairing
// convention as the reason.
//
// Unlock without a visible Lock in the same function is deliberately
// NOT reported: `xLocked()` helpers that run under a caller's lock are
// idiomatic here, and an intraprocedural analyzer cannot see the
// caller. Double-RLock is likewise not reported — read locks are
// shared — although it can still deadlock against a waiting writer;
// that is a throughput review question, not a machine-checkable one.
var LockBalance = &analysis.Analyzer{
	Name: "lockbalance",
	Doc:  "sync mutex Lock/Unlock (and RLock/RUnlock) must balance on every returning path",
	Run:  runLockBalance,
}

// lockKey identifies one guarded mutex within a function: the receiver
// expression's source form plus which side (read/write) is held.
// Keying by source text (types.ExprString) intentionally treats
// `s.mu` in two statements as the same lock and `a.mu`/`b.mu` as
// different ones — the same approximation a reviewer makes.
type lockKey struct {
	expr string
	read bool
}

// lockFact maps held locks to the position of the Lock call that
// acquired them (for reporting). Immutable; mutations copy.
type lockFact map[lockKey]token.Pos

func (f lockFact) with(k lockKey, pos token.Pos) lockFact {
	out := make(lockFact, len(f)+1)
	for kk, v := range f {
		out[kk] = v
	}
	out[k] = pos
	return out
}

func (f lockFact) without(k lockKey) lockFact {
	if _, ok := f[k]; !ok {
		return f
	}
	out := make(lockFact, len(f))
	for kk, v := range f {
		if kk != k {
			out[kk] = v
		}
	}
	return out
}

func lockJoin(a, b lockFact) lockFact {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(lockFact, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		// Keep the earlier Lock position for deterministic reports when
		// two paths acquired the same key.
		if cur, ok := out[k]; !ok || v < cur {
			out[k] = v
		}
	}
	return out
}

func lockEqual(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

type lockEngine struct {
	pass *analysis.Pass
	seen map[string]bool
}

func runLockBalance(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			}
			if body != nil {
				e := &lockEngine{pass: pass, seen: make(map[string]bool)}
				e.run(body)
			}
			return true
		})
	}
	return nil
}

func (e *lockEngine) run(body *ast.BlockStmt) {
	g := cfg.New(body, cfg.MayReturn(e.pass.TypesInfo))
	p := dataflow.Problem[lockFact]{
		Entry:    nil,
		Join:     lockJoin,
		Equal:    lockEqual,
		Transfer: e.transfer,
	}
	r := dataflow.Forward(g, p)
	exit, ok := r.ExitFact(p)
	if !ok {
		return
	}
	for k, pos := range exit {
		side := "Lock"
		if k.read {
			side = "RLock"
		}
		e.reportOnce(pos, "%s.%s() is not released on every path", k.expr, side)
	}
}

func (e *lockEngine) reportOnce(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := e.pass.Fset.Position(pos).String() + "\x00" + msg
	if e.seen[key] {
		return
	}
	e.seen[key] = true
	e.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}

func (e *lockEngine) transfer(n ast.Node, f lockFact) lockFact {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			return e.lockCall(call, f, false)
		}
	case *ast.DeferStmt:
		return e.deferred(n.Call, f)
	}
	return f
}

// deferred applies `defer mu.Unlock()` (and unlocks inside a deferred
// closure) as an immediate discharge: from this point on, every exit
// runs it.
func (e *lockEngine) deferred(call *ast.CallExpr, f lockFact) lockFact {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				f = e.lockCall(inner, f, true)
			}
			return true
		})
		return f
	}
	return e.lockCall(call, f, true)
}

// lockCall interprets one call if it is a sync lock operation.
// deferred marks calls applied through defer: a deferred Lock is
// nonsensical and ignored; a deferred unlock discharges silently even
// when the side cannot be matched (the fact may not have caught up in
// an early fixpoint iteration).
func (e *lockEngine) lockCall(call *ast.CallExpr, f lockFact, deferred bool) lockFact {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return f
	}
	fn, _ := e.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return f
	}
	recv := types.ExprString(ast.Unparen(sel.X))
	wKey := lockKey{expr: recv, read: false}
	rKey := lockKey{expr: recv, read: true}

	switch fn.Name() {
	case "Lock":
		if deferred {
			return f
		}
		if _, held := f[wKey]; held {
			e.reportOnce(call.Pos(), "%s.Lock() while already held (sync.Mutex is not reentrant)", recv)
			return f
		}
		return f.with(wKey, call.Pos())
	case "RLock":
		if deferred {
			return f
		}
		// Double-RLock is legal (shared); keep the first position.
		if _, held := f[rKey]; held {
			return f
		}
		return f.with(rKey, call.Pos())
	case "Unlock":
		if _, held := f[wKey]; held {
			return f.without(wKey)
		}
		if _, held := f[rKey]; held && !deferred {
			e.reportOnce(call.Pos(), "%s.Unlock() but %s is read-locked (want RUnlock)", recv, recv)
			return f.without(rKey)
		}
		return f
	case "RUnlock":
		if _, held := f[rKey]; held {
			return f.without(rKey)
		}
		if _, held := f[wKey]; held && !deferred {
			e.reportOnce(call.Pos(), "%s.RUnlock() but %s is write-locked (want Unlock)", recv, recv)
			return f.without(wKey)
		}
		return f
	}
	return f
}
