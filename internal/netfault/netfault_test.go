package netfault

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// startTarget serves a fixed JSON body and reports hit counts.
func startTarget(t *testing.T, body string) (*httptest.Server, *int) {
	t.Helper()
	hits := new(int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*hits++
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv, hits
}

func hostOf(t *testing.T, rawurl string) string {
	t.Helper()
	u, err := url.Parse(rawurl)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// Fail-Nth: exactly the Nth request errors with ErrInjected (visible
// through the client's *url.Error wrap); its neighbours pass through.
func TestFailRequestN(t *testing.T) {
	srv, hits := startTarget(t, `{"ok":true}`)
	ft := New(nil)
	ft.Set(hostOf(t, srv.URL), Schedule{FailRequestN: 2})
	client := &http.Client{Transport: ft}

	for n := 1; n <= 3; n++ {
		resp, err := client.Get(srv.URL)
		if n == 2 {
			if err == nil {
				resp.Body.Close()
				t.Fatalf("request %d: schedule did not fire", n)
			}
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("request %d: error %v does not unwrap to ErrInjected", n, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("request %d: %v", n, err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if *hits != 2 {
		t.Fatalf("server saw %d requests, want 2 (the injected failure never reached the wire)", *hits)
	}
	fired := ft.Fired()
	if len(fired) != 1 || !strings.HasSuffix(fired[0], ":fail-request") {
		t.Fatalf("fired = %v, want one fail-request", fired)
	}
}

// Fail-from-N: the target dies at request N and stays dead.
func TestFailFromN(t *testing.T) {
	srv, hits := startTarget(t, `{}`)
	ft := New(nil)
	ft.Set(hostOf(t, srv.URL), Schedule{FailFromN: 3})
	client := &http.Client{Transport: ft}

	for n := 1; n <= 6; n++ {
		resp, err := client.Get(srv.URL)
		if n < 3 {
			if err != nil {
				t.Fatalf("request %d: %v", n, err)
			}
			resp.Body.Close()
			continue
		}
		if err == nil {
			resp.Body.Close()
			t.Fatalf("request %d: dead target answered", n)
		}
	}
	if *hits != 2 {
		t.Fatalf("server saw %d requests after death, want 2", *hits)
	}
}

// Blackhole: after K completed requests, the next request hangs until
// its context fires — and returns the context's cause wrapped in
// ErrInjected.
func TestBlackholeAfterK(t *testing.T) {
	srv, _ := startTarget(t, `{}`)
	ft := New(nil)
	ft.Set(hostOf(t, srv.URL), Schedule{BlackholeAfterK: 1})
	client := &http.Client{Transport: ft}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err = client.Do(req)
	if err == nil {
		t.Fatal("blackholed request returned")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("blackhole error %v does not unwrap to ErrInjected", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("blackhole returned after %v — did not wait for the context", d)
	}
}

// Latency: the delay applies before forwarding, and a context firing
// mid-delay aborts the request without touching the wire.
func TestLatency(t *testing.T) {
	srv, hits := startTarget(t, `{}`)
	ft := New(nil)
	ft.Set(hostOf(t, srv.URL), Schedule{Latency: 30 * time.Millisecond})
	client := &http.Client{Transport: ft}

	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("request returned in %v, want >= 30ms", d)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	before := *hits
	if _, err := client.Do(req); err == nil {
		t.Fatal("latency-delayed request beat a 5ms deadline")
	}
	if *hits != before {
		t.Fatal("aborted request still reached the wire")
	}
}

// Cut-body: headers arrive, the body is a strict prefix, and the
// stream ends in ErrInjected — a decoder must error, never accept the
// prefix as the value.
func TestCutBody(t *testing.T) {
	const body = `{"results":[1,2,3,4,5,6,7,8,9,10],"partial":false}`
	srv, _ := startTarget(t, body)
	ft := New(nil)
	ft.Set(hostOf(t, srv.URL), Schedule{CutBodyN: 1})
	client := &http.Client{Transport: ft}

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("cut body read to completion: %q", got)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("cut-body error %v does not unwrap to ErrInjected", err)
	}
	if len(got) >= len(body) {
		t.Fatalf("cut body returned %d bytes of %d — not a strict prefix", len(got), len(body))
	}
}

// Schedules are per target: a fault aimed at one host leaves another
// untouched, and Clear restores passthrough.
func TestPerTargetIsolation(t *testing.T) {
	a, hitsA := startTarget(t, `{}`)
	b, hitsB := startTarget(t, `{}`)
	ft := New(nil)
	ft.Set(hostOf(t, a.URL), Schedule{FailFromN: 1})
	client := &http.Client{Transport: ft}

	if _, err := client.Get(a.URL); err == nil {
		t.Fatal("scheduled target answered")
	}
	resp, err := client.Get(b.URL)
	if err != nil {
		t.Fatalf("unscheduled target failed: %v", err)
	}
	resp.Body.Close()
	if *hitsA != 0 || *hitsB != 1 {
		t.Fatalf("hits = %d/%d, want 0/1", *hitsA, *hitsB)
	}

	ft.Clear(hostOf(t, a.URL))
	resp, err = client.Get(a.URL)
	if err != nil {
		t.Fatalf("cleared target still failing: %v", err)
	}
	resp.Body.Close()
	if *hitsA != 1 {
		t.Fatalf("cleared target saw %d requests, want 1", *hitsA)
	}
}

// Determinism: the same schedule over the same request sequence fires
// the same faults in the same order — the property that makes a
// schedule a reproducible coordinate in the chaos matrix.
func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		srv, _ := startTarget(t, `{}`)
		ft := New(nil)
		host := hostOf(t, srv.URL)
		ft.Set(host, Schedule{FailRequestN: 2, CutBodyN: 4, Latency: time.Millisecond, LatencyN: 3})
		client := &http.Client{Transport: ft}
		for n := 1; n <= 5; n++ {
			resp, err := client.Get(srv.URL)
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		// Strip the ephemeral port so two runs compare.
		fired := ft.Fired()
		out := make([]string, len(fired))
		for i, f := range fired {
			out[i] = f[strings.LastIndex(f, ":"):]
		}
		return out
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("two identical runs fired differently:\n%v\n%v", a, b)
	}
	want := []string{":fail-request", ":latency", ":cut-body"}
	if strings.Join(a, ",") != strings.Join(want, ",") {
		t.Fatalf("fired = %v, want %v", a, want)
	}
}
