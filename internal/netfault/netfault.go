// Package netfault is deterministic fault injection for the network
// plane between the router and its shards — the HTTP counterpart of
// internal/faultfs's storage-plane schedules, built on the same
// design: a Schedule is a reproducible coordinate ("the 3rd request
// to shard-1 fails"), counters are 1-based and ordered under a lock,
// and Fired() is the oracle that a schedule actually exercised what
// it meant to.
//
// The injection point is http.RoundTripper: the router's Config.Client
// seam accepts any transport, so a Transport wraps the real one and
// the whole client policy above it — retries, breakers, failover,
// admission gates — runs unmodified against the faults. Nothing in
// the router knows it is being tested.
//
// Fault vocabulary (per target, any combination):
//
//   - FailRequestN: the Nth request errors before reaching the wire —
//     a refused connection.
//   - FailFromN: every request from the Nth on errors — a crashed
//     process that stays down.
//   - BlackholeAfterK: after K completed requests, subsequent requests
//     hang until their context fires — a network partition, the
//     expensive failure mode (costs the caller its full timeout).
//   - LatencyN/Latency: the Nth request (every request when LatencyN
//     is 0) is delayed by Latency before forwarding — a slow link.
//   - CutBodyN: the Nth response's body is truncated mid-stream — a
//     connection dropped between headers and payload; decoders must
//     fail loudly, never parse a prefix as the whole.
//
// Schedules are keyed by target host (URL.Host), so a chaos matrix
// can aim different faults at different shards in one cluster.
package netfault

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// ErrInjected marks every error a Transport produces. The net/http
// client wraps transport errors in *url.Error, which unwraps, so
// errors.Is(err, netfault.ErrInjected) works on what callers see.
var ErrInjected = errors.New("netfault: injected network fault")

// injectedError names the fault and target for logs and test output.
type injectedError struct {
	op     string
	target string
}

func (e *injectedError) Error() string {
	return fmt.Sprintf("netfault: injected %s fault for %s", e.op, e.target)
}

func (e *injectedError) Unwrap() error { return ErrInjected }

// Schedule is one target's deterministic fault plan. Counters are
// 1-based over the requests sent to that target through the same
// Transport. Zero fields never fire.
type Schedule struct {
	// FailRequestN fails the Nth request with ErrInjected before it
	// reaches the inner transport.
	FailRequestN int
	// FailFromN fails every request from the Nth on — the target
	// process crashed and stays down.
	FailFromN int
	// BlackholeAfterK hangs every request after K requests have
	// completed (succeeded or failed), until the request's context
	// fires. K=0 never fires; to blackhole from the first request use
	// BlackholeAfterK with FailFromN unset and K small.
	BlackholeAfterK int
	// Latency delays matching requests before forwarding. LatencyN
	// selects the Nth request only; 0 with Latency > 0 delays every
	// request. The delay races the request context: a context that
	// fires first aborts the request with its error, like a real slow
	// link under a deadline.
	LatencyN int
	Latency  time.Duration
	// CutBodyN truncates the Nth response's body mid-stream: the first
	// Read returns roughly half the bytes it would have, the next
	// returns ErrInjected. Headers arrive intact.
	CutBodyN int
}

// target is one host's runtime state: its schedule and counters.
type target struct {
	sched     Schedule
	requests  int // requests admitted (1-based counter source)
	completed int // requests that returned (any status) — Blackhole's K
}

// Transport is a fault-injecting http.RoundTripper. Safe for
// concurrent use. Targets without a schedule pass through untouched.
type Transport struct {
	inner http.RoundTripper

	mu      sync.Mutex
	targets map[string]*target
	fired   []string
}

// New wraps inner (nil selects http.DefaultTransport).
func New(inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, targets: make(map[string]*target)}
}

// Set installs (or replaces) the schedule for a target host
// ("127.0.0.1:8080" — the URL.Host of the shard's address). Counters
// reset with the schedule, so a test can re-arm a fresh plan.
func (t *Transport) Set(host string, s Schedule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.targets[host] = &target{sched: s}
}

// Clear removes a target's schedule; its requests pass through again.
func (t *Transport) Clear(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.targets, host)
}

// Fired reports, in order, the faults that have fired as
// "host:fault" strings — the oracle that a schedule exercised the
// path it meant to.
func (t *Transport) Fired() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.fired))
	copy(out, t.fired)
	return out
}

// Requests returns how many requests were admitted for host.
func (t *Transport) Requests(host string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if tg := t.targets[host]; tg != nil {
		return tg.requests
	}
	return 0
}

// Targets lists the hosts with schedules installed, sorted.
func (t *Transport) Targets() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.targets))
	for h := range t.targets {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

func (t *Transport) record(host, what string) {
	t.fired = append(t.fired, host+":"+what)
}

// verdict is the decision for one request, taken under the lock.
type verdict struct {
	fail      bool
	blackhole bool
	delay     time.Duration
	cutBody   bool
}

func (t *Transport) admit(host string) (*target, verdict) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tg := t.targets[host]
	if tg == nil {
		return nil, verdict{}
	}
	tg.requests++
	n := tg.requests
	var v verdict
	switch {
	case tg.sched.FailFromN > 0 && n >= tg.sched.FailFromN:
		t.record(host, "fail-from")
		v.fail = true
	case tg.sched.FailRequestN > 0 && n == tg.sched.FailRequestN:
		t.record(host, "fail-request")
		v.fail = true
	case tg.sched.BlackholeAfterK > 0 && tg.completed >= tg.sched.BlackholeAfterK:
		t.record(host, "blackhole")
		v.blackhole = true
	}
	if !v.fail && !v.blackhole && tg.sched.Latency > 0 &&
		(tg.sched.LatencyN == 0 || tg.sched.LatencyN == n) {
		t.record(host, "latency")
		v.delay = tg.sched.Latency
	}
	if !v.fail && !v.blackhole && tg.sched.CutBodyN > 0 && n == tg.sched.CutBodyN {
		t.record(host, "cut-body")
		v.cutBody = true
	}
	return tg, v
}

func (t *Transport) complete(tg *target) {
	if tg == nil {
		return
	}
	t.mu.Lock()
	tg.completed++
	t.mu.Unlock()
}

// RoundTrip applies the target's schedule, then forwards to the inner
// transport. Fail and blackhole verdicts never reach the wire.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	tg, v := t.admit(host)
	switch {
	case v.fail:
		t.complete(tg)
		return nil, &injectedError{op: "connect", target: host}
	case v.blackhole:
		// A partition: nothing answers, ever. The caller's context is
		// the only way out — exactly the failure a per-attempt deadline
		// exists for. Counts as completed only once abandoned.
		<-req.Context().Done()
		t.complete(tg)
		return nil, fmt.Errorf("%w: %v", &injectedError{op: "blackhole", target: host}, req.Context().Err())
	case v.delay > 0:
		timer := time.NewTimer(v.delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			t.complete(tg)
			return nil, fmt.Errorf("%w: %v", &injectedError{op: "latency", target: host}, req.Context().Err())
		}
	}
	resp, err := t.inner.RoundTrip(req)
	t.complete(tg)
	if err != nil {
		return nil, err
	}
	if v.cutBody {
		resp.Body = &cutBody{inner: resp.Body, target: host}
		// The advertised length no longer matches what the reader will
		// see; clear it so the client does not pre-trust it.
		resp.ContentLength = -1
	}
	return resp, nil
}

// cutBody truncates a response body mid-stream: the first Read
// returns about half of what it would have, the second returns
// ErrInjected. Close always closes the inner body, so the connection
// accounting of the real transport stays correct.
type cutBody struct {
	inner  io.ReadCloser
	target string
	read   bool
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.read {
		return 0, &injectedError{op: "cut-body", target: c.target}
	}
	c.read = true
	half := len(p) / 2
	if half < 1 {
		half = 1
	}
	n, err := c.inner.Read(p[:half])
	if err != nil && err != io.EOF {
		return n, err
	}
	if n > 1 {
		// Drop the tail of even a short first read: the caller must
		// see a strict prefix, never the full payload.
		n--
	}
	return n, nil
}

func (c *cutBody) Close() error { return c.inner.Close() }
