package store

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
)

func epochSeedDB(t *testing.T, users int) *FootprintDB {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	ids := make([]int, users)
	fps := make([]core.Footprint, users)
	for u := 0; u < users; u++ {
		ids[u] = u + 1
		f := core.Footprint{}
		for r := 0; r < 3; r++ {
			x, y := rng.Float64()*0.9, rng.Float64()*0.9
			f = append(f, core.Region{
				Rect:   geom.Rect{MinX: x, MinY: y, MaxX: x + 0.05, MaxY: y + 0.05},
				Weight: 1 + rng.Float64(),
			})
		}
		fps[u] = f
	}
	db, err := FromFootprints("epoch", ids, fps)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// A pinned epoch is a true snapshot: the builder mutating and
// republishing must not change anything the pin observes — values,
// lengths, or the ID map.
func TestEpochPinnedSnapshotImmutable(t *testing.T) {
	db := epochSeedDB(t, 20)
	b := NewEpochBuilder(db)
	es := NewEpochStore()
	es.Publish(b.Freeze(), nil)

	ep := es.Acquire()
	defer ep.Release()
	snap := ep.DB()
	wantLen := snap.Len()
	wantNorm := snap.Norms[4]
	wantRegions := append(core.Footprint(nil), snap.Footprints[4]...)

	// Mutate the same user every way the serving write path can, and
	// insert a new one; publish after each.
	b.AppendRoIs(5, []core.Region{{Rect: geom.Rect{MinX: 0.01, MinY: 0.01, MaxX: 0.02, MaxY: 0.02}, Weight: 3}})
	es.Publish(b.Freeze(), nil)
	b.Upsert(5, core.Footprint{{Rect: geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.6, MaxY: 0.6}, Weight: 1}})
	es.Publish(b.Freeze(), nil)
	b.Upsert(999, core.Footprint{{Rect: geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.4, MaxY: 0.4}, Weight: 1}})
	es.Publish(b.Freeze(), nil)
	b.Remove(5)
	es.Publish(b.Freeze(), nil)

	if snap.Len() != wantLen {
		t.Fatalf("pinned epoch grew: %d -> %d users", wantLen, snap.Len())
	}
	if snap.Norms[4] != wantNorm {
		t.Fatalf("pinned epoch norm changed: %v -> %v", wantNorm, snap.Norms[4])
	}
	if len(snap.Footprints[4]) != len(wantRegions) {
		t.Fatalf("pinned footprint length changed: %d -> %d", len(wantRegions), len(snap.Footprints[4]))
	}
	for i, r := range snap.Footprints[4] {
		if r != wantRegions[i] {
			t.Fatalf("pinned footprint region %d changed: %+v -> %+v", i, wantRegions[i], r)
		}
	}
	if _, ok := snap.IndexOf(999); ok {
		t.Fatal("user inserted after the pin is visible in the pinned epoch")
	}
	if _, ok := b.DB().IndexOf(999); !ok {
		t.Fatal("builder lost the inserted user")
	}
	cur := es.Acquire()
	defer cur.Release()
	if got := core.Norm(cur.DB().Footprints[4]); got != 0 {
		t.Fatalf("Remove not visible in the current epoch: norm %v", got)
	}
}

// Reclamation accounting: a superseded epoch with no pins is reclaimed
// at publish; a pinned one survives until its last Release, and a late
// pin attempt on it fails over to the current epoch.
func TestEpochReclaimLifecycle(t *testing.T) {
	db := epochSeedDB(t, 4)
	b := NewEpochBuilder(db)
	es := NewEpochStore()
	es.Publish(b.Freeze(), nil)

	// Unpinned publishes reclaim eagerly: live stays at 1.
	for i := 0; i < 5; i++ {
		es.Publish(b.Freeze(), nil)
	}
	st := es.Stats()
	if st.Published != 6 || st.Reclaimed != 5 || st.Live != 1 {
		t.Fatalf("eager reclaim stats = %+v", st)
	}
	if st.Seq != 6 {
		t.Fatalf("seq = %d, want 6", st.Seq)
	}

	// A pinned epoch defers reclamation to its last Release.
	ep := es.Acquire()
	es.Publish(b.Freeze(), nil)
	if st := es.Stats(); st.Live != 2 || st.Pins != 1 {
		t.Fatalf("pinned epoch reclaimed early: %+v", st)
	}
	if !ep.tryPin() {
		t.Fatal("second pin on a retired-but-live epoch must succeed")
	}
	ep.pins.Add(-1) // undo the bare tryPin without store accounting
	ep.Release()
	st = es.Stats()
	if st.Live != 1 || st.Pins != 0 || st.Reclaimed != 6 {
		t.Fatalf("post-drain stats = %+v", st)
	}
	if ep.tryPin() {
		t.Fatal("pin succeeded on a reclaimed epoch")
	}
	if got := es.Acquire(); got.Seq() != 7 {
		t.Fatalf("Acquire pinned seq %d, want current 7", got.Seq())
	} else {
		got.Release()
	}
}

// TestEpochSwapChaos races lock-free readers against a writer that
// mutates, freezes and publishes continuously. Readers verify, on
// every pinned epoch, that the snapshot is internally consistent:
// parallel slices aligned, footprints sorted, and — the copy-on-write
// tear detector — every stored norm bit-identical to a recompute from
// the footprint the pin observes. Run under -race by make chaos.
func TestEpochSwapChaos(t *testing.T) {
	const users = 40
	db := epochSeedDB(t, users)
	b := NewEpochBuilder(db)
	es := NewEpochStore()
	es.Publish(b.Freeze(), nil)

	stop := make(chan struct{})
	fail := make(chan string, 16)
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}
	var wg sync.WaitGroup

	// Writer: the serving discipline — mutate the builder, publish
	// every batch. Mutations deliberately hammer a small user set so
	// readers overlap with in-place sorts on shared-unless-copied
	// region arrays.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(23))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := 1 + rng.Intn(users)
			x := rng.Float64() * 0.9
			reg := core.Region{Rect: geom.Rect{MinX: x, MinY: x, MaxX: x + 0.03, MaxY: x + 0.03}, Weight: 1}
			switch i % 4 {
			case 0, 1:
				b.AppendRoIs(id, []core.Region{reg})
			case 2:
				b.Upsert(id, core.Footprint{reg})
			case 3:
				b.Remove(id)
			}
			es.Publish(b.Freeze(), nil)
		}
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ep := es.Acquire()
				snap := ep.DB()
				n := snap.Len()
				if len(snap.Footprints) != n || len(snap.Norms) != n || len(snap.MBRs) != n {
					report("parallel slices misaligned")
					ep.Release()
					return
				}
				u := rng.Intn(n)
				f := snap.Footprints[u]
				if !core.IsSortedByMinX(f) {
					report("unsorted footprint in a published epoch")
					ep.Release()
					return
				}
				if got, want := core.Norm(f), snap.Norms[u]; got != want {
					report("torn read: recomputed norm differs from stored")
					ep.Release()
					return
				}
				if i, ok := snap.IndexOf(snap.IDs[u]); !ok || i != u {
					report("ID map inconsistent with IDs slice")
					ep.Release()
					return
				}
				ep.Release()
			}
		}(int64(100 + g))
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	st := es.Stats()
	if st.Pins != 0 {
		t.Fatalf("pins leaked: %+v", st)
	}
	if st.Live != 1 {
		t.Fatalf("retired epochs not reclaimed: %+v", st)
	}
	if st.Published < 10 {
		t.Fatalf("writer made no progress: %+v", st)
	}
}

// The builder's working database must encode byte-identically whether
// or not epochs were frozen along the way: copy-on-write changes
// backing arrays, never values. This is what keeps ingest checkpoints
// (and so crash recovery) byte-identical to the pre-epoch world.
func TestEpochBuilderSnapshotBytesUnchanged(t *testing.T) {
	mutate := func(b *EpochBuilder, publish bool) {
		es := NewEpochStore()
		for i := 0; i < 8; i++ {
			b.AppendRoIs(1+i%4, []core.Region{{
				Rect:   geom.Rect{MinX: float64(i) / 10, MinY: 0.1, MaxX: float64(i)/10 + 0.05, MaxY: 0.2},
				Weight: 2,
			}})
			if publish {
				es.Publish(b.Freeze(), nil)
			}
		}
		b.Remove(2)
		if publish {
			es.Publish(b.Freeze(), nil)
		}
	}
	encode := func(t *testing.T, publish bool) []byte {
		b := NewEpochBuilder(epochSeedDB(t, 6))
		mutate(b, publish)
		var buf writerBuf
		if err := b.DB().EncodeTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.b
	}
	plain := encode(t, false)
	frozen := encode(t, true)
	if string(plain) != string(frozen) {
		t.Fatal("freezing epochs perturbed the builder's encoded state")
	}
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
