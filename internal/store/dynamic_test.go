package store

import (
	"math/rand"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
)

func smallDB(t *testing.T, seed int64, ids []int) *FootprintDB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fps := make([]core.Footprint, len(ids))
	for i := range fps {
		x, y := rng.Float64(), rng.Float64()
		fps[i] = core.Footprint{{
			Rect:   geom.Rect{MinX: x, MinY: y, MaxX: x + 0.05, MaxY: y + 0.05},
			Weight: 1,
		}}
	}
	db, err := FromFootprints("dyn", ids, fps)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestUpsertAndRemove(t *testing.T) {
	db := smallDB(t, 1, []int{10, 20, 30})
	// Replace user 20.
	f := core.Footprint{{Rect: geom.Rect{MinX: 0.9, MinY: 0.9, MaxX: 0.95, MaxY: 0.95}, Weight: 2}}
	u := db.Upsert(20, f)
	if i, _ := db.IndexOf(20); i != u {
		t.Errorf("Upsert index %d, IndexOf %d", u, i)
	}
	if db.Norms[u] != core.Norm(f) || db.MBRs[u] != f.MBR() {
		t.Error("Upsert did not refresh norm/MBR")
	}
	// Add user 40.
	n := db.Len()
	u = db.Upsert(40, f)
	if db.Len() != n+1 || u != n {
		t.Errorf("new user index %d, Len %d", u, db.Len())
	}
	// Remove user 10: tombstoned, indexes stable.
	if !db.Remove(10) {
		t.Fatal("Remove failed")
	}
	if i, ok := db.IndexOf(10); !ok || i != 0 {
		t.Error("tombstoned user lost its index")
	}
	if db.Norms[0] != 0 || len(db.Footprints[0]) != 0 {
		t.Error("tombstone incomplete")
	}
	if db.Remove(999) {
		t.Error("Remove of absent user succeeded")
	}
	// IDs of other users unaffected.
	if i, _ := db.IndexOf(30); i != 2 {
		t.Error("indexes shifted")
	}
}

func TestMerge(t *testing.T) {
	a := smallDB(t, 2, []int{1, 2, 3})
	b := smallDB(t, 3, []int{10, 11})
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Len() != 5 {
		t.Fatalf("Len = %d", a.Len())
	}
	if i, ok := a.IndexOf(11); !ok || i != 4 {
		t.Errorf("merged user index = %d, %v", i, ok)
	}
	if a.Norms[3] != b.Norms[0] {
		t.Error("norms not carried over")
	}
	// Duplicate IDs abort without mutation.
	c := smallDB(t, 4, []int{2, 99})
	if err := a.Merge(c); err == nil {
		t.Fatal("duplicate merge accepted")
	}
	if a.Len() != 5 {
		t.Error("failed merge mutated the receiver")
	}
}
