package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
)

func testDB(t *testing.T, name string) *FootprintDB {
	t.Helper()
	db, err := FromFootprints(name, []int{1, 2}, []core.Footprint{
		{{Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Weight: 1}},
		{{Rect: geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}, Weight: 2},
			{Rect: geom.Rect{MinX: 2.5, MinY: 2, MaxX: 4, MaxY: 3}, Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// A writer that fails partway through must leave an existing database
// at the target path byte-for-byte intact — the atomic-Save guarantee.
func TestPartialWriteNeverCorruptsExistingDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "users.db")
	good := testDB(t, "good")
	if err := good.Save(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulated crash mid-write: emit some bytes, then fail, exactly
	// what a full disk or a killed process leaves behind.
	fail := errors.New("simulated partial write")
	err = WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial garbage that must never reach the target")); err != nil {
			return err
		}
		return fail
	})
	if !errors.Is(err, fail) {
		t.Fatalf("WriteFileAtomic error = %v, want simulated failure", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("target file changed despite failed write")
	}
	db, err := Load(path)
	if err != nil {
		t.Fatalf("existing DB unloadable after failed save: %v", err)
	}
	if !reflect.DeepEqual(db.IDs, good.IDs) || !reflect.DeepEqual(db.Footprints, good.Footprints) {
		t.Fatal("recovered DB differs from original")
	}

	// No temp litter left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "users.db")
	if err := testDB(t, "v1").Save(path); err != nil {
		t.Fatal(err)
	}
	v2 := testDB(t, "v2")
	v2.Upsert(3, core.Footprint{{Rect: geom.Rect{MaxX: 1, MaxY: 1}, Weight: 1}})
	if err := v2.Save(path); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Name != "v2" || db.Len() != 3 {
		t.Fatalf("loaded %s with %d users, want v2 with 3", db.Name, db.Len())
	}
}

func TestEncodeToDecodeFromRoundTrip(t *testing.T) {
	db := testDB(t, "wire")
	db.EnableSketches(16, 1)
	var buf strings.Builder
	if err := db.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrom(strings.NewReader(buf.String()), "wire-test")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Footprints, db.Footprints) ||
		!reflect.DeepEqual(got.Norms, db.Norms) ||
		!reflect.DeepEqual(got.Sketches, db.Sketches) ||
		got.SketchParams != db.SketchParams {
		t.Fatal("wire round-trip lost data")
	}
}
