package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
)

func testDB(t *testing.T, name string) *FootprintDB {
	t.Helper()
	db, err := FromFootprints(name, []int{1, 2}, []core.Footprint{
		{{Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Weight: 1}},
		{{Rect: geom.Rect{MinX: 2, MinY: 2, MaxX: 3, MaxY: 3}, Weight: 2},
			{Rect: geom.Rect{MinX: 2.5, MinY: 2, MaxX: 4, MaxY: 3}, Weight: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// A writer that fails partway through must leave an existing database
// at the target path byte-for-byte intact — the atomic-Save guarantee.
func TestPartialWriteNeverCorruptsExistingDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "users.db")
	good := testDB(t, "good")
	if err := good.Save(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Simulated crash mid-write: emit some bytes, then fail, exactly
	// what a full disk or a killed process leaves behind.
	fail := errors.New("simulated partial write")
	err = WriteFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("partial garbage that must never reach the target")); err != nil {
			return err
		}
		return fail
	})
	if !errors.Is(err, fail) {
		t.Fatalf("WriteFileAtomic error = %v, want simulated failure", err)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("target file changed despite failed write")
	}
	db, err := Load(path)
	if err != nil {
		t.Fatalf("existing DB unloadable after failed save: %v", err)
	}
	if !reflect.DeepEqual(db.IDs, good.IDs) || !reflect.DeepEqual(db.Footprints, good.Footprints) {
		t.Fatal("recovered DB differs from original")
	}

	// No temp litter left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "users.db")
	if err := testDB(t, "v1").Save(path); err != nil {
		t.Fatal(err)
	}
	v2 := testDB(t, "v2")
	v2.Upsert(3, core.Footprint{{Rect: geom.Rect{MaxX: 1, MaxY: 1}, Weight: 1}})
	if err := v2.Save(path); err != nil {
		t.Fatal(err)
	}
	db, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Name != "v2" || db.Len() != 3 {
		t.Fatalf("loaded %s with %d users, want v2 with 3", db.Name, db.Len())
	}
}

// A bare relative filename (no directory component) is what the
// documented defaults produce — `geoserve -wal ingest.wal` snapshots
// to ingest.wal.snap, `geoextract -out foo.db` saves to foo.db. The
// temp file must land in the working directory, not $TMPDIR (often a
// different filesystem, where the rename would fail with EXDEV), and
// the result must be world-readable like a plain os.Create file.
func TestWriteFileAtomicBareFilename(t *testing.T) {
	dir := t.TempDir()
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(orig)

	db := testDB(t, "bare")
	if err := db.Save("users.db"); err != nil {
		t.Fatalf("Save to bare filename: %v", err)
	}
	got, err := Load("users.db")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.IDs, db.IDs) {
		t.Fatal("bare-filename round-trip lost data")
	}
	fi, err := os.Stat("users.db")
	if err != nil {
		t.Fatal(err)
	}
	if perm := fi.Mode().Perm(); perm != 0o644 {
		t.Errorf("saved file mode = %o, want 644", perm)
	}

	// Overwrite through WriteFileAtomic directly, still bare.
	if err := WriteFileAtomic("users.db", func(w io.Writer) error {
		_, err := w.Write([]byte("v2"))
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic to bare filename: %v", err)
	}
	b, err := os.ReadFile("users.db")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "v2" {
		t.Fatalf("content = %q, want %q", b, "v2")
	}
}

func TestEncodeToDecodeFromRoundTrip(t *testing.T) {
	db := testDB(t, "wire")
	db.EnableSketches(16, 1)
	var buf strings.Builder
	if err := db.EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFrom(strings.NewReader(buf.String()), "wire-test")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Footprints, db.Footprints) ||
		!reflect.DeepEqual(got.Norms, db.Norms) ||
		!reflect.DeepEqual(got.Sketches, db.Sketches) ||
		got.SketchParams != db.SketchParams {
		t.Fatal("wire round-trip lost data")
	}
}
