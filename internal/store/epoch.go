package store

import (
	"sync/atomic"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
	"geofootprint/internal/sketch"
)

// Epoch-based MVCC for the serving path.
//
// The serving plane never locks on the read side: ingestion mutates a
// private working database owned by an EpochBuilder, and at batch (or
// checkpoint) boundaries freezes it into an immutable snapshot — an
// Epoch — published with a single atomic pointer swap. Queries pin the
// current epoch on entry, run entirely against its immutable parallel
// slices and indexes, and release it on exit; a superseded epoch is
// reclaimed when its last pinned query drains.
//
// Immutability is cheap because Freeze is copy-on-write at two
// granularities:
//
//   - The five parallel slice headers (IDs, Footprints, Norms, MBRs,
//     Sketches) are copied per freeze — O(users) word copies — so the
//     builder's later element writes and appends never touch a
//     published snapshot.
//   - The per-user region arrays (the O(users × regions) payload) are
//     shared between builder and snapshot until the builder mutates
//     that user. AppendRoIs sorts the region array in place, so the
//     builder re-copies a user's regions before the first mutation
//     after a freeze (generation-stamped, so an untouched user costs
//     nothing). The ID → index map is likewise shared until the next
//     user insertion.
//
// Reclamation is a flag-and-counter protocol: the publisher retires
// the superseded epoch, and whoever moves the pin count to zero while
// the retired flag is set — the publisher if no query holds a pin, the
// last draining query otherwise — atomically swaps the count to a
// negative sentinel, making late pin attempts fail and retry on the
// new current epoch. Go's atomics are sequentially consistent, so the
// pin increment and the retire flag cannot both be missed.

// epochReclaimed is the pin-count sentinel marking a drained, retired
// epoch. Any value < 0 blocks tryPin; half of MinInt64 keeps decrement
// underflow unreachable.
const epochReclaimed = int64(-1) << 62

// Epoch is one immutable published snapshot of the serving state: a
// frozen FootprintDB plus an opaque per-epoch aux value (the server
// hangs its prebuilt index/engine view there). All fields are
// read-only after Publish; the epochmut geolint analyzer rejects
// mutating method calls on an epoch's database outside this package.
type Epoch struct {
	seq uint64
	db  *FootprintDB
	aux any
	es  *EpochStore

	// pins counts queries currently inside the epoch; epochReclaimed
	// once retired and drained.
	pins    atomic.Int64
	retired atomic.Bool
}

// Seq returns the epoch's sequence number (1 for the first publish).
func (e *Epoch) Seq() uint64 { return e.seq }

// DB returns the epoch's immutable database. Callers must treat it as
// read-only; the epochmut analyzer enforces this at lint time.
func (e *Epoch) DB() *FootprintDB { return e.db }

// Aux returns the opaque value attached at Publish (prebuilt indexes,
// engines); nil if none was attached.
func (e *Epoch) Aux() any { return e.aux }

// tryPin attempts to take a reference; it fails once the epoch has
// been reclaimed (Acquire then retries on the new current epoch).
func (e *Epoch) tryPin() bool {
	for {
		p := e.pins.Load()
		if p < 0 {
			return false
		}
		if e.pins.CompareAndSwap(p, p+1) {
			return true
		}
	}
}

// Release drops a pin taken by Acquire. When the last pin of a retired
// epoch drains, the epoch is reclaimed.
func (e *Epoch) Release() {
	e.es.live.Add(-1)
	if e.pins.Add(-1) == 0 && e.retired.Load() {
		e.tryReclaim()
	}
}

// tryReclaim transitions a drained epoch to the reclaimed state
// exactly once: the CAS from 0 to the sentinel can only succeed for
// one caller, and only while no pin is held (pins == 0). After it, no
// new pin can be taken.
func (e *Epoch) tryReclaim() {
	if e.pins.CompareAndSwap(0, epochReclaimed) {
		e.es.reclaimed.Add(1)
	}
}

// retire marks the epoch superseded. Called by Publish on the previous
// current epoch, after the swap; if no query holds a pin the epoch is
// reclaimed immediately, otherwise the last Release reclaims it.
func (e *Epoch) retire() {
	e.retired.Store(true)
	if e.pins.Load() == 0 {
		e.tryReclaim()
	}
}

// EpochStore publishes epochs and hands them to queries. Reads
// (Acquire, Stats) are lock-free; Publish assumes a single publisher
// at a time — the server's write path already serialises mutations
// behind its mutation lock, which is exactly that discipline.
type EpochStore struct {
	cur atomic.Pointer[Epoch]

	published atomic.Uint64
	reclaimed atomic.Uint64
	// live counts currently outstanding pins across all epochs.
	live atomic.Int64
}

// NewEpochStore returns an empty store; Acquire returns nil until the
// first Publish.
func NewEpochStore() *EpochStore { return &EpochStore{} }

// Acquire pins and returns the current epoch (nil before the first
// Publish). The caller must Release it — typically deferred at query
// entry. The retry loop terminates: a pin attempt only fails on a
// reclaimed epoch, and an epoch is only reclaimed after a newer one
// became current.
func (s *EpochStore) Acquire() *Epoch {
	for {
		e := s.cur.Load()
		if e == nil {
			return nil
		}
		if e.tryPin() {
			s.live.Add(1)
			return e
		}
	}
}

// Publish freezes db (already immutable — typically EpochBuilder's
// Freeze output) and aux into a new epoch, makes it current with one
// atomic pointer swap, and retires the predecessor. Single publisher
// at a time; see EpochStore.
func (s *EpochStore) Publish(db *FootprintDB, aux any) *Epoch {
	old := s.cur.Load()
	e := &Epoch{db: db, aux: aux, es: s, seq: 1}
	if old != nil {
		e.seq = old.seq + 1
	}
	s.cur.Store(e)
	s.published.Add(1)
	if old != nil {
		old.retire()
	}
	return e
}

// CurrentSeq returns the current epoch's sequence number, 0 before the
// first Publish. Lock-free; for stats and logs.
func (s *EpochStore) CurrentSeq() uint64 {
	if e := s.cur.Load(); e != nil {
		return e.seq
	}
	return 0
}

// EpochStats is a lock-free snapshot of the store's lifecycle
// counters, shaped for /v1/ingest/stats, /healthz and operator logs.
type EpochStats struct {
	// Seq is the current epoch's sequence number (swap cadence is
	// visible as its growth rate).
	Seq uint64 `json:"seq"`
	// Published and Reclaimed count epoch lifecycle transitions;
	// Live = Published - Reclaimed is the number of epochs still
	// reachable (current plus retired-but-pinned).
	Published uint64 `json:"published"`
	Reclaimed uint64 `json:"reclaimed"`
	Live      uint64 `json:"live"`
	// Pins is the number of queries currently holding an epoch.
	Pins int64 `json:"pins"`
}

// Stats returns the store's lifecycle counters.
func (s *EpochStore) Stats() EpochStats {
	pub, rec := s.published.Load(), s.reclaimed.Load()
	return EpochStats{
		Seq:       s.CurrentSeq(),
		Published: pub,
		Reclaimed: rec,
		Live:      pub - rec,
		Pins:      s.live.Load(),
	}
}

// EpochBuilder owns the mutable working database the next epoch is
// built from. All mutations go through the builder — the seam the
// epochmut analyzer enforces — so it can re-own shared per-user state
// (copy-on-write) before delegating to the store's mutation methods.
// It is not concurrency-safe: the caller serialises mutations and
// Freeze behind its write path, exactly like FootprintDB itself.
type EpochBuilder struct {
	db *FootprintDB

	// gen is bumped at every Freeze; owned[i] == gen means the builder
	// re-owned user i's region array since the last freeze and may
	// mutate it in place. Everything else is potentially shared with a
	// published snapshot.
	gen   uint64
	owned []uint64
	// mapShared marks db.byID as shared with the latest snapshot; it
	// is copied before the next user insertion.
	mapShared bool
}

// NewEpochBuilder wraps db (empty when nil) as the working state.
// Conservatively, every pre-existing region array is treated as shared
// — callers often retain references to the database they loaded — so
// the first mutation of each user after construction copies once.
func NewEpochBuilder(db *FootprintDB) *EpochBuilder {
	if db == nil {
		db = &FootprintDB{}
	}
	return &EpochBuilder{db: db, gen: 1, owned: make([]uint64, len(db.IDs))}
}

// DB exposes the working database for reads under the caller's write
// path (existence checks, checkpoint encoding). Mutations must go
// through the builder's own methods; epochmut flags them elsewhere.
func (b *EpochBuilder) DB() *FootprintDB { return b.db }

// Len returns the number of users in the working database.
func (b *EpochBuilder) Len() int { return b.db.Len() }

// growOwned extends the stamp array to cover dense index i (Upsert
// and AppendRoIs can extend the user space).
func (b *EpochBuilder) growOwned(i int) {
	for len(b.owned) <= i {
		b.owned = append(b.owned, 0)
	}
}

// ensureOwned re-owns user i's region array: if it may be shared with
// a snapshot, the builder replaces it with a private copy so in-place
// sorting (AppendRoIs) cannot tear a published footprint.
func (b *EpochBuilder) ensureOwned(i int) {
	b.growOwned(i)
	if b.owned[i] == b.gen {
		return
	}
	if f := b.db.Footprints[i]; f != nil {
		c := make(core.Footprint, len(f))
		copy(c, f)
		b.db.Footprints[i] = c
	}
	b.owned[i] = b.gen
}

// ensureMapOwned re-owns the ID → index map before an insertion; point
// lookups on published epochs read the shared map lock-free, so the
// builder must never add keys to it.
func (b *EpochBuilder) ensureMapOwned() {
	if !b.mapShared {
		return
	}
	b.db.ensureByID()
	m := make(map[int]int, len(b.db.byID)+1)
	for k, v := range b.db.byID {
		m[k] = v
	}
	b.db.byID = m
	b.mapShared = false
}

// Upsert inserts or replaces a user's footprint (FootprintDB.Upsert
// semantics: stored as given, sorted in place; pass a copy if the
// caller retains it) and returns the dense index.
func (b *EpochBuilder) Upsert(id int, f core.Footprint) int {
	if _, ok := b.db.IndexOf(id); !ok {
		b.ensureMapOwned()
	}
	i := b.db.Upsert(id, f)
	b.growOwned(i)
	b.owned[i] = b.gen // Upsert installed a fresh array
	return i
}

// AppendRoIs extends a user's footprint with new regions, creating the
// user if needed, and returns the dense index. The existing-user path
// sorts the combined region array in place, so the builder re-owns it
// first.
func (b *EpochBuilder) AppendRoIs(id int, regions []core.Region) int {
	if i, ok := b.db.IndexOf(id); ok {
		b.ensureOwned(i)
	} else {
		b.ensureMapOwned()
	}
	i := b.db.AppendRoIs(id, regions)
	b.growOwned(i)
	b.owned[i] = b.gen
	return i
}

// Remove tombstones a user (FootprintDB.Remove semantics). Remove only
// assigns fresh values into the builder's own parallel slices — it
// never writes into the shared region array — so no copy is needed.
func (b *EpochBuilder) Remove(id int) bool {
	i, ok := b.db.IndexOf(id)
	if !ok {
		return false
	}
	if !b.db.Remove(id) {
		return false
	}
	b.growOwned(i)
	b.owned[i] = b.gen // footprint is now nil; nothing shared remains
	return true
}

// EnableSketches (re)builds the working database's sketch layer.
// EnableSketches allocates a fresh Sketches array and never writes
// into region arrays, so published snapshots are unaffected.
func (b *EpochBuilder) EnableSketches(g, workers int) {
	b.db.EnableSketches(g, workers)
}

// Freeze snapshots the working database into an immutable FootprintDB
// ready for EpochStore.Publish. The snapshot gets private copies of
// the five parallel slice headers and shares each user's region
// array, the sketch payloads and the ID → index map with the builder
// until the builder's next mutation of that state (copy-on-write).
// The ID map is materialised first so epoch readers never race a lazy
// build. The builder remains valid and owns the working database.
func (b *EpochBuilder) Freeze() *FootprintDB {
	db := b.db
	db.ensureByID()
	snap := &FootprintDB{
		Name:         db.Name,
		IDs:          append([]int(nil), db.IDs...),
		Footprints:   append([]core.Footprint(nil), db.Footprints...),
		Norms:        append([]float64(nil), db.Norms...),
		MBRs:         append([]geom.Rect(nil), db.MBRs...),
		SketchParams: db.SketchParams,
		byID:         db.byID,
	}
	if db.Sketches != nil {
		snap.Sketches = append([]sketch.Sketch(nil), db.Sketches...)
	}
	// The columnar fast-path view travels with the snapshot: the
	// builder's copy-on-write discipline means the frozen state is
	// exactly the state the columns describe (the builder detaches its
	// own view on the first mutation after load, so a stale view can
	// never be frozen). colSrc rides along to keep the mmap pinned for
	// the epoch's lifetime.
	snap.cols = db.cols
	snap.colSrc = db.colSrc
	// Everything the snapshot references is now shared: bump the
	// generation so the next mutation of any user re-owns its regions,
	// and flag the map.
	b.gen++
	b.mapShared = true
	return snap
}
