package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"geofootprint/internal/colstore"
	"geofootprint/internal/core"
	"geofootprint/internal/faultfs"
	"geofootprint/internal/geom"
	"geofootprint/internal/sketch"
)

// This file binds FootprintDB to the columnar snapshot format
// (internal/colstore): conversion in both directions, the single
// crash-atomic writer seam (WriteColumnarFS — the colwrite analyzer
// flags columnar encodes anywhere else on a persistence path), format
// sniffing on load with a gob fallback one release behind, and the
// columnar fast-path view the flattened kernels dispatch on.
//
// A database loaded from a columnar file carries two extra things:
//
//   - db.cols, the dense column view (core.RegionCols + CSR starts +
//     flat sketch blocks). The hot-path dispatch helpers
//     (UserSimilarity, UserSketchDot, RegionWeight) run the flattened
//     kernels when it is present and the classic slice kernels when
//     not; results are bit-for-bit identical either way. Any mutation
//     of the database detaches the view (the columns describe state
//     that no longer exists), after which the same queries run on the
//     materialised slices — correctness never depends on the view.
//   - db.colSrc, which pins the snapshot (and its mmap, when the load
//     was zero-copy) for the lifetime of the database. Norms and the
//     sketch cell blocks alias the mapping directly; detaching the
//     fast-path view must NOT unmap, so this reference survives
//     detachCols and is copied to every Freeze snapshot.

// ErrCorruptSnapshot marks a snapshot file that exists but cannot be
// trusted — failed CRC, truncation, impossible geometry, undecodable
// gob — as opposed to one that is merely absent (plain os.IsNotExist).
// Callers distinguish the two to report "durable state is damaged"
// (geoserve refuses to start, or serves degraded with the error in
// /healthz) instead of a generic load failure.
var ErrCorruptSnapshot = errors.New("store: corrupt snapshot")

func corruptSnapshot(path string, err error) error {
	return fmt.Errorf("%w: %s: %w", ErrCorruptSnapshot, path, err)
}

// colView is the columnar fast-path state: dense parallel columns in
// CSR layout, aliasing the loaded snapshot. Shared (by pointer) with
// Freeze snapshots, hence never mutated in place — detachment replaces
// the pointer.
type colView struct {
	regions core.RegionCols
	starts  []int64

	// Sketch blocks; cellStarts nil when the sketch layer was not in
	// the file (or was rebuilt in memory after load).
	cellStarts []int64
	cells      []int32
	cellRoot   []float64
}

// Columnar converts the database to a colstore.Snapshot, flattening
// the per-user slices into dense columns in stored (MinX-sorted)
// order. meta is an opaque blob stored in the file's CRC-guarded meta
// section (nil for none); the ingest checkpoint keeps its sequence
// number and open sessions there. The snapshot aliases db.Norms and
// the sketch payloads; it is valid only while db is unmutated
// (encode immediately, as Save and the checkpoint do).
func (db *FootprintDB) Columnar(meta []byte) *colstore.Snapshot {
	users := db.Len()
	total := db.NumRegions()
	snap := &colstore.Snapshot{
		Name:   db.Name,
		Meta:   meta,
		IDs:    make([]int64, users),
		Starts: make([]int64, users+1),
		MinX:   make([]float64, total),
		MinY:   make([]float64, total),
		MaxX:   make([]float64, total),
		MaxY:   make([]float64, total),
		Weight: make([]float64, total),
		Norms:  db.Norms,
		MBRs:   make([]float64, 4*users),
	}
	off := 0
	for u, f := range db.Footprints {
		snap.IDs[u] = int64(db.IDs[u])
		snap.Starts[u] = int64(off)
		for _, r := range f {
			snap.MinX[off] = r.Rect.MinX
			snap.MinY[off] = r.Rect.MinY
			snap.MaxX[off] = r.Rect.MaxX
			snap.MaxY[off] = r.Rect.MaxY
			snap.Weight[off] = r.Weight
			off++
		}
	}
	snap.Starts[users] = int64(off)
	if len(db.MBRs) == users {
		for u, m := range db.MBRs {
			snap.MBRs[4*u+0] = m.MinX
			snap.MBRs[4*u+1] = m.MinY
			snap.MBRs[4*u+2] = m.MaxX
			snap.MBRs[4*u+3] = m.MaxY
		}
	}
	if db.SketchesEnabled() {
		cells := 0
		for i := range db.Sketches {
			cells += len(db.Sketches[i].Cells)
		}
		snap.SketchG = db.SketchParams.G
		d := db.SketchParams.Domain
		snap.Domain = [4]float64{d.MinX, d.MinY, d.MaxX, d.MaxY}
		snap.CellStarts = make([]int64, users+1)
		snap.Cells = make([]int32, 0, cells)
		snap.CellMass = make([]float64, 0, cells)
		snap.CellRoot = make([]float64, 0, cells)
		for u := range db.Sketches {
			snap.CellStarts[u] = int64(len(snap.Cells))
			sk := &db.Sketches[u]
			snap.Cells = append(snap.Cells, sk.Cells...)
			snap.CellMass = append(snap.CellMass, sk.Mass...)
			snap.CellRoot = append(snap.CellRoot, sk.Root...)
		}
		snap.CellStarts[users] = int64(len(snap.Cells))
	}
	return snap
}

// FromColumnar materialises a FootprintDB from a decoded columnar
// snapshot. The big payloads stay zero-copy where the in-memory
// representation allows it: Norms and the per-user sketch slices alias
// the snapshot's columns (and therefore the mmap on the zero-copy
// path), the AoS Footprints are rebuilt with one O(regions) transpose
// into a single backing array, and the columnar fast-path view is
// attached so the flattened kernels serve queries straight from the
// columns.
func FromColumnar(snap *colstore.Snapshot) (*FootprintDB, error) {
	users := snap.NumUsers()
	db := &FootprintDB{
		Name:  snap.Name,
		IDs:   make([]int, users),
		Norms: snap.Norms,
		MBRs:  make([]geom.Rect, users),
	}
	for u := range db.IDs {
		db.IDs[u] = int(snap.IDs[u])
		db.MBRs[u] = geom.Rect{
			MinX: snap.MBRs[4*u+0], MinY: snap.MBRs[4*u+1],
			MaxX: snap.MBRs[4*u+2], MaxY: snap.MBRs[4*u+3],
		}
	}
	if db.Norms == nil {
		db.Norms = []float64{}
	}
	// One backing array for all regions; per-user footprints are
	// capacity-bounded subslices so an AppendRoIs on one user can
	// never grow into its neighbour's regions. The transpose is the
	// only O(regions) work on the mmap load path, so it is chunked
	// across CPUs — each goroutine owns a disjoint range, the result is
	// deterministic.
	regions := make([]core.Region, snap.NumRegions())
	transposeRegions(regions, snap)
	db.Footprints = make([]core.Footprint, users)
	for u := range db.Footprints {
		lo, hi := snap.Starts[u], snap.Starts[u+1]
		db.Footprints[u] = core.Footprint(regions[lo:hi:hi])
	}
	if snap.HasSketches() {
		p := sketch.Params{G: snap.SketchG, Domain: geom.Rect{
			MinX: snap.Domain[0], MinY: snap.Domain[1],
			MaxX: snap.Domain[2], MaxY: snap.Domain[3],
		}}
		if !p.Valid() {
			return nil, corruptSnapshot(snap.Name,
				fmt.Errorf("sketch sections present but raster params %+v are invalid", p))
		}
		db.SketchParams = p
		db.Sketches = make([]sketch.Sketch, users)
		for u := range db.Sketches {
			lo, hi := snap.CellStarts[u], snap.CellStarts[u+1]
			db.Sketches[u] = sketch.Sketch{
				Cells: snap.Cells[lo:hi:hi],
				Mass:  snap.CellMass[lo:hi:hi],
				Root:  snap.CellRoot[lo:hi:hi],
			}
		}
	}
	db.colSrc = snap
	db.cols = &colView{
		regions: core.RegionCols{
			MinX: snap.MinX, MinY: snap.MinY,
			MaxX: snap.MaxX, MaxY: snap.MaxY, W: snap.Weight,
		},
		starts:     snap.Starts,
		cellStarts: snap.CellStarts,
		cells:      snap.Cells,
		cellRoot:   snap.CellRoot,
	}
	return db, nil
}

// transposeRegions fills dst from the five parallel columns, in
// parallel for large databases (cold-start latency is dominated by
// this loop; every chunk is disjoint so the result is deterministic).
func transposeRegions(dst []core.Region, snap *colstore.Snapshot) {
	minx, miny, maxx, maxy, w := snap.MinX, snap.MinY, snap.MaxX, snap.MaxY, snap.Weight
	n := len(dst)
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || n < 1<<15 {
		fillRegions(dst, minx, miny, maxx, maxy, w)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fillRegions(dst[lo:hi], minx[lo:hi], miny[lo:hi], maxx[lo:hi], maxy[lo:hi], w[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
}

// fillRegions is the sequential transpose kernel: column locals are
// parameters so the compiler keeps them in registers across the loop.
func fillRegions(dst []core.Region, minx, miny, maxx, maxy, w []float64) {
	for i := range dst {
		dst[i] = core.Region{
			Rect:   geom.Rect{MinX: minx[i], MinY: miny[i], MaxX: maxx[i], MaxY: maxy[i]},
			Weight: w[i],
		}
	}
}

// WriteColumnar writes snap to path on the real OS filesystem; see
// WriteColumnarFS.
func WriteColumnar(path string, snap *colstore.Snapshot) error {
	return WriteColumnarFS(faultfs.OS, path, snap)
}

// WriteColumnarFS is the single sanctioned seam for putting columnar
// snapshot bytes on a persistence path: the encode runs inside
// WriteFileAtomicFS (temp file, fsync, rename, parent-directory
// fsync), so the file at path is always a complete CRC-consistent
// snapshot or the previous one — never torn. The colwrite analyzer
// flags Snapshot.EncodeTo on persistence paths outside this function.
func WriteColumnarFS(fsys faultfs.FS, path string, snap *colstore.Snapshot) error {
	return WriteFileAtomicFS(fsys, path, func(w io.Writer) error {
		if err := snap.EncodeTo(w); err != nil {
			return fmt.Errorf("store: encoding %s: %w", path, err)
		}
		return nil
	})
}

// loadFSMode is the shared load path: sniff the format by magic, open
// columnar files through colstore (verifying every checksum), fall
// back to the legacy gob decoder for pre-columnar files, and classify
// every failure as absent (os.IsNotExist), corrupt (ErrCorruptSnapshot)
// or an I/O error.
func loadFSMode(fsys faultfs.FS, path string, mode colstore.Mode) (*FootprintDB, error) {
	snap, err := colstore.OpenFS(fsys, path, mode)
	switch {
	case err == nil:
		db, cerr := FromColumnar(snap)
		if cerr != nil {
			return nil, cerr
		}
		return db, nil
	case errors.Is(err, colstore.ErrNotColumnar):
		return loadGobFS(fsys, path)
	case errors.Is(err, colstore.ErrCorrupt) || errors.Is(err, colstore.ErrVersion):
		return nil, corruptSnapshot(path, err)
	default:
		// Open/stat/read errors (including absence) pass through
		// untouched so os.IsNotExist keeps working on them.
		return nil, err
	}
}

// loadGobFS decodes a legacy gob database file. Decode failures are
// corruption (the file exists and claims to be a snapshot); open
// errors pass through so absence stays os.IsNotExist.
func loadGobFS(fsys faultfs.FS, path string) (*FootprintDB, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore errdiscard read-only load handle; decode errors are surfaced by DecodeFrom
	defer f.Close()
	db, err := DecodeFrom(bufio.NewReader(f), path)
	if err != nil {
		return nil, corruptSnapshot(path, err)
	}
	return db, nil
}

// LoadFS loads a snapshot of either format (columnar by magic, legacy
// gob otherwise) through an explicit filesystem, with ModeAuto mapping.
func LoadFS(fsys faultfs.FS, path string) (*FootprintDB, error) {
	return loadFSMode(fsys, path, colstore.ModeAuto)
}

// LoadColumnar loads a columnar snapshot with an explicit mapping mode
// and no gob fallback — the restart benchmark and `geomigrate verify`
// use it to pin down exactly which load path ran. A gob file returns
// colstore.ErrNotColumnar.
func LoadColumnar(path string, mode colstore.Mode) (*FootprintDB, error) {
	snap, err := colstore.OpenFS(faultfs.OS, path, mode)
	if err != nil {
		return nil, err
	}
	return FromColumnar(snap)
}

// ---- columnar fast-path state on FootprintDB ----

// ColumnarBacked reports whether queries against this database run the
// flattened columnar kernels (true until the first mutation after a
// columnar load).
func (db *FootprintDB) ColumnarBacked() bool { return db.cols != nil }

// DetachColumns drops the columnar fast-path view, forcing every
// subsequent query onto the classic slice kernels. Results are
// identical either way; the benchmark harness uses it to time both
// kernel families over one database. The snapshot (and mmap) backing
// Norms and the sketch blocks stays pinned.
func (db *FootprintDB) DetachColumns() { db.detachCols() }

// detachCols is called by every mutation that changes footprint
// geometry or the user axis: the columns describe state that no
// longer exists, so the dispatch helpers must fall back to the
// materialised slices. The view pointer is replaced, never mutated —
// frozen epochs sharing the old pointer keep serving their (still
// consistent) pre-mutation state. colSrc survives so the mmap backing
// Norms/sketch aliases stays alive.
func (db *FootprintDB) detachCols() { db.cols = nil }

// detachSketchCols drops only the sketch half of the view — called
// when the in-memory sketch layer is rebuilt or dropped
// (EnableSketches/DisableSketches) while footprint geometry is
// untouched, so the region columns keep serving the similarity
// kernels. A fresh view value is installed (never an in-place write;
// frozen epochs share the old one).
func (db *FootprintDB) detachSketchCols() {
	if c := db.cols; c != nil && c.cellStarts != nil {
		db.cols = &colView{regions: c.regions, starts: c.starts}
	}
}

// UserSimilarity is the Algorithm 4 similarity of stored user u
// against query footprint q with norm qnorm — the one kernel every
// search method and the engine refine through. Columnar-backed
// databases run the flattened SimilarityJoinCols over the dense
// columns; otherwise the classic SimilarityJoin over the user's
// region slice. Bit-for-bit identical results.
//
//geo:hotpath
func (db *FootprintDB) UserSimilarity(u int, q core.Footprint, qnorm float64) float64 {
	if c := db.cols; c != nil {
		return core.SimilarityJoinCols(&c.regions, int(c.starts[u]), int(c.starts[u+1]), q, db.Norms[u], qnorm)
	}
	return core.SimilarityJoin(db.Footprints[u], q, db.Norms[u], qnorm)
}

// UserSketchDot is the sketch merge-join dot of stored user u's sketch
// against the query sketch — the filter-step kernel. Columnar-backed
// databases with on-file sketch sections run the flat kernel over the
// contiguous cell/root blocks.
//
//geo:hotpath
func (db *FootprintDB) UserSketchDot(u int, qsk *sketch.Sketch) float64 {
	if c := db.cols; c != nil && c.cellStarts != nil {
		lo, hi := c.cellStarts[u], c.cellStarts[u+1]
		return sketch.DotFlat(c.cells[lo:hi], c.cellRoot[lo:hi], qsk.Cells, qsk.Root)
	}
	return sketch.Dot(&db.Sketches[u], qsk)
}

// RegionWeight returns the weight of region r of user u (the RoI-index
// accumulation reads it per R-tree hit).
//
//geo:hotpath
func (db *FootprintDB) RegionWeight(u, r int) float64 {
	if c := db.cols; c != nil {
		return c.regions.W[int(c.starts[u])+r]
	}
	return db.Footprints[u][r].Weight
}
