package store

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"geofootprint/internal/colstore"
	"geofootprint/internal/core"
	"geofootprint/internal/faultfs"
	"geofootprint/internal/geom"
	"geofootprint/internal/sketch"
)

// columnarTestDB builds a deterministic random database with norms,
// MBRs, and (optionally) sketches — the full persisted state.
func columnarTestDB(t *testing.T, users int, sketches bool) *FootprintDB {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	fps := randFootprints(rng, users, 6)
	ids := make([]int, users)
	for i := range ids {
		ids[i] = i*7 + 3
	}
	db, err := FromFootprints("columnar-test", ids, fps)
	if err != nil {
		t.Fatalf("FromFootprints: %v", err)
	}
	if sketches {
		db.EnableSketches(16, 2)
	}
	return db
}

// sameDB asserts bitwise equality of everything the snapshot persists.
func sameDB(t *testing.T, want, got *FootprintDB) {
	t.Helper()
	if want.Name != got.Name {
		t.Fatalf("name %q != %q", got.Name, want.Name)
	}
	if len(want.IDs) != len(got.IDs) {
		t.Fatalf("users %d != %d", len(got.IDs), len(want.IDs))
	}
	for i := range want.IDs {
		if want.IDs[i] != got.IDs[i] {
			t.Fatalf("id[%d] %d != %d", i, got.IDs[i], want.IDs[i])
		}
		if math.Float64bits(want.Norms[i]) != math.Float64bits(got.Norms[i]) {
			t.Fatalf("norm[%d] %v != %v", i, got.Norms[i], want.Norms[i])
		}
		if want.MBRs[i] != got.MBRs[i] {
			t.Fatalf("mbr[%d] %+v != %+v", i, got.MBRs[i], want.MBRs[i])
		}
		fw, fg := want.Footprints[i], got.Footprints[i]
		if len(fw) != len(fg) {
			t.Fatalf("footprint[%d] has %d regions, want %d", i, len(fg), len(fw))
		}
		for r := range fw {
			if fw[r] != fg[r] {
				t.Fatalf("region[%d][%d] %+v != %+v", i, r, fg[r], fw[r])
			}
		}
	}
	if want.SketchParams != got.SketchParams {
		t.Fatalf("sketch params %+v != %+v", got.SketchParams, want.SketchParams)
	}
	if len(want.Sketches) != len(got.Sketches) {
		t.Fatalf("sketch count %d != %d", len(got.Sketches), len(want.Sketches))
	}
	for i := range want.Sketches {
		sw, sg := &want.Sketches[i], &got.Sketches[i]
		if len(sw.Cells) != len(sg.Cells) {
			t.Fatalf("sketch[%d] has %d cells, want %d", i, len(sg.Cells), len(sw.Cells))
		}
		for c := range sw.Cells {
			if sw.Cells[c] != sg.Cells[c] ||
				math.Float64bits(sw.Mass[c]) != math.Float64bits(sg.Mass[c]) ||
				math.Float64bits(sw.Root[c]) != math.Float64bits(sg.Root[c]) {
				t.Fatalf("sketch[%d] cell %d differs", i, c)
			}
		}
	}
}

// TestColumnarRoundTripModes loads one saved file through both the
// heap-copy and zero-copy paths and requires bit-exact state.
func TestColumnarRoundTripModes(t *testing.T) {
	for _, sketches := range []bool{false, true} {
		db := columnarTestDB(t, 40, sketches)
		path := filepath.Join(t.TempDir(), "snap.col")
		if err := db.Save(path); err != nil {
			t.Fatalf("save: %v", err)
		}
		rd, err := LoadColumnar(path, colstore.ModeRead)
		if err != nil {
			t.Fatalf("read-mode load: %v", err)
		}
		sameDB(t, db, rd)
		if !rd.ColumnarBacked() {
			t.Fatal("read-mode load did not keep the columnar fast path")
		}
		mm, err := LoadColumnar(path, colstore.ModeMmap)
		if err != nil {
			t.Skipf("mmap unavailable on this platform: %v", err)
		}
		sameDB(t, db, mm)
		if !mm.ColumnarBacked() {
			t.Fatal("mmap load did not keep the columnar fast path")
		}
	}
}

// TestGobColumnarGobRoundTrip converts gob -> columnar -> gob and
// requires the final gob file to be byte-identical to the first: the
// columnar format loses nothing the legacy format carried. check.sh
// runs this as the migration self-test.
func TestGobColumnarGobRoundTrip(t *testing.T) {
	db := columnarTestDB(t, 60, true)
	dir := t.TempDir()
	gobA := filepath.Join(dir, "a.gob")
	col := filepath.Join(dir, "b.col")
	gobB := filepath.Join(dir, "c.gob")

	if err := db.SaveGob(gobA); err != nil {
		t.Fatalf("save gob: %v", err)
	}
	fromGob, err := Load(gobA)
	if err != nil {
		t.Fatalf("load gob: %v", err)
	}
	if fromGob.ColumnarBacked() {
		t.Fatal("gob load should not claim columnar backing")
	}
	if err := fromGob.Save(col); err != nil {
		t.Fatalf("save columnar: %v", err)
	}
	fromCol, err := Load(col)
	if err != nil {
		t.Fatalf("load columnar: %v", err)
	}
	if err := fromCol.SaveGob(gobB); err != nil {
		t.Fatalf("re-save gob: %v", err)
	}
	a, err := os.ReadFile(gobA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(gobB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("gob -> columnar -> gob is not byte-identical (%d vs %d bytes)", len(a), len(b))
	}
	sameDB(t, db, fromCol)
}

// TestColumnarDispatchMatchesAoS checks the //geo:hotpath dispatch
// helpers give bitwise-identical answers on the columnar fast path and
// after detaching to the slice-of-structs fallback.
func TestColumnarDispatchMatchesAoS(t *testing.T) {
	db := columnarTestDB(t, 50, true)
	path := filepath.Join(t.TempDir(), "snap.col")
	if err := db.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	queries := randFootprints(rng, 8, 5)
	for _, q := range queries {
		core.SortByMinX(q)
		qn := core.Norm(q)
		qsk := sketch.Build(q, got.SketchParams)
		for u := range got.IDs {
			fast := got.UserSimilarity(u, q, qn)
			slow := core.SimilarityJoin(got.Footprints[u], q, got.Norms[u], qn)
			if math.Float64bits(fast) != math.Float64bits(slow) {
				t.Fatalf("UserSimilarity(%d) columnar %v != AoS %v", u, fast, slow)
			}
			df := got.UserSketchDot(u, &qsk)
			ds := sketch.Dot(&got.Sketches[u], &qsk)
			if math.Float64bits(df) != math.Float64bits(ds) {
				t.Fatalf("UserSketchDot(%d) columnar %v != AoS %v", u, df, ds)
			}
			for r := range got.Footprints[u] {
				if got.RegionWeight(u, r) != got.Footprints[u][r].Weight {
					t.Fatalf("RegionWeight(%d,%d) differs", u, r)
				}
			}
		}
	}
}

// TestColumnarDetachOnMutation: any structural mutation must drop the
// columnar view (the on-disk order no longer describes the database)
// while queries keep working through the fallback path.
func TestColumnarDetachOnMutation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.col")
	fresh := func() *FootprintDB {
		db := columnarTestDB(t, 30, false)
		if err := db.Save(path); err != nil {
			t.Fatalf("save: %v", err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("load: %v", err)
		}
		if !got.ColumnarBacked() {
			t.Fatal("load did not attach columns")
		}
		return got
	}
	extra := core.Footprint{{Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Weight: 1}}

	mutations := map[string]func(db *FootprintDB){
		"upsert":  func(db *FootprintDB) { db.Upsert(9999, extra) },
		"append":  func(db *FootprintDB) { db.AppendRoIs(db.IDs[0], extra) },
		"remove":  func(db *FootprintDB) { db.Remove(db.IDs[0]) },
		"compact": func(db *FootprintDB) { db.Remove(db.IDs[0]); db.Compact() },
	}
	for name, mutate := range mutations {
		db := fresh()
		mutate(db)
		if db.ColumnarBacked() {
			t.Fatalf("%s: columnar view survived a structural mutation", name)
		}
		// Fallback still answers correctly.
		q := db.Footprints[0]
		qn := db.Norms[0]
		want := core.SimilarityJoin(db.Footprints[0], q, db.Norms[0], qn)
		if got := db.UserSimilarity(0, q, qn); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: post-detach UserSimilarity %v != %v", name, got, want)
		}
	}

	// Enabling sketches on a sketch-less columnar file keeps the region
	// fast path: only the cell half of the view must be rebuilt.
	db := fresh()
	db.EnableSketches(16, 2)
	if !db.ColumnarBacked() {
		t.Fatal("EnableSketches dropped the region columns")
	}
	qsk := sketch.Build(db.Footprints[0], db.SketchParams)
	if got, want := db.UserSketchDot(0, &qsk), sketch.Dot(&db.Sketches[0], &qsk); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("post-EnableSketches dot %v != %v", got, want)
	}
	db.DisableSketches()
	if !db.ColumnarBacked() {
		t.Fatal("DisableSketches dropped the region columns")
	}
}

// TestColumnarEpochFreeze: a frozen epoch taken before any mutation
// keeps the columnar fast path; the first builder mutation detaches
// the builder's view without disturbing the frozen snapshot.
func TestColumnarEpochFreeze(t *testing.T) {
	db := columnarTestDB(t, 25, false)
	path := filepath.Join(t.TempDir(), "snap.col")
	if err := db.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	b := NewEpochBuilder(loaded)
	frozen := b.Freeze()
	if !frozen.ColumnarBacked() {
		t.Fatal("pre-mutation freeze lost the columnar view")
	}
	extra := core.Footprint{{Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Weight: 1}}
	b.Upsert(424242, extra)
	next := b.Freeze()
	if next.ColumnarBacked() {
		t.Fatal("post-mutation freeze still claims columnar backing")
	}
	if !frozen.ColumnarBacked() {
		t.Fatal("mutation in the builder detached the frozen epoch's view")
	}
	q := frozen.Footprints[3]
	qn := frozen.Norms[3]
	want := core.SimilarityJoin(frozen.Footprints[3], q, frozen.Norms[3], qn)
	if got := frozen.UserSimilarity(3, q, qn); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("frozen epoch similarity %v != %v", got, want)
	}
}

// TestColumnarTornRenameFault: a failed rename mid-snapshot must leave
// the previous snapshot intact and loadable; a torn rename (destination
// unlinked) must surface as absence, never as silent data invention.
func TestColumnarTornRenameFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.col")
	db := columnarTestDB(t, 20, true)
	if err := WriteColumnarFS(faultfs.OS, path, db.Columnar(nil)); err != nil {
		t.Fatalf("seed write: %v", err)
	}

	// Failed rename: destination untouched.
	newer := columnarTestDB(t, 35, true)
	fault := faultfs.NewFault(faultfs.OS, faultfs.Schedule{FailRenameN: 1})
	if err := WriteColumnarFS(fault, path, newer.Columnar(nil)); err == nil {
		t.Fatal("rename fault did not propagate")
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load after failed rename: %v", err)
	}
	sameDB(t, db, got)

	// Torn rename: destination lost; the loader must say "absent", not
	// hallucinate or misreport corruption.
	torn := faultfs.NewFault(faultfs.OS, faultfs.Schedule{FailRenameN: 1, TornRename: true})
	if err := WriteColumnarFS(torn, path, newer.Columnar(nil)); err == nil {
		t.Fatal("torn rename did not propagate")
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("load after torn rename succeeded")
	}
	if !os.IsNotExist(err) {
		t.Fatalf("torn rename should read as absence, got %v", err)
	}
	if errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("torn rename misclassified as corruption: %v", err)
	}
}

// TestLoadFaultClassification: Load distinguishes absence, corrupt
// columnar, and corrupt gob — callers branch on these.
func TestLoadFaultClassification(t *testing.T) {
	dir := t.TempDir()

	// Absent.
	_, err := Load(filepath.Join(dir, "absent.col"))
	if !os.IsNotExist(err) {
		t.Fatalf("absent file: want IsNotExist, got %v", err)
	}
	if errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("absent file misreported corrupt: %v", err)
	}

	// Corrupt columnar: flip a payload byte after a valid save.
	colPath := filepath.Join(dir, "bad.col")
	db := columnarTestDB(t, 15, true)
	if err := db.Save(colPath); err != nil {
		t.Fatalf("save: %v", err)
	}
	raw, err := os.ReadFile(colPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x40
	if err := os.WriteFile(colPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(colPath)
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("flipped byte: want ErrCorruptSnapshot, got %v", err)
	}

	// Truncated columnar.
	truncPath := filepath.Join(dir, "trunc.col")
	if err := db.Save(truncPath); err != nil {
		t.Fatalf("save: %v", err)
	}
	if err := os.Truncate(truncPath, int64(len(raw)/2)); err != nil {
		t.Fatal(err)
	}
	_, err = Load(truncPath)
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("truncated file: want ErrCorruptSnapshot, got %v", err)
	}

	// Garbage that is neither columnar nor gob.
	gobPath := filepath.Join(dir, "bad.gob")
	if err := os.WriteFile(gobPath, bytes.Repeat([]byte{0x5a}, 128), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(gobPath)
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("garbage gob: want ErrCorruptSnapshot, got %v", err)
	}
}
