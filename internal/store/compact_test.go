package store

import "testing"

func TestCompact(t *testing.T) {
	db := smallDB(t, 9, []int{1, 2, 3, 4, 5})
	db.Remove(2)
	db.Remove(4)
	if got := db.Compact(); got != 2 {
		t.Fatalf("Compact removed %d, want 2", got)
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d", db.Len())
	}
	// Survivors re-indexed densely and findable.
	for i, want := range []int{1, 3, 5} {
		idx, ok := db.IndexOf(want)
		if !ok || idx != i {
			t.Errorf("user %d at index %d (%v), want %d", want, idx, ok, i)
		}
		if len(db.Footprints[i]) == 0 || db.Norms[i] == 0 {
			t.Errorf("survivor %d lost its footprint", want)
		}
	}
	if _, ok := db.IndexOf(2); ok {
		t.Error("tombstoned user survived Compact")
	}
	// Idempotent.
	if got := db.Compact(); got != 0 {
		t.Errorf("second Compact removed %d", got)
	}
}
