package store

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
	"geofootprint/internal/sketch"
)

func sketchDB(t *testing.T, seed int64, users int) *FootprintDB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	fps := randFootprints(rng, users, 6)
	ids := make([]int, users)
	for i := range ids {
		ids[i] = i * 7
	}
	db, err := FromFootprints("sketchy", ids, fps)
	if err != nil {
		t.Fatal(err)
	}
	db.EnableSketches(32, 0)
	return db
}

// rebuiltSketches returns what a from-scratch EnableSketches at the
// database's *current* params would produce — the oracle incremental
// maintenance must match. The domain is pinned (not refitted) because
// mutations never move the domain.
func rebuiltSketches(db *FootprintDB) []sketch.Sketch {
	out := make([]sketch.Sketch, len(db.Footprints))
	for i, f := range db.Footprints {
		out[i] = sketch.Build(f, db.SketchParams)
	}
	return out
}

func checkAligned(t *testing.T, db *FootprintDB, when string) {
	t.Helper()
	if len(db.Sketches) != len(db.IDs) {
		t.Fatalf("%s: %d sketches for %d users", when, len(db.Sketches), len(db.IDs))
	}
	want := rebuiltSketches(db)
	if !reflect.DeepEqual(normalizeSketches(db.Sketches), normalizeSketches(want)) {
		t.Fatalf("%s: incrementally maintained sketches differ from a rebuild", when)
	}
}

// normalizeSketches maps empty-but-non-nil slices to nil so DeepEqual
// compares content, not make-vs-zero-value representation.
func normalizeSketches(ss []sketch.Sketch) []sketch.Sketch {
	out := make([]sketch.Sketch, len(ss))
	for i, s := range ss {
		if s.Len() > 0 {
			out[i] = s
		}
	}
	return out
}

// TestSketchMaintenance drives every mutation path and checks the
// sketch layer stays identical to a full rebuild after each step.
func TestSketchMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := sketchDB(t, 1, 12)
	checkAligned(t, db, "after enable")

	// Upsert: replace an existing user and add a new one.
	db.Upsert(0, randFootprints(rng, 1, 5)[0])
	checkAligned(t, db, "after upsert-replace")
	db.Upsert(10_000, randFootprints(rng, 1, 5)[0])
	checkAligned(t, db, "after upsert-new")

	// AppendRoIs on existing and on a fresh user.
	db.AppendRoIs(7, randFootprints(rng, 1, 3)[0])
	checkAligned(t, db, "after append-existing")
	db.AppendRoIs(20_000, randFootprints(rng, 1, 3)[0])
	checkAligned(t, db, "after append-new")

	// Remove tombstones; the sketch must empty with the footprint.
	db.Remove(14)
	checkAligned(t, db, "after remove")
	if db.Sketches[2].Len() != 0 {
		t.Fatal("tombstoned user kept a non-empty sketch")
	}

	// Merge with matching params (copy path).
	other := sketchDB(t, 2, 5)
	other.SketchParams = db.SketchParams
	other.Sketches = rebuiltSketches(other)
	for i := range other.IDs {
		other.IDs[i] += 1_000_000
	}
	other.byID = nil
	if err := db.Merge(other); err != nil {
		t.Fatal(err)
	}
	checkAligned(t, db, "after merge-same-params")

	// Merge with different params (rebuild path) and an unsorted
	// incoming footprint (the invariant audit: Merge must restore
	// MinX order).
	other2 := sketchDB(t, 3, 4)
	for i := range other2.IDs {
		other2.IDs[i] += 2_000_000
	}
	other2.byID = nil
	other2.Footprints[0] = core.Footprint{
		{Rect: geom.Rect{MinX: 0.9, MinY: 0.1, MaxX: 0.95, MaxY: 0.2}, Weight: 1},
		{Rect: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.2, MaxY: 0.2}, Weight: 1},
	}
	if err := db.Merge(other2); err != nil {
		t.Fatal(err)
	}
	for i, f := range db.Footprints {
		if !core.IsSortedByMinX(f) {
			t.Fatalf("footprint %d unsorted after merge", i)
		}
	}
	checkAligned(t, db, "after merge-different-params")

	// Compact drops tombstones and must keep sketches aligned.
	db.Remove(0)
	db.Remove(21)
	db.Compact()
	checkAligned(t, db, "after compact")
}

// TestSketchPersistence round-trips an enabled database through gob
// and checks params and sketches survive; a database without sketches
// must load as sketch-disabled.
func TestSketchPersistence(t *testing.T) {
	db := sketchDB(t, 4, 10)
	path := filepath.Join(t.TempDir(), "sketch.db")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.SketchesEnabled() {
		t.Fatal("sketches lost in round-trip")
	}
	if got.SketchParams != db.SketchParams {
		t.Fatalf("params %+v, want %+v", got.SketchParams, db.SketchParams)
	}
	if !reflect.DeepEqual(normalizeSketches(got.Sketches), normalizeSketches(db.Sketches)) {
		t.Fatal("sketches differ after round-trip")
	}

	db.DisableSketches()
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SketchesEnabled() {
		t.Fatal("disabled database loaded with sketches enabled")
	}
}

// TestSketchDomainFixedUnderUpsert: a user escaping the enable-time
// domain is clamped, and the bound property still holds against every
// stored user.
func TestSketchDomainFixedUnderUpsert(t *testing.T) {
	db := sketchDB(t, 5, 8)
	dom := db.SketchParams.Domain
	escapee := core.Footprint{
		{Rect: geom.Rect{MinX: dom.MaxX + 1, MinY: dom.MaxY + 1, MaxX: dom.MaxX + 1.3, MaxY: dom.MaxY + 1.2}, Weight: 2},
		{Rect: geom.Rect{MinX: dom.MinX - 0.5, MinY: dom.MinY, MaxX: dom.MinX + 0.1, MaxY: dom.MinY + 0.3}, Weight: 1},
	}
	core.SortByMinX(escapee)
	u := db.Upsert(777_777, escapee)
	if db.SketchParams.Domain != dom {
		t.Fatal("upsert moved the sketch domain")
	}
	for v := range db.IDs {
		sim := core.SimilarityJoin(db.Footprints[u], db.Footprints[v], db.Norms[u], db.Norms[v])
		bound := sketch.UpperBound(sketch.Dot(&db.Sketches[u], &db.Sketches[v]), db.Norms[u], db.Norms[v])
		if bound < sim-1e-9 {
			t.Fatalf("user %d: clamped bound %v < similarity %v", v, bound, sim)
		}
	}
}
