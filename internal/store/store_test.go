package store

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/extract"
	"geofootprint/internal/geom"
	"geofootprint/internal/traj"
)

func almostEq(a, b float64) bool {
	const eps = 1e-9
	d := math.Abs(a - b)
	return d <= eps || d <= eps*math.Max(math.Abs(a), math.Abs(b))
}

func randFootprints(rng *rand.Rand, users, maxRegions int) []core.Footprint {
	fps := make([]core.Footprint, users)
	for u := range fps {
		n := 1 + rng.Intn(maxRegions)
		f := make(core.Footprint, n)
		for i := range f {
			x, y := rng.Float64(), rng.Float64()
			f[i] = core.Region{
				Rect: geom.Rect{
					MinX: x, MinY: y,
					MaxX: x + rng.Float64()*0.05,
					MaxY: y + rng.Float64()*0.05,
				},
				Weight: 1,
			}
		}
		fps[u] = f
	}
	return fps
}

func dwellDataset(rng *rand.Rand, users int) *traj.Dataset {
	d := &traj.Dataset{Name: "synthetic", SampleInterval: 1}
	for u := 0; u < users; u++ {
		tr := make(traj.Trajectory, 0, 120)
		for c := 0; c < 3; c++ {
			// Three dwell clusters of 40 samples each, far apart.
			cx, cy := rng.Float64(), rng.Float64()
			for i := 0; i < 40; i++ {
				tr = append(tr, traj.Location{
					P: geom.Point{X: cx + rng.Float64()*0.001, Y: cy + rng.Float64()*0.001},
					T: float64(len(tr)),
				})
			}
		}
		d.Users = append(d.Users, traj.User{ID: u * 3, Sessions: []traj.Trajectory{tr}})
	}
	return d
}

func TestBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := dwellDataset(rng, 30)
	cfg := extract.Config{Epsilon: 0.02, Tau: 10}
	db, err := Build(d, cfg, core.UnitWeight, 4)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if db.Len() != 30 {
		t.Fatalf("Len = %d, want 30", db.Len())
	}
	for i := range db.Footprints {
		if len(db.Footprints[i]) != 3 {
			t.Errorf("user %d: %d regions, want 3", i, len(db.Footprints[i]))
		}
		if want := core.Norm(db.Footprints[i]); !almostEq(db.Norms[i], want) {
			t.Errorf("user %d: stored norm %v, want %v", i, db.Norms[i], want)
		}
		if db.MBRs[i] != db.Footprints[i].MBR() {
			t.Errorf("user %d: stale MBR", i)
		}
	}
	if db.IDs[5] != 15 {
		t.Errorf("ID[5] = %d, want 15", db.IDs[5])
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	d := &traj.Dataset{}
	if _, err := Build(d, extract.Config{Epsilon: -1, Tau: 1}, core.UnitWeight, 1); err == nil {
		t.Error("Build with invalid config should fail")
	}
}

func TestFromFootprints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fps := randFootprints(rng, 20, 5)
	ids := make([]int, len(fps))
	for i := range ids {
		ids[i] = 100 + i
	}
	db, err := FromFootprints("t", ids, fps)
	if err != nil {
		t.Fatalf("FromFootprints: %v", err)
	}
	if db.Len() != 20 {
		t.Errorf("Len = %d", db.Len())
	}
	idx, ok := db.IndexOf(105)
	if !ok || idx != 5 {
		t.Errorf("IndexOf(105) = %d, %v", idx, ok)
	}
	if _, ok := db.IndexOf(9999); ok {
		t.Error("IndexOf of absent ID should be false")
	}
	if _, err := FromFootprints("bad", []int{1}, fps); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestComputeNormsParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fps := randFootprints(rng, 200, 10)
	ids := make([]int, len(fps))
	for i := range ids {
		ids[i] = i
	}
	seq, _ := FromFootprints("seq", ids, fps)
	seq.ComputeNorms(1)
	par, _ := FromFootprints("par", ids, fps)
	par.ComputeNorms(8)
	for i := range seq.Norms {
		if seq.Norms[i] != par.Norms[i] {
			t.Fatalf("user %d: norms differ: %v vs %v", i, seq.Norms[i], par.Norms[i])
		}
		if seq.MBRs[i] != par.MBRs[i] {
			t.Fatalf("user %d: MBRs differ", i)
		}
	}
}

func TestNumRegions(t *testing.T) {
	fps := []core.Footprint{make(core.Footprint, 3), make(core.Footprint, 7), nil}
	db, _ := FromFootprints("n", []int{1, 2, 3}, fps)
	if got := db.NumRegions(); got != 10 {
		t.Errorf("NumRegions = %d, want 10", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fps := randFootprints(rng, 25, 8)
	ids := make([]int, len(fps))
	for i := range ids {
		ids[i] = i * 7
	}
	db, _ := FromFootprints("round", ids, fps)
	path := filepath.Join(t.TempDir(), "db.gob")
	if err := db.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Name != "round" || got.Len() != db.Len() {
		t.Fatalf("loaded shape mismatch")
	}
	for i := range db.IDs {
		if got.IDs[i] != db.IDs[i] || got.Norms[i] != db.Norms[i] || got.MBRs[i] != db.MBRs[i] {
			t.Fatalf("user %d mismatch after round trip", i)
		}
		if len(got.Footprints[i]) != len(db.Footprints[i]) {
			t.Fatalf("user %d footprint length mismatch", i)
		}
		for j := range db.Footprints[i] {
			if got.Footprints[i][j] != db.Footprints[i][j] {
				t.Fatalf("user %d region %d mismatch", i, j)
			}
		}
	}
	// IndexOf still works on a loaded DB.
	if idx, ok := got.IndexOf(ids[3]); !ok || idx != 3 {
		t.Errorf("IndexOf after load = %d, %v", idx, ok)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.gob")); err == nil {
		t.Error("Load of missing file should fail")
	}
}
