package store

import (
	"runtime"
	"sync"

	"geofootprint/internal/geom"
	"geofootprint/internal/sketch"
)

// This file manages the database's sketch layer: per-user grid
// fingerprints (internal/sketch) that let search rank candidates by a
// provable similarity upper bound before paying for an Algorithm 4
// refinement. The layer is opt-in — EnableSketches builds it — and
// once enabled every mutation path (Upsert, AppendRoIs, Remove, Merge,
// Compact) keeps it aligned with Footprints, so indexes can rely on
// db.Sketches[u] being current whenever db.Footprints[u] is.

// SketchesEnabled reports whether the sketch layer is active.
func (db *FootprintDB) SketchesEnabled() bool { return db.SketchParams.Valid() }

// EnableSketches (re)builds a sketch for every user at resolution g
// (DefaultG when g <= 0) over the union of all footprint MBRs, on
// `workers` goroutines (GOMAXPROCS if <= 0). The domain is fixed at
// this call: footprints upserted later that escape it are clamped into
// border cells, which loosens their bounds but never invalidates them
// (see the sketch package proof), so re-enabling with a fresh domain
// is an optimisation, not a correctness requirement.
func (db *FootprintDB) EnableSketches(g, workers int) {
	// The on-file sketch blocks (if any) no longer describe the layer
	// being built; the region columns stay valid for the similarity
	// kernels.
	db.detachSketchCols()
	if g <= 0 {
		g = sketch.DefaultG
	}
	union := geom.EmptyRect()
	for _, m := range db.MBRs {
		union = union.Extend(m)
	}
	db.SketchParams = sketch.Params{G: g, Domain: sketch.FitDomain(union)}
	db.Sketches = make([]sketch.Sketch, len(db.Footprints))

	n := len(db.Footprints)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, f := range db.Footprints {
			db.Sketches[i] = sketch.Build(f, db.SketchParams)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				db.Sketches[i] = sketch.Build(db.Footprints[i], db.SketchParams)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// DisableSketches drops the sketch layer.
func (db *FootprintDB) DisableSketches() {
	db.detachSketchCols()
	db.SketchParams = sketch.Params{}
	db.Sketches = nil
}

// refreshSketch re-rasterises user i after a mutation. The Sketches
// slice is grown on demand so Upsert can extend the user space before
// calling it.
func (db *FootprintDB) refreshSketch(i int) {
	if !db.SketchesEnabled() {
		return
	}
	for len(db.Sketches) <= i {
		db.Sketches = append(db.Sketches, sketch.Sketch{})
	}
	db.Sketches[i] = sketch.Build(db.Footprints[i], db.SketchParams)
}
