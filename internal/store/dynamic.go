package store

import (
	"fmt"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
)

// This file adds dynamic maintenance to FootprintDB. A deployment
// tracks users continuously: new customers appear, returning customers
// extend their footprints. Upsert and Remove keep the database — and,
// via the search indexes' UpdateUser, the indexes — current without a
// full rebuild.
//
// Dense user indexes are stable: Remove tombstones a user (empty
// footprint, zero norm) instead of compacting, so indexes held by
// search structures never dangle. A zero-norm user is invisible to
// every similarity computation and search method by construction
// (similarity against it is defined as 0).

// Upsert inserts or replaces the footprint of the user with the given
// external ID, recomputing its norm (Algorithm 2) and MBR, and returns
// the user's dense index. The footprint is stored as given and sorted
// by Rect.MinX in place (the database invariant); pass a copy if the
// caller retains it.
func (db *FootprintDB) Upsert(id int, f core.Footprint) int {
	db.detachCols()
	if !core.IsSortedByMinX(f) {
		core.SortByMinX(f)
	}
	i, ok := db.IndexOf(id)
	if !ok {
		i = len(db.IDs)
		db.IDs = append(db.IDs, id)
		db.Footprints = append(db.Footprints, nil)
		db.Norms = append(db.Norms, 0)
		db.MBRs = append(db.MBRs, geom.EmptyRect())
		if db.byID != nil {
			db.byID[id] = i
		}
	}
	db.Footprints[i] = f
	db.Norms[i] = core.Norm(f)
	db.MBRs[i] = f.MBR()
	db.refreshSketch(i)
	return i
}

// AppendRoIs extends a user's footprint with newly extracted regions
// (e.g. from the streaming extractor after a session closes), creating
// the user if needed, and refreshes norm and MBR. It returns the
// user's dense index.
func (db *FootprintDB) AppendRoIs(id int, regions []core.Region) int {
	db.detachCols()
	i, ok := db.IndexOf(id)
	if !ok {
		return db.Upsert(id, append(core.Footprint(nil), regions...))
	}
	f := append(db.Footprints[i], regions...)
	core.SortByMinX(f)
	db.Footprints[i] = f
	db.Norms[i] = core.Norm(f)
	db.MBRs[i] = f.MBR()
	db.refreshSketch(i)
	return i
}

// Compact removes tombstoned users (empty footprints) by rebuilding
// the dense index space, and returns the number removed. External
// structures holding dense indexes (search indexes, kNN graphs) are
// invalidated and must be rebuilt; long-running services call this
// during maintenance windows after many Removes.
func (db *FootprintDB) Compact() int {
	db.detachCols()
	sketches := db.SketchesEnabled()
	keep := 0
	for i := range db.IDs {
		if len(db.Footprints[i]) == 0 {
			continue
		}
		db.IDs[keep] = db.IDs[i]
		db.Footprints[keep] = db.Footprints[i]
		db.Norms[keep] = db.Norms[i]
		db.MBRs[keep] = db.MBRs[i]
		if sketches {
			db.Sketches[keep] = db.Sketches[i]
		}
		keep++
	}
	removed := len(db.IDs) - keep
	db.IDs = db.IDs[:keep]
	db.Footprints = db.Footprints[:keep]
	db.Norms = db.Norms[:keep]
	db.MBRs = db.MBRs[:keep]
	if sketches {
		db.Sketches = db.Sketches[:keep]
	}
	db.byID = nil // force rebuild on next IndexOf
	return removed
}

// Merge appends every user of other into db, recomputing as little as
// possible: norms and MBRs are copied. User IDs must be disjoint; a
// duplicate ID aborts with an error before any change is applied. It
// is the way to combine evaluation parts (e.g. Part A + Part B) or
// shard extraction across machines.
//
// Incoming footprints are sorted by Rect.MinX in place when they are
// not already (the database invariant; a hand-built `other` can
// violate it — databases produced by this package never do, making the
// check O(n)). When db's sketch layer is enabled, sketches for the
// incoming users are copied if other shares db's exact sketch
// parameters and rebuilt under db's parameters otherwise.
func (db *FootprintDB) Merge(other *FootprintDB) error {
	for _, id := range other.IDs {
		if _, exists := db.IndexOf(id); exists {
			return fmt.Errorf("store: merge would duplicate user ID %d", id)
		}
	}
	for _, f := range other.Footprints {
		if !core.IsSortedByMinX(f) {
			core.SortByMinX(f)
		}
	}
	db.detachCols()
	base := len(db.IDs)
	db.IDs = append(db.IDs, other.IDs...)
	db.Footprints = append(db.Footprints, other.Footprints...)
	db.Norms = append(db.Norms, other.Norms...)
	db.MBRs = append(db.MBRs, other.MBRs...)
	if db.SketchesEnabled() {
		if other.SketchParams == db.SketchParams && len(other.Sketches) == len(other.IDs) {
			db.Sketches = append(db.Sketches, other.Sketches...)
		} else {
			for i := range other.IDs {
				db.refreshSketch(base + i)
			}
		}
	}
	if db.byID != nil {
		for i, id := range other.IDs {
			db.byID[id] = base + i
		}
	}
	return nil
}

// Remove tombstones the user with the given external ID: the footprint
// empties and the norm drops to zero, making the user unreachable by
// similarity search while keeping all dense indexes stable. It reports
// whether the user existed.
func (db *FootprintDB) Remove(id int) bool {
	i, ok := db.IndexOf(id)
	if !ok {
		return false
	}
	db.detachCols()
	db.Footprints[i] = nil
	db.Norms[i] = 0
	db.MBRs[i] = geom.EmptyRect()
	db.refreshSketch(i)
	return true
}
