// Package store provides FootprintDB, the materialised collection of
// user geo-footprints with their precomputed norms — the preprocessing
// output of Section 5.1 that similarity computation and search build
// on. The database persists in the columnar snapshot format of
// internal/colstore (see columnar.go); the legacy gob format is still
// read transparently and written via SaveGob, one release behind.
package store

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sync"

	"geofootprint/internal/colstore"
	"geofootprint/internal/core"
	"geofootprint/internal/extract"
	"geofootprint/internal/faultfs"
	"geofootprint/internal/geom"
	"geofootprint/internal/sketch"
	"geofootprint/internal/traj"
)

// FootprintDB holds, for every user, the geo-footprint F(u), its
// Euclidean norm ||F(u)|| (Equation 2, computed with Algorithm 2) and
// its MBR (the key of the user-centric index of Section 6.2). The
// parallel slices are indexed by a dense user index; IDs maps back to
// external user identifiers.
//
// Invariant: every stored footprint is sorted by Rect.MinX. All ingest
// paths (Build, FromFootprints, Load, Upsert, AppendRoIs) establish it,
// so the join-based Algorithm 4 — the kernel of every search method —
// takes its allocation-free sorted fast path on every call instead of
// copying and re-sorting.
type FootprintDB struct {
	Name       string
	IDs        []int
	Footprints []core.Footprint
	Norms      []float64
	MBRs       []geom.Rect

	// SketchParams and Sketches are the optional filter layer:
	// per-user grid sketches (internal/sketch) whose dot product upper
	// bounds Equation 1 similarity. EnableSketches turns the layer on;
	// a zero SketchParams means disabled. When enabled, every dynamic
	// mutation keeps Sketches aligned with Footprints, and Save/Load
	// persist them with the rest of the database.
	SketchParams sketch.Params
	Sketches     []sketch.Sketch

	byID map[int]int // lazily built ID → index

	// Columnar fast-path state (set by FromColumnar, see columnar.go).
	// cols is the dense column view the flattened kernels dispatch on;
	// dropped by detachCols on any mutation. colSrc pins the decoded
	// snapshot — and its mmap on the zero-copy path — for as long as
	// Norms or the sketch slices may alias it; it is never cleared.
	cols   *colView
	colSrc *colstore.Snapshot
}

// Build extracts every user's footprint from the dataset with
// Algorithm 1 under cfg, converts RoIs to regions under the given
// weighting, and precomputes all norms with Algorithm 2. Extraction
// and norm computation run on `workers` goroutines (GOMAXPROCS if
// <= 0).
func Build(d *traj.Dataset, cfg extract.Config, w core.Weighting, workers int) (*FootprintDB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rois := extract.ExtractDataset(d, cfg, workers)
	db := &FootprintDB{
		Name:       d.Name,
		IDs:        make([]int, len(d.Users)),
		Footprints: make([]core.Footprint, len(d.Users)),
	}
	for i := range d.Users {
		db.IDs[i] = d.Users[i].ID
		db.Footprints[i] = core.FromRoIs(rois[i], w)
	}
	db.ComputeNorms(workers)
	return db, nil
}

// FromFootprints builds a database from already-materialised
// footprints, precomputing norms and MBRs. The footprints are stored
// as given and sorted by Rect.MinX in place (region order carries no
// meaning); pass copies if the caller depends on its ordering.
func FromFootprints(name string, ids []int, fps []core.Footprint) (*FootprintDB, error) {
	db, err := New(name, ids, fps)
	if err != nil {
		return nil, err
	}
	db.ComputeNorms(0)
	return db, nil
}

// New assembles a database from per-user footprints without computing
// norms or MBRs — the two-phase form of FromFootprints for callers
// that meter or parallelise the norm pass themselves (the bench
// harness times extraction and norm computation separately). The
// MinX-sorted invariant is established here; the database is not
// servable until ComputeNorms has run.
func New(name string, ids []int, fps []core.Footprint) (*FootprintDB, error) {
	if len(ids) != len(fps) {
		return nil, fmt.Errorf("store: %d ids for %d footprints", len(ids), len(fps))
	}
	for _, f := range fps {
		if !core.IsSortedByMinX(f) {
			core.SortByMinX(f)
		}
	}
	return &FootprintDB{Name: name, IDs: ids, Footprints: fps}, nil
}

// ComputeNorms (re)computes the norm and MBR of every footprint, in
// parallel (the preprocessing phase of Section 5.1).
func (db *FootprintDB) ComputeNorms(workers int) {
	n := len(db.Footprints)
	db.Norms = make([]float64, n)
	db.MBRs = make([]geom.Rect, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, f := range db.Footprints {
			db.Norms[i] = core.Norm(f)
			db.MBRs[i] = f.MBR()
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				db.Norms[i] = core.Norm(db.Footprints[i])
				db.MBRs[i] = db.Footprints[i].MBR()
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ComputeNormsBalanced recomputes every norm and MBR like
// ComputeNorms, but distributes users over a work queue instead of
// static chunks, which load-balances skewed footprint sizes (one user
// with a huge footprint no longer serialises its whole chunk). The
// query engine's PrecomputeNorms delegates here: keeping the writes in
// this package preserves the rule — enforced by geolint's
// sortedfootprint analyzer — that only internal/store mutates the
// parallel slices.
func (db *FootprintDB) ComputeNormsBalanced(workers int) {
	n := len(db.Footprints)
	if len(db.Norms) != n {
		db.Norms = make([]float64, n)
	}
	if len(db.MBRs) != n {
		db.MBRs = make([]geom.Rect, n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, f := range db.Footprints {
			db.Norms[i] = core.Norm(f)
			db.MBRs[i] = f.MBR()
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				db.Norms[i] = core.Norm(db.Footprints[i])
				db.MBRs[i] = db.Footprints[i].MBR()
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Len returns the number of users in the database.
func (db *FootprintDB) Len() int { return len(db.IDs) }

// IndexOf returns the dense index of the user with the given external
// ID, or false when absent.
func (db *FootprintDB) IndexOf(id int) (int, bool) {
	db.ensureByID()
	i, ok := db.byID[id]
	return i, ok
}

// ensureByID materialises the lazy ID → index map. EpochBuilder.Freeze
// calls it before publishing a snapshot so concurrent lock-free
// readers never trigger (and race) the lazy build.
func (db *FootprintDB) ensureByID() {
	if db.byID != nil {
		return
	}
	m := make(map[int]int, len(db.IDs))
	for i, uid := range db.IDs {
		m[uid] = i
	}
	db.byID = m
}

// NumRegions returns the total number of footprint regions across all
// users.
func (db *FootprintDB) NumRegions() int {
	n := 0
	for _, f := range db.Footprints {
		n += len(f)
	}
	return n
}

// dbWire is the gob wire format, decoupled from unexported fields.
// The sketch fields gob-default to zero, so files written before the
// sketch layer existed load as sketch-disabled databases, and old
// readers skip the unknown fields.
type dbWire struct {
	Name       string
	IDs        []int
	Footprints []core.Footprint
	Norms      []float64
	MBRs       []geom.Rect

	SketchParams sketch.Params
	Sketches     []sketch.Sketch
}

// EncodeTo writes the database's gob wire form to w. Save wraps it in
// an atomic file write; the ingest snapshot embeds it in a larger
// stream.
func (db *FootprintDB) EncodeTo(w io.Writer) error {
	wire := dbWire{db.Name, db.IDs, db.Footprints, db.Norms, db.MBRs,
		db.SketchParams, db.Sketches}
	return gob.NewEncoder(w).Encode(&wire)
}

// Save writes the database to path in the columnar snapshot format —
// the current on-disk format, loadable with zero-copy mmap. The write
// is atomic: it goes to a temporary file in the target's directory, is
// fsynced, and is renamed over path only when complete — a crash or
// error at any point leaves an existing database at path untouched.
// Use SaveGob for the legacy format (readable by the previous
// release); Load reads both.
func (db *FootprintDB) Save(path string) error {
	return WriteColumnar(path, db.Columnar(nil))
}

// SaveGob writes the database to path in the legacy gob format, with
// the same atomic-rename discipline as Save. It exists one release
// behind the columnar format as a migration escape hatch (geomigrate
// uses it to down-convert); new snapshots should use Save.
func (db *FootprintDB) SaveGob(path string) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		if err := db.EncodeTo(w); err != nil {
			return fmt.Errorf("store: encoding %s: %w", path, err)
		}
		return nil
	})
}

// WriteFileAtomic writes a file through `write` into a temporary file
// next to path, fsyncs it, and renames it over path, all on the real
// OS filesystem. See WriteFileAtomicFS.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	return WriteFileAtomicFS(faultfs.OS, path, write)
}

// WriteFileAtomicFS is WriteFileAtomic over an explicit filesystem, so
// the crash-matrix tests can drive every step — temp-file write,
// fsync, rename, directory fsync — through a deterministic fault
// schedule. On any error the temporary file is removed and path is
// left exactly as it was. The same-directory temp file keeps the
// rename on one filesystem, which is what makes it atomic.
func WriteFileAtomicFS(fsys faultfs.FS, path string, write func(io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		// A bare filename must keep the temp file in the working
		// directory: os.CreateTemp("") would fall back to $TMPDIR,
		// often a different filesystem, and the rename would fail
		// with EXDEV.
		dir = "."
	}
	f, err := fsys.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if tmp != "" {
			_ = f.Close() // cleanup of an already-failed write
			fsys.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if err := write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	// CreateTemp creates the file 0600; widen to the usual
	// umask-style mode so the saved file stays readable by other
	// processes, as it was with the plain os.Create path.
	if err := f.Chmod(0o644); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	tmp = "" // committed; disarm the cleanup
	// Fsync the directory so the rename itself is durable: callers
	// (the ingest checkpoint) truncate the WAL as soon as this
	// returns, and losing the directory entry in a crash while the
	// truncation survives would silently drop acknowledged batches.
	if d, err := fsys.Open(dir); err == nil {
		syncErr := d.Sync()
		closeErr := d.Close()
		if syncErr != nil {
			return syncErr
		}
		if closeErr != nil {
			return closeErr
		}
	}
	return nil
}

// DecodeFrom reads one database in gob wire form from r, restoring the
// MinX-sorted invariant (see Load for why). name labels errors.
func DecodeFrom(r io.Reader, name string) (*FootprintDB, error) {
	var w dbWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("store: decoding %s: %w", name, err)
	}
	db := &FootprintDB{Name: w.Name, IDs: w.IDs, Footprints: w.Footprints,
		Norms: w.Norms, MBRs: w.MBRs,
		SketchParams: w.SketchParams, Sketches: w.Sketches}
	if len(db.Norms) != len(db.IDs) || len(db.Footprints) != len(db.IDs) {
		return nil, fmt.Errorf("store: %s: inconsistent lengths", name)
	}
	if db.SketchesEnabled() && len(db.Sketches) != len(db.IDs) {
		return nil, fmt.Errorf("store: %s: %d sketches for %d users",
			name, len(db.Sketches), len(db.IDs))
	}
	// Databases saved before the sorted-footprint invariant existed may
	// hold unsorted footprints; restoring it here is an O(n) check per
	// footprint for modern files. Their sketches (if any) are
	// order-independent, so they stay valid.
	for _, f := range db.Footprints {
		if !core.IsSortedByMinX(f) {
			core.SortByMinX(f)
		}
	}
	return db, nil
}

// Load reads a database previously written by Save (columnar,
// preferring zero-copy mmap) or by the legacy gob writer — the format
// is sniffed from the file magic. Corrupt files of either format
// report ErrCorruptSnapshot; a missing file stays os.IsNotExist.
func Load(path string) (*FootprintDB, error) {
	return LoadFS(faultfs.OS, path)
}
