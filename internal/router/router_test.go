package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geofootprint/internal/hashring"
	"geofootprint/internal/ingest"
)

// fakeShard is an httptest-backed shard with a programmable handler.
type fakeShard struct {
	id  string
	srv *httptest.Server
}

// newFakeShards starts n fake shards, each answering /healthz as a
// healthy instance of its map ID and /v1/query with the given
// handler (nil: empty result list).
func newFakeShards(t *testing.T, n int, query http.HandlerFunc) ([]*fakeShard, *hashring.Map) {
	t.Helper()
	m := &hashring.Map{Version: hashring.MapVersion}
	var shards []*fakeShard
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("shard-%d", i)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(map[string]interface{}{
				"status": "ok", "shard_id": id, "epoch_seq": 1, "users": 10,
			})
		})
		if query != nil {
			mux.HandleFunc("POST /v1/query", query)
		} else {
			mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
				io.WriteString(w, "[]")
			})
		}
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		shards = append(shards, &fakeShard{id: id, srv: srv})
		m.Shards = append(m.Shards, hashring.Shard{ID: id, Addr: srv.URL})
	}
	return shards, m
}

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func newTestRouter(t *testing.T, m *hashring.Map, mut func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Map:            m,
		HealthInterval: -1, // tests drive CheckHealth explicitly
		RequestTimeout: 2 * time.Second,
		RetryBase:      time.Millisecond,
		RetryCap:       5 * time.Millisecond,
		Logger:         quietLogger(),
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func testQuery(k int) Query {
	return Query{
		Regions: json.RawMessage(`[{"rect":[0.1,0.1,0.5,0.5],"weight":1}]`),
		K:       k,
	}
}

// Health probing classifies every state the router routes on, and the
// duplicate-ID cross-check catches a shard map pointing two entries
// at processes claiming the same identity.
func TestCheckHealthStates(t *testing.T) {
	status := map[string]string{} // shard id -> reported status
	reportAs := map[string]string{}
	mkHandler := func(id string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			rid := id
			if alias, ok := reportAs[id]; ok {
				rid = alias
			}
			json.NewEncoder(w).Encode(map[string]interface{}{
				"status": status[id], "shard_id": rid, "epoch_seq": 42,
			})
		}
	}
	m := &hashring.Map{Version: hashring.MapVersion}
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("shard-%d", i)
		status[id] = "ok"
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", mkHandler(id))
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		m.Shards = append(m.Shards, hashring.Shard{ID: id, Addr: srv.URL})
	}
	r := newTestRouter(t, m, nil)

	r.CheckHealth(context.Background())
	for _, h := range r.Shards() {
		if h.State != StateOK || h.Epoch != 42 {
			t.Fatalf("healthy shard %s: %+v", h.ID, h)
		}
	}

	status["shard-1"] = "degraded"
	status["shard-2"] = "draining"
	reportAs["shard-3"] = "shard-0" // misrouted: claims shard-0's identity
	r.CheckHealth(context.Background())
	got := map[string]string{}
	for _, h := range r.Shards() {
		got[h.ID] = h.State
	}
	// shard-0 and shard-3 both answered as "shard-0": both untrusted.
	want := map[string]string{
		"shard-0": StateMisconfigured,
		"shard-1": StateDegraded,
		"shard-2": StateDraining,
		"shard-3": StateMisconfigured,
	}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("shard %s state = %s, want %s (all: %v)", id, got[id], w, got)
		}
	}
}

// An unreachable shard is detected and the query plane degrades to an
// explicit partial answer; when no shard can answer, TopK errors
// instead of returning an empty "success".
func TestTopKPartialOnUnreachable(t *testing.T) {
	shards, m := newFakeShards(t, 3, func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `[{"id":7,"similarity":0.5}]`)
	})
	r := newTestRouter(t, m, nil)
	r.CheckHealth(context.Background())

	res, err := r.TopK(context.Background(), testQuery(5))
	if err != nil || res.Partial || res.Queried != 3 {
		t.Fatalf("healthy fan-out: res=%+v err=%v", res, err)
	}

	shards[1].srv.Close()
	r.CheckHealth(context.Background())
	res, err = r.TopK(context.Background(), testQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || len(res.Missing) != 1 || res.Missing[0] != "shard-1" || res.Queried != 2 {
		t.Fatalf("one shard down: %+v", res)
	}

	shards[0].srv.Close()
	shards[2].srv.Close()
	r.CheckHealth(context.Background())
	if _, err := r.TopK(context.Background(), testQuery(5)); err == nil {
		t.Fatal("all shards down: want error, got success")
	}
}

// Shard-level retries: 429 + Retry-After twice, then success — the
// fan-out leg succeeds without surfacing a partial result. A 400
// (non-retryable) fails the leg immediately, without burning retries.
func TestCallRetriesSheddingShard(t *testing.T) {
	var hits int32
	_, m := newFakeShards(t, 1, func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&hits, 1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		io.WriteString(w, `[{"id":3,"similarity":0.25}]`)
	})
	r := newTestRouter(t, m, nil)
	r.CheckHealth(context.Background())
	res, err := r.TopK(context.Background(), testQuery(1))
	if err != nil || res.Partial {
		t.Fatalf("retryable shed not retried: res=%+v err=%v hits=%d", res, err, hits)
	}
	if got := atomic.LoadInt32(&hits); got != 3 {
		t.Fatalf("hits = %d, want 3 (two sheds + success)", got)
	}

	var badHits int32
	_, m2 := newFakeShards(t, 1, func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&badHits, 1)
		http.Error(w, "bad footprint", http.StatusBadRequest)
	})
	r2 := newTestRouter(t, m2, nil)
	r2.CheckHealth(context.Background())
	if _, err := r2.TopK(context.Background(), testQuery(1)); err == nil {
		t.Fatal("400 from the only shard: want error")
	}
	if got := atomic.LoadInt32(&badHits); got != 1 {
		t.Fatalf("non-retryable status was retried %d times", got)
	}
}

// One slow shard cannot stall the fan-out past the query deadline:
// the slow leg is reported missing, the fast legs' merge returns.
func TestTopKSlowShardBoundedByDeadline(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	slow := func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-block:
		case <-r.Context().Done():
		}
		io.WriteString(w, "[]")
	}
	fast := func(id int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `[{"id":%d,"similarity":0.75}]`, id)
		}
	}
	m := &hashring.Map{Version: hashring.MapVersion}
	for i, h := range []http.HandlerFunc{fast(1), slow, fast(2)} {
		id := fmt.Sprintf("shard-%d", i)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(map[string]string{"status": "ok", "shard_id": id})
		})
		mux.HandleFunc("POST /v1/query", h)
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		m.Shards = append(m.Shards, hashring.Shard{ID: id, Addr: srv.URL})
	}
	r := newTestRouter(t, m, func(c *Config) {
		c.MaxAttempts = 1
		c.RequestTimeout = 10 * time.Second // per-attempt cap is not the bound here
	})
	r.CheckHealth(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := r.TopK(ctx, testQuery(5))
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fan-out took %v, stalled by the slow shard", elapsed)
	}
	if !res.Partial || len(res.Missing) != 1 || res.Missing[0] != "shard-1" {
		t.Fatalf("slow shard not reported missing: %+v", res)
	}
	if len(res.Results) != 2 || res.Results[0].ID != 1 || res.Results[1].ID != 2 {
		t.Fatalf("fast legs lost: %+v", res.Results)
	}
}

// The per-shard admission gate bounds concurrent in-flight requests:
// with a gate of 1 and a handler that parks, a second fan-out leg
// cannot pile onto the shard — it waits, then times out as missing.
func TestAdmissionGateBoundsInflight(t *testing.T) {
	var inflight, peak int32
	block := make(chan struct{})
	defer close(block)
	_, m := newFakeShards(t, 1, func(w http.ResponseWriter, r *http.Request) {
		cur := atomic.AddInt32(&inflight, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		defer atomic.AddInt32(&inflight, -1)
		select {
		case <-block:
		case <-r.Context().Done():
		}
		io.WriteString(w, "[]")
	})
	r := newTestRouter(t, m, func(c *Config) {
		c.MaxAttempts = 1
		c.MaxInflightPerShard = 1
		c.RequestTimeout = 10 * time.Second
	})
	r.CheckHealth(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			r.TopK(ctx, testQuery(1))
			done <- struct{}{}
		}()
	}
	<-done
	<-done
	if p := atomic.LoadInt32(&peak); p != 1 {
		t.Fatalf("peak in-flight on the shard = %d, want 1 (gate leaked)", p)
	}
}

// Ingest routing: samples land on their ring owners, the NDJSON
// sub-batches parse back to the original samples, and a failed leg
// produces an IngestError naming both the acked and failed shards.
func TestRouteIngestPartitions(t *testing.T) {
	received := make([]chan []ingest.Sample, 3)
	m := &hashring.Map{Version: hashring.MapVersion}
	var fail atomic.Bool
	for i := 0; i < 3; i++ {
		i := i
		received[i] = make(chan []ingest.Sample, 8)
		id := fmt.Sprintf("shard-%d", i)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(map[string]string{"status": "ok", "shard_id": id})
		})
		mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
			if i == 2 && fail.Load() {
				http.Error(w, "sealed", http.StatusServiceUnavailable)
				return
			}
			samples, err := ingest.ParseNDJSON(r.Body, 10000)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			received[i] <- samples
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]interface{}{"lsn": 100 + i, "samples": len(samples)})
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		m.Shards = append(m.Shards, hashring.Shard{ID: id, Addr: srv.URL})
	}
	r := newTestRouter(t, m, func(c *Config) { c.MaxAttempts = 1 })
	r.CheckHealth(context.Background())

	var samples []ingest.Sample
	for u := 1; u <= 40; u++ {
		samples = append(samples,
			ingest.Sample{User: u, X: 0.1 * float64(u%7), Y: 0.30000000000000004, T: float64(u)},
			ingest.Sample{User: u, X: 0.1*float64(u%7) + 1e-17, Y: 0.3, T: float64(u) + 0.5})
	}
	res, err := r.RouteIngest(context.Background(), samples)
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != len(samples) {
		t.Fatalf("routed %d samples, want %d", res.Samples, len(samples))
	}
	seen := 0
	for i := range received {
	drain:
		for {
			select {
			case sub := <-received[i]:
				seen += len(sub)
				for j, s := range sub {
					if own := r.Ring().Owner(s.User).ID; own != fmt.Sprintf("shard-%d", i) {
						t.Fatalf("shard-%d received user %d owned by %s", i, s.User, own)
					}
					// Wire round-trip must preserve exact float bits
					// (the 0.3/1e-17 values are chosen to break any
					// lossy formatting).
					if j > 0 && sub[j-1].User == s.User && sub[j-1].T >= s.T {
						t.Fatalf("per-user order broken on shard-%d: %v then %v", i, sub[j-1], s)
					}
				}
				for _, orig := range samples {
					for _, got := range sub {
						if got.User == orig.User && got.T == orig.T {
							if got.X != orig.X || got.Y != orig.Y {
								t.Fatalf("sample %d/%g mangled: %+v vs %+v", orig.User, orig.T, got, orig)
							}
						}
					}
				}
			default:
				break drain
			}
		}
		if _, ok := res.Shards[fmt.Sprintf("shard-%d", i)]; !ok && len(received[i]) > 0 {
			t.Fatalf("shard-%d received samples but has no LSN in the result", i)
		}
	}
	if seen != len(samples) {
		t.Fatalf("shards received %d samples, want %d", seen, len(samples))
	}

	// Now a leg fails: the error names the failed shard and keeps the
	// acked ones, so the caller knows a blind full retry re-ingests.
	fail.Store(true)
	_, err = r.RouteIngest(context.Background(), samples)
	ierr, ok := err.(*IngestError)
	if !ok {
		t.Fatalf("err = %v (%T), want *IngestError", err, err)
	}
	if _, bad := ierr.Failed["shard-2"]; !bad {
		t.Fatalf("failed legs = %v, want shard-2", ierr.Failed)
	}
	if len(ierr.Acked) == 0 {
		t.Fatalf("acked legs lost: %+v", ierr)
	}
	if !strings.Contains(ierr.Error(), "shard-2") {
		t.Fatalf("error text does not name the failed shard: %v", ierr)
	}
}

// Config validation and defaulting.
func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil Map accepted")
	}
	if _, err := New(Config{Map: &hashring.Map{Version: 99}}); err == nil {
		t.Fatal("invalid map accepted")
	}
}
