package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"geofootprint/internal/ingest"
)

// IngestResult reports where a routed batch landed: one entry per
// owning shard with the WAL LSN its /v1/ingest acknowledged.
type IngestResult struct {
	// Samples is the total routed sample count.
	Samples int `json:"samples"`
	// Shards maps shard ID -> highest acknowledged LSN on that shard's
	// WAL (with replication a shard may ack several sub-batches).
	Shards map[string]uint64 `json:"shards"`
	// Hinted names the replicas that missed a sub-batch a sibling
	// acked: the batch is durable (hence no error), but these shards
	// are stale for reads until the health loop redelivers their
	// queued hints. Empty without replication.
	Hinted []string `json:"hinted,omitempty"`
}

// IngestError is a routed-batch failure with enough structure for the
// coordinator to answer honestly: which shard legs failed (and why),
// and which succeeded before the failure was known — those samples
// ARE durable on their shards, and the client must know a retry of
// the whole batch will re-ingest them.
type IngestError struct {
	// Failed maps shard ID -> that leg's error.
	Failed map[string]error
	// Acked maps shard ID -> LSN for the legs that succeeded.
	Acked map[string]uint64
}

func (e *IngestError) Error() string {
	ids := make([]string, 0, len(e.Failed))
	for id := range e.Failed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b bytes.Buffer
	fmt.Fprintf(&b, "ingest failed on %d/%d shard legs:", len(e.Failed), len(e.Failed)+len(e.Acked))
	for _, id := range ids {
		fmt.Fprintf(&b, " %s: %v;", id, e.Failed[id])
	}
	return b.String()
}

// RetryAfter returns the largest Retry-After hint among the failed
// legs, or "" when none carried one — the coordinator propagates it
// so feeders back off as far as the most loaded owner asks.
func (e *IngestError) RetryAfter() string {
	best := ""
	for _, err := range e.Failed {
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > best {
			best = se.RetryAfter // numeric seconds; lexical max is fine for single digits, callers only need *a* hint
		}
	}
	return best
}

// ingestAckJSON mirrors the shard's 202 body.
type ingestAckJSON struct {
	LSN     uint64 `json:"lsn"`
	Samples int    `json:"samples"`
}

// RouteIngest partitions samples by their replica set and forwards
// one NDJSON sub-batch to every replica of each set, concurrently,
// with the full client policy (deadline, retries, gate, breaker).
//
// Durability and failure semantics with replication factor R:
//
//   - A sub-batch is durable as soon as ONE replica acks it (its WAL
//     holds the samples). Replicas that failed the same sub-batch are
//     marked stale, the batch is queued as a hint against them
//     (replica.go), and they are excluded from reads until the health
//     loop redelivers — a partial replica failure is a success with
//     hinting, not an error.
//   - Only a sub-batch with ZERO acked replicas fails the call: the
//     error is an *IngestError naming the failed shards and the legs
//     that did ack (those samples ARE durable; a blind full retry
//     re-ingests them).
//
// With R == 1 a replica set is just the owner, so this degrades to
// the unreplicated behaviour exactly: any leg failure is an error.
func (r *Router) RouteIngest(ctx context.Context, samples []ingest.Sample) (*IngestResult, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadQuery)
	}
	R := r.cfg.Replicas
	// Partition by replica tuple. Sample order within a sub-batch
	// preserves the client's order — the sessionizer depends on
	// per-user time order, and per-user order survives a stable
	// partition by user (each user maps to exactly one tuple).
	type group struct {
		tuple   []int
		samples []ingest.Sample
	}
	byTuple := make(map[string]*group)
	for _, s := range samples {
		tuple := r.ring.ReplicaIndices(s.User, R)
		key := r.ring.SegmentID(tuple)
		g := byTuple[key]
		if g == nil {
			g = &group{tuple: tuple}
			byTuple[key] = g
		}
		g.samples = append(g.samples, s)
	}

	res := &IngestResult{Samples: len(samples), Shards: make(map[string]uint64)}
	ierr := &IngestError{Failed: make(map[string]error), Acked: res.Shards}
	hinted := make(map[string]bool)
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, g := range byTuple {
		body := encodeNDJSON(g.samples)
		legErr := make([]error, len(g.tuple))
		acked := make([]bool, len(g.tuple))
		var legs sync.WaitGroup
		for li, j := range g.tuple {
			s := r.shards[j]
			legs.Add(1)
			wg.Add(1)
			go func(li int, s *shard) {
				defer legs.Done()
				defer wg.Done()
				var ack ingestAckJSON
				err := r.callBrk(ctx, s,
					func(ctx context.Context) (*http.Request, error) {
						req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.addr+"/v1/ingest", bytes.NewReader(body))
						if err != nil {
							return nil, err
						}
						req.Header.Set("Content-Type", "application/x-ndjson")
						return req, nil
					},
					func(_ int, rb io.Reader) error {
						return decodeJSONBody(rb, &ack)
					})
				if err != nil {
					legErr[li] = err
					return
				}
				acked[li] = true
				s.noteAck(ack.LSN)
				mu.Lock()
				if ack.LSN > res.Shards[s.id] {
					res.Shards[s.id] = ack.LSN
				}
				mu.Unlock()
			}(li, s)
		}
		// Settle the group once all its legs are done — in a goroutine
		// so groups proceed concurrently with each other.
		wg.Add(1)
		go func(g *group, body []byte, legErr []error, acked []bool, legs *sync.WaitGroup) {
			defer wg.Done()
			legs.Wait()
			anyAck := false
			for _, ok := range acked {
				anyAck = anyAck || ok
			}
			mu.Lock()
			defer mu.Unlock()
			for li, j := range g.tuple {
				if legErr[li] == nil {
					continue
				}
				s := r.shards[j]
				if anyAck {
					// Durable on a sibling: hint the miss, stale the
					// replica, no error.
					s.noteMissed(body, r.cfg.MaxHintBytes, legErr[li])
					hinted[s.id] = true
					r.cfg.Logger.Printf("router: replica %s missed ingest batch (hinted): %v", s.id, legErr[li])
					continue
				}
				if prev, dup := ierr.Failed[s.id]; !dup || prev == nil {
					ierr.Failed[s.id] = legErr[li]
				}
			}
		}(g, body, legErr, acked, &legs)
	}
	wg.Wait()
	for id := range hinted {
		res.Hinted = append(res.Hinted, id)
	}
	sort.Strings(res.Hinted)
	if len(ierr.Failed) > 0 {
		return res, ierr
	}
	return res, nil
}

// encodeNDJSON renders a sub-batch in the shard's POST /v1/ingest
// wire format. Floats are encoded in Go's shortest round-trip form,
// so the shard parses back the exact sample bits the router parsed.
func encodeNDJSON(samples []ingest.Sample) []byte {
	var buf bytes.Buffer
	for _, s := range samples {
		fmt.Fprintf(&buf, `{"user":%d,"x":%g,"y":%g,"t":%g}`+"\n", s.User, s.X, s.Y, s.T)
	}
	return buf.Bytes()
}
