package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"geofootprint/internal/ingest"
)

// IngestResult reports where a routed batch landed: one entry per
// owning shard with the WAL LSN its /v1/ingest acknowledged.
type IngestResult struct {
	// Samples is the total routed sample count.
	Samples int `json:"samples"`
	// Shards maps shard ID -> acknowledged LSN on that shard's WAL.
	Shards map[string]uint64 `json:"shards"`
}

// IngestError is a routed-batch failure with enough structure for the
// coordinator to answer honestly: which shard legs failed (and why),
// and which succeeded before the failure was known — those samples
// ARE durable on their shards, and the client must know a retry of
// the whole batch will re-ingest them.
type IngestError struct {
	// Failed maps shard ID -> that leg's error.
	Failed map[string]error
	// Acked maps shard ID -> LSN for the legs that succeeded.
	Acked map[string]uint64
}

func (e *IngestError) Error() string {
	ids := make([]string, 0, len(e.Failed))
	for id := range e.Failed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b bytes.Buffer
	fmt.Fprintf(&b, "ingest failed on %d/%d shard legs:", len(e.Failed), len(e.Failed)+len(e.Acked))
	for _, id := range ids {
		fmt.Fprintf(&b, " %s: %v;", id, e.Failed[id])
	}
	return b.String()
}

// RetryAfter returns the largest Retry-After hint among the failed
// legs, or "" when none carried one — the coordinator propagates it
// so feeders back off as far as the most loaded owner asks.
func (e *IngestError) RetryAfter() string {
	best := ""
	for _, err := range e.Failed {
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > best {
			best = se.RetryAfter // numeric seconds; lexical max is fine for single digits, callers only need *a* hint
		}
	}
	return best
}

// ingestAckJSON mirrors the shard's 202 body.
type ingestAckJSON struct {
	LSN     uint64 `json:"lsn"`
	Samples int    `json:"samples"`
}

// RouteIngest partitions samples by their ring owner and forwards one
// NDJSON sub-batch to each owning shard, concurrently, with the full
// client policy (deadline, retries, gate). Durability semantics are
// per shard, exactly as on a single node: a shard's LSN in the result
// means that shard's WAL holds its samples. On any leg failure the
// error is an *IngestError naming both the failed and the already
// acknowledged legs.
func (r *Router) RouteIngest(ctx context.Context, samples []ingest.Sample) (*IngestResult, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrBadQuery)
	}
	// Partition by owner. Sample order within a shard's sub-batch
	// preserves the client's order — the sessionizer depends on
	// per-user time order, and per-user order survives a stable
	// partition by user.
	byShard := make(map[int][]ingest.Sample)
	for _, s := range samples {
		i := r.ring.OwnerIndex(s.User)
		byShard[i] = append(byShard[i], s)
	}

	res := &IngestResult{Samples: len(samples), Shards: make(map[string]uint64)}
	ierr := &IngestError{Failed: make(map[string]error), Acked: res.Shards}
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for i, sub := range byShard {
		s := r.shards[i]
		body := encodeNDJSON(sub)
		wg.Add(1)
		go func(s *shard, body []byte) {
			defer wg.Done()
			var ack ingestAckJSON
			err := r.call(ctx, s,
				func(ctx context.Context) (*http.Request, error) {
					req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.addr+"/v1/ingest", bytes.NewReader(body))
					if err != nil {
						return nil, err
					}
					req.Header.Set("Content-Type", "application/x-ndjson")
					return req, nil
				},
				func(_ int, rb io.Reader) error {
					return decodeJSONBody(rb, &ack)
				})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				ierr.Failed[s.id] = err
				return
			}
			res.Shards[s.id] = ack.LSN
		}(s, body)
	}
	wg.Wait()
	if len(ierr.Failed) > 0 {
		return res, ierr
	}
	return res, nil
}

// encodeNDJSON renders a sub-batch in the shard's POST /v1/ingest
// wire format. Floats are encoded in Go's shortest round-trip form,
// so the shard parses back the exact sample bits the router parsed.
func encodeNDJSON(samples []ingest.Sample) []byte {
	var buf bytes.Buffer
	for _, s := range samples {
		fmt.Fprintf(&buf, `{"user":%d,"x":%g,"y":%g,"t":%g}`+"\n", s.User, s.X, s.Y, s.T)
	}
	return buf.Bytes()
}
