package router

// Cluster equivalence suite: real geoserve shard servers (in-process,
// over loopback HTTP) behind a Router must be observationally
// indistinguishable from a single node holding the union corpus.
// These are the acceptance tests for the distributed serving plane:
//
//   - TestClusterEquivalence: for N ∈ {1,2,4} shards, router top-k is
//     byte-identical to LinearScan on the unpartitioned store, for
//     all four Section 6 methods (and sketch), k ∈ {1,5,50}.
//   - TestClusterDegradedShard: with one shard draining/degraded the
//     response says partial:true, names the shard, and the results
//     equal LinearScan over the remaining shards' users.
//   - TestClusterIngestEquivalence: a batch routed shard-by-owner
//     through the router yields the same queryable corpus as the same
//     batch ingested into one node.
//
// `make cluster-test` runs everything matching TestCluster under
// -race.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http/httptest"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/extract"
	"geofootprint/internal/geom"
	"geofootprint/internal/hashring"
	"geofootprint/internal/ingest"
	"geofootprint/internal/search"
	"geofootprint/internal/server"
	"geofootprint/internal/store"
)

// clusterCorpus builds the deterministic union corpus: 120 users so a
// 4-way split stays non-trivial and k=50 exercises real merge depth.
func clusterCorpus(t *testing.T) ([]int, []core.Footprint) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	var ids []int
	var fps []core.Footprint
	for u := 0; u < 120; u++ {
		cx, cy := rng.Float64()*0.8, rng.Float64()*0.8
		f := core.Footprint{}
		for r := 0; r < 2+rng.Intn(3); r++ {
			x, y := cx+rng.Float64()*0.08, cy+rng.Float64()*0.08
			f = append(f, core.Region{
				Rect:   geom.Rect{MinX: x, MinY: y, MaxX: x + 0.03, MaxY: y + 0.03},
				Weight: 1 + float64(rng.Intn(3)),
			})
		}
		core.SortByMinX(f)
		ids = append(ids, 1000+u)
		fps = append(fps, f)
	}
	return ids, fps
}

// testRegions is the shared query geometry: one broad rectangle that
// overlaps most of the corpus (so k=50 has real candidates) plus two
// weighted focus areas.
const testRegions = `[{"rect":[0.05,0.05,0.85,0.85],"weight":1},{"rect":[0.2,0.2,0.4,0.4],"weight":3},{"rect":[0.6,0.1,0.75,0.3],"weight":2}]`

// parseRegions turns the raw query JSON into the core.Footprint a
// shard's handler would parse from the same bytes (weight 0 → 1,
// sorted by MinX) — the single-node oracle must score the exact
// geometry the shards score.
func parseRegions(t *testing.T, raw string) core.Footprint {
	t.Helper()
	var regs []struct {
		Rect   [4]float64 `json:"rect"`
		Weight float64    `json:"weight"`
	}
	if err := json.Unmarshal([]byte(raw), &regs); err != nil {
		t.Fatal(err)
	}
	f := make(core.Footprint, 0, len(regs))
	for _, r := range regs {
		w := r.Weight
		if w == 0 {
			w = 1
		}
		f = append(f, core.Region{
			Rect:   geom.Rect{MinX: r.Rect[0], MinY: r.Rect[1], MaxX: r.Rect[2], MaxY: r.Rect[3]},
			Weight: w,
		})
	}
	core.SortByMinX(f)
	return f
}

// cluster is an in-process shard deployment: one geoserve server per
// shard over a ring split of the corpus, fronted by a Router.
type cluster struct {
	router *Router
	srvs   []*server.Server
	// owned[i] lists the user IDs assigned to shard i, ascending.
	owned [][]int
}

// startCluster ring-splits (ids, fps) across n real shard servers and
// returns the wired deployment. The split is computed from a map with
// placeholder addresses — shard assignment depends only on shard IDs,
// which is exactly the reproducibility the shard-map format promises.
func startCluster(t *testing.T, n int, ids []int, fps []core.Footprint) *cluster {
	t.Helper()
	pre := &hashring.Map{Version: hashring.MapVersion}
	for i := 0; i < n; i++ {
		pre.Shards = append(pre.Shards, hashring.Shard{
			ID: fmt.Sprintf("shard-%d", i), Addr: fmt.Sprintf("http://pre-%d", i),
		})
	}
	ring, err := hashring.NewRing(pre)
	if err != nil {
		t.Fatal(err)
	}
	subIDs := make([][]int, n)
	subFPs := make([][]core.Footprint, n)
	for j, id := range ids {
		i := ring.OwnerIndex(id)
		subIDs[i] = append(subIDs[i], id)
		subFPs[i] = append(subFPs[i], fps[j])
	}

	c := &cluster{owned: subIDs}
	live := &hashring.Map{Version: hashring.MapVersion}
	for i := 0; i < n; i++ {
		db, err := store.FromFootprints(fmt.Sprintf("shard-%d", i), subIDs[i], subFPs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := server.NewWithOptions(db, server.Options{ShardID: fmt.Sprintf("shard-%d", i)})
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		c.srvs = append(c.srvs, srv)
		live.Shards = append(live.Shards, hashring.Shard{ID: fmt.Sprintf("shard-%d", i), Addr: hs.URL})
	}
	c.router, err = New(Config{
		Map:            live,
		HealthInterval: -1,
		Logger:         log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.router.Close)
	c.router.CheckHealth(context.Background())
	return c
}

// assertSame fails unless got (router answer, parsed back from shard
// JSON) and want (in-memory oracle) match to the last bit — the
// cross-the-wire determinism claim, checked on re-marshalled bytes so
// "byte-identical" is literal.
func assertSame(t *testing.T, label string, got, want []search.Result) {
	t.Helper()
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gb) != string(wb) {
		t.Errorf("%s: router diverged from single-node oracle\nrouter: %s\noracle: %s", label, gb, wb)
	}
}

func TestClusterEquivalence(t *testing.T) {
	ids, fps := clusterCorpus(t)
	union, err := store.FromFootprints("union", ids, fps)
	if err != nil {
		t.Fatal(err)
	}
	oracle := search.NewLinearScan(union)
	qf := parseRegions(t, testRegions)

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			c := startCluster(t, n, ids, fps)
			for _, method := range []string{"user-centric", "linear", "iterative", "batch", "sketch"} {
				for _, k := range []int{1, 5, 50} {
					res, err := c.router.TopK(context.Background(), Query{
						Regions: json.RawMessage(testRegions), K: k, Method: method,
					})
					if err != nil {
						t.Fatalf("%s k=%d: %v", method, k, err)
					}
					if res.Partial || res.Queried != n {
						t.Fatalf("%s k=%d: healthy cluster answered partial=%v queried=%d", method, k, res.Partial, res.Queried)
					}
					assertSame(t, fmt.Sprintf("%s k=%d", method, k), res.Results, oracle.TopK(qf, k))
				}
			}
		})
	}
}

func TestClusterDegradedShard(t *testing.T) {
	ids, fps := clusterCorpus(t)
	c := startCluster(t, 4, ids, fps)
	qf := parseRegions(t, testRegions)

	// Drain shard-2: the router must skip it, say so, and stay exact
	// over the remaining shards' users.
	c.srvs[2].SetDraining(true)
	c.router.CheckHealth(context.Background())

	skip := map[int]bool{}
	for _, id := range c.owned[2] {
		skip[id] = true
	}
	var restIDs []int
	var restFPs []core.Footprint
	for j, id := range ids {
		if !skip[id] {
			restIDs = append(restIDs, id)
			restFPs = append(restFPs, fps[j])
		}
	}
	rest, err := store.FromFootprints("rest", restIDs, restFPs)
	if err != nil {
		t.Fatal(err)
	}
	oracle := search.NewLinearScan(rest)

	for _, k := range []int{1, 5, 50} {
		res, err := c.router.TopK(context.Background(), Query{
			Regions: json.RawMessage(testRegions), K: k,
		})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !res.Partial || len(res.Missing) != 1 || res.Missing[0] != "shard-2" || res.Queried != 3 {
			t.Fatalf("k=%d: partial contract broken: partial=%v missing=%v queried=%d",
				k, res.Partial, res.Missing, res.Queried)
		}
		assertSame(t, fmt.Sprintf("degraded k=%d", k), res.Results, oracle.TopK(qf, k))
	}

	// The shard recovers; the next probe round restores full answers.
	c.srvs[2].SetDraining(false)
	c.router.CheckHealth(context.Background())
	union, err := store.FromFootprints("union", ids, fps)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.router.TopK(context.Background(), Query{Regions: json.RawMessage(testRegions), K: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("recovered cluster still partial: %+v", res)
	}
	assertSame(t, "recovered k=50", res.Results, search.NewLinearScan(union).TopK(qf, 50))
}

// TestClusterIngestEquivalence routes a live batch through the
// coordinator path into WAL-backed shards and proves the resulting
// cluster answers exactly like one node that ingested the same batch.
func TestClusterIngestEquivalence(t *testing.T) {
	const n = 2
	mkCfg := func() ingest.Config {
		dir := t.TempDir()
		return ingest.Config{
			WALPath:      dir + "/s.wal",
			SnapshotPath: dir + "/s.snap",
			Extract:      extract.Config{Epsilon: 0.05, Tau: 4},
			SessionGap:   10,
		}
	}

	// Shard servers: empty WAL-backed corpora.
	live := &hashring.Map{Version: hashring.MapVersion}
	var pipes []*ingest.Pipeline
	for i := 0; i < n; i++ {
		cfg := mkCfg()
		rec, err := ingest.Recover(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv := server.NewWithOptions(rec.DB, server.Options{ShardID: fmt.Sprintf("shard-%d", i)})
		p, err := srv.AttachPipeline(cfg, rec.State)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		pipes = append(pipes, p)
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		live.Shards = append(live.Shards, hashring.Shard{ID: fmt.Sprintf("shard-%d", i), Addr: hs.URL})
	}
	r, err := New(Config{Map: live, HealthInterval: -1, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	r.CheckHealth(context.Background())

	// Single-node reference: one pipeline swallows the whole batch.
	soloCfg := mkCfg()
	soloRec, err := ingest.Recover(soloCfg)
	if err != nil {
		t.Fatal(err)
	}
	soloSrv := server.NewWithOptions(soloRec.DB, server.Options{})
	soloPipe, err := soloSrv.AttachPipeline(soloCfg, soloRec.State)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { soloPipe.Close() })

	// One completed dwell RoI per user, at user-specific spots; the
	// coordinates have long binary fractions so any lossy float
	// handling on the routed path would change the extracted regions.
	var samples []ingest.Sample
	for u := 0; u < 12; u++ {
		x, y := 0.1+float64(u)/13.0, 0.1+float64(u)/17.0
		for i := 1; i <= 5; i++ {
			samples = append(samples, ingest.Sample{User: 3000 + u, X: x, Y: y, T: float64(i)})
		}
		samples = append(samples, ingest.Sample{User: 3000 + u, X: 0.95, Y: 0.95, T: 1000})
	}

	if _, err := r.RouteIngest(context.Background(), samples); err != nil {
		t.Fatal(err)
	}
	if _, err := soloPipe.Ingest(samples); err != nil {
		t.Fatal(err)
	}
	for _, p := range pipes {
		if err := p.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	if err := soloPipe.Drain(); err != nil {
		t.Fatal(err)
	}

	// Health probes pick up the new per-shard user counts; then the
	// routed cluster must answer exactly like the solo node.
	r.CheckHealth(context.Background())
	qf := parseRegions(t, testRegions)
	oracle := search.NewLinearScan(soloRec.DB)
	for _, k := range []int{1, 5, 12} {
		res, err := r.TopK(context.Background(), Query{Regions: json.RawMessage(testRegions), K: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Partial {
			t.Fatalf("k=%d: partial on a healthy cluster: %+v", k, res)
		}
		assertSame(t, fmt.Sprintf("ingest k=%d", k), res.Results, oracle.TopK(qf, k))
	}
}
