package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"geofootprint/internal/engine"
	"geofootprint/internal/search"
)

// Query is the router's top-k request. Regions is kept as raw JSON
// and forwarded to every shard byte-for-byte: the router never
// re-encodes the query geometry, so the footprint every shard scores
// is bit-identical to the one a single node would have parsed from
// the same client body.
type Query struct {
	Regions json.RawMessage `json:"regions"`
	K       int             `json:"k"`
	Method  string          `json:"method,omitempty"`
}

// TopKResult is a merged cross-shard answer. When Partial is false,
// Results is byte-identical to the same query against a single node
// holding the union of all shards' users (the cluster equivalence
// suite proves this for all four methods). When Partial is true,
// Missing names every ring segment that was lost — every replica
// skipped (unhealthy, stale, breaker open) or failed (errors,
// deadline) — and Results is exact over the segments that answered:
// correct for the corpus that answered, with the gap named, never
// silently wrong. With Replicas == 1 a segment ID is the bare shard
// ID; with R > 1 it is the replica tuple joined with "+".
type TopKResult struct {
	Results []search.Result
	Partial bool
	Missing []string
	// Queried is how many ring segments contributed results.
	Queried int
	// Epochs records, per contributing shard, the epoch that was
	// serving at its last health probe — observability for "which
	// epoch answered", logged by the coordinator.
	Epochs map[string]uint64
	// FailedOver counts fan-out legs that failed but whose segment was
	// rescued by a later replica — the replication payoff, surfaced
	// for the failover bench.
	FailedOver int
}

// shardResultJSON mirrors the shard's /v1/query response entry.
type shardResultJSON struct {
	ID         int     `json:"id"`
	Similarity float64 `json:"similarity"`
}

// ErrBadQuery marks client-side validation failures (the coordinator
// maps it to 400); ErrUnavailable marks "no shard could answer" (503).
var (
	ErrBadQuery    = errors.New("bad query")
	ErrUnavailable = errors.New("no shard available")
)

// wireSegment is the segment object forwarded to the shard's
// /v1/query (mirrors the server's segmentJSON): the replica tuple
// whose users the sub-query is restricted to, plus the shard-ID list
// and vnode count the shard needs to rebuild the identical ring.
type wireSegment struct {
	Shards  []string `json:"shards"`
	Vnodes  int      `json:"vnodes,omitempty"`
	R       int      `json:"r"`
	Members []string `json:"members"`
}

// wireQuery is the shard-bound query body: the client's query plus
// the optional segment restriction.
type wireQuery struct {
	Regions json.RawMessage `json:"regions"`
	K       int             `json:"k"`
	Method  string          `json:"method,omitempty"`
	Segment *wireSegment    `json:"segment,omitempty"`
}

// TopK scatter-gathers q across the ring's segments and merges the
// per-segment partial top-k lists with engine.MergeParts. A segment
// is one distinct replica tuple: its sub-query goes to the first
// in-sync serving replica and fails over down the tuple on error,
// timeout, staleness, or an open breaker. Each user belongs to
// exactly one segment, and with R == 1 the segment field is omitted
// entirely — the shard serves its whole corpus through its cached
// method engines, the PR-8 fast path. The context bounds the whole
// fan-out: legs that miss the deadline (including waiting at a full
// admission gate) fail over, and a segment with no live replica is
// reported missing rather than stalling the merge.
func (r *Router) TopK(ctx context.Context, q Query) (*TopKResult, error) {
	if q.K < 1 || q.K > 1000 {
		return nil, fmt.Errorf("%w: k must be in [1,1000], got %d", ErrBadQuery, q.K)
	}
	if len(q.Regions) == 0 {
		return nil, fmt.Errorf("%w: query has no regions", ErrBadQuery)
	}
	R := r.cfg.Replicas
	segs := r.ring.Segments(R)
	shardIDs := make([]string, len(r.shards))
	for i, s := range r.shards {
		shardIDs[i] = s.id
	}

	res := &TopKResult{Epochs: make(map[string]uint64)}
	gather := newSegGather()
	var (
		mu        sync.Mutex // guards res.Missing/Epochs/FailedOver and firstFail
		firstFail error
	)
	var wg sync.WaitGroup
	for _, tuple := range segs {
		wg.Add(1)
		go func(tuple []int) {
			defer wg.Done()
			segID := r.ring.SegmentID(tuple)
			wq := wireQuery{Regions: q.Regions, K: q.K, Method: q.Method}
			if R > 1 {
				members := make([]string, len(tuple))
				for i, j := range tuple {
					members[i] = shardIDs[j]
				}
				wq.Segment = &wireSegment{
					Shards:  shardIDs,
					Vnodes:  r.cfg.Map.Replicas,
					R:       R,
					Members: members,
				}
			}
			body, err := json.Marshal(wq) // regions pass through as raw bytes
			if err != nil {
				mu.Lock()
				res.Partial = true
				res.Missing = append(res.Missing, segID)
				if firstFail == nil {
					firstFail = err
				}
				mu.Unlock()
				return
			}
			var errs []error
			for ri, j := range tuple {
				s := r.shards[j]
				h := s.Health()
				if !h.serving() {
					errs = append(errs, fmt.Errorf("replica %s %s%s", s.id, h.State, detailSuffix(h.Detail)))
					continue
				}
				if why, stale := s.syncState(); stale {
					errs = append(errs, fmt.Errorf("replica %s stale: %s", s.id, why))
					continue
				}
				var list []shardResultJSON
				err := r.callBrk(ctx, s,
					func(ctx context.Context) (*http.Request, error) {
						req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.addr+"/v1/query", bytes.NewReader(body))
						if err != nil {
							return nil, err
						}
						req.Header.Set("Content-Type", "application/json")
						return req, nil
					},
					func(_ int, rb io.Reader) error {
						return decodeJSONBody(rb, &list)
					})
				if err != nil {
					errs = append(errs, fmt.Errorf("replica %s: %w", s.id, err))
					if !errors.Is(err, ErrBreakerOpen) {
						r.cfg.Logger.Printf("router: segment %s leg to replica %s failed: %v", segID, s.id, err)
					}
					continue
				}
				part := make([]search.Result, len(list))
				for pi, e := range list {
					part[pi] = search.Result{ID: e.ID, Score: e.Similarity}
				}
				mu.Lock()
				if gather.add(segID, part) {
					res.Queried++
					res.Epochs[s.id] = h.Epoch
					res.FailedOver += ri // legs burned before this one answered
				} else {
					r.cfg.Logger.Printf("router: duplicate answer for segment %s dropped", segID)
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			res.Partial = true
			res.Missing = append(res.Missing, segID)
			if firstFail == nil && len(errs) > 0 {
				firstFail = errs[0]
			}
			mu.Unlock()
			r.cfg.Logger.Printf("router: segment %s lost: no in-sync replica answered (%v)", segID, errors.Join(errs...))
		}(tuple)
	}
	wg.Wait()

	sort.Strings(res.Missing)
	if res.Queried == 0 {
		return nil, fmt.Errorf("%w: no segment answered (%d missing: %v; first: %v)",
			ErrUnavailable, len(res.Missing), res.Missing, firstFail)
	}
	res.Results = engine.MergeParts(gather.collect(), q.K)
	return res, nil
}

func detailSuffix(detail string) string {
	if detail == "" {
		return ""
	}
	return ": " + detail
}

// decodeJSONBody decodes exactly one JSON value and drains the rest
// of the body so the HTTP connection can be reused.
func decodeJSONBody(r io.Reader, v interface{}) error {
	if err := json.NewDecoder(r).Decode(v); err != nil {
		return err
	}
	_, err := io.Copy(io.Discard, r)
	return err
}
