package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"geofootprint/internal/engine"
	"geofootprint/internal/search"
)

// Query is the router's top-k request. Regions is kept as raw JSON
// and forwarded to every shard byte-for-byte: the router never
// re-encodes the query geometry, so the footprint every shard scores
// is bit-identical to the one a single node would have parsed from
// the same client body.
type Query struct {
	Regions json.RawMessage `json:"regions"`
	K       int             `json:"k"`
	Method  string          `json:"method,omitempty"`
}

// TopKResult is a merged cross-shard answer. When Partial is false,
// Results is byte-identical to the same query against a single node
// holding the union of all shards' users (the cluster equivalence
// suite proves this for all four methods). When Partial is true,
// Missing names every shard that was skipped (unhealthy) or failed
// (errors, deadline), and Results is exact over the remaining shards'
// users — correct for the corpus that answered, with the gap named,
// never silently wrong.
type TopKResult struct {
	Results []search.Result
	Partial bool
	Missing []string
	// Queried is how many shards contributed results.
	Queried int
	// Epochs records, per contributing shard, the epoch that was
	// serving at its last health probe — observability for "which
	// epoch answered", logged by the coordinator.
	Epochs map[string]uint64
}

// shardResultJSON mirrors the shard's /v1/query response entry.
type shardResultJSON struct {
	ID         int     `json:"id"`
	Similarity float64 `json:"similarity"`
}

// ErrBadQuery marks client-side validation failures (the coordinator
// maps it to 400); ErrUnavailable marks "no shard could answer" (503).
var (
	ErrBadQuery    = errors.New("bad query")
	ErrUnavailable = errors.New("no shard available")
)

// TopK scatter-gathers q to every serving shard and merges the
// per-shard partial top-k lists with engine.MergeParts. The context
// bounds the whole fan-out: legs that miss the deadline (including
// waiting at a full admission gate) are reported missing rather than
// stalling the merge.
func (r *Router) TopK(ctx context.Context, q Query) (*TopKResult, error) {
	if q.K < 1 || q.K > 1000 {
		return nil, fmt.Errorf("%w: k must be in [1,1000], got %d", ErrBadQuery, q.K)
	}
	if len(q.Regions) == 0 {
		return nil, fmt.Errorf("%w: query has no regions", ErrBadQuery)
	}
	body, err := json.Marshal(q) // regions pass through as raw bytes
	if err != nil {
		return nil, err
	}

	res := &TopKResult{Epochs: make(map[string]uint64)}
	parts := make([][]search.Result, len(r.shards))
	legErr := make([]error, len(r.shards))
	skipped := make([]bool, len(r.shards))

	var wg sync.WaitGroup
	for i, s := range r.shards {
		h := s.Health()
		if !h.serving() {
			skipped[i] = true
			legErr[i] = fmt.Errorf("shard %s %s%s", s.id, h.State, detailSuffix(h.Detail))
			continue
		}
		res.Epochs[s.id] = h.Epoch
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			legErr[i] = r.call(ctx, s,
				func(ctx context.Context) (*http.Request, error) {
					req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.addr+"/v1/query", bytes.NewReader(body))
					if err != nil {
						return nil, err
					}
					req.Header.Set("Content-Type", "application/json")
					return req, nil
				},
				func(_ int, rb io.Reader) error {
					var list []shardResultJSON
					if err := decodeJSONBody(rb, &list); err != nil {
						return err
					}
					part := make([]search.Result, len(list))
					for j, e := range list {
						part[j] = search.Result{ID: e.ID, Score: e.Similarity}
					}
					parts[i] = part
					return nil
				})
		}(i, s)
	}
	wg.Wait()

	var ok [][]search.Result
	for i, s := range r.shards {
		if legErr[i] != nil {
			res.Partial = true
			res.Missing = append(res.Missing, s.id)
			delete(res.Epochs, s.id)
			if !skipped[i] {
				r.cfg.Logger.Printf("router: topk leg to shard %s failed: %v", s.id, legErr[i])
			}
			continue
		}
		ok = append(ok, parts[i])
		res.Queried++
	}
	sort.Strings(res.Missing)
	if res.Queried == 0 {
		return nil, fmt.Errorf("%w: no shard answered (%d missing: %v; first: %v)",
			ErrUnavailable, len(res.Missing), res.Missing, firstErr(legErr))
	}
	res.Results = engine.MergeParts(ok, q.K)
	return res, nil
}

func detailSuffix(detail string) string {
	if detail == "" {
		return ""
	}
	return ": " + detail
}

func firstErr(errs []error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// decodeJSONBody decodes exactly one JSON value and drains the rest
// of the body so the HTTP connection can be reused.
func decodeJSONBody(r io.Reader, v interface{}) error {
	if err := json.NewDecoder(r).Decode(v); err != nil {
		return err
	}
	_, err := io.Copy(io.Discard, r)
	return err
}
