package router

// Network-chaos matrix: every netfault schedule, against every
// replication factor, must yield an answer that is either
// byte-identical to single-node LinearScan or an explicit
// partial:true naming the lost ring segments — never silently wrong,
// and never a poisoned breaker or acked-seq state afterwards.
// `make cluster-chaos` pins this suite under -race.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geofootprint/internal/breaker"
	"geofootprint/internal/core"
	"geofootprint/internal/engine"
	"geofootprint/internal/hashring"
	"geofootprint/internal/ingest"
	"geofootprint/internal/netfault"
	"geofootprint/internal/search"
	"geofootprint/internal/server"
	"geofootprint/internal/store"
)

// chaosCluster is a replicated in-process deployment with a
// fault-injecting transport between the router and its shards.
type chaosCluster struct {
	router *Router
	ring   *hashring.Ring
	ft     *netfault.Transport
	hosts  []string // URL.Host per shard index — netfault schedule keys
	R      int
}

// startReplicatedCluster splits (ids, fps) across n real shard
// servers by replica set — every shard holds each user whose replica
// tuple contains it — and fronts them with a router at replication
// factor R whose HTTP client runs through a netfault.Transport.
func startReplicatedCluster(t *testing.T, n, R int, ids []int, fps []core.Footprint, mut func(*Config)) *chaosCluster {
	t.Helper()
	pre := &hashring.Map{Version: hashring.MapVersion}
	for i := 0; i < n; i++ {
		pre.Shards = append(pre.Shards, hashring.Shard{
			ID: fmt.Sprintf("shard-%d", i), Addr: fmt.Sprintf("http://pre-%d", i),
		})
	}
	ring, err := hashring.NewRing(pre)
	if err != nil {
		t.Fatal(err)
	}
	subIDs := make([][]int, n)
	subFPs := make([][]core.Footprint, n)
	for j, id := range ids {
		for _, i := range ring.ReplicaIndices(id, R) {
			subIDs[i] = append(subIDs[i], id)
			subFPs[i] = append(subFPs[i], fps[j])
		}
	}

	c := &chaosCluster{ring: ring, ft: netfault.New(nil), R: R}
	live := &hashring.Map{Version: hashring.MapVersion}
	for i := 0; i < n; i++ {
		db, err := store.FromFootprints(fmt.Sprintf("shard-%d", i), subIDs[i], subFPs[i])
		if err != nil {
			t.Fatal(err)
		}
		srv := server.NewWithOptions(db, server.Options{ShardID: fmt.Sprintf("shard-%d", i)})
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		u, err := url.Parse(hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		c.hosts = append(c.hosts, u.Host)
		live.Shards = append(live.Shards, hashring.Shard{ID: fmt.Sprintf("shard-%d", i), Addr: hs.URL})
	}
	cfg := Config{
		Map:            live,
		Replicas:       R,
		HealthInterval: -1,
		RequestTimeout: 150 * time.Millisecond,
		MaxAttempts:    2,
		RetryBase:      time.Millisecond,
		RetryCap:       5 * time.Millisecond,
		Client:         &http.Client{Transport: c.ft},
		Logger:         log.New(io.Discard, "", 0),
		Breaker:        breaker.Config{Window: 4, MinSamples: 2, OpenFor: 50 * time.Millisecond},
	}
	if mut != nil {
		mut(&cfg)
	}
	c.router, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.router.Close)
	c.router.CheckHealth(context.Background())
	return c
}

// oracleFor builds the LinearScan oracle over the users NOT in the
// lost segments — the exact corpus a correct partial answer covers.
// It also verifies every missing entry names a real ring segment.
func (c *chaosCluster) oracleFor(t *testing.T, ids []int, fps []core.Footprint, missing []string) *search.LinearScan {
	t.Helper()
	valid := map[string]bool{}
	for _, tuple := range c.ring.Segments(c.R) {
		valid[c.ring.SegmentID(tuple)] = true
	}
	lost := map[string]bool{}
	for _, m := range missing {
		if !valid[m] {
			t.Fatalf("missing entry %q is not a ring segment (have %v)", m, valid)
		}
		lost[m] = true
	}
	var restIDs []int
	var restFPs []core.Footprint
	for j, id := range ids {
		seg := c.ring.SegmentID(c.ring.ReplicaIndices(id, c.R))
		if !lost[seg] {
			restIDs = append(restIDs, id)
			restFPs = append(restFPs, fps[j])
		}
	}
	rest, err := store.FromFootprints("rest", restIDs, restFPs)
	if err != nil {
		t.Fatal(err)
	}
	return search.NewLinearScan(rest)
}

// TestClusterChaosMatrix drives every fault schedule against every
// replication factor over 4 loopback shards. The invariant checked on
// every cell: a complete answer is byte-identical to full LinearScan;
// a partial answer names lost ring segments and is byte-identical to
// LinearScan over the surviving segments' users. After the faults
// clear, one health round plus one breaker period fully restores
// exact complete answers — no poisoned breaker or seq state.
func TestClusterChaosMatrix(t *testing.T) {
	ids, fps := clusterCorpus(t)
	union, err := store.FromFootprints("union", ids, fps)
	if err != nil {
		t.Fatal(err)
	}
	fullOracle := search.NewLinearScan(union)
	qf := parseRegions(t, testRegions)

	// complete(R, qi) says whether query number qi (0-based) against
	// replication factor R must come back complete; when false it may
	// be partial, and either way it must be exact for what it covers.
	cases := []struct {
		name     string
		sched    netfault.Schedule
		complete func(R, qi int) bool
	}{
		// The 1st request fails, the in-call retry's 2nd succeeds: no
		// failover needed, complete at every R.
		{"fail-request-retried", netfault.Schedule{FailRequestN: 1},
			func(R, qi int) bool { return true }},
		// The shard is down and stays down: only replication saves the
		// segments it leads.
		{"fail-from-crash", netfault.Schedule{FailFromN: 1},
			func(R, qi int) bool { return R >= 2 }},
		// Every request to the shard exceeds the 150ms attempt
		// deadline: same failure budget as a crash, paid in time.
		{"latency-past-deadline", netfault.Schedule{Latency: 400 * time.Millisecond},
			func(R, qi int) bool { return R >= 2 }},
		// Partition after the first completed request: query 0 slips
		// through, everything after hangs until the deadline.
		{"blackhole-after-1", netfault.Schedule{BlackholeAfterK: 1},
			func(R, qi int) bool { return R >= 2 || qi == 0 }},
		// The 1st response body is truncated mid-stream: the decoder
		// must fail loudly and the retry's clean body must win.
		{"cut-body-retried", netfault.Schedule{CutBodyN: 1},
			func(R, qi int) bool { return true }},
	}

	for _, R := range []int{1, 2, 3} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("R=%d/%s", R, tc.name), func(t *testing.T) {
				c := startReplicatedCluster(t, 4, R, ids, fps, nil)
				faulted := c.hosts[1] // shard-1 takes the fault
				c.ft.Set(faulted, tc.sched)

				for qi, k := range []int{5, 50} {
					res, err := c.router.TopK(context.Background(), Query{
						Regions: json.RawMessage(testRegions), K: k,
					})
					if err != nil {
						t.Fatalf("q%d k=%d: %v", qi, k, err)
					}
					if tc.complete(R, qi) {
						if res.Partial {
							t.Fatalf("q%d k=%d: partial (missing %v) where the failure budget covers the fault", qi, k, res.Missing)
						}
						assertSame(t, fmt.Sprintf("q%d k=%d complete", qi, k), res.Results, fullOracle.TopK(qf, k))
						continue
					}
					// Outside the budget: partial is allowed, silence is
					// not — whatever answered must be exact and the gap
					// must name real segments.
					if res.Partial {
						if len(res.Missing) == 0 {
							t.Fatalf("q%d k=%d: partial with no missing segments", qi, k)
						}
						oracle := c.oracleFor(t, ids, fps, res.Missing)
						assertSame(t, fmt.Sprintf("q%d k=%d partial", qi, k), res.Results, oracle.TopK(qf, k))
					} else {
						assertSame(t, fmt.Sprintf("q%d k=%d complete", qi, k), res.Results, fullOracle.TopK(qf, k))
					}
				}
				if len(c.ft.Fired()) == 0 {
					t.Fatalf("schedule %s never fired — the matrix cell tested nothing", tc.name)
				}

				// Recovery: clear the fault, one health round, one
				// breaker period. The next answer must be complete and
				// exact — a tripped breaker half-opens and heals, it
				// does not stay poisoned.
				c.ft.Clear(faulted)
				c.router.CheckHealth(context.Background())
				time.Sleep(60 * time.Millisecond) // > Breaker.OpenFor
				res, err := c.router.TopK(context.Background(), Query{
					Regions: json.RawMessage(testRegions), K: 50,
				})
				if err != nil {
					t.Fatalf("recovery: %v", err)
				}
				if res.Partial {
					t.Fatalf("recovery still partial: missing %v", res.Missing)
				}
				assertSame(t, "recovery k=50", res.Results, fullOracle.TopK(qf, 50))
			})
		}
	}
}

// TestClusterFailoverAllMethods is the replication acceptance bar:
// with R=2 over 4 shards and ANY single shard hard-down, all five
// search methods at k ∈ {1,5,50} return complete answers
// byte-identical to single-node LinearScan.
func TestClusterFailoverAllMethods(t *testing.T) {
	ids, fps := clusterCorpus(t)
	union, err := store.FromFootprints("union", ids, fps)
	if err != nil {
		t.Fatal(err)
	}
	fullOracle := search.NewLinearScan(union)
	qf := parseRegions(t, testRegions)

	for down := 0; down < 4; down++ {
		t.Run(fmt.Sprintf("down=shard-%d", down), func(t *testing.T) {
			c := startReplicatedCluster(t, 4, 2, ids, fps, nil)
			c.ft.Set(c.hosts[down], netfault.Schedule{FailFromN: 1})
			c.router.CheckHealth(context.Background()) // sees the crash

			for _, method := range []string{"user-centric", "linear", "iterative", "batch", "sketch"} {
				for _, k := range []int{1, 5, 50} {
					res, err := c.router.TopK(context.Background(), Query{
						Regions: json.RawMessage(testRegions), K: k, Method: method,
					})
					if err != nil {
						t.Fatalf("%s k=%d: %v", method, k, err)
					}
					if res.Partial {
						t.Fatalf("%s k=%d: partial (missing %v) with R=2 and one shard down", method, k, res.Missing)
					}
					assertSame(t, fmt.Sprintf("%s k=%d", method, k), res.Results, fullOracle.TopK(qf, k))
				}
			}
		})
	}
}

// fakeReplicaShards builds two programmable fake shards for the
// stale-tracking and breaker tests: healthz reports a settable
// ingest_seq, ingest acks from a per-shard LSN counter unless failing
// is set, and query counts hits.
type fakeReplicaShard struct {
	id         string
	healthSeq  atomic.Uint64 // ingest_seq reported by /healthz
	lsn        atomic.Uint64 // LSN counter for ingest acks
	failIngest atomic.Bool
	failQuery  atomic.Bool
	queryHits  atomic.Int64
	ingestHits atomic.Int64
}

func startFakeReplicaPair(t *testing.T, mut func(*Config)) (*Router, [2]*fakeReplicaShard) {
	t.Helper()
	m := &hashring.Map{Version: hashring.MapVersion}
	var fakes [2]*fakeReplicaShard
	for i := 0; i < 2; i++ {
		f := &fakeReplicaShard{id: fmt.Sprintf("shard-%d", i)}
		fakes[i] = f
		mux := http.NewServeMux()
		mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(map[string]interface{}{
				"status": "ok", "shard_id": f.id, "epoch_seq": 1,
				"ingest_seq": f.healthSeq.Load(),
			})
		})
		mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
			f.ingestHits.Add(1)
			if f.failIngest.Load() {
				http.Error(w, "injected ingest failure", http.StatusServiceUnavailable)
				return
			}
			samples, err := ingest.ParseNDJSON(r.Body, 10000)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			lsn := f.lsn.Add(1)
			f.healthSeq.Store(lsn)
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]interface{}{"lsn": lsn, "samples": len(samples)})
		})
		mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
			f.queryHits.Add(1)
			if f.failQuery.Load() {
				http.Error(w, "injected query failure", http.StatusInternalServerError)
				return
			}
			io.WriteString(w, "[]")
		})
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		m.Shards = append(m.Shards, hashring.Shard{ID: f.id, Addr: srv.URL})
	}
	cfg := Config{
		Map:            m,
		Replicas:       2,
		HealthInterval: -1,
		RequestTimeout: time.Second,
		MaxAttempts:    1,
		RetryBase:      time.Millisecond,
		RetryCap:       5 * time.Millisecond,
		Logger:         quietLogger(),
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	r.CheckHealth(context.Background())
	return r, fakes
}

func chaosSamples(n int) []ingest.Sample {
	var out []ingest.Sample
	for u := 1; u <= n; u++ {
		out = append(out, ingest.Sample{User: u, X: 0.1, Y: 0.2, T: float64(u)})
	}
	return out
}

func staleShards(r *Router) []string {
	var out []string
	for _, h := range r.Shards() {
		if h.Stale {
			out = append(out, h.ID)
		}
	}
	return out
}

// TestClusterChaosStaleReplica pins the acked-seq / hinted-handoff
// machinery end to end: a replica that misses an acked write is
// excluded from reads (not an error), hint redelivery heals it, and a
// seq regression on /healthz re-marks it stale until it catches up.
func TestClusterChaosStaleReplica(t *testing.T) {
	r, fakes := startFakeReplicaPair(t, nil)

	// Phase 1: shard-1 misses writes a sibling acked. The batch is
	// durable, so this is a success with hinting, not an error.
	fakes[1].failIngest.Store(true)
	res, err := r.RouteIngest(context.Background(), chaosSamples(40))
	if err != nil {
		t.Fatalf("partial replica failure must not fail the batch: %v", err)
	}
	if len(res.Hinted) != 1 || res.Hinted[0] != "shard-1" {
		t.Fatalf("hinted = %v, want [shard-1]", res.Hinted)
	}
	if _, acked := res.Shards["shard-0"]; !acked {
		t.Fatalf("durable sibling missing from acks: %v", res.Shards)
	}
	if got := staleShards(r); len(got) != 1 || got[0] != "shard-1" {
		t.Fatalf("stale shards = %v, want [shard-1]", got)
	}

	// Reads exclude the stale replica: every segment fails over to
	// shard-0, no partials, zero queries reach shard-1.
	before := fakes[1].queryHits.Load()
	qres, err := r.TopK(context.Background(), testQuery(5))
	if err != nil || qres.Partial {
		t.Fatalf("failover around stale replica: res=%+v err=%v", qres, err)
	}
	if fakes[1].queryHits.Load() != before {
		t.Fatal("a query reached the stale replica")
	}

	// Phase 2: redelivery drains the hints and clears the staleness.
	fakes[1].failIngest.Store(false)
	if n := r.RedeliverHints(context.Background()); n == 0 {
		t.Fatal("no hints redelivered")
	}
	if got := staleShards(r); len(got) != 0 {
		t.Fatalf("stale after redelivery: %v", got)
	}
	before = fakes[1].queryHits.Load()
	if _, err := r.TopK(context.Background(), testQuery(5)); err != nil {
		t.Fatal(err)
	}
	if fakes[1].queryHits.Load() == before {
		t.Fatal("healed replica still excluded from reads")
	}

	// Phase 3: the shard restarts onto an older snapshot — /healthz
	// reports a lower ingest_seq than the LSNs it acked. Stale again,
	// and reads skip it, until the seq catches back up.
	goodSeq := fakes[1].healthSeq.Load()
	fakes[1].healthSeq.Store(0)
	r.CheckHealth(context.Background())
	if got := staleShards(r); len(got) != 1 || got[0] != "shard-1" {
		t.Fatalf("seq regression not detected: stale=%v", got)
	}
	before = fakes[1].queryHits.Load()
	if qres, err = r.TopK(context.Background(), testQuery(5)); err != nil || qres.Partial {
		t.Fatalf("failover around regressed replica: res=%+v err=%v", qres, err)
	}
	if fakes[1].queryHits.Load() != before {
		t.Fatal("a query reached the regressed replica")
	}
	fakes[1].healthSeq.Store(goodSeq)
	r.CheckHealth(context.Background())
	if got := staleShards(r); len(got) != 0 {
		t.Fatalf("stale after seq caught up: %v", got)
	}
}

// TestClusterChaosIngestAllReplicasDown: a sub-batch no replica can
// make durable is an explicit *IngestError — replication widens the
// failure budget, it never silently drops writes.
func TestClusterChaosIngestAllReplicasDown(t *testing.T) {
	r, fakes := startFakeReplicaPair(t, nil)
	fakes[0].failIngest.Store(true)
	fakes[1].failIngest.Store(true)
	_, err := r.RouteIngest(context.Background(), chaosSamples(10))
	ierr, ok := err.(*IngestError)
	if !ok {
		t.Fatalf("err = %v (%T), want *IngestError", err, err)
	}
	if len(ierr.Failed) == 0 {
		t.Fatalf("no failed shards named: %+v", ierr)
	}
}

// TestClusterChaosBreakerOneRTT pins the breaker's cost model: a
// still-dead shard is paid for exactly MinSamples times, then every
// later query skips it instantly and fails over — complete answers
// throughout, no per-query timeout burn.
func TestClusterChaosBreakerOneRTT(t *testing.T) {
	r, fakes := startFakeReplicaPair(t, func(c *Config) {
		c.Breaker = breaker.Config{Window: 4, MinSamples: 2, OpenFor: time.Hour}
	})
	fakes[1].failQuery.Store(true)

	for qi := 0; qi < 10; qi++ {
		res, err := r.TopK(context.Background(), testQuery(5))
		if err != nil || res.Partial {
			t.Fatalf("q%d: failover must keep answers complete: res=%+v err=%v", qi, res, err)
		}
	}
	// MinSamples=2 failures trip the breaker; with OpenFor an hour no
	// half-open probe fires, so the dead shard saw exactly 2 queries.
	if hits := fakes[1].queryHits.Load(); hits != 2 {
		t.Fatalf("dead shard absorbed %d queries, want exactly 2 (breaker did not clamp)", hits)
	}
	for _, h := range r.Shards() {
		if h.ID == "shard-1" && h.Breaker != "open" {
			t.Fatalf("shard-1 breaker = %q, want open", h.Breaker)
		}
	}
}

// TestMergeReplicaChaosIdempotent is the property test for the
// duplicate-segment guard: merging the same ring segment from two
// in-sync replicas must be idempotent. The guard drops the second
// arrival; without it, engine.MergeParts (no ID dedup, by design)
// would double-count every user in the segment.
func TestMergeReplicaChaosIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		perm := rng.Perm(1000)[:n]
		part := make([]search.Result, n)
		for i, id := range perm {
			part[i] = search.Result{ID: id, Score: rng.Float64()}
		}
		// Canonical shard answer order: score desc, ID asc.
		sort.Slice(part, func(i, j int) bool {
			if part[i].Score != part[j].Score {
				return part[i].Score > part[j].Score
			}
			return part[i].ID < part[j].ID
		})
		replicaA := append([]search.Result(nil), part...)
		replicaB := append([]search.Result(nil), part...)
		k := 1 + rng.Intn(25)

		g := newSegGather()
		if !g.add("seg-0", replicaA) {
			t.Fatal("first arrival refused")
		}
		if g.add("seg-0", replicaB) {
			t.Fatal("duplicate segment accepted")
		}
		merged := engine.MergeParts(g.collect(), k)
		want := engine.MergeParts([][]search.Result{part}, k)
		if len(merged) != len(want) {
			t.Fatalf("trial %d: guarded merge len %d != %d", trial, len(merged), len(want))
		}
		for i := range merged {
			if merged[i] != want[i] {
				t.Fatalf("trial %d: guarded merge diverged at %d: %+v != %+v", trial, i, merged[i], want[i])
			}
		}

		// The hazard the guard prevents, demonstrated: an unguarded
		// double-merge of the same segment duplicates the best user.
		if k >= 2 {
			unguarded := engine.MergeParts([][]search.Result{replicaA, replicaB}, k)
			if len(unguarded) >= 2 && unguarded[0].ID != unguarded[1].ID {
				t.Fatalf("trial %d: expected the unguarded merge to double-count (got %+v)", trial, unguarded[:2])
			}
		}
	}
}

// TestClusterChaosDuplicateSegmentLogged: the router-side guard also
// has to hold under real concurrency — two replicas answering the
// same segment (a race the failover loop itself can't produce, but a
// retried-then-healed network can) must merge to one copy.
func TestClusterChaosDuplicateSegmentLogged(t *testing.T) {
	g := newSegGather()
	part := []search.Result{{ID: 1, Score: 0.9}, {ID: 2, Score: 0.5}}
	done := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() { done <- g.add("seg", part) }()
	}
	a, b := <-done, <-done
	if a == b {
		t.Fatalf("concurrent adds both returned %v, want exactly one accepted", a)
	}
	merged := engine.MergeParts(g.collect(), 10)
	if len(merged) != 2 {
		t.Fatalf("merged %d results, want 2 (duplicate survived)", len(merged))
	}
}

// TestClusterChaosPartialNamesSegments pins the wire vocabulary: with
// R=2 and BOTH replicas of a segment down, the missing list names the
// segment as "id+id" tuples, and a client summing user coverage can
// tell exactly which users the answer excludes.
func TestClusterChaosPartialNamesSegments(t *testing.T) {
	ids, fps := clusterCorpus(t)
	c := startReplicatedCluster(t, 4, 2, ids, fps, nil)
	// Kill two shards: any segment whose tuple is a subset of the dead
	// pair has no live replica left.
	c.ft.Set(c.hosts[1], netfault.Schedule{FailFromN: 1})
	c.ft.Set(c.hosts[2], netfault.Schedule{FailFromN: 1})
	c.router.CheckHealth(context.Background())

	res, err := c.router.TopK(context.Background(), Query{
		Regions: json.RawMessage(testRegions), K: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || len(res.Missing) == 0 {
		t.Fatalf("two dead shards with R=2: want explicit partial, got %+v", res)
	}
	for _, m := range res.Missing {
		if !strings.Contains(m, "+") {
			t.Fatalf("missing entry %q is not a replica-tuple segment ID", m)
		}
		for _, part := range strings.Split(m, "+") {
			if part != "shard-1" && part != "shard-2" {
				t.Fatalf("lost segment %q includes live shard %q", m, part)
			}
		}
	}
	qf := parseRegions(t, testRegions)
	oracle := c.oracleFor(t, ids, fps, res.Missing)
	assertSame(t, "two-dead partial", res.Results, oracle.TopK(qf, 50))
}
