// Package router is the coordination layer of the distributed serving
// plane: it composes N geoserve shards — each holding a user-disjoint
// slice of the corpus (internal/hashring) — into one service with the
// same observable behaviour as a single node on the union dataset.
//
// The two data paths:
//
//   - Ingest (ingest.go): a sample batch is partitioned by each
//     sample's owning shard and forwarded to the owners, preserving
//     per-shard WAL durability semantics (202 means the owning
//     shard's WAL has the records).
//   - Top-k (topk.go): the query fans out to every healthy shard,
//     each shard answers its local top-k over its own users, and the
//     partials merge through engine.MergeParts — the same
//     deterministic (score desc, ID asc) reduction the engine uses
//     for per-worker heaps, so the cross-shard result is
//     byte-identical to a single-node run (proven by the cluster
//     equivalence suite).
//
// Failure is explicit, never silent: the router polls each shard's
// /healthz on an interval; shards that are degraded (sealed WAL,
// corrupt snapshot), draining, unreachable, or misconfigured (the
// reported shard_id contradicts the shard map) are skipped, and every
// affected response carries partial:true plus the missing shard IDs.
// A partial top-k is exactly LinearScan over the remaining shards'
// users — correct for the corpus that answered, with the gap named.
//
// The per-shard client applies a request deadline, bounded retries
// with Retry-After-aware decorrelated-jitter backoff
// (internal/retry — the policy geofeed uses), and a per-shard
// admission gate, so one slow shard can neither stall the fan-out
// past the query deadline nor absorb unbounded concurrent requests.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"geofootprint/internal/breaker"
	"geofootprint/internal/hashring"
	"geofootprint/internal/retry"
)

// Config configures a Router. Zero values select the documented
// defaults.
type Config struct {
	// Map is the validated cluster topology (required).
	Map *hashring.Map
	// RequestTimeout bounds each HTTP attempt to a shard. The
	// caller's context still caps the whole operation. 0 selects 2s.
	RequestTimeout time.Duration
	// MaxAttempts bounds tries per shard request (1 = no retries).
	// 0 selects 3.
	MaxAttempts int
	// RetryBase/RetryCap parameterise the decorrelated-jitter backoff
	// between attempts. 0 selects 25ms / 1s.
	RetryBase, RetryCap time.Duration
	// MaxInflightPerShard caps concurrent in-flight requests per
	// shard; excess fan-out legs wait for a slot or time out with the
	// query deadline. 0 selects 64; < 0 disables the gate.
	MaxInflightPerShard int
	// HealthInterval is the /healthz polling period. 0 selects 2s;
	// < 0 disables the background monitor (tests drive CheckHealth
	// explicitly).
	HealthInterval time.Duration
	// Client is the HTTP client for shard requests; nil selects a
	// default with sane connection pooling. Per-attempt deadlines come
	// from RequestTimeout via context, so Client.Timeout stays 0.
	Client *http.Client
	// Logger receives health transitions and fan-out failures; nil
	// selects log.Default().
	Logger *log.Logger
	// Replicas is the replication factor R: every user is placed on R
	// consecutive ring shards, ingest writes to all of them, and top-k
	// reads fail over across them (replica.go). 0 selects 1 — no
	// replication, the PR-8 behaviour. Values above the shard count
	// clamp to it.
	Replicas int
	// Breaker parameterises the per-shard circuit breakers that skip
	// known-dead shards without burning a timeout. The zero value
	// selects the breaker package defaults.
	Breaker breaker.Config
	// DisableBreaker turns the circuit breakers off: every fan-out leg
	// is attempted even against a shard that just failed.
	DisableBreaker bool
	// MaxHintBytes caps each shard's hinted-handoff queue — NDJSON
	// sub-batches a replica missed while its siblings acked, held for
	// redelivery by the health loop. 0 selects 1 MiB; < 0 disables
	// hinting (a replica that misses a write stays stale until
	// re-ingestion catches it up).
	MaxHintBytes int
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = time.Second
	}
	if c.MaxInflightPerShard == 0 {
		c.MaxInflightPerShard = 64
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.MaxHintBytes == 0 {
		c.MaxHintBytes = 1 << 20
	}
	return c
}

// Health states a shard can be in, as decided by the monitor.
const (
	// StateUnknown: never successfully probed yet. Shards start here
	// and are treated as serving (optimistically) until a probe fails
	// — a router restart must not flip the whole cluster to partial.
	StateUnknown = "unknown"
	// StateOK: the shard answered /healthz with status "ok".
	StateOK = "ok"
	// StateDegraded: the shard answered but reported itself degraded
	// (sealed WAL, corrupt snapshot). It would answer queries, but
	// its corpus can be behind acknowledged writes — skipped, named.
	StateDegraded = "degraded"
	// StateDraining: the shard is shutting down; its load balancer
	// story is "go away", and the router respects it.
	StateDraining = "draining"
	// StateUnreachable: transport error or non-200 from /healthz.
	StateUnreachable = "unreachable"
	// StateMisconfigured: the shard answered with a shard_id that
	// contradicts the map (wrong process at the address, or two map
	// entries claiming one ID). Routing to it would merge the wrong
	// users' scores — never trusted.
	StateMisconfigured = "misconfigured"
)

// ShardHealth is one shard's last observed state.
type ShardHealth struct {
	ID     string `json:"id"`
	Addr   string `json:"addr"`
	State  string `json:"state"`
	Epoch  uint64 `json:"epoch,omitempty"` // epoch_seq from the shard's last good probe
	Users  int    `json:"users,omitempty"`
	Detail string `json:"detail,omitempty"` // error text for bad states
	// IngestSeq is the shard's last durable WAL LSN (ingest_seq from
	// its last good probe); Stale marks a replica excluded from reads
	// because it missed acked writes or its seq regressed (replica.go).
	IngestSeq uint64 `json:"ingest_seq,omitempty"`
	Stale     bool   `json:"stale,omitempty"`
	// Breaker is the shard's circuit-breaker state ("closed", "open",
	// "half-open"), empty when breakers are disabled.
	Breaker string `json:"breaker,omitempty"`
}

// serving reports whether query fan-out may use the shard.
func (h ShardHealth) serving() bool {
	return h.State == StateOK || h.State == StateUnknown
}

// shard is the router's per-shard runtime state: identity, admission
// gate, the monitor's last verdict, the circuit breaker, and the
// replica ingest-tracking state (replica.go).
type shard struct {
	id     string
	addr   string
	gate   chan struct{} // nil when the gate is disabled
	health atomic.Value  // ShardHealth

	brk *breaker.Breaker // nil when Config.DisableBreaker

	// Replica state, guarded by rmu: the high-water mark of LSNs this
	// shard acknowledged, the seq-regression flag from health probes,
	// and the hinted-handoff queue of missed ingest sub-batches.
	rmu       sync.Mutex
	ackedSeq  uint64
	regressed bool
	staleWhy  string
	hints     [][]byte
	hintBytes int
}

func (s *shard) Health() ShardHealth { return s.health.Load().(ShardHealth) }

// Router owns the ring, the per-shard clients, and the health
// monitor. Safe for concurrent use.
type Router struct {
	cfg    Config
	ring   *hashring.Ring
	shards []*shard // index-aligned with ring.Shards()

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// New builds a router over the shard map and, unless
// cfg.HealthInterval < 0, starts the background health monitor after
// one synchronous probe round (so the first query already sees real
// states, not optimism).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Map == nil {
		return nil, errors.New("router: Config.Map is required")
	}
	ring, err := hashring.NewRing(cfg.Map)
	if err != nil {
		return nil, err
	}
	r := &Router{
		cfg:  cfg,
		ring: ring,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if n := len(ring.Shards()); r.cfg.Replicas > n {
		r.cfg.Replicas = n
	}
	for _, s := range ring.Shards() {
		sh := &shard{id: s.ID, addr: s.Addr}
		if cfg.MaxInflightPerShard > 0 {
			sh.gate = make(chan struct{}, cfg.MaxInflightPerShard)
		}
		if !cfg.DisableBreaker {
			sh.brk = breaker.New(cfg.Breaker)
		}
		sh.health.Store(ShardHealth{ID: s.ID, Addr: s.Addr, State: StateUnknown})
		r.shards = append(r.shards, sh)
	}
	if cfg.HealthInterval > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.RequestTimeout)
		r.CheckHealth(ctx)
		cancel()
		go r.monitor()
	} else {
		close(r.done)
	}
	return r, nil
}

// Close stops the health monitor. It does not wait for in-flight
// fan-outs (their contexts bound them).
func (r *Router) Close() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

// Shards returns the current health of every shard, in map order.
// Stale and Breaker are sampled live (they can change between health
// rounds, on every routed ingest or query).
func (r *Router) Shards() []ShardHealth {
	out := make([]ShardHealth, len(r.shards))
	for i, s := range r.shards {
		out[i] = s.Health()
		_, out[i].Stale = s.syncState()
		if s.brk != nil {
			out[i].Breaker = s.brk.State().String()
		}
	}
	return out
}

// Ring exposes the ring (the bench harness splits corpora with it).
func (r *Router) Ring() *hashring.Ring { return r.ring }

func (r *Router) monitor() {
	defer close(r.done)
	// Probe intervals are jittered with the same decorrelated-jitter
	// policy the retry path uses (internal/retry): a fleet of routers
	// started together must not thunder-herd every shard's /healthz on
	// one synchronized beat. Each round sleeps a uniform draw from
	// [interval/2, 2*interval] instead of a fixed tick.
	bo := retry.New(r.cfg.HealthInterval/2, 2*r.cfg.HealthInterval, nil)
	t := time.NewTimer(bo.Next(""))
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), r.cfg.RequestTimeout)
			r.CheckHealth(ctx)
			// Hint redelivery piggybacks on the health beat: a replica
			// that missed writes gets them replayed as soon as it is
			// reachable again, and clears its stale flag when the queue
			// drains.
			r.RedeliverHints(ctx)
			cancel()
			t.Reset(bo.Next(""))
		}
	}
}

// healthzJSON is the slice of the shard's /healthz body the router
// reads. Unknown fields are ignored — the shard exposes much more.
type healthzJSON struct {
	Status    string `json:"status"`
	ShardID   string `json:"shard_id"`
	EpochSeq  uint64 `json:"epoch_seq"`
	IngestSeq uint64 `json:"ingest_seq"`
	Users     int    `json:"users"`
}

// CheckHealth probes every shard's /healthz once, concurrently, and
// updates the routing states. Called by the background monitor on its
// interval, and synchronously by New (and tests).
func (r *Router) CheckHealth(ctx context.Context) {
	bodies := make([]healthzJSON, len(r.shards))
	errs := make([]error, len(r.shards))
	var wg sync.WaitGroup
	for i, s := range r.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			bodies[i], errs[i] = r.probe(ctx, s)
		}(i, s)
	}
	wg.Wait()

	// Cross-check reported IDs across the whole round before deciding
	// states: two addresses answering with the same shard_id is a
	// map misconfiguration that no single probe can see.
	claimed := make(map[string][]int)
	for i := range r.shards {
		if errs[i] == nil && bodies[i].ShardID != "" {
			claimed[bodies[i].ShardID] = append(claimed[bodies[i].ShardID], i)
		}
	}
	for i, s := range r.shards {
		prev := s.Health()
		next := ShardHealth{ID: s.id, Addr: s.addr}
		switch {
		case errs[i] != nil:
			next.State = StateUnreachable
			next.Detail = errs[i].Error()
		case bodies[i].ShardID != "" && bodies[i].ShardID != s.id:
			next.State = StateMisconfigured
			next.Detail = fmt.Sprintf("shard map says %q, instance answered as %q", s.id, bodies[i].ShardID)
		case bodies[i].ShardID != "" && len(claimed[bodies[i].ShardID]) > 1:
			next.State = StateMisconfigured
			next.Detail = fmt.Sprintf("shard id %q claimed by %d map entries", bodies[i].ShardID, len(claimed[bodies[i].ShardID]))
		case bodies[i].Status == "draining":
			next.State = StateDraining
		case bodies[i].Status == "degraded":
			next.State = StateDegraded
		case bodies[i].Status == "ok":
			next.State = StateOK
		default:
			next.State = StateUnreachable
			next.Detail = fmt.Sprintf("unexpected /healthz status %q", bodies[i].Status)
		}
		if errs[i] == nil {
			next.Epoch = bodies[i].EpochSeq
			next.Users = bodies[i].Users
			next.IngestSeq = bodies[i].IngestSeq
			// A shard reporting a lower durable seq than the LSNs it
			// already acknowledged lost writes (restarted onto an older
			// snapshot): stale for reads until it catches back up.
			s.noteProbeSeq(bodies[i].IngestSeq)
		}
		s.health.Store(next)
		if next.State != prev.State {
			r.cfg.Logger.Printf("router: shard %s (%s): %s -> %s %s",
				s.id, s.addr, prev.State, next.State, next.Detail)
		} else if next.State == StateOK && next.Epoch != prev.Epoch {
			r.cfg.Logger.Printf("router: shard %s now serving epoch %d", s.id, next.Epoch)
		}
	}
}

// maxHealthzBody bounds how much of a /healthz response the router
// will read: a misbehaving (or misrouted) endpoint streaming an
// unbounded body must not pin router memory for a probe.
const maxHealthzBody = 1 << 20

func (r *Router) probe(ctx context.Context, s *shard) (healthzJSON, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.addr+"/healthz", nil)
	if err != nil {
		return healthzJSON{}, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return healthzJSON{}, err
	}
	// Drain (bounded) then close on every exit path — including decode
	// failures — so the keep-alive connection returns to the pool
	// instead of being torn down under an unread body. Probes run every
	// interval forever; leaking a connection per failed decode would
	// bleed the pool dry.
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxHealthzBody))
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return healthzJSON{}, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	var h healthzJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxHealthzBody)).Decode(&h); err != nil {
		return healthzJSON{}, fmt.Errorf("healthz body: %w", err)
	}
	return h, nil
}

// acquire takes an admission-gate slot on s, waiting no longer than
// the context allows. Returns a release func, or an error when the
// gate stayed full past the deadline — the "one slow shard" case: the
// leg is abandoned and reported missing instead of queueing without
// bound.
func (s *shard) acquire(ctx context.Context) (func(), error) {
	if s.gate == nil {
		return func() {}, nil
	}
	select {
	case s.gate <- struct{}{}:
		return func() { <-s.gate }, nil
	default:
	}
	select {
	case s.gate <- struct{}{}:
		return func() { <-s.gate }, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("admission gate full: %w", ctx.Err())
	}
}

// retryable reports whether a shard response status is worth another
// attempt: backpressure (429), unavailability (503, during drain or
// restart), and gateway-ish transients (502, 504).
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// call performs one shard request with the full client policy:
// admission gate, per-attempt deadline, bounded retries with
// Retry-After-aware decorrelated-jitter backoff. do builds a fresh
// request per attempt (bodies are consumed); handle consumes a 2xx
// response body. Any other outcome becomes an error after the
// attempts are exhausted or the context expires.
func (r *Router) call(ctx context.Context, s *shard, build func(ctx context.Context) (*http.Request, error), handle func(status int, body io.Reader) error) error {
	release, err := s.acquire(ctx)
	if err != nil {
		return err
	}
	defer release()
	bo := retry.New(r.cfg.RetryBase, r.cfg.RetryCap, nil)
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, bo.Next(lastRetryAfter(lastErr))); err != nil {
				return fmt.Errorf("%w (last error: %v)", err, lastErr)
			}
		}
		attemptCtx, cancel := context.WithTimeout(ctx, r.cfg.RequestTimeout)
		err := r.attempt(attemptCtx, s, build, handle)
		cancel()
		if err == nil {
			return nil
		}
		lastErr = err
		var se *StatusError
		if errors.As(err, &se) && !retryable(se.Status) {
			return err // 4xx/5xx that retrying cannot fix
		}
		if ctx.Err() != nil {
			return fmt.Errorf("%w (last error: %v)", ctx.Err(), lastErr)
		}
	}
	return fmt.Errorf("%d attempts failed: %w", r.cfg.MaxAttempts, lastErr)
}

func (r *Router) attempt(ctx context.Context, s *shard, build func(ctx context.Context) (*http.Request, error), handle func(status int, body io.Reader) error) error {
	req, err := build(ctx)
	if err != nil {
		return err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close() // response body fully consumed by handle or discarded
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return &StatusError{
			Status:     resp.StatusCode,
			RetryAfter: resp.Header.Get("Retry-After"),
			Body:       string(msg),
		}
	}
	return handle(resp.StatusCode, resp.Body)
}

// StatusError is a non-2xx shard response.
type StatusError struct {
	Status     int
	RetryAfter string
	Body       string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("shard status %d: %s", e.Status, e.Body)
}

// lastRetryAfter extracts the Retry-After hint from the previous
// attempt's error, so the backoff can honour the shard's own horizon.
func lastRetryAfter(err error) string {
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return ""
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
