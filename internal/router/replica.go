// Replica bookkeeping: the router-side state that makes R > 1 safe.
//
// Replication is only as good as the router's knowledge of which
// replicas actually hold the acked writes. Three mechanisms keep that
// knowledge honest:
//
//   - Acked-seq tracking: every /v1/ingest ack advances the shard's
//     ackedSeq high-water mark. A later health probe reporting a
//     LOWER ingest_seq means the shard restarted onto an older
//     snapshot and silently lost acked writes — it is marked stale
//     and excluded from reads until its seq catches back up.
//   - Hinted handoff: when a replica's ingest leg fails while a
//     sibling acked the same sub-batch, the batch is not lost and not
//     an error — it is queued (bounded by Config.MaxHintBytes) as a
//     hint against the failed replica, which is stale until the
//     health loop redelivers the queue. Only a sub-batch with ZERO
//     acked replicas fails the ingest.
//   - Circuit breakers (internal/breaker): a shard that keeps failing
//     is skipped instantly instead of burning a timeout per query;
//     a single half-open probe per OpenFor period retests it.
//
// A stale replica still serves as a failover target of last resort?
// No — never: reading a replica that missed writes would return
// answers that silently exclude acked users, the one failure mode
// this subsystem exists to prevent. Stale replicas are skipped like
// unreachable ones, and the segment goes missing (explicit partial)
// if no in-sync replica remains.
package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"geofootprint/internal/breaker"
	"geofootprint/internal/search"
)

// ErrBreakerOpen marks a fan-out leg skipped because the shard's
// circuit breaker is open.
var ErrBreakerOpen = errors.New("circuit breaker open")

// noteAck records that this shard acknowledged LSN — its durable
// high-water mark from the router's point of view.
func (s *shard) noteAck(lsn uint64) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if lsn > s.ackedSeq {
		s.ackedSeq = lsn
	}
}

// noteProbeSeq folds a health probe's reported ingest_seq into the
// regression check: reported < acked means the shard lost durable
// writes; reported catching back up clears the flag.
func (s *shard) noteProbeSeq(reported uint64) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if reported < s.ackedSeq {
		if !s.regressed {
			s.regressed = true
			s.staleWhy = fmt.Sprintf("ingest_seq %d < acked %d (lost writes)", reported, s.ackedSeq)
		}
		return
	}
	if s.regressed {
		s.regressed = false
		s.staleWhy = ""
	}
}

// noteMissed queues a sub-batch this replica failed to ingest while a
// sibling acked it. The queue is byte-bounded: past the cap the hint
// is dropped and the shard stays stale with an overflow reason —
// redelivery can no longer self-heal it, only re-ingestion can.
func (s *shard) noteMissed(body []byte, maxBytes int, cause error) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if maxBytes < 0 || s.hintBytes+len(body) > maxBytes {
		s.staleWhy = fmt.Sprintf("missed writes beyond hint budget (last: %v)", cause)
		s.regressed = true // pins stale even with an empty queue
		return
	}
	s.hints = append(s.hints, body)
	s.hintBytes += len(body)
	if s.staleWhy == "" {
		s.staleWhy = fmt.Sprintf("missed ingest batch (%v)", cause)
	}
}

// syncState reports whether the replica is in-sync for reads and, if
// not, why.
func (s *shard) syncState() (why string, stale bool) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if s.regressed || len(s.hints) > 0 {
		return s.staleWhy, true
	}
	return "", false
}

// peekHint returns the oldest queued hint without removing it.
func (s *shard) peekHint() ([]byte, bool) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if len(s.hints) == 0 {
		return nil, false
	}
	return s.hints[0], true
}

// popHint removes the oldest hint after successful redelivery; when
// the queue drains the stale reason is cleared (unless a seq
// regression still pins it).
func (s *shard) popHint() {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if len(s.hints) == 0 {
		return
	}
	s.hintBytes -= len(s.hints[0])
	s.hints = s.hints[1:]
	if len(s.hints) == 0 && !s.regressed {
		s.staleWhy = ""
	}
}

// breakerFailure classifies a call error for the breaker: transport
// errors, timeouts, 5xx and 429 count against the shard; other 4xx
// mean the shard is healthy and the request was bad.
func breakerFailure(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) && se.Status >= 400 && se.Status < 500 &&
		se.Status != http.StatusTooManyRequests {
		return false
	}
	return true
}

// callBrk is call behind the shard's circuit breaker: an open breaker
// refuses instantly (ErrBreakerOpen), and the call's final outcome —
// after the retry loop, so one shed-and-recover does not count as a
// failure — feeds the breaker window through the token, which is what
// makes a straggling response from before a trip harmless.
func (r *Router) callBrk(ctx context.Context, s *shard, build func(ctx context.Context) (*http.Request, error), handle func(status int, body io.Reader) error) error {
	var tok *breaker.Token // Done is nil-safe: no breaker, no recording
	if s.brk != nil {
		var ok bool
		tok, ok = s.brk.Allow()
		if !ok {
			return fmt.Errorf("shard %s: %w", s.id, ErrBreakerOpen)
		}
	}
	err := r.call(ctx, s, build, handle)
	tok.Done(!breakerFailure(err))
	return err
}

// segGather accumulates per-segment answers under a duplicate guard:
// engine.MergeParts (topk.Collector underneath) does NOT deduplicate
// by user ID, so the same segment merged twice would double-count
// every user in it and silently corrupt scores. add refuses the
// second arrival for a segment ID; the property test pins that the
// guarded merge is idempotent across replicas.
type segGather struct {
	mu      sync.Mutex
	parts   map[string][]search.Result
	dropped int
}

func newSegGather() *segGather {
	return &segGather{parts: make(map[string][]search.Result)}
}

// add records one segment's answer; it returns false (and keeps the
// first answer) when the segment was already gathered.
func (g *segGather) add(segID string, part []search.Result) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.parts[segID]; dup {
		g.dropped++
		return false
	}
	g.parts[segID] = part
	return true
}

func (g *segGather) collect() [][]search.Result {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([][]search.Result, 0, len(g.parts))
	for _, p := range g.parts {
		out = append(out, p)
	}
	return out
}

// RedeliverHints replays queued missed-ingest batches to their
// replicas, oldest first, stopping at the first failure per shard
// (order must hold — the sessionizer needs per-user time order). The
// background monitor calls it each health round; tests (and
// deployments with the monitor disabled) call it directly. It returns
// the number of batches successfully redelivered.
func (r *Router) RedeliverHints(ctx context.Context) int {
	delivered := 0
	for _, s := range r.shards {
		for {
			body, ok := s.peekHint()
			if !ok {
				break
			}
			if h := s.Health(); !h.serving() {
				break // still down; next round
			}
			var ack ingestAckJSON
			err := r.callBrk(ctx, s, func(ctx context.Context) (*http.Request, error) {
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.addr+"/v1/ingest", bytes.NewReader(body))
				if err != nil {
					return nil, err
				}
				req.Header.Set("Content-Type", "application/x-ndjson")
				return req, nil
			}, func(_ int, rb io.Reader) error {
				return decodeJSONBody(rb, &ack)
			})
			if err != nil {
				r.cfg.Logger.Printf("router: hint redelivery to shard %s failed: %v", s.id, err)
				break
			}
			s.noteAck(ack.LSN)
			s.popHint()
			delivered++
		}
	}
	return delivered
}
