package sweep

import "testing"

// TestInsertRemoveAllocationFree is the allocation-regression guard
// for the coverage list: once the entry slice has grown to its working
// capacity, Insert/Remove cycles must allocate nothing. The similarity
// kernels run millions of these per second; a reintroduced per-call
// allocation would dominate the service profile.
func TestInsertRemoveAllocationFree(t *testing.T) {
	d := New()
	ops := func() {
		for i := 0; i < 8; i++ {
			d.Insert(float64(i), float64(i+2), 1)
		}
		for i := 0; i < 8; i++ {
			d.Remove(float64(i), float64(i+2), 1)
		}
	}
	ops() // grow the entry slice to working capacity
	if avg := testing.AllocsPerRun(100, ops); avg != 0 {
		t.Fatalf("Insert/Remove cycle allocates %v times per run, want 0", avg)
	}
}

// TestAcquireReleaseAllocationFree guards the pool itself: a steady
// Acquire/Release cycle must not allocate fresh lists.
func TestAcquireReleaseAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; counts unstable")
	}
	// Warm the pool with a list whose slice has capacity.
	d := Acquire()
	d.Insert(0, 10, 1)
	Release(d)
	avg := testing.AllocsPerRun(100, func() {
		l := Acquire()
		l.Insert(0, 10, 1)
		l.Remove(0, 10, 1)
		Release(l)
	})
	if avg != 0 {
		t.Fatalf("Acquire/Release cycle allocates %v times per run, want 0", avg)
	}
}
