package sweep

import "sync"

// The similarity kernels (Algorithms 2-4) build and tear down a
// CoverageList per call. At service rates — millions of similarity
// computations per second across a worker pool — those per-call
// allocations dominate the profile, so the package keeps a pool of
// lists whose entry slices retain their grown capacity.

var pool = sync.Pool{New: func() interface{} { return New() }}

// Acquire returns an empty CoverageList from the package pool. The
// list is reset; its entry slice keeps the capacity it grew to in
// earlier uses, so steady-state acquisition allocates nothing.
//
//geo:hotpath
func Acquire() *CoverageList {
	d := pool.Get().(*CoverageList)
	d.Reset()
	return d
}

// Release returns a list obtained from Acquire to the pool. The caller
// must not use the list afterwards.
//
//geo:hotpath
func Release(d *CoverageList) {
	pool.Put(d)
}
