// Package sweep implements the ordered active-interval structure D of
// Algorithm 2 in the paper: a plane-sweep coverage list over the
// non-sweep axis. D divides the axis into intervals, each carrying the
// total weight ("count") of the active rectangles covering it.
//
// Counts are float64 so that the same structure serves both the
// integer frequencies of the base model and the duration weights of
// the Section 8 extension.
//
// A subtlety worth recording: when several rectangles share a boundary
// coordinate, entry removal must be positional — remove the *first*
// entry at the boundary value — rather than by owning rectangle.
// Removing by owner can leave the wrong count governing the interval
// above a shared upper boundary. With positional removal the structure
// stays exact under any interleaving of insertions and removals
// (property-tested against a brute-force coverage oracle).
package sweep

import (
	"math"
	"sort"
)

// Entry is one breakpoint of the coverage list: the interval
// [Start, next.Start) is covered with total weight Count. Consecutive
// entries may share Start; such zero-width intervals contribute
// nothing to any integral and keep insert/remove symmetric.
type Entry struct {
	Start float64
	Count float64
}

// CoverageList is the structure D of Algorithm 2. The zero value is
// not ready to use; call New.
type CoverageList struct {
	entries []Entry
}

// New returns an empty coverage list covering the whole axis with
// count 0. The sentinel entry starts at -Inf.
func New() *CoverageList {
	return &CoverageList{entries: []Entry{{Start: math.Inf(-1), Count: 0}}}
}

// Reset restores the list to its initial empty state, retaining the
// allocated capacity.
func (d *CoverageList) Reset() {
	d.entries = d.entries[:1]
	d.entries[0] = Entry{Start: math.Inf(-1), Count: 0}
}

// Len returns the number of entries, including the sentinel.
func (d *CoverageList) Len() int { return len(d.entries) }

// Entries exposes the underlying breakpoints for read-only iteration
// (used by the similarity merge in Algorithm 3). The caller must not
// modify or retain the slice across mutations.
func (d *CoverageList) Entries() []Entry { return d.entries }

// Insert processes a Start event of a rectangle whose projection on
// the non-sweep axis is [lo, hi], adding weight w to every covered
// interval (Algorithm 2 lines 7-14).
//
//geo:hotpath
func (d *CoverageList) Insert(lo, hi, w float64) {
	// j: the last entry with Start <= lo (the sentinel guarantees
	// one exists).
	//lint:ignore hotalloc non-escaping predicate closure consumed by sort.Search; pinned at 0 allocs by the package AllocsPerRun tests
	j := sort.Search(len(d.entries), func(i int) bool { return d.entries[i].Start > lo }) - 1
	// Insert the new lower breakpoint right after j with the
	// covering interval's count plus w.
	d.insertAt(j+1, Entry{Start: lo, Count: d.entries[j].Count + w})
	// Raise every interval strictly inside (lo, hi).
	k := j + 2
	for k < len(d.entries) && d.entries[k].Start < hi {
		d.entries[k].Count += w
		k++
	}
	// The upper breakpoint restores the count of the interval it
	// splits: the last visited entry's (already raised) count
	// minus w.
	d.insertAt(k, Entry{Start: hi, Count: d.entries[k-1].Count - w})
}

// Remove processes an End event of a rectangle with projection
// [lo, hi] and weight w (Algorithm 2 lines 15-23). The rectangle must
// have been inserted earlier with the same bounds and weight.
//
//geo:hotpath
func (d *CoverageList) Remove(lo, hi, w float64) {
	// The first entry with Start == lo; positional removal (see the
	// package comment).
	//lint:ignore hotalloc non-escaping predicate closure consumed by sort.Search; pinned at 0 allocs by the package AllocsPerRun tests
	j := sort.Search(len(d.entries), func(i int) bool { return d.entries[i].Start >= lo })
	if j == len(d.entries) || d.entries[j].Start != lo {
		panic("sweep: Remove of a boundary that was never inserted")
	}
	d.removeAt(j)
	// Lower every interval strictly inside (lo, hi), including any
	// further zero-width breakpoints at lo itself.
	k := j
	for k < len(d.entries) && d.entries[k].Start < hi {
		d.entries[k].Count -= w
		k++
	}
	if k == len(d.entries) || d.entries[k].Start != hi {
		panic("sweep: Remove of an upper boundary that was never inserted")
	}
	d.removeAt(k)
}

// SumSquares returns the integral of Count² over the axis:
// Σ (next.Start − Start) · Count² across all intervals. Multiplied by
// a stripe width it is the stripe's contribution to the squared norm
// (Algorithm 2 lines 4-6).
//
//geo:hotpath
func (d *CoverageList) SumSquares() float64 {
	var s float64
	for i := 0; i+1 < len(d.entries); i++ {
		c := d.entries[i].Count
		if c == 0 {
			continue // also guards the -Inf sentinel interval
		}
		s += (d.entries[i+1].Start - d.entries[i].Start) * c * c
	}
	return s
}

// Segments calls f for every maximal interval [lo, hi) with a non-zero
// count, in ascending order. Zero-width intervals are skipped. This is
// the disjoint-region extraction of Section 5.1: each call corresponds
// to one disjoint region slice within the current sweep stripe.
func (d *CoverageList) Segments(f func(lo, hi, count float64)) {
	for i := 0; i+1 < len(d.entries); i++ {
		c := d.entries[i].Count
		lo, hi := d.entries[i].Start, d.entries[i+1].Start
		if c == 0 || lo == hi {
			continue
		}
		f(lo, hi, c)
	}
}

// IntegrateProduct returns the integral over the axis of the product
// of the two coverage functions: Σ |overlap| · countA · countB. This
// is the merge-join of Algorithm 3 lines 5-17, which computes the
// weighted intersection of the disjoint regions of the two footprints
// within the current stripe.
//
//geo:hotpath
func IntegrateProduct(a, b *CoverageList) float64 {
	ea, eb := a.entries, b.entries
	i, j := 0, 0
	var total float64
	y := math.Inf(-1)
	for {
		// Next breakpoint across both lists.
		ny := math.Inf(1)
		if i+1 < len(ea) {
			ny = ea[i+1].Start
		}
		if j+1 < len(eb) && eb[j+1].Start < ny {
			ny = eb[j+1].Start
		}
		if math.IsInf(ny, 1) {
			return total
		}
		// Counts governing [y, ny).
		ca, cb := ea[i].Count, eb[j].Count
		if ca != 0 && cb != 0 && ny > y {
			total += (ny - y) * ca * cb
		}
		// Advance past every breakpoint at ny (duplicates give
		// zero-width intervals; the last one governs).
		for i+1 < len(ea) && ea[i+1].Start <= ny {
			i++
		}
		for j+1 < len(eb) && eb[j+1].Start <= ny {
			j++
		}
		y = ny
	}
}

// insertAt shifts the tail up and writes e at i. The append grows the
// pooled entry slice only until it reaches its high-water capacity;
// steady state reuses it.
//
//geo:hotpath
func (d *CoverageList) insertAt(i int, e Entry) {
	d.entries = append(d.entries, Entry{})
	copy(d.entries[i+1:], d.entries[i:])
	d.entries[i] = e
}

// removeAt closes the gap at i, retaining capacity.
//
//geo:hotpath
func (d *CoverageList) removeAt(i int) {
	copy(d.entries[i:], d.entries[i+1:])
	d.entries = d.entries[:len(d.entries)-1]
}
