package sweep

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b float64) bool {
	const eps = 1e-9
	d := math.Abs(a - b)
	return d <= eps || d <= eps*math.Max(math.Abs(a), math.Abs(b))
}

// oracle is a brute-force model of the coverage function: the active
// multiset of [lo, hi] intervals with weights.
type oracle struct {
	los, his, ws []float64
}

func (o *oracle) insert(lo, hi, w float64) {
	o.los = append(o.los, lo)
	o.his = append(o.his, hi)
	o.ws = append(o.ws, w)
}

func (o *oracle) remove(lo, hi, w float64) {
	for i := range o.los {
		if o.los[i] == lo && o.his[i] == hi && o.ws[i] == w {
			last := len(o.los) - 1
			o.los[i], o.his[i], o.ws[i] = o.los[last], o.his[last], o.ws[last]
			o.los, o.his, o.ws = o.los[:last], o.his[:last], o.ws[:last]
			return
		}
	}
	panic("oracle: remove of absent interval")
}

// coverage returns the total weight covering point y (half-open
// [lo, hi) semantics, matching the breakpoint representation).
func (o *oracle) coverage(y float64) float64 {
	var c float64
	for i := range o.los {
		if o.los[i] <= y && y < o.his[i] {
			c += o.ws[i]
		}
	}
	return c
}

// sumSquares integrates count^2 by visiting every elementary interval
// between consecutive breakpoints.
func (o *oracle) sumSquares() float64 {
	pts := o.breakpoints()
	var s float64
	for i := 0; i+1 < len(pts); i++ {
		c := o.coverage(pts[i])
		s += (pts[i+1] - pts[i]) * c * c
	}
	return s
}

func (o *oracle) breakpoints() []float64 {
	set := map[float64]bool{}
	for i := range o.los {
		set[o.los[i]] = true
		set[o.his[i]] = true
	}
	pts := make([]float64, 0, len(set))
	for p := range set {
		pts = append(pts, p)
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[j] < pts[i] {
				pts[i], pts[j] = pts[j], pts[i]
			}
		}
	}
	return pts
}

func TestEmptyList(t *testing.T) {
	d := New()
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (sentinel)", d.Len())
	}
	if got := d.SumSquares(); got != 0 {
		t.Errorf("SumSquares = %v, want 0", got)
	}
	called := false
	d.Segments(func(lo, hi, c float64) { called = true })
	if called {
		t.Error("Segments on empty list should not call back")
	}
}

func TestSingleInterval(t *testing.T) {
	d := New()
	d.Insert(2, 5, 1)
	if got := d.SumSquares(); !almostEq(got, 3) {
		t.Errorf("SumSquares = %v, want 3", got)
	}
	var segs [][3]float64
	d.Segments(func(lo, hi, c float64) { segs = append(segs, [3]float64{lo, hi, c}) })
	if len(segs) != 1 || segs[0] != [3]float64{2, 5, 1} {
		t.Errorf("Segments = %v, want [[2 5 1]]", segs)
	}
	d.Remove(2, 5, 1)
	if got := d.SumSquares(); got != 0 {
		t.Errorf("after removal SumSquares = %v, want 0", got)
	}
	if d.Len() != 1 {
		t.Errorf("after removal Len = %d, want 1", d.Len())
	}
}

func TestOverlappingIntervals(t *testing.T) {
	// [0,10] w=1 and [5,15] w=1: counts 1 on [0,5), 2 on [5,10), 1 on [10,15).
	d := New()
	d.Insert(0, 10, 1)
	d.Insert(5, 15, 1)
	want := 5.0*1 + 5.0*4 + 5.0*1
	if got := d.SumSquares(); !almostEq(got, want) {
		t.Errorf("SumSquares = %v, want %v", got, want)
	}
	var segs [][3]float64
	d.Segments(func(lo, hi, c float64) { segs = append(segs, [3]float64{lo, hi, c}) })
	wantSegs := [][3]float64{{0, 5, 1}, {5, 10, 2}, {10, 15, 1}}
	if len(segs) != len(wantSegs) {
		t.Fatalf("Segments = %v, want %v", segs, wantSegs)
	}
	for i := range segs {
		if segs[i] != wantSegs[i] {
			t.Errorf("segment %d = %v, want %v", i, segs[i], wantSegs[i])
		}
	}
}

func TestWeightedIntervals(t *testing.T) {
	d := New()
	d.Insert(0, 2, 2.5)
	d.Insert(1, 3, 0.5)
	// [0,1): 2.5^2=6.25; [1,2): 3^2=9; [2,3): 0.25.
	want := 6.25 + 9 + 0.25
	if got := d.SumSquares(); !almostEq(got, want) {
		t.Errorf("SumSquares = %v, want %v", got, want)
	}
}

func TestSharedBoundaries(t *testing.T) {
	// The tricky case: rectangles sharing boundary coordinates, in
	// multiple insertion/removal orders.
	type op struct {
		insert    bool
		lo, hi, w float64
	}
	scenarios := [][]op{
		{{true, 0, 10, 1}, {true, 0, 5, 1}, {false, 0, 10, 1}, {false, 0, 5, 1}},
		{{true, 0, 10, 1}, {true, 0, 5, 1}, {false, 0, 5, 1}, {false, 0, 10, 1}},
		{{true, 0, 10, 1}, {true, 5, 10, 1}, {false, 0, 10, 1}, {false, 5, 10, 1}},
		{{true, 0, 10, 1}, {true, 5, 10, 1}, {false, 5, 10, 1}, {false, 0, 10, 1}},
		{{true, 0, 5, 1}, {true, 0, 5, 1}, {false, 0, 5, 1}, {false, 0, 5, 1}},
		{{true, 0, 5, 2}, {true, 5, 9, 3}, {false, 0, 5, 2}, {false, 5, 9, 3}},
	}
	for si, ops := range scenarios {
		d := New()
		o := &oracle{}
		for oi, op := range ops {
			if op.insert {
				d.Insert(op.lo, op.hi, op.w)
				o.insert(op.lo, op.hi, op.w)
			} else {
				d.Remove(op.lo, op.hi, op.w)
				o.remove(op.lo, op.hi, op.w)
			}
			if got, want := d.SumSquares(), o.sumSquares(); !almostEq(got, want) {
				t.Errorf("scenario %d after op %d: SumSquares = %v, want %v", si, oi, got, want)
			}
		}
		if d.Len() != 1 {
			t.Errorf("scenario %d: leftover entries: %d", si, d.Len())
		}
	}
}

func TestDegenerateInterval(t *testing.T) {
	// Zero-height interval: contributes nothing but must round-trip.
	d := New()
	d.Insert(0, 10, 1)
	d.Insert(5, 5, 1)
	if got := d.SumSquares(); !almostEq(got, 10) {
		t.Errorf("SumSquares = %v, want 10", got)
	}
	d.Remove(5, 5, 1)
	d.Remove(0, 10, 1)
	if d.Len() != 1 {
		t.Errorf("leftover entries: %d", d.Len())
	}
}

func TestRemovePanicsOnAbsent(t *testing.T) {
	d := New()
	d.Insert(0, 10, 1)
	defer func() {
		if recover() == nil {
			t.Error("Remove of absent boundary should panic")
		}
	}()
	d.Remove(3, 7, 1)
}

func TestRandomAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		d := New()
		o := &oracle{}
		type iv struct{ lo, hi, w float64 }
		var active []iv
		// Coordinates drawn from a small grid to force shared
		// boundaries; weights from a small set.
		coord := func() float64 { return float64(rng.Intn(20)) / 2 }
		for step := 0; step < 200; step++ {
			if len(active) == 0 || rng.Float64() < 0.55 {
				lo, hi := coord(), coord()
				if lo > hi {
					lo, hi = hi, lo
				}
				w := float64(1 + rng.Intn(3))
				if rng.Float64() < 0.3 {
					w += 0.5
				}
				d.Insert(lo, hi, w)
				o.insert(lo, hi, w)
				active = append(active, iv{lo, hi, w})
			} else {
				i := rng.Intn(len(active))
				v := active[i]
				active[i] = active[len(active)-1]
				active = active[:len(active)-1]
				d.Remove(v.lo, v.hi, v.w)
				o.remove(v.lo, v.hi, v.w)
			}
			if got, want := d.SumSquares(), o.sumSquares(); !almostEq(got, want) {
				t.Fatalf("trial %d step %d: SumSquares = %v, want %v", trial, step, got, want)
			}
			// Spot-check coverage via Segments at probe points.
			probes := map[float64]float64{}
			d.Segments(func(lo, hi, c float64) {
				probes[(lo+hi)/2] = c
				probes[lo] = c
			})
			for y, c := range probes {
				if want := o.coverage(y); !almostEq(c, want) {
					t.Fatalf("trial %d step %d: coverage(%v) = %v, want %v", trial, step, y, c, want)
				}
			}
		}
		// Drain and verify the list returns to its pristine state.
		for _, v := range active {
			d.Remove(v.lo, v.hi, v.w)
		}
		if d.Len() != 1 || d.SumSquares() != 0 {
			t.Fatalf("trial %d: list not pristine after drain", trial)
		}
	}
}

func TestIntegrateProduct(t *testing.T) {
	a, b := New(), New()
	// No overlap in counts: product is 0.
	a.Insert(0, 1, 1)
	b.Insert(2, 3, 1)
	if got := IntegrateProduct(a, b); got != 0 {
		t.Errorf("disjoint IntegrateProduct = %v, want 0", got)
	}
	// Overlap [2,3): a count 2 there, b count 1.
	a.Insert(1.5, 4, 2)
	if got := IntegrateProduct(a, b); !almostEq(got, 1*2*1) {
		t.Errorf("IntegrateProduct = %v, want 2", got)
	}
	// Identity: product with itself equals SumSquares.
	if got := IntegrateProduct(a, a); !almostEq(got, a.SumSquares()) {
		t.Errorf("self product %v != SumSquares %v", got, a.SumSquares())
	}
}

func TestIntegrateProductRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		a, b := New(), New()
		oa, ob := &oracle{}, &oracle{}
		coord := func() float64 { return float64(rng.Intn(16)) / 2 }
		for i := 0; i < 1+rng.Intn(8); i++ {
			lo, hi := coord(), coord()
			if lo > hi {
				lo, hi = hi, lo
			}
			w := float64(1 + rng.Intn(3))
			a.Insert(lo, hi, w)
			oa.insert(lo, hi, w)
		}
		for i := 0; i < 1+rng.Intn(8); i++ {
			lo, hi := coord(), coord()
			if lo > hi {
				lo, hi = hi, lo
			}
			w := float64(1 + rng.Intn(3))
			b.Insert(lo, hi, w)
			ob.insert(lo, hi, w)
		}
		// Brute-force product integral over elementary intervals.
		pts := map[float64]bool{}
		for _, p := range oa.breakpoints() {
			pts[p] = true
		}
		for _, p := range ob.breakpoints() {
			pts[p] = true
		}
		var all []float64
		for p := range pts {
			all = append(all, p)
		}
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				if all[j] < all[i] {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		var want float64
		for i := 0; i+1 < len(all); i++ {
			want += (all[i+1] - all[i]) * oa.coverage(all[i]) * ob.coverage(all[i])
		}
		if got := IntegrateProduct(a, b); !almostEq(got, want) {
			t.Fatalf("trial %d: IntegrateProduct = %v, want %v", trial, got, want)
		}
		// Symmetry.
		if got, rev := IntegrateProduct(a, b), IntegrateProduct(b, a); !almostEq(got, rev) {
			t.Fatalf("trial %d: product not symmetric: %v vs %v", trial, got, rev)
		}
	}
}

func TestReset(t *testing.T) {
	d := New()
	d.Insert(0, 1, 1)
	d.Insert(0.5, 2, 3)
	d.Reset()
	if d.Len() != 1 || d.SumSquares() != 0 {
		t.Error("Reset did not restore pristine state")
	}
	d.Insert(1, 2, 1)
	if !almostEq(d.SumSquares(), 1) {
		t.Error("list unusable after Reset")
	}
}
