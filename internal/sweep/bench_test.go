package sweep

import (
	"math/rand"
	"testing"
)

// Benchmarks of the coverage-list primitives: what an Algorithm 2/3
// sweep pays per event.

func activeList(n int) *CoverageList {
	rng := rand.New(rand.NewSource(int64(n)))
	d := New()
	for i := 0; i < n; i++ {
		lo := rng.Float64()
		d.Insert(lo, lo+0.02, 1)
	}
	return d
}

func BenchmarkInsertRemove(b *testing.B) {
	d := activeList(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Insert(0.4, 0.42, 1)
		d.Remove(0.4, 0.42, 1)
	}
}

func BenchmarkSumSquares(b *testing.B) {
	d := activeList(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.SumSquares()
	}
}

func BenchmarkIntegrateProduct(b *testing.B) {
	x, y := activeList(32), activeList(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntegrateProduct(x, y)
	}
}

// TestInterleavedProductOracle stresses IntegrateProduct against the
// brute-force oracle while both lists mutate between evaluations —
// the exact access pattern of Algorithm 3.
func TestInterleavedProductOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		a, b := New(), New()
		oa, ob := &oracle{}, &oracle{}
		type iv struct{ lo, hi, w float64 }
		var liveA, liveB []iv
		coord := func() float64 { return float64(rng.Intn(14)) / 2 }
		for step := 0; step < 120; step++ {
			target := rng.Intn(2)
			d, o := a, oa
			live := &liveA
			if target == 1 {
				d, o, live = b, ob, &liveB
			}
			if len(*live) == 0 || rng.Float64() < 0.6 {
				lo, hi := coord(), coord()
				if lo > hi {
					lo, hi = hi, lo
				}
				w := float64(1 + rng.Intn(3))
				d.Insert(lo, hi, w)
				o.insert(lo, hi, w)
				*live = append(*live, iv{lo, hi, w})
			} else {
				i := rng.Intn(len(*live))
				v := (*live)[i]
				(*live)[i] = (*live)[len(*live)-1]
				*live = (*live)[:len(*live)-1]
				d.Remove(v.lo, v.hi, v.w)
				o.remove(v.lo, v.hi, v.w)
			}
			// Brute-force product over all breakpoints.
			pts := map[float64]bool{}
			for _, p := range oa.breakpoints() {
				pts[p] = true
			}
			for _, p := range ob.breakpoints() {
				pts[p] = true
			}
			var all []float64
			for p := range pts {
				all = append(all, p)
			}
			for i := 0; i < len(all); i++ {
				for j := i + 1; j < len(all); j++ {
					if all[j] < all[i] {
						all[i], all[j] = all[j], all[i]
					}
				}
			}
			var want float64
			for i := 0; i+1 < len(all); i++ {
				want += (all[i+1] - all[i]) * oa.coverage(all[i]) * ob.coverage(all[i])
			}
			if got := IntegrateProduct(a, b); !almostEq(got, want) {
				t.Fatalf("trial %d step %d: product %v, want %v", trial, step, got, want)
			}
		}
	}
}
