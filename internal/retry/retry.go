// Package retry is the shared retry-backoff policy for HTTP clients
// that talk to the serving plane: geofeed retrying shed ingest
// batches, and the router retrying per-shard fan-out requests. One
// policy, one implementation, so a fleet of feeders and a tier of
// routers shed and return with the same statistics.
//
// The server's Retry-After always wins when present — it knows its
// own drain or backlog horizon. Otherwise the wait follows
// *decorrelated jitter* (Brooker, "Exponential Backoff And Jitter"):
//
//	sleep(n) = min(cap, uniform(base, 3·sleep(n-1)))
//
// which the earlier geofeed schedule (exponential with ±25% jitter)
// approximated badly: its jitter band was a fixed fraction of the
// deterministic exponential step, so clients shed together stayed
// bunched around the same instants and returned together — the
// thundering herd the jitter was supposed to break. Decorrelated
// jitter draws each wait from the full [base, 3·prev] range, so
// retry times spread across the whole window while still growing
// toward the cap on persistent overload.
package retry

import (
	"math/rand"
	"strconv"
	"time"
)

// Backoff schedules retry waits with decorrelated jitter. Not safe
// for concurrent use: give each retrying request its own instance
// (they are two words plus an rng pointer).
type Backoff struct {
	base, cap time.Duration
	prev      time.Duration
	rng       *rand.Rand
}

// New returns a Backoff growing from base to cap. rng may be nil, in
// which case the global (concurrency-safe) math/rand source is used;
// pass a seeded rng for reproducible schedules in tests and load
// generators.
func New(base, cap time.Duration, rng *rand.Rand) *Backoff {
	if base <= 0 {
		base = time.Millisecond
	}
	if cap < base {
		cap = base
	}
	return &Backoff{base: base, cap: cap, rng: rng}
}

func (b *Backoff) int63n(n int64) int64 {
	if b.rng != nil {
		return b.rng.Int63n(n)
	}
	return rand.Int63n(n)
}

// Next returns how long to sleep before the next retry. retryAfter is
// the raw Retry-After header value, seconds per RFC 9110; when
// parsable it is returned as-is and does not advance the jitter state
// (the server-directed wait says nothing about our own congestion).
// An unparsable or absent value falls back to the decorrelated
// schedule.
func (b *Backoff) Next(retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	prev := b.prev
	if prev < b.base {
		prev = b.base // first retry draws from [base, 3·base]
	}
	hi := 3 * prev
	if hi <= 0 || hi > b.cap { // <= 0: the multiplication overflowed
		hi = b.cap
	}
	d := b.base
	if hi > b.base {
		d += time.Duration(b.int63n(int64(hi-b.base) + 1))
	}
	b.prev = d
	return d
}

// Reset forgets the accumulated backoff; call after a success so the
// next failure starts from base again.
func (b *Backoff) Reset() { b.prev = 0 }
