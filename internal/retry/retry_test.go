package retry

import (
	"math/rand"
	"testing"
	"time"
)

// Retry-After takes precedence over the jittered schedule and does
// not advance the backoff state.
func TestRetryAfterWins(t *testing.T) {
	b := New(50*time.Millisecond, 2*time.Second, rand.New(rand.NewSource(1)))
	if got := b.Next("3"); got != 3*time.Second {
		t.Fatalf("Next with Retry-After: 3 = %v, want 3s", got)
	}
	if got := b.Next("0"); got != 0 {
		t.Fatalf("Next with Retry-After: 0 = %v, want 0", got)
	}
	// After only server-directed waits, the jittered schedule still
	// starts from the first-retry window [base, 3·base].
	if got := b.Next("soon"); got < 50*time.Millisecond || got > 150*time.Millisecond {
		t.Fatalf("fallback wait = %v, want within [base, 3·base]", got)
	}
}

// Decorrelated jitter: every wait lies in [base, min(cap, 3·prev)],
// and the schedule saturates at the cap instead of overflowing.
func TestDecorrelatedEnvelope(t *testing.T) {
	base, cp := 50*time.Millisecond, 2*time.Second
	b := New(base, cp, rand.New(rand.NewSource(2)))
	prev := base
	for i := 0; i < 200; i++ {
		got := b.Next("")
		hi := 3 * prev
		if hi > cp {
			hi = cp
		}
		if got < base || got > hi {
			t.Fatalf("wait %d: %v outside [%v, %v]", i, got, base, hi)
		}
		if got > cp {
			t.Fatalf("wait %d: %v exceeds cap %v", i, got, cp)
		}
		prev = got
	}
}

// The whole point of the fix: waits must use the full jitter window,
// not cluster around a deterministic exponential step. With the old
// ±25% schedule, every client's attempt-3 wait fell within
// [0.75, 1.25]·(base<<3); under decorrelated jitter the third waits
// of a population spread over several times that band.
func TestJitterSpreadsAcrossFullWindow(t *testing.T) {
	base, cp := 50*time.Millisecond, 30*time.Second
	var third []time.Duration
	for seed := int64(0); seed < 300; seed++ {
		b := New(base, cp, rand.New(rand.NewSource(seed)))
		b.Next("")
		b.Next("")
		third = append(third, b.Next(""))
	}
	min, max := third[0], third[0]
	for _, d := range third {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	// The old schedule confined attempt 3 to a 1.67x band
	// (1.25/0.75). Demand at least a 4x spread.
	if float64(max)/float64(min) < 4 {
		t.Fatalf("third-wait spread %v..%v (%.1fx) — still bunched like the capped-jitter schedule",
			min, max, float64(max)/float64(min))
	}
	for _, d := range third {
		if d < base {
			t.Fatalf("wait %v below base", d)
		}
	}
}

// Reset returns the schedule to the first-retry window.
func TestReset(t *testing.T) {
	b := New(50*time.Millisecond, time.Minute, rand.New(rand.NewSource(3)))
	for i := 0; i < 20; i++ {
		b.Next("")
	}
	b.Reset()
	if got := b.Next(""); got > 150*time.Millisecond {
		t.Fatalf("post-Reset wait %v, want within [base, 3·base]", got)
	}
}

// Same seed, same schedule — reproducible load generation.
func TestDeterministic(t *testing.T) {
	a := New(50*time.Millisecond, 2*time.Second, rand.New(rand.NewSource(9)))
	b := New(50*time.Millisecond, 2*time.Second, rand.New(rand.NewSource(9)))
	for i := 0; i < 50; i++ {
		if wa, wb := a.Next(""), b.Next(""); wa != wb {
			t.Fatalf("step %d: %v vs %v", i, wa, wb)
		}
	}
}

// A nil rng draws from the global source without panicking, and
// degenerate base/cap configurations are repaired.
func TestDefaults(t *testing.T) {
	b := New(0, -1, nil)
	for i := 0; i < 10; i++ {
		if d := b.Next(""); d <= 0 {
			t.Fatalf("wait %v not positive", d)
		}
	}
}
