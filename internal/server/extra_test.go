package server

import (
	"net/http"
	"strconv"
	"testing"
)

func TestPairsEndpoint(t *testing.T) {
	s, db := testServer(t)
	rec, list := doList(t, s.Handler(), "GET", "/v1/pairs?k=5", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if len(list) == 0 || len(list) > 5 {
		t.Fatalf("got %d pairs", len(list))
	}
	prev := 2.0
	for _, p := range list {
		a, b := int(p["a"].(float64)), int(p["b"].(float64))
		sim := p["similarity"].(float64)
		if a >= b {
			t.Errorf("pair not ordered: %v", p)
		}
		if sim > prev {
			t.Errorf("pairs not best-first")
		}
		prev = sim
		if _, ok := db.IndexOf(a); !ok {
			t.Errorf("pair references unknown user %d", a)
		}
	}
	rec, _ = do(t, s.Handler(), "GET", "/v1/pairs?k=0", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("k=0 status %d", rec.Code)
	}
}

func TestClassifyEndpoint(t *testing.T) {
	s, db := testServer(t)
	h := s.Handler()

	// Before labels are registered: 503.
	body := `{"regions":[{"rect":[0.1,0.1,0.2,0.2],"weight":1}]}`
	rec, _ := do(t, h, "POST", "/v1/classify", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unlabelled status %d", rec.Code)
	}

	// Label the first half of users by coarse location.
	labels := map[int]string{}
	for i := 0; i < db.Len()/2; i++ {
		name := "west"
		if db.MBRs[i].Center().X > 0.5 {
			name = "east"
		}
		labels[db.IDs[i]] = name
	}
	if err := s.SetLabels(labels, 5); err != nil {
		t.Fatalf("SetLabels: %v", err)
	}

	// Classify a footprint sitting on a labelled user.
	i, _ := db.IndexOf(db.IDs[0])
	r := db.Footprints[i][0].Rect
	body = `{"regions":[{"rect":[` +
		fm(r.MinX) + `,` + fm(r.MinY) + `,` + fm(r.MaxX) + `,` + fm(r.MaxY) + `],"weight":1}]}`
	rec, obj := do(t, h, "POST", "/v1/classify", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("classify status %d: %v", rec.Code, obj)
	}
	if obj["label"] != labels[db.IDs[0]] {
		t.Errorf("label = %v, want %v (votes %v)", obj["label"], labels[db.IDs[0]], obj["votes"])
	}
	// Bad body.
	rec, _ = do(t, h, "POST", "/v1/classify", "garbage")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("garbage status %d", rec.Code)
	}
	// Bad labels rejected.
	if err := s.SetLabels(nil, 5); err == nil {
		t.Error("empty labels accepted")
	}
}

func fm(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
