package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"testing"
)

// TestQueryMethodSelection: the sketch engine must answer identically
// to the default engine on both query routes, and unknown methods must
// be rejected, not silently defaulted.
func TestQueryMethodSelection(t *testing.T) {
	s, db := testServer(t)
	if !db.SketchesEnabled() {
		t.Fatal("New did not enable the sketch layer")
	}

	i, _ := db.IndexOf(100)
	regs := fromFootprint(db.Footprints[i])

	// POST /v1/query with and without "method": identical results.
	for _, method := range []string{"", "user-centric", "sketch"} {
		body, _ := json.Marshal(queryJSON{Regions: regs, K: 5, Method: method})
		rec, list := doList(t, s.Handler(), "POST", "/v1/query", string(body))
		if rec.Code != http.StatusOK {
			t.Fatalf("method %q: status %d: %s", method, rec.Code, rec.Body.String())
		}
		if method == "" {
			continue
		}
		base, _ := json.Marshal(queryJSON{Regions: regs, K: 5})
		_, want := doList(t, s.Handler(), "POST", "/v1/query", string(base))
		if !reflect.DeepEqual(list, want) {
			t.Fatalf("method %q diverged from default\ngot:  %v\nwant: %v", method, list, want)
		}
	}

	// GET /v1/users/{id}/similar?method=sketch: identical results.
	_, def := doList(t, s.Handler(), "GET", "/v1/users/100/similar?k=5", "")
	rec, sk := doList(t, s.Handler(), "GET", "/v1/users/100/similar?k=5&method=sketch", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("similar?method=sketch: status %d: %s", rec.Code, rec.Body.String())
	}
	if !reflect.DeepEqual(sk, def) {
		t.Fatalf("similar sketch diverged\ngot:  %v\nwant: %v", sk, def)
	}

	// Unknown methods are 400s on both routes.
	body, _ := json.Marshal(queryJSON{Regions: regs, K: 5, Method: "quantum"})
	if rec, _ := do(t, s.Handler(), "POST", "/v1/query", string(body)); rec.Code != http.StatusBadRequest {
		t.Errorf("POST unknown method: status %d", rec.Code)
	}
	if rec, _ := do(t, s.Handler(), "GET", "/v1/users/100/similar?method=quantum", ""); rec.Code != http.StatusBadRequest {
		t.Errorf("GET unknown method: status %d", rec.Code)
	}
}

// TestSketchMethodAfterMutations: PUT/DELETE maintain the sketch layer
// (via store's dynamic paths), so sketch queries stay correct after
// writes without any rebuild.
func TestSketchMethodAfterMutations(t *testing.T) {
	s, db := testServer(t)
	i, _ := db.IndexOf(101)
	regs := fromFootprint(db.Footprints[i])
	regsBody, _ := json.Marshal(regs)

	// Upsert a new user with user 101's exact footprint.
	if rec, _ := do(t, s.Handler(), "PUT", "/v1/users/999", string(regsBody)); rec.Code != http.StatusOK {
		t.Fatalf("PUT: status %d", rec.Code)
	}
	// Delete user 102 to exercise the tombstone path.
	if rec, _ := do(t, s.Handler(), "DELETE", "/v1/users/102", ""); rec.Code != http.StatusOK {
		t.Fatalf("DELETE: status %d", rec.Code)
	}

	for _, method := range []string{"user-centric", "sketch"} {
		body := fmt.Sprintf(`{"regions":%s,"k":10,"method":%q}`, regsBody, method)
		rec, list := doList(t, s.Handler(), "POST", "/v1/query", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", method, rec.Code)
		}
		seen := map[int]bool{}
		for _, r := range list {
			seen[int(r["id"].(float64))] = true
		}
		if !seen[101] || !seen[999] {
			t.Fatalf("%s: expected users 101 and 999 in %v", method, list)
		}
		if seen[102] {
			t.Fatalf("%s: deleted user 102 still returned: %v", method, list)
		}
	}
}
