package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"geofootprint/internal/classify"
	"geofootprint/internal/search"
)

// Analytics endpoints on top of the core CRUD/search API:
//
//	GET  /v1/pairs?k=20          the k most similar user pairs
//	POST /v1/classify            kNN label prediction for a footprint
//
// Classification requires labels, registered with SetLabels (e.g.
// loaded from a loyalty-program export at startup).

// RegisterExtras wires the analytics routes. It is called by New; the
// split keeps the route tables readable.
func (s *Server) registerExtras() {
	s.mux.HandleFunc("GET /v1/users", s.handleListUsers)
	s.mux.HandleFunc("GET /v1/pairs", s.gated(s.handlePairs))
	s.mux.HandleFunc("POST /v1/classify", s.handleClassify)
	s.mux.HandleFunc("GET /v1/explain", s.handleExplain)
}

type contributionJSON struct {
	Overlap [4]float64 `json:"overlap"`
	Share   float64    `json:"share"`
	Value   float64    `json:"value"`
}

type explanationJSON struct {
	Similarity    float64            `json:"similarity"`
	Contributions []contributionJSON `json:"contributions"`
	PairsExamined int                `json:"pairs_examined"`
}

// handleExplain answers "why are a and b similar": ?a=&b= user IDs,
// optional ?pairs= truncation (default 5).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	a, errA := strconv.Atoi(q.Get("a"))
	b, errB := strconv.Atoi(q.Get("b"))
	if errA != nil || errB != nil {
		writeError(w, http.StatusBadRequest, "need integer ?a= and ?b=")
		return
	}
	pairs := 5
	if v := q.Get("pairs"); v != "" {
		var err error
		if pairs, err = strconv.Atoi(v); err != nil || pairs < 1 || pairs > 1000 {
			writeError(w, http.StatusBadRequest, "bad pairs %q", v)
			return
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ia, okA := s.db.IndexOf(a)
	ib, okB := s.db.IndexOf(b)
	if !okA || !okB {
		writeError(w, http.StatusNotFound, "unknown user")
		return
	}
	ex := search.Explain(s.db.Footprints[ia], s.db.Footprints[ib],
		s.db.Norms[ia], s.db.Norms[ib], pairs)
	out := explanationJSON{
		Similarity:    ex.Similarity,
		PairsExamined: ex.PairsExamined,
		Contributions: make([]contributionJSON, len(ex.Contributions)),
	}
	for i, c := range ex.Contributions {
		out.Contributions[i] = contributionJSON{
			Overlap: [4]float64{c.Overlap.MinX, c.Overlap.MinY, c.Overlap.MaxX, c.Overlap.MaxY},
			Share:   c.Share,
			Value:   c.Value,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type userSummaryJSON struct {
	ID      int     `json:"id"`
	Regions int     `json:"regions"`
	Norm    float64 `json:"norm"`
}

type userListJSON struct {
	Total int               `json:"total"`
	Users []userSummaryJSON `json:"users"`
	// Next is the offset of the following page, or -1 on the last.
	Next int `json:"next"`
}

// handleListUsers pages through the corpus: ?offset= and ?limit=
// (default 100, max 1000). Tombstoned users are skipped.
func (s *Server) handleListUsers(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	offset, limit := 0, 100
	var err error
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
	}
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 1 || limit > 1000 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := userListJSON{Total: s.db.Len(), Next: -1, Users: []userSummaryJSON{}}
	i := offset
	for ; i < s.db.Len() && len(out.Users) < limit; i++ {
		if len(s.db.Footprints[i]) == 0 {
			continue
		}
		out.Users = append(out.Users, userSummaryJSON{
			ID:      s.db.IDs[i],
			Regions: len(s.db.Footprints[i]),
			Norm:    s.db.Norms[i],
		})
	}
	if i < s.db.Len() {
		out.Next = i
	}
	writeJSON(w, http.StatusOK, out)
}

// SetLabels installs (or replaces) the user labels backing the
// /v1/classify endpoint, with the given neighbourhood size.
func (s *Server) SetLabels(labels map[int]string, k int) error {
	cls, err := classify.New(s.db, s.idx, labels, k)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.cls = cls
	s.mu.Unlock()
	return nil
}

type pairJSON struct {
	A          int     `json:"a"`
	B          int     `json:"b"`
	Similarity float64 `json:"similarity"`
}

func (s *Server) handlePairs(w http.ResponseWriter, r *http.Request) {
	k := 20
	if kq := r.URL.Query().Get("k"); kq != "" {
		var err error
		if k, err = strconv.Atoi(kq); err != nil || k < 1 || k > 10000 {
			writeError(w, http.StatusBadRequest, "bad k %q", kq)
			return
		}
	}
	s.mu.RLock()
	pairs := search.TopSimilarPairs(s.idx, k, 0)
	s.mu.RUnlock()
	out := make([]pairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = pairJSON{A: p.A, B: p.B, Similarity: p.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

type classifyRequest struct {
	Regions []regionJSON `json:"regions"`
}

type classifyResponse struct {
	Label      string             `json:"label"`
	Score      float64            `json:"score"`
	Votes      map[string]float64 `json:"votes"`
	Neighbours int                `json:"neighbours"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	cls := s.cls
	s.mu.RUnlock()
	if cls == nil {
		writeError(w, http.StatusServiceUnavailable, "no labels registered")
		return
	}
	var req classifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	f, err := toFootprint(req.Regions)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad footprint: %v", err)
		return
	}
	s.mu.RLock()
	p := cls.Classify(f)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, classifyResponse{
		Label: p.Label, Score: p.Score, Votes: p.Votes, Neighbours: p.Neighbours,
	})
}
