package server

import (
	"encoding/json"
	"net/http"
	"strconv"

	"geofootprint/internal/classify"
	"geofootprint/internal/search"
)

// Analytics endpoints on top of the core CRUD/search API:
//
//	GET  /v1/pairs?k=20          the k most similar user pairs
//	POST /v1/classify            kNN label prediction for a footprint
//
// Classification requires labels, registered with SetLabels (e.g.
// loaded from a loyalty-program export at startup).

// RegisterExtras wires the analytics routes. It is called by New; the
// split keeps the route tables readable.
func (s *Server) registerExtras() {
	s.mux.HandleFunc("GET /v1/users", s.handleListUsers)
	s.mux.HandleFunc("GET /v1/pairs", s.gated(s.handlePairs))
	s.mux.HandleFunc("POST /v1/classify", s.handleClassify)
	s.mux.HandleFunc("GET /v1/explain", s.handleExplain)
}

type contributionJSON struct {
	Overlap [4]float64 `json:"overlap"`
	Share   float64    `json:"share"`
	Value   float64    `json:"value"`
}

type explanationJSON struct {
	Similarity    float64            `json:"similarity"`
	Contributions []contributionJSON `json:"contributions"`
	PairsExamined int                `json:"pairs_examined"`
}

// handleExplain answers "why are a and b similar": ?a=&b= user IDs,
// optional ?pairs= truncation (default 5).
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	a, errA := strconv.Atoi(q.Get("a"))
	b, errB := strconv.Atoi(q.Get("b"))
	if errA != nil || errB != nil {
		writeError(w, http.StatusBadRequest, "need integer ?a= and ?b=")
		return
	}
	pairs := 5
	if v := q.Get("pairs"); v != "" {
		var err error
		if pairs, err = strconv.Atoi(v); err != nil || pairs < 1 || pairs > 1000 {
			writeError(w, http.StatusBadRequest, "bad pairs %q", v)
			return
		}
	}
	ep, v := s.acquire()
	defer ep.Release()
	db := v.DB()
	ia, okA := db.IndexOf(a)
	ib, okB := db.IndexOf(b)
	if !okA || !okB {
		writeError(w, http.StatusNotFound, "unknown user")
		return
	}
	ex := search.Explain(db.Footprints[ia], db.Footprints[ib],
		db.Norms[ia], db.Norms[ib], pairs)
	out := explanationJSON{
		Similarity:    ex.Similarity,
		PairsExamined: ex.PairsExamined,
		Contributions: make([]contributionJSON, len(ex.Contributions)),
	}
	for i, c := range ex.Contributions {
		out.Contributions[i] = contributionJSON{
			Overlap: [4]float64{c.Overlap.MinX, c.Overlap.MinY, c.Overlap.MaxX, c.Overlap.MaxY},
			Share:   c.Share,
			Value:   c.Value,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type userSummaryJSON struct {
	ID      int     `json:"id"`
	Regions int     `json:"regions"`
	Norm    float64 `json:"norm"`
}

type userListJSON struct {
	Total int               `json:"total"`
	Users []userSummaryJSON `json:"users"`
	// Next is the offset of the following page, or -1 on the last.
	Next int `json:"next"`
}

// handleListUsers pages through the corpus: ?offset= and ?limit=
// (default 100, max 1000). Tombstoned users are skipped. The page is
// read from one pinned epoch, so it is internally consistent even
// under concurrent mutation.
func (s *Server) handleListUsers(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	offset, limit := 0, 100
	var err error
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
	}
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 1 || limit > 1000 {
			writeError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
	}
	ep, v := s.acquire()
	defer ep.Release()
	db := v.DB()
	out := userListJSON{Total: db.Len(), Next: -1, Users: []userSummaryJSON{}}
	i := offset
	for ; i < db.Len() && len(out.Users) < limit; i++ {
		if len(db.Footprints[i]) == 0 {
			continue
		}
		out.Users = append(out.Users, userSummaryJSON{
			ID:      db.IDs[i],
			Regions: len(db.Footprints[i]),
			Norm:    db.Norms[i],
		})
	}
	if i < db.Len() {
		out.Next = i
	}
	writeJSON(w, http.StatusOK, out)
}

// SetLabels installs (or replaces) the user labels backing the
// /v1/classify endpoint, with the given neighbourhood size, and
// publishes a new epoch carrying the classifier.
func (s *Server) SetLabels(labels map[int]string, k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Validate shape up front (k, non-empty labels) so a bad call
	// leaves the serving state untouched.
	ep, v := s.acquire()
	_, err := classify.New(v.DB(), v.Index(), labels, k)
	ep.Release()
	if err != nil {
		return err
	}
	s.labels, s.labelsK = labels, k
	s.publishLocked()
	return nil
}

type pairJSON struct {
	A          int     `json:"a"`
	B          int     `json:"b"`
	Similarity float64 `json:"similarity"`
}

func (s *Server) handlePairs(w http.ResponseWriter, r *http.Request) {
	k := 20
	if kq := r.URL.Query().Get("k"); kq != "" {
		var err error
		if k, err = strconv.Atoi(kq); err != nil || k < 1 || k > 10000 {
			writeError(w, http.StatusBadRequest, "bad k %q", kq)
			return
		}
	}
	ep, v := s.acquire()
	pairs := search.TopSimilarPairs(v.Index(), k, 0)
	ep.Release()
	out := make([]pairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = pairJSON{A: p.A, B: p.B, Similarity: p.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

type classifyRequest struct {
	Regions []regionJSON `json:"regions"`
}

type classifyResponse struct {
	Label      string             `json:"label"`
	Score      float64            `json:"score"`
	Votes      map[string]float64 `json:"votes"`
	Neighbours int                `json:"neighbours"`
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	f, err := toFootprint(req.Regions)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad footprint: %v", err)
		return
	}
	ep, v := s.acquire()
	defer ep.Release()
	if v.cls == nil {
		writeError(w, http.StatusServiceUnavailable, "no labels registered")
		return
	}
	p := v.cls.Classify(f)
	writeJSON(w, http.StatusOK, classifyResponse{
		Label: p.Label, Score: p.Score, Votes: p.Votes, Neighbours: p.Neighbours,
	})
}
