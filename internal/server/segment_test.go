package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/engine"
	"geofootprint/internal/geom"
	"geofootprint/internal/hashring"
	"geofootprint/internal/search"
)

const segTestRegions = `[{"rect":[0.1,0.1,0.5,0.5],"weight":1},{"rect":[0.3,0.3,0.7,0.7],"weight":2}]`

func segQuery(t *testing.T, s *Server, seg *segmentJSON, method string, k int) ([]map[string]interface{}, int) {
	t.Helper()
	q := map[string]interface{}{"k": k, "regions": json.RawMessage(segTestRegions)}
	if method != "" {
		q["method"] = method
	}
	if seg != nil {
		q["segment"] = seg
	}
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := do(t, s.Handler(), "POST", "/v1/query", string(body))
	if rec.Code != http.StatusOK {
		return nil, rec.Code
	}
	var out []map[string]interface{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad result body: %v", err)
	}
	return out, rec.Code
}

// Segment sub-queries partition the corpus: over all distinct replica
// tuples of a ring, each user is scored by exactly one segment, the
// union of segment answers merges to the unrestricted answer, and
// every method returns the identical segment ranking (scoring always
// goes through the canonical kernel).
func TestSegmentQueryPartitionsCorpus(t *testing.T) {
	db := testCorpus(t)
	s := New(db)
	shardIDs := []string{"s0", "s1", "s2", "s3"}
	ring, err := hashring.RingFromIDs(shardIDs, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, R := range []int{1, 2, 3} {
		R := R
		t.Run(fmt.Sprintf("R=%d", R), func(t *testing.T) {
			// The unrestricted answer, straight off the canonical scan.
			full, code := segQuery(t, s, nil, "", 10)
			if code != http.StatusOK {
				t.Fatalf("full query status %d", code)
			}

			var parts [][]search.Result
			covered := 0
			for _, tuple := range ring.Segments(R) {
				members := make([]string, len(tuple))
				for i, idx := range tuple {
					members[i] = shardIDs[idx]
				}
				seg := &segmentJSON{Shards: shardIDs, R: R, Members: members}
				res, code := segQuery(t, s, seg, "", 30)
				if code != http.StatusOK {
					t.Fatalf("segment %v status %d", members, code)
				}
				part := make([]search.Result, len(res))
				for i, r := range res {
					part[i] = search.Result{ID: int(r["id"].(float64)), Score: r["similarity"].(float64)}
				}
				covered += len(part)
				parts = append(parts, part)

				// Method choice must not change a segment's answer.
				for _, m := range []string{"linear", "iterative", "batch", "sketch"} {
					alt, code := segQuery(t, s, seg, m, 30)
					if code != http.StatusOK {
						t.Fatalf("segment %v method %s status %d", members, m, code)
					}
					if len(alt) != len(res) {
						t.Fatalf("segment %v method %s returned %d results, want %d", members, m, len(alt), len(res))
					}
					for i := range alt {
						if alt[i]["id"] != res[i]["id"] || alt[i]["similarity"] != res[i]["similarity"] {
							t.Fatalf("segment %v method %s diverged at rank %d", members, m, i)
						}
					}
				}
			}

			// No user may be claimed by two segments (k=30 covers the
			// whole 30-user corpus, so counts are exhaustive).
			seen := map[int]bool{}
			for _, part := range parts {
				for _, r := range part {
					if seen[r.ID] {
						t.Fatalf("user %d scored by two segments", r.ID)
					}
					seen[r.ID] = true
				}
			}

			// Merging the parts reproduces the unrestricted top-k exactly.
			merged := engine.MergeParts(parts, 10)
			if len(merged) != len(full) {
				t.Fatalf("merged %d results, full answer has %d", len(merged), len(full))
			}
			for i := range merged {
				if merged[i].ID != int(full[i]["id"].(float64)) || merged[i].Score != full[i]["similarity"].(float64) {
					t.Fatalf("rank %d: merged (%d,%v) != full (%v,%v)",
						i, merged[i].ID, merged[i].Score, full[i]["id"], full[i]["similarity"])
				}
			}
		})
	}
}

// Malformed segments are client errors, not silent empty answers.
func TestSegmentQueryValidation(t *testing.T) {
	db := testCorpus(t)
	s := New(db)
	shardIDs := []string{"s0", "s1"}
	cases := []struct {
		name string
		seg  *segmentJSON
	}{
		{"zero R", &segmentJSON{Shards: shardIDs, R: 0, Members: []string{"s0"}}},
		{"no members", &segmentJSON{Shards: shardIDs, R: 1}},
		{"unknown member", &segmentJSON{Shards: shardIDs, R: 1, Members: []string{"ghost"}}},
		{"empty shard list", &segmentJSON{R: 1, Members: []string{"s0"}}},
	}
	for _, tc := range cases {
		if _, code := segQuery(t, s, tc.seg, "", 5); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
}

// The segment path bypasses the result cache in both directions: a
// cached full-corpus answer is not served for a segment, and a
// segment answer is not cached for the full query.
func TestSegmentQueryBypassesCache(t *testing.T) {
	db := testCorpus(t)
	s := NewWithOptions(db, Options{CacheSize: 64})
	shardIDs := []string{"s0", "s1"}
	ring, err := hashring.RingFromIDs(shardIDs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Prime the cache with the full answer, then issue each R=1
	// segment: their union must equal the corpus, which fails if any
	// segment was answered from the full-query cache entry.
	full, _ := segQuery(t, s, nil, "", 30)
	total := 0
	for _, tuple := range ring.Segments(1) {
		seg := &segmentJSON{Shards: shardIDs, R: 1, Members: []string{shardIDs[tuple[0]]}}
		res, code := segQuery(t, s, seg, "", 30)
		if code != http.StatusOK {
			t.Fatalf("segment status %d", code)
		}
		if len(res) == len(full) && len(full) > 0 {
			// Possible only if one shard owns every scoring user —
			// not with this corpus and ring.
			t.Fatalf("segment answer has the full corpus size %d — served from the full-query cache?", len(res))
		}
		total += len(res)
	}
	if total != len(full) {
		t.Fatalf("segments cover %d users, full answer %d", total, len(full))
	}
}

// The ring rebuilt from the wire segment agrees with the router's
// addressed ring — placement is a pure function of shard IDs.
func TestSegmentRingCacheReuse(t *testing.T) {
	var c segRingCache
	ids := []string{"a", "b", "c"}
	r1, err := c.get(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.get(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("identical shard list rebuilt the ring")
	}
	r3, err := c.get([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("changed shard list reused the stale ring")
	}
}

// segmentTopK honours context cancellation like every other query
// path.
func TestSegmentQueryCancellation(t *testing.T) {
	db := testCorpus(t)
	s := New(db)
	ep, v := s.acquire()
	defer ep.Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := core.Footprint{{Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Weight: 1}}
	seg := &segmentJSON{Shards: []string{"s0"}, R: 1, Members: []string{"s0"}}
	if _, err := s.segmentTopK(ctx, v, seg, f, 5); err == nil || !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("cancelled segment query returned %v", err)
	}
}
