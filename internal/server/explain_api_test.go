package server

import (
	"math"
	"net/http"
	"testing"

	"geofootprint/internal/core"
)

func TestExplainEndpoint(t *testing.T) {
	s, db := testServer(t)
	h := s.Handler()

	rec, obj := do(t, h, "GET", "/v1/explain?a=100&b=100", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, obj)
	}
	if sim := obj["similarity"].(float64); sim < 1-1e-9 {
		t.Errorf("self-explanation similarity %v", sim)
	}
	if len(obj["contributions"].([]interface{})) == 0 {
		t.Error("no contributions for self pair")
	}
	// Consistent with the library for a non-trivial pair.
	rec, obj = do(t, h, "GET", "/v1/explain?a=100&b=101&pairs=2", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	ia, _ := db.IndexOf(100)
	ib, _ := db.IndexOf(101)
	want := core.SimilarityJoin(db.Footprints[ia], db.Footprints[ib], db.Norms[ia], db.Norms[ib])
	if got := obj["similarity"].(float64); math.Abs(got-want) > 1e-9 {
		t.Errorf("similarity %v, want %v", got, want)
	}
	if n := len(obj["contributions"].([]interface{})); n > 2 {
		t.Errorf("pairs not truncated: %d", n)
	}
	// Errors.
	for _, bad := range []string{"?a=100", "?a=100&b=zzz", "?a=100&b=101&pairs=0", "?a=100&b=99999"} {
		rec, _ := do(t, h, "GET", "/v1/explain"+bad, "")
		if rec.Code == http.StatusOK {
			t.Errorf("%s accepted", bad)
		}
	}
}
