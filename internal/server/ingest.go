package server

import (
	"context"
	"errors"
	"net/http"

	"geofootprint/internal/cache"
	"geofootprint/internal/core"
	"geofootprint/internal/ingest"
	"geofootprint/internal/store"
	"geofootprint/internal/wal"
)

// Streaming ingestion endpoints, active once AttachPipeline wires a
// durable pipeline to the server:
//
//	POST /v1/ingest        NDJSON sample batch; 202 + LSN on success,
//	                       429 + Retry-After under backpressure
//	GET  /v1/ingest/stats  pipeline + epoch + cache counters
//
// The pipeline's apply goroutine lands finished RoIs through a sink
// that takes the server's write mutex, applies the whole batch to the
// epoch builder, and publishes the next epoch — one atomic swap per
// batch. Queries on all methods keep serving lock-free against the
// previous epoch while the batch lands, and stay exact.

// maxIngestSamples bounds one POST /v1/ingest body; clients split
// larger loads into multiple requests (and get per-batch LSNs).
const maxIngestSamples = 10000

// serverSink is the ingest.Sink that applies pipeline output to the
// serving state: mutations into the epoch builder behind the write
// mutex, one epoch publish per batch — the same discipline as
// PUT /v1/users/{id}.
type serverSink struct {
	s         *Server
	weighting core.Weighting
}

func (k serverSink) ApplyBatch(updates []ingest.UserRoIs) {
	s := k.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range updates {
		s.builder.AppendRoIs(u.User, core.FromRoIs(u.RoIs, k.weighting))
	}
	s.publishLocked()
}

func (k serverSink) WithDB(fn func(db *store.FootprintDB)) {
	k.s.mu.Lock()
	defer k.s.mu.Unlock()
	// The builder's working database always equals the latest
	// published epoch (every mutation publishes under mu), so the
	// checkpoint snapshot encodes exactly the served state.
	fn(k.s.builder.DB())
}

// AttachPipeline starts a durable ingestion pipeline over the server's
// database and registers the ingest routes. Call it once, after
// ingest.Recover has rebuilt the database the server was constructed
// over, passing the recovered state. The returned pipeline is owned by
// the caller, who must Close it on shutdown (before the HTTP listener
// stops accepting, so in-flight acks are not lost).
func (s *Server) AttachPipeline(cfg ingest.Config, state *ingest.State) (*ingest.Pipeline, error) {
	if s.pipe != nil {
		return nil, errors.New("server: pipeline already attached")
	}
	p, err := ingest.New(cfg, serverSink{s: s, weighting: cfg.Weighting}, state)
	if err != nil {
		return nil, err
	}
	s.pipe = p
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/ingest/stats", s.handleIngestStats)
	return p, nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	samples, err := ingest.ParseNDJSON(r.Body, maxIngestSamples)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad batch: %v", err)
		return
	}
	if len(samples) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	// IngestCtx only observes the context before the WAL append, so a
	// fired deadline can never lose an acknowledged batch.
	lsn, err := s.pipe.IngestCtx(r.Context(), samples)
	switch {
	case err == nil:
		// 202, not 200: the batch is durable but not yet queryable.
		writeJSON(w, http.StatusAccepted, map[string]interface{}{
			"lsn": lsn, "samples": len(samples),
		})
	case errors.Is(err, ingest.ErrBacklogFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, wal.ErrSealed):
		// The WAL sealed after an I/O error: ingestion is read-only
		// until an operator intervenes, but queries still serve. 503
		// without Retry-After — retrying will not help.
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ingest.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "request deadline expired before the batch was accepted")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// ingestStatsJSON extends the pipeline counters with serving-plane
// observability: epoch lifecycle (swap cadence, pinned queries) and
// result-cache efficacy. The pipeline fields stay at the top level
// (embedding), so existing consumers keep their schema.
type ingestStatsJSON struct {
	ingest.Stats
	Epoch store.EpochStats `json:"epoch"`
	Cache *cache.Stats     `json:"cache,omitempty"`
}

func (s *Server) handleIngestStats(w http.ResponseWriter, r *http.Request) {
	out := ingestStatsJSON{Stats: s.pipe.Stats(), Epoch: s.epochs.Stats()}
	if st, ok := s.CacheStats(); ok {
		out.Cache = &st
	}
	writeJSON(w, http.StatusOK, out)
}
