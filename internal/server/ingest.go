package server

import (
	"context"
	"errors"
	"net/http"

	"geofootprint/internal/core"
	"geofootprint/internal/ingest"
	"geofootprint/internal/store"
	"geofootprint/internal/wal"
)

// Streaming ingestion endpoints, active once AttachPipeline wires a
// durable pipeline to the server:
//
//	POST /v1/ingest        NDJSON sample batch; 202 + LSN on success,
//	                       429 + Retry-After under backpressure
//	GET  /v1/ingest/stats  pipeline counters
//
// The pipeline's apply goroutine lands finished RoIs through a sink
// that takes the server's write lock and incrementally maintains the
// user-centric index, so queries on all methods keep serving — and
// stay exact — while samples stream in.

// maxIngestSamples bounds one POST /v1/ingest body; clients split
// larger loads into multiple requests (and get per-batch LSNs).
const maxIngestSamples = 10000

// serverSink is the ingest.Sink that applies pipeline output to the
// serving database: mutations behind the write lock, index maintained
// per touched user — the same discipline as PUT /v1/users/{id}.
type serverSink struct {
	s         *Server
	weighting core.Weighting
}

func (k serverSink) ApplyBatch(updates []ingest.UserRoIs) {
	s := k.s
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range updates {
		i := s.db.AppendRoIs(u.User, core.FromRoIs(u.RoIs, k.weighting))
		s.idx.UpdateUser(i)
	}
}

func (k serverSink) WithDB(fn func(db *store.FootprintDB)) {
	k.s.mu.Lock()
	defer k.s.mu.Unlock()
	fn(k.s.db)
}

// AttachPipeline starts a durable ingestion pipeline over the server's
// database and registers the ingest routes. Call it once, after
// ingest.Recover has rebuilt the database the server was constructed
// over, passing the recovered state. The returned pipeline is owned by
// the caller, who must Close it on shutdown (before the HTTP listener
// stops accepting, so in-flight acks are not lost).
func (s *Server) AttachPipeline(cfg ingest.Config, state *ingest.State) (*ingest.Pipeline, error) {
	if s.pipe != nil {
		return nil, errors.New("server: pipeline already attached")
	}
	p, err := ingest.New(cfg, serverSink{s: s, weighting: cfg.Weighting}, state)
	if err != nil {
		return nil, err
	}
	s.pipe = p
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/ingest/stats", s.handleIngestStats)
	return p, nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	samples, err := ingest.ParseNDJSON(r.Body, maxIngestSamples)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad batch: %v", err)
		return
	}
	if len(samples) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	// IngestCtx only observes the context before the WAL append, so a
	// fired deadline can never lose an acknowledged batch.
	lsn, err := s.pipe.IngestCtx(r.Context(), samples)
	switch {
	case err == nil:
		// 202, not 200: the batch is durable but not yet queryable.
		writeJSON(w, http.StatusAccepted, map[string]interface{}{
			"lsn": lsn, "samples": len(samples),
		})
	case errors.Is(err, ingest.ErrBacklogFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, wal.ErrSealed):
		// The WAL sealed after an I/O error: ingestion is read-only
		// until an operator intervenes, but queries still serve. 503
		// without Retry-After — retrying will not help.
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ingest.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "request deadline expired before the batch was accepted")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleIngestStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.pipe.Stats())
}
