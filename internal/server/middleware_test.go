package server

import (
	"bytes"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// A panicking handler becomes a 500 and the server keeps serving:
// the recovery middleware catches the panic, logs the stack, and the
// next request on the same handler chain succeeds.
func TestPanicRecovery(t *testing.T) {
	s, _ := testServer(t)
	var buf bytes.Buffer
	s.opts.Logger = log.New(&buf, "", 0)
	s.mux.HandleFunc("GET /v1/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	h := s.Handler()

	rec, obj := do(t, h, "GET", "/v1/boom", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", rec.Code)
	}
	if obj["error"] == nil {
		t.Fatal("500 carried no error body")
	}
	if !strings.Contains(buf.String(), "kaboom") || !strings.Contains(buf.String(), "goroutine") {
		t.Fatalf("panic log lacks message or stack:\n%s", buf.String())
	}

	// The process (and mux) survived: a normal route still answers.
	if rec, _ := do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic returned %d, want 200", rec.Code)
	}
}

// ?timeout_ms= puts a deadline on the request context; an expired
// deadline on a query maps to 503 with Retry-After. A test route
// waits out its own deadline before running the engine, so the expiry
// path is exercised deterministically regardless of corpus size.
func TestQueryTimeoutMaps503(t *testing.T) {
	s, _ := testServer(t)
	s.mux.HandleFunc("GET /v1/slow", func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done() // the query "ran long"
		ep, v := s.acquire()
		defer ep.Release()
		eng, _ := v.Engine("")
		res, err := eng.TopKCtx(r.Context(), v.DB().Footprints[0], 3)
		if writeQueryCtxErr(w, err) {
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	h := s.Handler()

	// A generous timeout succeeds on a real route.
	rec, _ := do(t, h, "GET", "/v1/users/100/similar?k=3&timeout_ms=10000", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("similar with 10s timeout returned %d, want 200", rec.Code)
	}

	rec, obj := do(t, h, "GET", "/v1/slow?timeout_ms=1", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired query returned %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("timeout 503 without Retry-After")
	}
	if obj["error"] == nil {
		t.Fatal("timeout 503 without error body")
	}
}

// A malformed timeout_ms is rejected up front.
func TestBadTimeoutRejected(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	for _, raw := range []string{"abc", "-5", "0"} {
		rec, _ := do(t, h, "GET", "/v1/users/100/similar?timeout_ms="+raw, "")
		if rec.Code != http.StatusBadRequest {
			t.Errorf("timeout_ms=%s returned %d, want 400", raw, rec.Code)
		}
	}
}

// The admission gate sheds top-k load with 429 + Retry-After once all
// slots are held, without touching cheap routes; freeing a slot
// restores service. The slot is held directly through the channel, so
// the test is deterministic.
func TestAdmissionGateSheds(t *testing.T) {
	s, _ := testServer(t)
	s.opts.MaxInflightQueries = 1
	s.gate = make(chan struct{}, 1)
	h := s.Handler()

	s.gate <- struct{}{} // occupy the only slot
	rec, _ := do(t, h, "GET", "/v1/users/100/similar?k=3", "")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("gated route at capacity returned %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if rec, _ := do(t, h, "POST", "/v1/query", `{"k":2,"regions":[{"rect":[0,0,1,1]}]}`); rec.Code != http.StatusTooManyRequests {
		t.Fatalf("POST /v1/query at capacity returned %d, want 429", rec.Code)
	}

	// Cheap routes are not gated.
	if rec, _ := do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz at query capacity returned %d, want 200", rec.Code)
	}
	if rec, _ := do(t, h, "GET", "/v1/users/100", ""); rec.Code != http.StatusOK {
		t.Fatalf("user lookup at query capacity returned %d, want 200", rec.Code)
	}

	<-s.gate // release
	if rec, _ := do(t, h, "GET", "/v1/users/100/similar?k=3", ""); rec.Code != http.StatusOK {
		t.Fatalf("gated route after release returned %d, want 200", rec.Code)
	}
}

// While draining, every route but /healthz sheds with 503 +
// Retry-After, and /healthz reports the drain so orchestrators can
// watch the server wind down.
func TestDrainGate(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	s.SetDraining(true)
	rec, _ := do(t, h, "GET", "/v1/users/100/similar?k=3", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server returned %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("drain 503 without Retry-After")
	}
	rec, obj := do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz while draining returned %d, want 200", rec.Code)
	}
	if obj["status"] != "draining" || obj["draining"] != true {
		t.Fatalf("healthz while draining reported %v", obj)
	}

	s.SetDraining(false)
	if rec, _ := do(t, h, "GET", "/v1/users/100/similar?k=3", ""); rec.Code != http.StatusOK {
		t.Fatalf("post-drain request returned %d, want 200", rec.Code)
	}
}

// The full wrapped chain works end to end over a real listener — the
// shape geoserve runs — including a panic that must not kill the
// process.
func TestWrappedChainOverListener(t *testing.T) {
	s, _ := testServer(t)
	s.opts.Logger = log.New(io.Discard, "", 0)
	s.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("listener kaboom")
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/boom")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic over listener: %d, want 500", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/users/100/similar?k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after panic: %d, want 200", resp.StatusCode)
	}
}
