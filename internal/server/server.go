// Package server exposes a FootprintDB over HTTP/JSON: similarity
// queries, top-k search, dynamic footprint updates, and health. It is
// the integration surface a recommender or market-analysis system
// would call, wrapping the Section 5/6 machinery behind a small REST
// API.
//
// Routes (Go 1.22 pattern syntax):
//
//	GET    /healthz                  liveness + corpus size
//	GET    /v1/users/{id}            footprint summary
//	GET    /v1/users/{id}/similar    top-k similar users (?k=, ?exclude_self=, ?method=)
//	GET    /v1/similarity            pairwise score (?a=, ?b=)
//	POST   /v1/query                 top-k for an ad-hoc footprint ("method" selects the engine)
//	PUT    /v1/users/{id}            upsert a footprint (JSON body)
//	DELETE /v1/users/{id}            tombstone a user
//
// With AttachPipeline (see ingest.go):
//
//	POST   /v1/ingest                NDJSON sample batch → WAL → footprints
//	GET    /v1/ingest/stats          ingestion pipeline counters
//
// Reads run concurrently; mutations serialise behind a write lock and
// incrementally maintain the search index.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"geofootprint/internal/classify"
	"geofootprint/internal/core"
	"geofootprint/internal/engine"
	"geofootprint/internal/geom"
	"geofootprint/internal/ingest"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
)

// Server wraps a FootprintDB with a user-centric index behind HTTP.
// Top-k requests execute on the parallel query engine, which shards
// candidate refinement across workers while returning results
// byte-identical to the serial search path.
type Server struct {
	mu  sync.RWMutex
	db  *store.FootprintDB
	idx *search.UserCentricIndex
	eng *engine.QueryEngine
	// engSketch shares db and idx with eng but executes the sketch
	// filter-and-refine path; selected per request via ?method=sketch
	// (GET) or "method":"sketch" (POST). Results are identical to eng's
	// — the sketch method is exact — so the choice is purely a
	// performance knob.
	engSketch *engine.QueryEngine
	cls       *classify.Classifier // nil until SetLabels
	pipe      *ingest.Pipeline     // nil until AttachPipeline
	mux       *http.ServeMux

	// Overload safety (middleware.go): options, the top-k admission
	// gate (nil when unlimited), and the shutdown drain flag.
	opts     Options
	gate     chan struct{}
	draining atomic.Bool
}

// New builds a server over db with default overload options (no
// admission gate, default deadline cap). The sketch layer is enabled
// up front so mutations maintain it from the first request on.
func New(db *store.FootprintDB) *Server {
	return NewWithOptions(db, Options{})
}

// NewWithOptions builds a server over db, indexing it immediately,
// with explicit overload behaviour.
func NewWithOptions(db *store.FootprintDB, opts Options) *Server {
	idx := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	s := &Server{
		db:        db,
		idx:       idx,
		eng:       engine.New(db, engine.Options{UserCentric: idx}),
		engSketch: engine.New(db, engine.Options{UserCentric: idx, Method: engine.MethodSketch}),
		mux:       http.NewServeMux(),
		opts:      opts.withDefaults(),
	}
	if n := s.opts.MaxInflightQueries; n > 0 {
		s.gate = make(chan struct{}, n)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/users/{id}", s.handleGetUser)
	s.mux.HandleFunc("GET /v1/users/{id}/similar", s.gated(s.handleSimilar))
	s.mux.HandleFunc("GET /v1/similarity", s.handlePairwise)
	s.mux.HandleFunc("POST /v1/query", s.gated(s.handleQuery))
	s.mux.HandleFunc("PUT /v1/users/{id}", s.handlePutUser)
	s.mux.HandleFunc("DELETE /v1/users/{id}", s.handleDeleteUser)
	s.registerExtras()
	return s
}

// Wire types.

type regionJSON struct {
	Rect   [4]float64 `json:"rect"` // [minx, miny, maxx, maxy]
	Weight float64    `json:"weight"`
}

type userJSON struct {
	ID      int          `json:"id"`
	Regions []regionJSON `json:"regions"`
	Norm    float64      `json:"norm"`
	MBR     [4]float64   `json:"mbr"`
}

type resultJSON struct {
	ID         int     `json:"id"`
	Similarity float64 `json:"similarity"`
}

type queryJSON struct {
	Regions []regionJSON `json:"regions"`
	K       int          `json:"k"`
	// Method selects the search path: "" or "user-centric" for the
	// default engine, "sketch" for the sketch filter-and-refine engine.
	Method string `json:"method,omitempty"`
}

// engineFor maps a request's method name to the engine executing it.
func (s *Server) engineFor(method string) (*engine.QueryEngine, error) {
	switch method {
	case "", "user-centric":
		return s.eng, nil
	case "sketch":
		return s.engSketch, nil
	default:
		return nil, fmt.Errorf("unknown method %q (want \"user-centric\" or \"sketch\")", method)
	}
}

type errorJSON struct {
	Error string `json:"error"`
}

func toFootprint(regs []regionJSON) (core.Footprint, error) {
	f := make(core.Footprint, 0, len(regs))
	for i, r := range regs {
		if r.Rect[0] > r.Rect[2] || r.Rect[1] > r.Rect[3] {
			return nil, fmt.Errorf("region %d: inverted rectangle", i)
		}
		w := r.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return nil, fmt.Errorf("region %d: negative weight", i)
		}
		f = append(f, core.Region{
			Rect:   geom.Rect{MinX: r.Rect[0], MinY: r.Rect[1], MaxX: r.Rect[2], MaxY: r.Rect[3]},
			Weight: w,
		})
	}
	core.SortByMinX(f)
	return f, nil
}

func fromFootprint(f core.Footprint) []regionJSON {
	out := make([]regionJSON, len(f))
	for i, r := range f {
		out[i] = regionJSON{
			Rect:   [4]float64{r.Rect.MinX, r.Rect.MinY, r.Rect.MaxX, r.Rect.MaxY},
			Weight: r.Weight,
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	users, regions := s.db.Len(), s.db.NumRegions()
	s.mu.RUnlock()
	out := map[string]interface{}{
		"status": "ok", "users": users, "regions": regions,
	}
	// Surface WAL health here, not just in /v1/ingest/stats: a sealed
	// log means the server still answers queries but cannot make new
	// writes durable, and that must be visible to the shallowest
	// possible probe.
	if s.pipe != nil {
		if werr := s.pipe.WALErr(); werr != nil {
			out["status"] = "degraded"
			out["wal_sealed"] = true
			out["wal_error"] = werr.Error()
		}
	}
	if s.draining.Load() {
		out["status"] = "draining"
		out["draining"] = true
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) userID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (s *Server) handleGetUser(w http.ResponseWriter, r *http.Request) {
	id, err := s.userID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id: %v", err)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.db.IndexOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown user %d", id)
		return
	}
	m := s.db.MBRs[i]
	writeJSON(w, http.StatusOK, userJSON{
		ID:      id,
		Regions: fromFootprint(s.db.Footprints[i]),
		Norm:    s.db.Norms[i],
		MBR:     [4]float64{m.MinX, m.MinY, m.MaxX, m.MaxY},
	})
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	id, err := s.userID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id: %v", err)
		return
	}
	k := 5
	if kq := r.URL.Query().Get("k"); kq != "" {
		if k, err = strconv.Atoi(kq); err != nil || k < 1 || k > 1000 {
			writeError(w, http.StatusBadRequest, "bad k %q", kq)
			return
		}
	}
	excludeSelf := r.URL.Query().Get("exclude_self") == "true"
	eng, err := s.engineFor(r.URL.Query().Get("method"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.db.IndexOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown user %d", id)
		return
	}
	want := k
	if excludeSelf {
		want++
	}
	res, err := eng.TopKCtx(r.Context(), s.db.Footprints[i], want)
	if writeQueryCtxErr(w, err) {
		return
	}
	out := make([]resultJSON, 0, k)
	for _, rr := range res {
		if excludeSelf && rr.ID == id {
			continue
		}
		out = append(out, resultJSON{ID: rr.ID, Similarity: rr.Score})
		if len(out) == k {
			break
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePairwise(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	a, errA := strconv.Atoi(q.Get("a"))
	b, errB := strconv.Atoi(q.Get("b"))
	if errA != nil || errB != nil {
		writeError(w, http.StatusBadRequest, "need integer ?a= and ?b=")
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ia, okA := s.db.IndexOf(a)
	ib, okB := s.db.IndexOf(b)
	if !okA || !okB {
		writeError(w, http.StatusNotFound, "unknown user")
		return
	}
	sim := core.SimilarityJoin(s.db.Footprints[ia], s.db.Footprints[ib],
		s.db.Norms[ia], s.db.Norms[ib])
	writeJSON(w, http.StatusOK, map[string]float64{"similarity": sim})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q queryJSON
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if q.K < 1 || q.K > 1000 {
		writeError(w, http.StatusBadRequest, "k must be in [1,1000], got %d", q.K)
		return
	}
	f, err := toFootprint(q.Regions)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad footprint: %v", err)
		return
	}
	eng, err := s.engineFor(q.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	res, err := eng.TopKCtx(r.Context(), f, q.K)
	s.mu.RUnlock()
	if writeQueryCtxErr(w, err) {
		return
	}
	out := make([]resultJSON, len(res))
	for i, rr := range res {
		out[i] = resultJSON{ID: rr.ID, Similarity: rr.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePutUser(w http.ResponseWriter, r *http.Request) {
	id, err := s.userID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id: %v", err)
		return
	}
	var regs []regionJSON
	if err := json.NewDecoder(r.Body).Decode(&regs); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	f, err := toFootprint(regs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad footprint: %v", err)
		return
	}
	s.mu.Lock()
	u := s.db.Upsert(id, f)
	s.idx.UpdateUser(u)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{"id": id, "regions": len(f)})
}

func (s *Server) handleDeleteUser(w http.ResponseWriter, r *http.Request) {
	id, err := s.userID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// A tombstoned user still resolves in the database (dense
	// indexes stay stable); treat an already-empty footprint as
	// absent so deletes are not silently idempotent.
	u, ok := s.db.IndexOf(id)
	if !ok || len(s.db.Footprints[u]) == 0 {
		writeError(w, http.StatusNotFound, "unknown user %d", id)
		return
	}
	s.db.Remove(id)
	s.idx.UpdateUser(u)
	writeJSON(w, http.StatusOK, map[string]interface{}{"id": id, "deleted": true})
}
