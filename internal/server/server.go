// Package server exposes a FootprintDB over HTTP/JSON: similarity
// queries, top-k search, dynamic footprint updates, and health. It is
// the integration surface a recommender or market-analysis system
// would call, wrapping the Section 5/6 machinery behind a small REST
// API.
//
// Routes (Go 1.22 pattern syntax):
//
//	GET    /healthz                  liveness + corpus size + epoch/cache stats
//	GET    /v1/users/{id}            footprint summary
//	GET    /v1/users/{id}/similar    top-k similar users (?k=, ?exclude_self=, ?method=)
//	GET    /v1/similarity            pairwise score (?a=, ?b=)
//	POST   /v1/query                 top-k for an ad-hoc footprint ("method" selects the engine)
//	PUT    /v1/users/{id}            upsert a footprint (JSON body)
//	DELETE /v1/users/{id}            tombstone a user
//
// With AttachPipeline (see ingest.go):
//
//	POST   /v1/ingest                NDJSON sample batch → WAL → footprints
//	GET    /v1/ingest/stats          ingestion pipeline + epoch + cache counters
//
// Serving is epoch-based MVCC (store.EpochStore): every query pins the
// current immutable epoch on entry and runs lock-free against its
// frozen database, index and engines; mutations serialise behind a
// write mutex, apply to a private builder, and publish the next epoch
// with one atomic pointer swap — so reads never contend with writes,
// and a swap is immediately visible to the next query (read your
// writes). Top-k answers are cached per epoch (internal/cache) when a
// cache is configured; the swap invalidates the cache wholesale.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"

	"geofootprint/internal/cache"
	"geofootprint/internal/classify"
	"geofootprint/internal/core"
	"geofootprint/internal/engine"
	"geofootprint/internal/geom"
	"geofootprint/internal/ingest"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
)

// Server wraps a FootprintDB behind HTTP with epoch-based MVCC
// serving: queries pin an immutable published epoch (lock-free),
// mutations go through the epoch builder under mu and publish a new
// epoch per request or ingest batch.
type Server struct {
	// mu serialises the write path only: builder mutations, Freeze,
	// Publish, and label installation. No read path ever takes it.
	mu      sync.Mutex
	builder *store.EpochBuilder
	epochs  *store.EpochStore
	cache   *cache.Cache // nil when Options.CacheSize <= 0

	// labels back /v1/classify (SetLabels); a classifier over each
	// epoch's view is rebuilt at publish time.
	labels  map[int]string
	labelsK int

	pipe *ingest.Pipeline // nil until AttachPipeline
	mux  *http.ServeMux

	// segRings memoises the ring rebuilt for segment-restricted
	// queries (segment.go); every sub-query from the same router map
	// hits the one cached entry.
	segRings segRingCache

	// Overload safety (middleware.go): options, the top-k admission
	// gate (nil when unlimited), and the shutdown drain flag.
	opts     Options
	gate     chan struct{}
	draining atomic.Bool

	// snapErr records that startup recovery found the on-disk snapshot
	// corrupt and the operator chose to serve anyway (geoserve
	// -allow-corrupt-snapshot): the server runs on a rebuilt or empty
	// database, /healthz reports degraded until a fresh checkpoint
	// replaces the damaged file. Set once before serving starts.
	snapErr error
}

// SetSnapshotError marks the server as running despite a corrupt
// durable snapshot; /healthz reports status "degraded" with
// snapshot_corrupt until the damaged file has been rewritten. Call
// before the listener starts (the field is read without a lock).
func (s *Server) SetSnapshotError(err error) { s.snapErr = err }

// epochView is the aux value attached to every published epoch: the
// prebuilt index/engine view plus the optional classifier. Immutable
// after publish, shared lock-free by all queries pinning the epoch.
type epochView struct {
	*engine.View
	cls *classify.Classifier // nil until SetLabels
}

// New builds a server over db with default overload options (no
// admission gate, default deadline cap, no result cache). The sketch
// layer is enabled up front — before the first epoch freezes — so
// every epoch carries a sketch engine and mutations maintain the
// layer from the first request on.
func New(db *store.FootprintDB) *Server {
	return NewWithOptions(db, Options{})
}

// NewWithOptions builds a server over db, publishing the first epoch
// immediately, with explicit overload and caching behaviour.
func NewWithOptions(db *store.FootprintDB, opts Options) *Server {
	s := &Server{
		builder: store.NewEpochBuilder(db),
		epochs:  store.NewEpochStore(),
		mux:     http.NewServeMux(),
		opts:    opts.withDefaults(),
	}
	if n := s.opts.MaxInflightQueries; n > 0 {
		s.gate = make(chan struct{}, n)
	}
	if n := s.opts.CacheSize; n > 0 {
		s.cache = cache.New(n)
	}
	// The sketch layer must exist before the first freeze: published
	// epochs are immutable, so it cannot be enabled retroactively.
	if !db.SketchesEnabled() {
		s.builder.EnableSketches(0, 0)
	}
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/users/{id}", s.handleGetUser)
	s.mux.HandleFunc("GET /v1/users/{id}/similar", s.gated(s.handleSimilar))
	s.mux.HandleFunc("GET /v1/similarity", s.handlePairwise)
	s.mux.HandleFunc("POST /v1/query", s.gated(s.handleQuery))
	s.mux.HandleFunc("PUT /v1/users/{id}", s.handlePutUser)
	s.mux.HandleFunc("DELETE /v1/users/{id}", s.handleDeleteUser)
	s.registerExtras()
	return s
}

// publishLocked freezes the builder, assembles the epoch's serving
// view (index, engines, classifier), publishes it with one pointer
// swap, and invalidates the result cache. Caller holds s.mu. Building
// the view happens here — on the write path — precisely so the query
// path never constructs or locks anything.
func (s *Server) publishLocked() {
	db := s.builder.Freeze()
	v := engine.NewView(db, 0)
	aux := &epochView{View: v}
	if s.labels != nil {
		// Validated when installed; classify.New over a fresh view of
		// the same labels can only fail if every labelled user vanished,
		// in which case classification correctly degrades to 503.
		if cls, err := classify.New(db, v.Index(), s.labels, s.labelsK); err == nil {
			aux.cls = cls
		}
	}
	ep := s.epochs.Publish(db, aux)
	if s.cache != nil {
		s.cache.Purge(ep.Seq())
	}
}

// acquire pins the current epoch for one request. The caller must
// Release the epoch when done (defer at handler entry). This is the
// only synchronisation on the query hot path.
func (s *Server) acquire() (*store.Epoch, *epochView) {
	ep := s.epochs.Acquire()
	return ep, ep.Aux().(*epochView)
}

// EpochStats returns the serving plane's epoch lifecycle counters.
func (s *Server) EpochStats() store.EpochStats { return s.epochs.Stats() }

// CacheStats returns the result-cache counters; ok is false when no
// cache is configured.
func (s *Server) CacheStats() (cache.Stats, bool) {
	if s.cache == nil {
		return cache.Stats{}, false
	}
	return s.cache.Stats(), true
}

// Wire types.

type regionJSON struct {
	Rect   [4]float64 `json:"rect"` // [minx, miny, maxx, maxy]
	Weight float64    `json:"weight"`
}

type userJSON struct {
	ID      int          `json:"id"`
	Regions []regionJSON `json:"regions"`
	Norm    float64      `json:"norm"`
	MBR     [4]float64   `json:"mbr"`
}

type resultJSON struct {
	ID         int     `json:"id"`
	Similarity float64 `json:"similarity"`
}

type queryJSON struct {
	Regions []regionJSON `json:"regions"`
	K       int          `json:"k"`
	// Method selects the search path: "" or "user-centric" for the
	// default engine, "linear", "iterative" or "batch" for the other
	// Section 6 methods, "sketch" for the sketch filter-and-refine
	// engine. All return identical rankings; they differ in cost.
	Method string `json:"method,omitempty"`
	// Segment, when set, restricts the answer to the users whose
	// replica tuple equals the segment (segment.go). Segment answers
	// bypass the result cache and always score through the canonical
	// kernel, so they are exact for every method.
	Segment *segmentJSON `json:"segment,omitempty"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func toFootprint(regs []regionJSON) (core.Footprint, error) {
	f := make(core.Footprint, 0, len(regs))
	for i, r := range regs {
		if r.Rect[0] > r.Rect[2] || r.Rect[1] > r.Rect[3] {
			return nil, fmt.Errorf("region %d: inverted rectangle", i)
		}
		w := r.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return nil, fmt.Errorf("region %d: negative weight", i)
		}
		f = append(f, core.Region{
			Rect:   geom.Rect{MinX: r.Rect[0], MinY: r.Rect[1], MaxX: r.Rect[2], MaxY: r.Rect[3]},
			Weight: w,
		})
	}
	core.SortByMinX(f)
	return f, nil
}

func fromFootprint(f core.Footprint) []regionJSON {
	out := make([]regionJSON, len(f))
	for i, r := range f {
		out[i] = regionJSON{
			Rect:   [4]float64{r.Rect.MinX, r.Rect.MinY, r.Rect.MaxX, r.Rect.MaxY},
			Weight: r.Weight,
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	ep, v := s.acquire()
	users, regions, seq := v.DB().Len(), v.DB().NumRegions(), ep.Seq()
	ep.Release()
	out := map[string]interface{}{
		"status": "ok", "users": users, "regions": regions,
		"epoch": s.epochs.Stats(),
		// epoch_seq is the epoch this probe actually pinned — flat, so
		// the router can log which epoch answered without digging into
		// the stats object.
		"epoch_seq": seq,
	}
	if s.opts.ShardID != "" {
		// The router cross-checks this against its shard map: a
		// mismatch means the address points at the wrong process.
		out["shard_id"] = s.opts.ShardID
	}
	if st, ok := s.CacheStats(); ok {
		out["cache"] = st
	}
	// Surface WAL health here, not just in /v1/ingest/stats: a sealed
	// log means the server still answers queries but cannot make new
	// writes durable, and that must be visible to the shallowest
	// possible probe.
	if s.pipe != nil {
		// ingest_seq is the last WAL LSN this shard made durable. The
		// router compares it against the LSNs it saw acked: a replica
		// reporting a lower seq than its acked high-water mark lost
		// writes (restore from an older snapshot) and is stale for
		// reads until it catches back up.
		out["ingest_seq"] = s.pipe.Stats().Appended
		if werr := s.pipe.WALErr(); werr != nil {
			out["status"] = "degraded"
			out["wal_sealed"] = true
			out["wal_error"] = werr.Error()
		}
	}
	// A corrupt snapshot the operator chose to serve past is the same
	// class of signal as a sealed WAL: the data plane answers, the
	// durability story is damaged, and probes must see it.
	if s.snapErr != nil {
		out["status"] = "degraded"
		out["snapshot_corrupt"] = true
		out["snapshot_error"] = s.snapErr.Error()
	}
	if s.draining.Load() {
		out["status"] = "draining"
		out["draining"] = true
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) userID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (s *Server) handleGetUser(w http.ResponseWriter, r *http.Request) {
	id, err := s.userID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id: %v", err)
		return
	}
	ep, v := s.acquire()
	defer ep.Release()
	db := v.DB()
	i, ok := db.IndexOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown user %d", id)
		return
	}
	m := db.MBRs[i]
	writeJSON(w, http.StatusOK, userJSON{
		ID:      id,
		Regions: fromFootprint(db.Footprints[i]),
		Norm:    db.Norms[i],
		MBR:     [4]float64{m.MinX, m.MinY, m.MaxX, m.MaxY},
	})
}

func (s *Server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	id, err := s.userID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id: %v", err)
		return
	}
	k := 5
	if kq := r.URL.Query().Get("k"); kq != "" {
		if k, err = strconv.Atoi(kq); err != nil || k < 1 || k > 1000 {
			writeError(w, http.StatusBadRequest, "bad k %q", kq)
			return
		}
	}
	excludeSelf := r.URL.Query().Get("exclude_self") == "true"
	method := r.URL.Query().Get("method")

	ep, v := s.acquire()
	defer ep.Release()
	i, ok := v.DB().IndexOf(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown user %d", id)
		return
	}
	want := k
	if excludeSelf {
		want++
	}
	res, _, err := v.TopKCached(r.Context(), s.cache, ep.Seq(), method, v.DB().Footprints[i], want)
	if err != nil {
		if _, methodErr := v.Engine(method); methodErr != nil {
			writeError(w, http.StatusBadRequest, "%v", methodErr)
			return
		}
		if writeQueryCtxErr(w, err) {
			return
		}
	}
	out := make([]resultJSON, 0, k)
	for _, rr := range res {
		if excludeSelf && rr.ID == id {
			continue
		}
		out = append(out, resultJSON{ID: rr.ID, Similarity: rr.Score})
		if len(out) == k {
			break
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePairwise(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	a, errA := strconv.Atoi(q.Get("a"))
	b, errB := strconv.Atoi(q.Get("b"))
	if errA != nil || errB != nil {
		writeError(w, http.StatusBadRequest, "need integer ?a= and ?b=")
		return
	}
	ep, v := s.acquire()
	defer ep.Release()
	db := v.DB()
	ia, okA := db.IndexOf(a)
	ib, okB := db.IndexOf(b)
	if !okA || !okB {
		writeError(w, http.StatusNotFound, "unknown user")
		return
	}
	sim := db.UserSimilarity(ia, db.Footprints[ib], db.Norms[ib])
	writeJSON(w, http.StatusOK, map[string]float64{"similarity": sim})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var q queryJSON
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if q.K < 1 || q.K > 1000 {
		writeError(w, http.StatusBadRequest, "k must be in [1,1000], got %d", q.K)
		return
	}
	f, err := toFootprint(q.Regions)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad footprint: %v", err)
		return
	}
	ep, v := s.acquire()
	defer ep.Release()
	// Reject unknown methods on the segment path too, so replicated
	// clusters keep the single-node API contract.
	if _, methodErr := v.Engine(q.Method); methodErr != nil {
		writeError(w, http.StatusBadRequest, "%v", methodErr)
		return
	}
	var res []search.Result
	if q.Segment != nil {
		res, err = s.segmentTopK(r.Context(), v, q.Segment, f, q.K)
		if err != nil {
			if errors.Is(err, errBadSegment) {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			if writeQueryCtxErr(w, err) {
				return
			}
		}
	} else {
		res, _, err = v.TopKCached(r.Context(), s.cache, ep.Seq(), q.Method, f, q.K)
		if err != nil && writeQueryCtxErr(w, err) {
			return
		}
	}
	out := make([]resultJSON, len(res))
	for i, rr := range res {
		out[i] = resultJSON{ID: rr.ID, Similarity: rr.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePutUser(w http.ResponseWriter, r *http.Request) {
	id, err := s.userID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id: %v", err)
		return
	}
	var regs []regionJSON
	if err := json.NewDecoder(r.Body).Decode(&regs); err != nil {
		writeError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	f, err := toFootprint(regs)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad footprint: %v", err)
		return
	}
	s.mu.Lock()
	s.builder.Upsert(id, f)
	s.publishLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]interface{}{"id": id, "regions": len(f)})
}

func (s *Server) handleDeleteUser(w http.ResponseWriter, r *http.Request) {
	id, err := s.userID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad user id: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// A tombstoned user still resolves in the database (dense
	// indexes stay stable); treat an already-empty footprint as
	// absent so deletes are not silently idempotent.
	db := s.builder.DB()
	u, ok := db.IndexOf(id)
	if !ok || len(db.Footprints[u]) == 0 {
		writeError(w, http.StatusNotFound, "unknown user %d", id)
		return
	}
	s.builder.Remove(id)
	s.publishLocked()
	writeJSON(w, http.StatusOK, map[string]interface{}{"id": id, "deleted": true})
}
