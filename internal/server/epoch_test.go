package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
	"geofootprint/internal/store"
)

// testCorpus rebuilds the deterministic corpus testServer serves
// (fixed seed), so two servers constructed from separate calls answer
// byte-identically.
func testCorpus(t *testing.T) *store.FootprintDB {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var fps []core.Footprint
	var ids []int
	for u := 0; u < 30; u++ {
		cx, cy := rng.Float64()*0.8, rng.Float64()*0.8
		f := core.Footprint{}
		for r := 0; r < 3; r++ {
			x, y := cx+rng.Float64()*0.05, cy+rng.Float64()*0.05
			f = append(f, core.Region{
				Rect:   geom.Rect{MinX: x, MinY: y, MaxX: x + 0.02, MaxY: y + 0.02},
				Weight: 1,
			})
		}
		core.SortByMinX(f)
		fps = append(fps, f)
		ids = append(ids, u+100)
	}
	db, err := store.FromFootprints("srv", ids, fps)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// Cached answers over HTTP are byte-identical to uncached ones on both
// HTTP-selectable methods, hits actually happen, and an epoch swap
// (PUT) invalidates the cache so post-swap answers reflect the new
// corpus on both servers identically.
func TestCacheCorrectnessOverHTTP(t *testing.T) {
	plain, _ := testServer(t)
	cachedSrv := NewWithOptions(testCorpus(t), Options{CacheSize: 64})
	hp, hc := plain.Handler(), cachedSrv.Handler()

	paths := []string{
		"/v1/users/105/similar?k=5",
		"/v1/users/105/similar?k=5&method=sketch",
		"/v1/users/110/similar?k=3&exclude_self=true",
	}
	body := `{"regions":[{"rect":[0.1,0.1,0.6,0.6]}],"k":5}`

	check := func(stage string) {
		t.Helper()
		for _, p := range paths {
			recP, _ := do(t, hp, "GET", p, "")
			recC1, _ := do(t, hc, "GET", p, "")
			recC2, _ := do(t, hc, "GET", p, "") // warm: served from cache
			if recP.Code != http.StatusOK || recC1.Code != http.StatusOK {
				t.Fatalf("%s: GET %s: %d / %d", stage, p, recP.Code, recC1.Code)
			}
			if recP.Body.String() != recC1.Body.String() {
				t.Fatalf("%s: cached server diverged on %s (cold):\n%s\nvs\n%s",
					stage, p, recP.Body.String(), recC1.Body.String())
			}
			if recC1.Body.String() != recC2.Body.String() {
				t.Fatalf("%s: cache hit not byte-identical on %s", stage, p)
			}
		}
		recP, _ := do(t, hp, "POST", "/v1/query", body)
		recC, _ := do(t, hc, "POST", "/v1/query", body)
		if recP.Body.String() != recC.Body.String() {
			t.Fatalf("%s: POST /v1/query diverged", stage)
		}
	}

	check("pre-swap")
	st, ok := cachedSrv.CacheStats()
	if !ok {
		t.Fatal("cache configured but CacheStats not ok")
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache never exercised: %+v", st)
	}

	// Mutate a user the queries rank: the swap must purge the cache on
	// the cached server, and both servers must agree afterwards.
	put := `[{"rect":[0.1,0.1,0.62,0.62],"weight":3}]`
	for _, h := range []http.Handler{hp, hc} {
		if rec, _ := do(t, h, "PUT", "/v1/users/105", put); rec.Code != http.StatusOK {
			t.Fatalf("PUT: %d", rec.Code)
		}
	}
	check("post-swap")
	st2, _ := cachedSrv.CacheStats()
	if st2.Purged == 0 {
		t.Fatalf("swap did not purge the cache: %+v", st2)
	}
}

// Queries race PUT-driven epoch swaps on a cached server; every
// response must be well-formed, and the cache/epoch accounting must
// come out balanced (no leaked pins, all retired epochs reclaimed).
// Runs under -race via make chaos.
func TestEpochSwapStressChaos(t *testing.T) {
	s := NewWithOptions(testCorpus(t), Options{CacheSize: 32})
	h := s.Handler()

	stop := make(chan struct{})
	fail := make(chan string, 16)
	report := func(format string, args ...interface{}) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			paths := []string{
				fmt.Sprintf("/v1/users/%d/similar?k=4", 100+g),
				fmt.Sprintf("/v1/users/%d/similar?k=4&method=sketch", 103+g),
				"/v1/users?limit=5",
				"/healthz",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec, _ := do(t, h, "GET", paths[i%len(paths)], "")
				if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
					report("GET %s: status %d: %s", paths[i%len(paths)], rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := 100 + i%20
			x := float64(i%7)/10 + 0.05
			body := fmt.Sprintf(`[{"rect":[%g,%g,%g,%g],"weight":2}]`, x, x, x+0.04, x+0.04)
			if rec, _ := do(t, h, "PUT", fmt.Sprintf("/v1/users/%d", id), body); rec.Code != http.StatusOK {
				report("PUT %d: status %d", id, rec.Code)
				return
			}
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	est := s.EpochStats()
	if est.Pins != 0 {
		t.Fatalf("pins leaked: %+v", est)
	}
	if est.Live != 1 {
		t.Fatalf("retired epochs not reclaimed: %+v", est)
	}
	if est.Published < 5 {
		t.Fatalf("no swaps happened: %+v", est)
	}
	cst, _ := s.CacheStats()
	if cst.Misses == 0 {
		t.Fatalf("cache never used: %+v", cst)
	}

	// /v1/ingest/stats needs a pipeline; /healthz must already carry
	// epoch and cache observability.
	_, obj := do(t, h, "GET", "/healthz", "")
	ep, ok := obj["epoch"].(map[string]interface{})
	if !ok || ep["seq"].(float64) < 5 {
		t.Fatalf("healthz epoch stats missing or stale: %v", obj)
	}
	if _, ok := obj["cache"].(map[string]interface{}); !ok {
		t.Fatalf("healthz cache stats missing: %v", obj)
	}
}
