package server

import (
	"net/http"
	"testing"
)

func TestListUsers(t *testing.T) {
	s, db := testServer(t) // 30 users
	h := s.Handler()

	rec, obj := do(t, h, "GET", "/v1/users?limit=10", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if int(obj["total"].(float64)) != db.Len() {
		t.Errorf("total = %v", obj["total"])
	}
	users := obj["users"].([]interface{})
	if len(users) != 10 {
		t.Fatalf("page size %d", len(users))
	}
	next := int(obj["next"].(float64))
	if next != 10 {
		t.Fatalf("next = %d", next)
	}
	// Walk all pages; collect IDs.
	seen := map[int]bool{}
	offset := 0
	for pages := 0; pages < 10; pages++ {
		rec, obj := do(t, h, "GET", "/v1/users?limit=10&offset="+itoa(offset), "")
		if rec.Code != http.StatusOK {
			t.Fatalf("page status %d", rec.Code)
		}
		for _, u := range obj["users"].([]interface{}) {
			id := int(u.(map[string]interface{})["id"].(float64))
			if seen[id] {
				t.Fatalf("duplicate user %d across pages", id)
			}
			seen[id] = true
		}
		n := int(obj["next"].(float64))
		if n == -1 {
			break
		}
		offset = n
	}
	if len(seen) != db.Len() {
		t.Errorf("pagination visited %d users, want %d", len(seen), db.Len())
	}
	// Tombstoned users disappear from listings.
	do(t, h, "DELETE", "/v1/users/100", "")
	_, obj = do(t, h, "GET", "/v1/users?limit=1000", "")
	for _, u := range obj["users"].([]interface{}) {
		if int(u.(map[string]interface{})["id"].(float64)) == 100 {
			t.Error("tombstoned user listed")
		}
	}
	// Bad params.
	for _, bad := range []string{"?offset=-1", "?limit=0", "?limit=5000", "?offset=x"} {
		rec, _ := do(t, h, "GET", "/v1/users"+bad, "")
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s status %d", bad, rec.Code)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
