package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/store"
)

func testServer(t *testing.T) (*Server, *store.FootprintDB) {
	t.Helper()
	db := testCorpus(t) // epoch_test.go: the deterministic seed corpus
	return New(db), db
}

func do(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]interface{}) {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var obj map[string]interface{}
	json.Unmarshal(rec.Body.Bytes(), &obj)
	return rec, obj
}

func doList(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, []map[string]interface{}) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var list []map[string]interface{}
	json.Unmarshal(rec.Body.Bytes(), &list)
	return rec, list
}

func TestHealth(t *testing.T) {
	s, db := testServer(t)
	rec, obj := do(t, s.Handler(), "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if obj["status"] != "ok" || int(obj["users"].(float64)) != db.Len() {
		t.Errorf("health = %v", obj)
	}
}

func TestGetUser(t *testing.T) {
	s, db := testServer(t)
	rec, obj := do(t, s.Handler(), "GET", "/v1/users/105", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, obj)
	}
	i, _ := db.IndexOf(105)
	if int(obj["id"].(float64)) != 105 {
		t.Errorf("id = %v", obj["id"])
	}
	if regs := obj["regions"].([]interface{}); len(regs) != len(db.Footprints[i]) {
		t.Errorf("regions = %d, want %d", len(regs), len(db.Footprints[i]))
	}
	// Unknown user.
	rec, _ = do(t, s.Handler(), "GET", "/v1/users/999", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown user status %d", rec.Code)
	}
	// Malformed id.
	rec, _ = do(t, s.Handler(), "GET", "/v1/users/xyz", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad id status %d", rec.Code)
	}
}

func TestSimilar(t *testing.T) {
	s, _ := testServer(t)
	rec, list := doList(t, s.Handler(), "GET", "/v1/users/105/similar?k=3", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if len(list) == 0 {
		t.Fatal("no results")
	}
	// Self ranks first with similarity 1.
	if int(list[0]["id"].(float64)) != 105 || list[0]["similarity"].(float64) < 1-1e-9 {
		t.Errorf("first result = %v", list[0])
	}
	// exclude_self drops it.
	_, list = doList(t, s.Handler(), "GET", "/v1/users/105/similar?k=3&exclude_self=true", "")
	for _, r := range list {
		if int(r["id"].(float64)) == 105 {
			t.Error("self returned despite exclude_self")
		}
	}
	// Bad k.
	rec, _ = do(t, s.Handler(), "GET", "/v1/users/105/similar?k=0", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("k=0 status %d", rec.Code)
	}
}

func TestPairwise(t *testing.T) {
	s, db := testServer(t)
	rec, obj := do(t, s.Handler(), "GET", "/v1/similarity?a=100&b=100", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if sim := obj["similarity"].(float64); sim < 1-1e-9 {
		t.Errorf("self similarity = %v", sim)
	}
	// Consistent with the library.
	rec, obj = do(t, s.Handler(), "GET", "/v1/similarity?a=100&b=101", "")
	if rec.Code != http.StatusOK {
		t.Fatal("pairwise failed")
	}
	ia, _ := db.IndexOf(100)
	ib, _ := db.IndexOf(101)
	want := core.SimilarityJoin(db.Footprints[ia], db.Footprints[ib], db.Norms[ia], db.Norms[ib])
	if got := obj["similarity"].(float64); got != want {
		t.Errorf("similarity = %v, want %v", got, want)
	}
	rec, _ = do(t, s.Handler(), "GET", "/v1/similarity?a=100", "")
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing b status %d", rec.Code)
	}
	rec, _ = do(t, s.Handler(), "GET", "/v1/similarity?a=100&b=9999", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown b status %d", rec.Code)
	}
}

func TestAdHocQuery(t *testing.T) {
	s, db := testServer(t)
	// Query with user 100's own footprint: it must rank first.
	i, _ := db.IndexOf(100)
	regs := fromFootprint(db.Footprints[i])
	body, _ := json.Marshal(queryJSON{Regions: regs, K: 3})
	rec, list := doList(t, s.Handler(), "POST", "/v1/query", string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if len(list) == 0 || int(list[0]["id"].(float64)) != 100 {
		t.Errorf("results = %v", list)
	}
	// Bad bodies.
	for _, bad := range []string{
		"not json",
		`{"regions":[],"k":0}`,
		`{"regions":[{"rect":[1,0,0,1],"weight":1}],"k":3}`,  // inverted
		`{"regions":[{"rect":[0,0,1,1],"weight":-2}],"k":3}`, // negative weight
	} {
		rec, _ := do(t, s.Handler(), "POST", "/v1/query", bad)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d", bad, rec.Code)
		}
	}
}

func TestPutAndDelete(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()

	// Create a new user via PUT.
	body := `[{"rect":[0.4,0.4,0.42,0.42],"weight":2}]`
	rec, obj := do(t, h, "PUT", "/v1/users/777", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("PUT status %d: %v", rec.Code, obj)
	}
	// The new user is immediately searchable.
	qbody := `{"regions":[{"rect":[0.4,0.4,0.42,0.42],"weight":1}],"k":1}`
	_, list := doList(t, h, "POST", "/v1/query", qbody)
	if len(list) == 0 || int(list[0]["id"].(float64)) != 777 {
		t.Fatalf("new user not searchable: %v", list)
	}
	// Delete tombstones it.
	rec, _ = do(t, h, "DELETE", "/v1/users/777", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("DELETE status %d", rec.Code)
	}
	_, list = doList(t, h, "POST", "/v1/query", qbody)
	for _, r := range list {
		if int(r["id"].(float64)) == 777 {
			t.Error("deleted user still searchable")
		}
	}
	// Deleting again 404s.
	rec, _ = do(t, h, "DELETE", "/v1/users/777", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("double delete status %d", rec.Code)
	}
}

func TestConcurrentReadsAndWrites(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	done := make(chan struct{})
	errs := make(chan string, 100)
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				switch i % 3 {
				case 0:
					rec, _ := do(t, h, "GET", "/v1/users/105/similar?k=3", "")
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("similar: %d", rec.Code)
					}
				case 1:
					id := 2000 + g*100 + i
					body := fmt.Sprintf(`[{"rect":[0.1,0.1,0.12,0.12],"weight":1}]`)
					rec, _ := do(t, h, "PUT", fmt.Sprintf("/v1/users/%d", id), body)
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("put: %d", rec.Code)
					}
				default:
					rec, _ := do(t, h, "GET", "/healthz", "")
					if rec.Code != http.StatusOK {
						errs <- fmt.Sprintf("health: %d", rec.Code)
					}
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
