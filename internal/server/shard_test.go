package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// /healthz must carry the shard identity and the pinned epoch when
// the instance runs as part of a sharded deployment — the router's
// shard-map cross-check and epoch logging both read them.
func TestHealthShardFields(t *testing.T) {
	db := testCorpus(t)
	s := NewWithOptions(db, Options{ShardID: "shard-7"})
	rec, obj := do(t, s.Handler(), "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if obj["shard_id"] != "shard-7" {
		t.Errorf("shard_id = %v, want shard-7", obj["shard_id"])
	}
	seq, ok := obj["epoch_seq"].(float64)
	if !ok || seq < 1 {
		t.Errorf("epoch_seq = %v, want >= 1", obj["epoch_seq"])
	}

	// A mutation publishes a new epoch, and the flat field tracks it.
	body := `[{"rect":[0.1,0.1,0.2,0.2],"weight":2}]`
	if rec, _ := do(t, s.Handler(), "PUT", "/v1/users/4242", body); rec.Code != http.StatusOK {
		t.Fatalf("PUT status %d", rec.Code)
	}
	_, obj2 := do(t, s.Handler(), "GET", "/healthz", "")
	if obj2["epoch_seq"].(float64) <= seq {
		t.Errorf("epoch_seq did not advance after a publish: %v -> %v", seq, obj2["epoch_seq"])
	}

	// Single-node deployments (no -shard-id) must not grow a
	// shard_id field clients could misread as topology.
	s2, _ := testServer(t)
	_, solo := do(t, s2.Handler(), "GET", "/healthz", "")
	if _, present := solo["shard_id"]; present {
		t.Errorf("shard_id present without Options.ShardID: %v", solo["shard_id"])
	}
	if _, ok := solo["epoch_seq"].(float64); !ok {
		t.Errorf("epoch_seq missing on single-node healthz: %v", solo)
	}
}

// All four Section 6 methods (and sketch) are HTTP-selectable and
// return identical rankings on the same corpus — the per-node half of
// the cross-shard determinism story.
func TestAllMethodsSelectableOverHTTP(t *testing.T) {
	s, _ := testServer(t)
	regs := `[{"rect":[0.30,0.30,0.45,0.45],"weight":1},{"rect":[0.7,0.7,0.8,0.8],"weight":2}]`
	var want string
	for _, method := range []string{"user-centric", "linear", "iterative", "batch", "sketch"} {
		body := fmt.Sprintf(`{"regions":%s,"k":7,"method":%q}`, regs, method)
		rec, list := doList(t, s.Handler(), "POST", "/v1/query", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("method %q: status %d: %s", method, rec.Code, rec.Body.String())
		}
		got, err := json.Marshal(list)
		if err != nil {
			t.Fatal(err)
		}
		if method == "user-centric" {
			want = string(got)
			if len(list) == 0 {
				t.Fatal("query returned no results; corpus/query mismatch")
			}
			continue
		}
		if string(got) != want {
			t.Errorf("method %q diverged from user-centric\ngot:  %s\nwant: %s", method, got, want)
		}
	}
}
