package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"geofootprint/internal/engine"
	"geofootprint/internal/extract"
	"geofootprint/internal/faultfs"
	"geofootprint/internal/ingest"
)

func testIngestConfig(t *testing.T) ingest.Config {
	t.Helper()
	dir := t.TempDir()
	return ingest.Config{
		WALPath:      filepath.Join(dir, "srv.wal"),
		SnapshotPath: filepath.Join(dir, "srv.snap"),
		Extract:      extract.Config{Epsilon: 0.05, Tau: 4},
		SessionGap:   10,
	}
}

// attach wires a pipeline to a test server and arranges its shutdown.
func attach(t *testing.T, s *Server, cfg ingest.Config) *ingest.Pipeline {
	t.Helper()
	p, err := s.AttachPipeline(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// dwellBatch is an NDJSON body that certainly finishes one RoI for
// user: a τ-long dwell followed by a sample past the session gap.
func dwellBatch(user int, x, y float64) string {
	var b strings.Builder
	for i := 1; i <= 5; i++ {
		fmt.Fprintf(&b, `{"user":%d,"x":%g,"y":%g,"t":%d}`+"\n", user, x, y, i)
	}
	fmt.Fprintf(&b, `{"user":%d,"x":0.95,"y":0.95,"t":1000}`+"\n", user)
	return b.String()
}

func TestIngestEndpoint(t *testing.T) {
	s, db := testServer(t)
	p := attach(t, s, testIngestConfig(t))
	h := s.Handler()

	before := db.Len()
	rec, obj := do(t, h, "POST", "/v1/ingest", dwellBatch(9001, 0.4, 0.4))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if obj["lsn"].(float64) < 1 || obj["samples"].(float64) != 6 {
		t.Fatalf("ack = %v", obj)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if db.Len() != before+1 {
		t.Fatalf("corpus %d users, want %d", db.Len(), before+1)
	}
	// The new footprint is immediately queryable, on both engines.
	for _, path := range []string{
		"/v1/users/9001",
		"/v1/users/9001/similar?k=3",
		"/v1/users/9001/similar?k=3&method=sketch",
	} {
		if rec, _ := do(t, h, "GET", path, ""); rec.Code != http.StatusOK {
			t.Fatalf("GET %s after ingest: status %d: %s", path, rec.Code, rec.Body.String())
		}
	}
	rec, obj = do(t, h, "GET", "/v1/ingest/stats", "")
	if rec.Code != http.StatusOK || obj["samples"].(float64) != 6 || obj["rois"].(float64) < 1 {
		t.Fatalf("stats %d: %v", rec.Code, obj)
	}

	// Malformed and empty bodies are client errors, not WAL writes.
	walBefore := p.Stats().WALBytes
	if rec, _ := do(t, h, "POST", "/v1/ingest", "{not json}\n"); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", rec.Code)
	}
	if rec, _ := do(t, h, "POST", "/v1/ingest", "\n\n"); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty body: status %d", rec.Code)
	}
	if got := p.Stats().WALBytes; got != walBefore {
		t.Fatalf("rejected bodies reached the WAL: %d -> %d", walBefore, got)
	}
}

// Backpressure surfaces as 429 + Retry-After, and the rejected batch
// never touches the WAL. The apply goroutine is parked by holding the
// server's write lock (serverSink serialises on it), which is exactly
// the production stall scenario: a long mutation backing up ingestion.
func TestIngestBackpressure429(t *testing.T) {
	s, _ := testServer(t)
	cfg := testIngestConfig(t)
	cfg.QueueDepth = 1
	p := attach(t, s, cfg)
	h := s.Handler()

	s.mu.Lock()
	if rec, _ := do(t, h, "POST", "/v1/ingest", dwellBatch(9001, 0.4, 0.4)); rec.Code != http.StatusAccepted {
		s.mu.Unlock()
		t.Fatalf("first batch: status %d", rec.Code)
	}
	// Wait for the apply goroutine to dequeue the first batch and park
	// on the held lock; then one batch fills the depth-1 queue.
	for p.Stats().QueueLen != 0 {
		time.Sleep(100 * time.Microsecond)
	}
	if rec, _ := do(t, h, "POST", "/v1/ingest", dwellBatch(9002, 0.6, 0.6)); rec.Code != http.StatusAccepted {
		s.mu.Unlock()
		t.Fatalf("second batch: status %d", rec.Code)
	}
	walBefore := p.Stats().WALBytes
	rec, _ := do(t, h, "POST", "/v1/ingest", dwellBatch(9003, 0.2, 0.2))
	s.mu.Unlock()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := p.Stats().WALBytes; got != walBefore {
		t.Fatalf("rejected batch reached the WAL: %d -> %d", walBefore, got)
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.builder.DB().IndexOf(9002); !ok {
		t.Fatal("accepted batch was not applied")
	}
	if _, ok := s.builder.DB().IndexOf(9003); ok {
		t.Fatal("rejected batch was applied")
	}
}

// Queries on every search method race PUT, DELETE and streaming
// ingestion. The properties under test: no data race (the -race run in
// make check), and every response internally consistent — a well-formed
// status with decodable JSON, never a torn read.
func TestConcurrentQueriesDuringMutation(t *testing.T) {
	s, db := testServer(t)
	p := attach(t, s, testIngestConfig(t))
	h := s.Handler()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 64)
	report := func(format string, args ...interface{}) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// HTTP readers: both server engines plus the ad-hoc query and
	// point-read endpoints.
	paths := []string{
		"/v1/users/105/similar?k=5",
		"/v1/users/110/similar?k=5&method=sketch",
		"/v1/users/107",
		"/v1/similarity?a=100&b=101",
		"/v1/users?limit=10",
	}
	for gi, path := range paths {
		wg.Add(1)
		go func(gi int, path string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rec, _ := do(t, h, "GET", path, "")
				if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
					report("GET %s: status %d: %s", path, rec.Code, rec.Body.String())
					return
				}
			}
		}(gi, path)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		body := `{"regions":[{"rect":[0.1,0.1,0.6,0.6]}],"k":5}`
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, method := range []string{`"user-centric"`, `"sketch"`} {
				b := strings.Replace(body, `"k":5`, `"method":`+method+`,"k":5`, 1)
				if rec, _ := do(t, h, "POST", "/v1/query", b); rec.Code != http.StatusOK {
					report("POST /v1/query %s: status %d", method, rec.Code)
					return
				}
			}
		}
	}()
	// Engine readers for the methods the HTTP API does not select
	// (linear, iterative, batch), each against a pinned epoch — no
	// lock, like the handlers. Engines are rebuilt per iteration:
	// index construction over a frozen epoch is exactly how a
	// deployment would refresh auxiliary indexes online.
	for _, m := range []engine.Method{engine.MethodLinear, engine.MethodIterative, engine.MethodBatch} {
		wg.Add(1)
		go func(m engine.Method) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ep := s.epochs.Acquire()
				db := ep.DB()
				e := engine.New(db, engine.Options{Workers: 2, Method: m})
				res := e.TopK(db.Footprints[0], 5)
				ep.Release()
				for i := 1; i < len(res); i++ {
					if res[i].Score > res[i-1].Score {
						report("method %d: unsorted results %v", m, res)
						return
					}
				}
			}
		}(m)
	}

	// Mutators: PUT/DELETE cycles and streaming ingestion.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := 100 + rng.Intn(30)
			if i%3 == 2 {
				rec, _ := do(t, h, "DELETE", fmt.Sprintf("/v1/users/%d", id), "")
				if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
					report("DELETE %d: status %d", id, rec.Code)
					return
				}
				continue
			}
			x := rng.Float64() * 0.8
			body := fmt.Sprintf(`[{"rect":[%g,%g,%g,%g],"weight":2}]`, x, x, x+0.05, x+0.05)
			rec, _ := do(t, h, "PUT", fmt.Sprintf("/v1/users/%d", id), body)
			if rec.Code != http.StatusOK {
				report("PUT %d: status %d: %s", id, rec.Code, rec.Body.String())
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(100))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			user := 9000 + i%20
			rec, _ := do(t, h, "POST", "/v1/ingest", dwellBatch(user, rng.Float64()*0.8, rng.Float64()*0.8))
			if rec.Code != http.StatusAccepted && rec.Code != http.StatusTooManyRequests {
				report("ingest: status %d: %s", rec.Code, rec.Body.String())
				return
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if db.Len() < 30 {
		t.Fatalf("corpus shrank to %d", db.Len())
	}
}

// A sealed WAL must be visible end to end: POST /v1/ingest answers
// 503, /v1/ingest/stats carries the seal and its cause, and /healthz
// degrades — the satellite fix for background-fsync errors hiding
// until the next append.
func TestSealedWALSurfacesEverywhere(t *testing.T) {
	s, _ := testServer(t)
	cfg := testIngestConfig(t)
	// Sync #1 (the first batch's fsync under the default per-append
	// policy) fails: the WAL seals on the very first ingest.
	cfg.FS = faultfs.NewFault(faultfs.OS, faultfs.Schedule{FailSyncN: 1})
	attach(t, s, cfg)
	h := s.Handler()

	rec, _ := do(t, h, "POST", "/v1/ingest", dwellBatch(9100, 0.3, 0.3))
	if rec.Code != http.StatusInternalServerError && rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest onto failing WAL returned %d, want an error status", rec.Code)
	}

	rec, obj := do(t, h, "POST", "/v1/ingest", dwellBatch(9101, 0.3, 0.3))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest onto sealed WAL returned %d, want 503", rec.Code)
	}
	if msg, _ := obj["error"].(string); !strings.Contains(msg, "sealed") {
		t.Fatalf("sealed-WAL error body %q does not mention the seal", msg)
	}

	rec, obj = do(t, h, "GET", "/v1/ingest/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats returned %d", rec.Code)
	}
	if obj["wal_sealed"] != true {
		t.Fatalf("stats do not report the seal: %v", obj)
	}
	if msg, _ := obj["wal_error"].(string); msg == "" {
		t.Fatal("stats carry no wal_error cause")
	}

	rec, obj = do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz returned %d", rec.Code)
	}
	if obj["status"] != "degraded" || obj["wal_sealed"] != true {
		t.Fatalf("healthz does not degrade on a sealed WAL: %v", obj)
	}
}

// /healthz reports ingest_seq — the last durable WAL LSN — once a
// pipeline is attached. The router's stale-replica tracking compares
// it against acked LSNs, so it must be present, numeric, and advance
// with every acked batch.
func TestHealthIngestSeq(t *testing.T) {
	s, _ := testServer(t)
	h := s.Handler()
	// Without a pipeline there is no WAL, hence no ingest_seq.
	_, obj := do(t, h, "GET", "/healthz", "")
	if _, present := obj["ingest_seq"]; present {
		t.Fatalf("ingest_seq present without a pipeline: %v", obj["ingest_seq"])
	}

	attach(t, s, testIngestConfig(t))
	_, obj = do(t, h, "GET", "/healthz", "")
	seq, ok := obj["ingest_seq"].(float64)
	if !ok {
		t.Fatalf("ingest_seq missing with a pipeline attached: %v", obj)
	}

	rec, ack := do(t, h, "POST", "/v1/ingest", dwellBatch(9500, 0.4, 0.4))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest returned %d", rec.Code)
	}
	_, obj = do(t, h, "GET", "/healthz", "")
	seq2, _ := obj["ingest_seq"].(float64)
	if seq2 <= seq {
		t.Fatalf("ingest_seq did not advance: %v -> %v", seq, seq2)
	}
	if lsn, _ := ack["lsn"].(float64); lsn != seq2 {
		t.Fatalf("acked lsn %v != healthz ingest_seq %v", lsn, seq2)
	}
}
