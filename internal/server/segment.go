// Segment-restricted queries: the shard-side half of replicated
// serving.
//
// With replication factor R > 1, a shard's corpus is the union of
// several ring segments (one per distinct replica tuple it belongs
// to), and two replicas of the same segment hold the same users. A
// router that merged two replicas' full-corpus answers would count
// shared users twice — topk.Collector does not deduplicate by ID, by
// design. So the router never asks a replicated shard for its whole
// corpus: it sends one sub-query per ring segment, and the shard
// restricts scoring to the users whose replica tuple IS that segment.
// Each user then appears in exactly one sub-query's answer, and the
// merge is exact.
//
// The segment is self-describing: the query carries the full shard-ID
// list and vnode count of the router's map, so the shard rebuilds the
// identical ring (hashring placement is a pure function of shard IDs)
// and evaluates membership locally — no second config file to drift.
//
// Segment answers bypass the result cache: the cache key is
// (epoch, method, query, k) and does not include the segment, so a
// cached full-corpus answer must never be returned for a segment
// sub-query or vice versa. Scoring goes through the canonical kernel
// (store.UserSimilarity + topk.Collector), which PR 8's canonical-
// kernel property guarantees is bit-identical to every search
// method's ranking restricted to the same users.
package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"geofootprint/internal/core"
	"geofootprint/internal/hashring"
	"geofootprint/internal/search"
	"geofootprint/internal/topk"
)

// segmentJSON names one ring segment: the replica tuple whose users
// this sub-query must be restricted to, plus enough of the router's
// map (shard IDs in map order, vnode count, R) to rebuild the ring.
type segmentJSON struct {
	// Shards is every shard ID in the router's map, in map order —
	// the ring is a pure function of this list and Vnodes.
	Shards []string `json:"shards"`
	// Vnodes is the virtual-node count per shard (hashring map
	// "replicas"; 0 selects the default).
	Vnodes int `json:"vnodes"`
	// R is the replication factor users are placed with.
	R int `json:"r"`
	// Members is this segment's replica tuple, preference order
	// first. A user belongs to the segment iff its own tuple equals
	// Members exactly (order included).
	Members []string `json:"members"`
}

// errBadSegment marks segment validation failures (client errors).
var errBadSegment = errors.New("bad segment")

// segRingCache memoises the rebuilt ring: every sub-query from the
// same router carries the same shard list, so one entry suffices and
// a changed map (rolling restart) simply replaces it.
type segRingCache struct {
	mu   sync.Mutex
	key  string
	ring *hashring.Ring
}

func (c *segRingCache) get(ids []string, vnodes int) (*hashring.Ring, error) {
	key := strconv.Itoa(vnodes) + "|" + strings.Join(ids, "\x00")
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.key == key && c.ring != nil {
		return c.ring, nil
	}
	ring, err := hashring.RingFromIDs(ids, vnodes)
	if err != nil {
		return nil, err
	}
	c.key, c.ring = key, ring
	return ring, nil
}

// segmentTopK answers a top-k query restricted to the users whose
// replica tuple equals seg.Members. Bad segments wrap errBadSegment;
// other errors are context cancellation.
func (s *Server) segmentTopK(ctx context.Context, v *epochView, seg *segmentJSON, q core.Footprint, k int) ([]search.Result, error) {
	if seg.R < 1 {
		return nil, fmt.Errorf("%w: r must be >= 1, got %d", errBadSegment, seg.R)
	}
	if len(seg.Members) == 0 {
		return nil, fmt.Errorf("%w: empty member tuple", errBadSegment)
	}
	ring, err := s.segRings.get(seg.Shards, seg.Vnodes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errBadSegment, err)
	}
	byID := make(map[string]int, len(seg.Shards))
	for i, id := range seg.Shards {
		byID[id] = i
	}
	want := make([]int, len(seg.Members))
	for i, m := range seg.Members {
		j, ok := byID[m]
		if !ok {
			return nil, fmt.Errorf("%w: member %q is not in the shard list", errBadSegment, m)
		}
		want[i] = j
	}
	qnorm := core.Norm(q)
	if qnorm == 0 || k <= 0 {
		return nil, nil
	}
	db := v.DB()
	col := topk.New(k)
	for i := range db.Footprints {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !tupleEquals(ring.ReplicaIndices(db.IDs[i], seg.R), want) {
			continue
		}
		if sim := db.UserSimilarity(i, q, qnorm); sim > 0 {
			col.Offer(db.IDs[i], sim)
		}
	}
	return col.Results(), nil
}

func tupleEquals(got, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
