package server

import (
	"context"
	"errors"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// This file is the overload-safety layer wrapped around every route by
// Handler(). From the outside in:
//
//  1. Panic recovery — a panicking handler becomes a 500 with the
//     stack in the server log; the process keeps serving.
//  2. Drain gate — after SetDraining(true) (called by geoserve when
//     SIGTERM arrives) every request except /healthz is refused with
//     503 + Retry-After, so load balancers move on while in-flight
//     requests finish under the outer http.Server.Shutdown grace.
//  3. Deadline — every request's context gets a deadline: the client's
//     ?timeout_ms= if given, else Options.DefaultTimeout; both clamped
//     to Options.MaxTimeout. Query handlers run the engine through
//     TopKCtx, so an expired deadline abandons the search (workers
//     notice within cancelStride candidates) and maps to 503.
//
// The admission gate is per-route, not a global middleware: only the
// top-k routes (GET /v1/users/{id}/similar, POST /v1/query, GET
// /v1/pairs) do unbounded CPU work, so only they shed load. Cheap
// routes — health, single-user lookups, ingestion — keep answering
// even when the query plane is saturated, which is exactly what an
// operator probing a struggling server needs.

// Options configures the server's overload behaviour. The zero value
// disables the admission gate and applies only the default deadline
// cap, preserving the pre-options behaviour of New.
type Options struct {
	// MaxInflightQueries caps concurrently executing top-k requests
	// (similar/query/pairs). Excess requests get 429 + Retry-After
	// immediately instead of queueing. <= 0 disables the gate.
	MaxInflightQueries int
	// DefaultTimeout is the per-request deadline when the client sends
	// no ?timeout_ms=. <= 0 means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps any deadline, including client-requested ones.
	// <= 0 selects DefaultMaxTimeout.
	MaxTimeout time.Duration
	// Logger receives panic reports; nil selects log.Default().
	Logger *log.Logger
	// CacheSize bounds the epoch-keyed top-k result cache (entries).
	// <= 0 disables caching — the zero value preserves the uncached
	// behaviour of New. Cached answers are byte-identical to computed
	// ones (the cache is keyed by epoch, and epochs are immutable), so
	// enabling it is purely a performance knob.
	CacheSize int
	// ShardID names this instance within a sharded deployment
	// (geoserve -shard-id). When set, /healthz reports it so the
	// router can cross-check the shard map: a shard answering with an
	// unexpected ID — or two map entries answering with the same ID —
	// is a misrouted address, and the router refuses to trust it
	// instead of merging the wrong users' scores. Empty for
	// single-node deployments.
	ShardID string
}

// DefaultMaxTimeout caps client-requested query deadlines when
// Options.MaxTimeout is unset.
const DefaultMaxTimeout = 30 * time.Second

func (o Options) withDefaults() Options {
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = DefaultMaxTimeout
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// Handler returns the HTTP handler: the mux wrapped in the resilience
// chain (deadline, drain gate, panic recovery — applied inside out).
func (s *Server) Handler() http.Handler {
	h := s.withDeadline(s.mux)
	h = s.withDrainGate(h)
	return s.withRecovery(h)
}

// SetDraining flips the drain gate. While draining, every route but
// /healthz answers 503 + Retry-After; /healthz reports "draining" so
// orchestrators can watch the connection count fall. Call it before
// http.Server.Shutdown so new arrivals are shed during the grace
// period instead of joining it.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Draining reports whether the drain gate is up.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.opts.Logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				// If the handler already wrote headers this is a lost
				// cause for the response, but the connection and the
				// process both survive.
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) withDrainGate(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() && r.URL.Path != "/healthz" {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "server is draining")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// withDeadline attaches the per-request deadline to r.Context(). A bad
// ?timeout_ms= is a 400; a valid one is clamped to MaxTimeout rather
// than rejected, so clients need not know the server's cap.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := s.opts.DefaultTimeout
		if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
			ms, err := strconv.Atoi(raw)
			if err != nil || ms <= 0 {
				writeError(w, http.StatusBadRequest, "bad timeout_ms %q", raw)
				return
			}
			d = time.Duration(ms) * time.Millisecond
		}
		if d <= 0 || d > s.opts.MaxTimeout {
			d = s.opts.MaxTimeout
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// gated wraps one top-k handler with the admission gate: a slot from
// the bounded channel or an immediate 429 + Retry-After. Shedding at
// admission keeps the worker pools exclusively busy with requests that
// can still meet their deadlines.
func (s *Server) gated(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.gate != nil {
			select {
			case s.gate <- struct{}{}:
				defer func() { <-s.gate }()
			default:
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "query capacity exhausted")
				return
			}
		}
		next(w, r)
	}
}

// writeQueryCtxErr maps a TopKCtx error to its HTTP response and
// reports whether err was non-nil. DeadlineExceeded is the server
// refusing to burn more CPU on the request — 503 with Retry-After, the
// signal geofeed-style clients back off on. Canceled means the client
// went away: nothing useful can be written, so nothing is.
func writeQueryCtxErr(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		// Client disconnected; the response writer is dead.
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
	return true
}
