// Package cache is the epoch-keyed result cache of the serving plane:
// a bounded LRU over top-k answers whose keys carry the epoch sequence
// number they were computed against. Consistency is structural, not
// temporal — an epoch is immutable, so an answer computed against it
// can never go stale *within* that epoch; publishing a new epoch
// changes every key, and Purge then drops the superseded entries
// wholesale. No per-entry TTLs, no invalidation protocol.
//
// Concurrent identical misses are deduplicated single-flight: the
// first caller computes, the rest wait on its result (or their own
// context), so a hot query under load costs one engine execution per
// epoch instead of one per request.
package cache

import (
	"container/list"
	"context"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"geofootprint/internal/core"
)

// Key identifies one cacheable answer: the epoch it was computed
// against, the search method, k, and the exact query footprint in
// canonical encoded form. Using the full encoding instead of a digest
// makes collisions impossible — two distinct queries can never alias
// to one entry, so a hit is always byte-identical to a recompute.
type Key struct {
	Epoch  uint64
	Method string
	K      int
	Query  string
}

// FootprintKey encodes a footprint into the canonical Key.Query form:
// the IEEE-754 bits of every rectangle coordinate and weight, in
// region order. Footprints are MinX-sorted everywhere in the repo, so
// equal footprints encode equally.
func FootprintKey(f core.Footprint) string {
	b := make([]byte, 0, 40*len(f))
	var tmp [8]byte
	for _, r := range f {
		for _, v := range [5]float64{r.Rect.MinX, r.Rect.MinY, r.Rect.MaxX, r.Rect.MaxY, r.Weight} {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
			b = append(b, tmp[:]...)
		}
	}
	return string(b)
}

// Stats is a point-in-time snapshot of the cache counters, shaped for
// /v1/ingest/stats, /healthz and operator logs.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Purged counts entries dropped by epoch invalidation (swaps).
	Purged  uint64 `json:"purged"`
	Entries int    `json:"entries"`
	Cap     int    `json:"cap"`
}

type entry struct {
	key Key
	val any
}

// flight is one in-progress computation other callers can wait on.
// val/err are written before done is closed and read only after.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a bounded LRU with single-flight miss deduplication and
// wholesale epoch invalidation. All methods are safe for concurrent
// use. Cached values are shared across callers and must be treated as
// immutable — which is exactly the contract of epoch-pinned results.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List            // front = most recently used
	items   map[Key]*list.Element // value: *entry
	flights map[Key]*flight
	// floor is the lowest epoch still admitted; Purge raises it so a
	// computation that was in flight across a swap cannot re-populate
	// the cache with entries for a dead epoch.
	floor uint64

	hits, misses, evictions, purged atomic.Uint64
}

// New returns a cache bounded to capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[Key]*list.Element),
		flights: make(map[Key]*flight),
	}
}

// GetOrCompute returns the cached value for key, or computes it with
// fn and caches it. The second return reports a cache hit (including
// joining another caller's in-flight computation). Concurrent calls
// with the same key run fn once; waiters whose ctx expires return
// ctx's error without cancelling the computation. fn's error is
// returned to the computing caller and never cached.
func (c *Cache) GetOrCompute(ctx context.Context, key Key, fn func() (any, error)) (any, bool, error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			v := el.Value.(*entry).val
			c.mu.Unlock()
			c.hits.Add(1)
			return v, true, nil
		}
		if fl, ok := c.flights[key]; ok {
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if fl.err != nil {
				// The computing caller failed (typically its own
				// context); retry — the next loop either finds a
				// value, joins a newer flight, or computes.
				continue
			}
			c.hits.Add(1)
			return fl.val, true, nil
		}
		fl := &flight{done: make(chan struct{})}
		c.flights[key] = fl
		c.mu.Unlock()
		c.misses.Add(1)

		val, err := fn()
		c.mu.Lock()
		delete(c.flights, key)
		if err == nil && key.Epoch >= c.floor {
			c.insertLocked(key, val)
		}
		c.mu.Unlock()
		fl.val, fl.err = val, err
		close(fl.done)
		return val, false, err
	}
}

// insertLocked adds key → val and evicts from the LRU tail past
// capacity. Caller holds c.mu.
func (c *Cache) insertLocked(key Key, val any) {
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*entry).key)
		c.evictions.Add(1)
	}
}

// Purge drops every entry computed against an epoch older than
// minEpoch and raises the admission floor so late in-flight inserts
// for those epochs are discarded. The server calls it with the new
// sequence number at every publish: one swap, wholesale invalidation.
func (c *Cache) Purge(minEpoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if minEpoch > c.floor {
		c.floor = minEpoch
	}
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry); e.key.Epoch < c.floor {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.purged.Add(1)
		}
		el = next
	}
}

// Len returns the current number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Purged:    c.purged.Load(),
		Entries:   n,
		Cap:       c.cap,
	}
}
