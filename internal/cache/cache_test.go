package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
)

func key(epoch uint64, q string) Key {
	return Key{Epoch: epoch, Method: "user-centric", K: 5, Query: q}
}

func TestGetOrComputeHitMiss(t *testing.T) {
	c := New(4)
	ctx := context.Background()
	calls := 0
	fn := func() (any, error) { calls++; return "v1", nil }

	v, hit, err := c.GetOrCompute(ctx, key(1, "a"), fn)
	if err != nil || hit || v != "v1" {
		t.Fatalf("first call: v=%v hit=%v err=%v", v, hit, err)
	}
	v, hit, err = c.GetOrCompute(ctx, key(1, "a"), fn)
	if err != nil || !hit || v != "v1" {
		t.Fatalf("second call: v=%v hit=%v err=%v", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	// A different epoch is a different key: same query recomputes.
	if _, hit, _ := c.GetOrCompute(ctx, key(2, "a"), fn); hit {
		t.Fatal("hit across epochs")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	ctx := context.Background()
	put := func(q string) {
		c.GetOrCompute(ctx, key(1, q), func() (any, error) { return q, nil })
	}
	put("a")
	put("b")
	// Touch "a" so "b" is the LRU victim when "c" lands.
	if _, hit, _ := c.GetOrCompute(ctx, key(1, "a"), nil); !hit {
		t.Fatal("warm entry missed")
	}
	put("c")
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, hit, _ := c.GetOrCompute(ctx, key(1, "b"), func() (any, error) { return "b", nil }); hit {
		t.Fatal("LRU victim survived")
	}
	if st := c.Stats(); st.Evictions < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Purge drops superseded epochs wholesale and the raised floor rejects
// stale in-flight inserts.
func TestPurgeInvalidatesOldEpochs(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		q := fmt.Sprintf("q%d", i)
		c.GetOrCompute(ctx, key(1, q), func() (any, error) { return q, nil })
	}
	c.GetOrCompute(ctx, key(2, "new"), func() (any, error) { return "new", nil })
	c.Purge(2)
	if c.Len() != 1 {
		t.Fatalf("len after purge = %d, want 1", c.Len())
	}
	if _, hit, _ := c.GetOrCompute(ctx, key(2, "new"), func() (any, error) { return "recomputed", nil }); !hit {
		t.Fatal("current-epoch entry purged")
	}
	if st := c.Stats(); st.Purged != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// A computation that straddled the swap must not resurrect a dead
	// epoch's entry.
	c.GetOrCompute(ctx, key(1, "stale"), func() (any, error) { return "stale", nil })
	if c.Len() != 1 {
		t.Fatalf("stale-epoch insert admitted: len = %d", c.Len())
	}
}

// Concurrent identical misses coalesce into one computation; all
// callers observe the same value.
func TestSingleFlightDedup(t *testing.T) {
	c := New(4)
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	vals := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute(context.Background(), key(1, "hot"), func() (any, error) {
				calls.Add(1)
				<-release
				return "computed", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	// Let the goroutines pile onto the flight, then release it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	for i, v := range vals {
		if v != "computed" {
			t.Fatalf("waiter %d got %v", i, v)
		}
	}
}

// A waiter whose context expires abandons the flight with ctx's error;
// a failed flight is not cached and does not poison later callers.
func TestFlightErrorsAndContext(t *testing.T) {
	c := New(4)
	release := make(chan struct{})
	go func() {
		c.GetOrCompute(context.Background(), key(1, "slow"), func() (any, error) {
			<-release
			return nil, errors.New("engine failed")
		})
	}()
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, _, err := c.GetOrCompute(ctx, key(1, "slow"), nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired waiter err = %v", err)
	}
	close(release)
	time.Sleep(10 * time.Millisecond)
	// The error was not cached: the next caller computes fresh.
	v, hit, err := c.GetOrCompute(context.Background(), key(1, "slow"), func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("after failed flight: v=%v hit=%v err=%v", v, hit, err)
	}
}

// FootprintKey is injective on well-formed footprints: regions, order
// and weights all land in the encoding.
func TestFootprintKey(t *testing.T) {
	r := func(x float64, w float64) core.Region {
		return core.Region{Rect: geom.Rect{MinX: x, MinY: 0, MaxX: x + 1, MaxY: 1}, Weight: w}
	}
	a := core.Footprint{r(0, 1), r(2, 1)}
	b := core.Footprint{r(0, 1), r(2, 2)} // weight differs
	c := core.Footprint{r(0, 1)}          // shorter
	if FootprintKey(a) == FootprintKey(b) || FootprintKey(a) == FootprintKey(c) {
		t.Fatal("distinct footprints collided")
	}
	same := core.Footprint{r(0, 1), r(2, 1)}
	if FootprintKey(a) != FootprintKey(same) {
		t.Fatal("equal footprints encoded differently")
	}
}
