// Package viz renders geo-footprint structures as SVG: trajectories
// with their extracted regions of interest (the paper's Figure 1),
// footprints with their disjoint-region frequencies (Figure 2), and
// per-cluster characteristic-region maps (Figure 3(b)). It uses only
// the standard library; output is a self-contained SVG document.
package viz

import (
	"fmt"
	"io"
	"strings"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
	"geofootprint/internal/traj"
)

// Palette is the default categorical palette (nine clusters, as in
// Figure 3(b), plus extras).
var Palette = []string{
	"#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
	"#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0",
	"#bcbd22", "#17becf",
}

// Canvas accumulates SVG elements over a world rectangle mapped to a
// pixel viewport (y flipped so larger y draws upward, as in the
// paper's figures).
type Canvas struct {
	world  geom.Rect
	w, h   float64
	b      strings.Builder
	margin float64
}

// NewCanvas creates a canvas of the given pixel size showing the world
// rectangle. The world must have positive area.
func NewCanvas(world geom.Rect, widthPx, heightPx int) (*Canvas, error) {
	if world.IsEmpty() || world.Area() == 0 {
		return nil, fmt.Errorf("viz: world must have positive area, got %v", world)
	}
	if widthPx < 1 || heightPx < 1 {
		return nil, fmt.Errorf("viz: viewport must be positive, got %dx%d", widthPx, heightPx)
	}
	c := &Canvas{world: world, w: float64(widthPx), h: float64(heightPx), margin: 8}
	fmt.Fprintf(&c.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		widthPx, heightPx, widthPx, heightPx)
	fmt.Fprintf(&c.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", widthPx, heightPx)
	return c, nil
}

// px maps a world point to pixel coordinates.
func (c *Canvas) px(p geom.Point) (x, y float64) {
	sx := (c.w - 2*c.margin) / c.world.Width()
	sy := (c.h - 2*c.margin) / c.world.Height()
	x = c.margin + (p.X-c.world.MinX)*sx
	y = c.h - c.margin - (p.Y-c.world.MinY)*sy
	return
}

// Rect draws a rectangle with the given fill (may be "none"), stroke
// colour and fill opacity.
func (c *Canvas) Rect(r geom.Rect, fill, stroke string, opacity float64) {
	x0, y1 := c.px(geom.Point{X: r.MinX, Y: r.MinY})
	x1, y0 := c.px(geom.Point{X: r.MaxX, Y: r.MaxY})
	fmt.Fprintf(&c.b,
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="%.2f" stroke="%s" stroke-width="1"/>`+"\n",
		x0, y0, x1-x0, y1-y0, fill, opacity, stroke)
}

// Polyline draws a trajectory as a connected line.
func (c *Canvas) Polyline(t traj.Trajectory, stroke string) {
	if len(t) == 0 {
		return
	}
	var pts []string
	for _, l := range t {
		x, y := c.px(l.P)
		pts = append(pts, fmt.Sprintf("%.2f,%.2f", x, y))
	}
	fmt.Fprintf(&c.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1"/>`+"\n",
		strings.Join(pts, " "), stroke)
}

// Dot draws a small filled circle at a world point.
func (c *Canvas) Dot(p geom.Point, fill string, radiusPx float64) {
	x, y := c.px(p)
	fmt.Fprintf(&c.b, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s"/>`+"\n", x, y, radiusPx, fill)
}

// Text places a label at a world point.
func (c *Canvas) Text(p geom.Point, s string, sizePx int) {
	x, y := c.px(p)
	fmt.Fprintf(&c.b, `<text x="%.2f" y="%.2f" font-size="%d" font-family="sans-serif">%s</text>`+"\n",
		x, y, sizePx, escape(s))
}

// Render finalises the document and writes it.
func (c *Canvas) Render(w io.Writer) error {
	_, err := io.WriteString(w, c.b.String()+"</svg>\n")
	return err
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// FootprintSVG renders a footprint's regions (outlines) over its
// disjoint-region decomposition (fills shaded by frequency) — the
// content of the paper's Figure 2(a).
func FootprintSVG(w io.Writer, f core.Footprint, widthPx, heightPx int) error {
	world := f.MBR()
	if world.IsEmpty() {
		world = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	// Pad by 5% so strokes are not clipped.
	pad := 0.05 * (world.Width() + world.Height()) / 2
	world = geom.Rect{MinX: world.MinX - pad, MinY: world.MinY - pad,
		MaxX: world.MaxX + pad, MaxY: world.MaxY + pad}
	c, err := NewCanvas(world, widthPx, heightPx)
	if err != nil {
		return err
	}
	drs := core.DisjointRegions(f)
	var maxW float64
	for _, d := range drs {
		if d.Weight > maxW {
			maxW = d.Weight
		}
	}
	for _, d := range drs {
		op := 0.15 + 0.75*d.Weight/maxW
		c.Rect(d.Rect, Palette[0], "none", op)
	}
	for _, r := range f {
		c.Rect(r.Rect, "none", "#333333", 1)
	}
	return c.Render(w)
}

// TrajectorySVG renders a trajectory with its extracted RoI rectangles
// — the content of the paper's Figure 1(a).
func TrajectorySVG(w io.Writer, t traj.Trajectory, rois []geom.Rect, widthPx, heightPx int) error {
	world := t.MBR()
	for _, r := range rois {
		world = world.Extend(r)
	}
	if world.IsEmpty() {
		world = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	pad := 0.05 * (world.Width() + world.Height()) / 2
	if pad == 0 {
		pad = 0.01
	}
	world = geom.Rect{MinX: world.MinX - pad, MinY: world.MinY - pad,
		MaxX: world.MaxX + pad, MaxY: world.MaxY + pad}
	c, err := NewCanvas(world, widthPx, heightPx)
	if err != nil {
		return err
	}
	c.Polyline(t, "#9498a0")
	for i, r := range rois {
		c.Rect(r, Palette[(i+2)%len(Palette)], "#333333", 0.35)
	}
	if len(t) > 0 {
		c.Dot(t[0].P, "#3ca951", 3)
		c.Dot(t[len(t)-1].P, "#ff725c", 3)
	}
	return c.Render(w)
}

// HeatmapSVG renders the aggregate dwell density of a footprint
// collection: the unit square divided into gridN×gridN cells, each
// shaded by the total weighted area of footprint regions overlapping
// it. This is the "where does everybody dwell" view an analyst opens
// first.
func HeatmapSVG(w io.Writer, fps []core.Footprint, gridN, widthPx, heightPx int) error {
	if gridN < 1 {
		return fmt.Errorf("viz: gridN must be positive, got %d", gridN)
	}
	c, err := NewCanvas(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, widthPx, heightPx)
	if err != nil {
		return err
	}
	cell := 1.0 / float64(gridN)
	density := make([]float64, gridN*gridN)
	var maxD float64
	for _, f := range fps {
		for _, r := range f {
			x0 := clampIdx(int(r.Rect.MinX/cell), gridN)
			x1 := clampIdx(int(r.Rect.MaxX/cell), gridN)
			y0 := clampIdx(int(r.Rect.MinY/cell), gridN)
			y1 := clampIdx(int(r.Rect.MaxY/cell), gridN)
			for gy := y0; gy <= y1; gy++ {
				for gx := x0; gx <= x1; gx++ {
					cr := geom.Rect{
						MinX: float64(gx) * cell, MinY: float64(gy) * cell,
						MaxX: float64(gx+1) * cell, MaxY: float64(gy+1) * cell,
					}
					d := r.Rect.IntersectionArea(cr) * r.Weight
					density[gy*gridN+gx] += d
					if density[gy*gridN+gx] > maxD {
						maxD = density[gy*gridN+gx]
					}
				}
			}
		}
	}
	if maxD > 0 {
		for gy := 0; gy < gridN; gy++ {
			for gx := 0; gx < gridN; gx++ {
				d := density[gy*gridN+gx]
				if d == 0 {
					continue
				}
				c.Rect(geom.Rect{
					MinX: float64(gx) * cell, MinY: float64(gy) * cell,
					MaxX: float64(gx+1) * cell, MaxY: float64(gy+1) * cell,
				}, Palette[2], "none", 0.1+0.9*d/maxD)
			}
		}
	}
	return c.Render(w)
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// ClustersSVG renders per-cluster characteristic regions over the unit
// square — the content of the paper's Figure 3(b). regions[c] holds
// cluster c's cells; each cluster gets one palette colour and a label.
func ClustersSVG(w io.Writer, regions [][]geom.Rect, widthPx, heightPx int) error {
	c, err := NewCanvas(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, widthPx, heightPx)
	if err != nil {
		return err
	}
	for ci, rects := range regions {
		colour := Palette[ci%len(Palette)]
		m := geom.EmptyRect()
		for _, r := range rects {
			c.Rect(r, colour, "none", 0.8)
			m = m.Extend(r)
		}
		if !m.IsEmpty() {
			c.Text(m.Center(), fmt.Sprintf("%d", ci+1), 12)
		}
	}
	return c.Render(w)
}
