package viz

import (
	"bytes"
	"strings"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
	"geofootprint/internal/traj"
)

func rect(x1, y1, x2, y2 float64) geom.Rect {
	return geom.Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

func TestNewCanvasValidation(t *testing.T) {
	if _, err := NewCanvas(geom.EmptyRect(), 100, 100); err == nil {
		t.Error("empty world accepted")
	}
	if _, err := NewCanvas(rect(0, 0, 1, 1), 0, 100); err == nil {
		t.Error("zero viewport accepted")
	}
	c, err := NewCanvas(rect(0, 0, 1, 1), 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(out, "</svg>\n") {
		t.Errorf("malformed document:\n%s", out)
	}
}

func TestCoordinateMapping(t *testing.T) {
	c, _ := NewCanvas(rect(0, 0, 1, 1), 116, 116) // margin 8 → 100px world
	// World (0,0) is bottom-left: pixel (8, 108).
	x, y := c.px(geom.Point{X: 0, Y: 0})
	if x != 8 || y != 108 {
		t.Errorf("px(0,0) = (%v,%v), want (8,108)", x, y)
	}
	// World (1,1) is top-right: pixel (108, 8).
	x, y = c.px(geom.Point{X: 1, Y: 1})
	if x != 108 || y != 8 {
		t.Errorf("px(1,1) = (%v,%v), want (108,8)", x, y)
	}
}

func TestFootprintSVG(t *testing.T) {
	f := core.Footprint{
		{Rect: rect(0.1, 0.1, 0.3, 0.3), Weight: 1},
		{Rect: rect(0.2, 0.2, 0.4, 0.4), Weight: 2},
	}
	var buf bytes.Buffer
	if err := FootprintSVG(&buf, f, 300, 300); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Disjoint decomposition of two overlapping rects: 3+ fills plus
	// 2 outlines.
	if n := strings.Count(out, "<rect"); n < 6 { // 1 bg + ≥3 fills + 2 outlines
		t.Errorf("only %d rects rendered:\n%s", n, out)
	}
	if !strings.Contains(out, `stroke="#333333"`) {
		t.Error("region outlines missing")
	}
	// Empty footprint still renders a valid document.
	buf.Reset()
	if err := FootprintSVG(&buf, nil, 100, 100); err != nil {
		t.Fatalf("empty footprint: %v", err)
	}
}

func TestTrajectorySVG(t *testing.T) {
	tr := traj.Trajectory{
		{P: geom.Point{X: 0.1, Y: 0.1}, T: 0},
		{P: geom.Point{X: 0.2, Y: 0.15}, T: 1},
		{P: geom.Point{X: 0.25, Y: 0.3}, T: 2},
	}
	rois := []geom.Rect{rect(0.08, 0.08, 0.13, 0.13)}
	var buf bytes.Buffer
	if err := TrajectorySVG(&buf, tr, rois, 300, 300); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<polyline") {
		t.Error("trajectory line missing")
	}
	if strings.Count(out, "<circle") != 2 {
		t.Error("start/end markers missing")
	}
	// Degenerate single-point trajectory.
	buf.Reset()
	if err := TrajectorySVG(&buf, tr[:1], nil, 100, 100); err != nil {
		t.Fatalf("single point: %v", err)
	}
}

func TestClustersSVG(t *testing.T) {
	regions := [][]geom.Rect{
		{rect(0, 0, 0.1, 0.1), rect(0.1, 0, 0.2, 0.1)},
		{rect(0.8, 0.8, 0.9, 0.9)},
		nil, // cluster with no characteristic cells
	}
	var buf bytes.Buffer
	if err := ClustersSVG(&buf, regions, 400, 400); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<rect") != 1+3 { // background + 3 cells
		t.Errorf("unexpected rect count:\n%s", out)
	}
	// Labels for the two non-empty clusters only.
	if strings.Count(out, "<text") != 2 {
		t.Errorf("expected 2 labels, got:\n%s", out)
	}
	if !strings.Contains(out, ">1</text>") || !strings.Contains(out, ">2</text>") {
		t.Error("cluster labels wrong")
	}
}

func TestEscape(t *testing.T) {
	c, _ := NewCanvas(rect(0, 0, 1, 1), 100, 100)
	c.Text(geom.Point{X: 0.5, Y: 0.5}, "<&>", 10)
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "&lt;&amp;&gt;") {
		t.Error("text not escaped")
	}
}
