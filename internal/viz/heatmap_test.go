package viz

import (
	"bytes"
	"strings"
	"testing"

	"geofootprint/internal/core"
)

func TestHeatmapSVG(t *testing.T) {
	fps := []core.Footprint{
		{{Rect: rect(0.1, 0.1, 0.2, 0.2), Weight: 1}},
		{{Rect: rect(0.1, 0.1, 0.2, 0.2), Weight: 3}},
		{{Rect: rect(0.8, 0.8, 0.9, 0.9), Weight: 1}},
	}
	var buf bytes.Buffer
	if err := HeatmapSVG(&buf, fps, 10, 300, 300); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") {
		t.Fatal("not an SVG")
	}
	// Hot and cold cells both render (≥ 2 density rects + background).
	if n := strings.Count(out, "<rect"); n < 3 {
		t.Errorf("only %d rects", n)
	}
	// Bad grid.
	if err := HeatmapSVG(&buf, fps, 0, 100, 100); err == nil {
		t.Error("gridN=0 accepted")
	}
	// Empty input renders an empty map.
	buf.Reset()
	if err := HeatmapSVG(&buf, nil, 8, 100, 100); err != nil {
		t.Fatalf("empty input: %v", err)
	}
}
