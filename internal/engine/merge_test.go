package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"geofootprint/internal/search"
	"geofootprint/internal/topk"
)

// randomResults draws n results with IDs from [1, idSpace] (possibly
// repeating across calls — two shards never share a user, but the
// merge seam must not depend on that) and scores from a small value
// pool so ties are common and the ID tie-break is exercised.
func randomResults(rng *rand.Rand, n, idSpace int) []search.Result {
	scores := []float64{0.1, 0.25, 0.25, 0.5, 0.7071067811865476, 0.9}
	out := make([]search.Result, n)
	for i := range out {
		out[i] = search.Result{
			ID:    1 + rng.Intn(idSpace),
			Score: scores[rng.Intn(len(scores))],
		}
	}
	return out
}

// topkOf is the oracle: offer everything to one collector.
func topkOf(lists [][]search.Result, k int) []search.Result {
	col := topk.New(k)
	for _, l := range lists {
		for _, r := range l {
			col.Offer(r.ID, r.Score)
		}
	}
	return col.Results()
}

// TestMergePartsAssociative is the property the cross-shard merge
// relies on: pre-merging any grouping of the parts, then merging the
// pre-merged partials, equals merging the flat parts directly. This
// is what lets each shard reduce its users to a local top-k and the
// router reduce the shard partials again, with the composed result
// identical to a single node scanning the union.
func TestMergePartsAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nParts := 1 + rng.Intn(6)
		k := 1 + rng.Intn(12)
		parts := make([][]search.Result, nParts)
		for i := range parts {
			parts[i] = randomResults(rng, rng.Intn(40), 60)
		}
		flat := MergeParts(parts, k)

		// Random grouping of the parts into contiguous groups, each
		// pre-merged with the same k.
		var premerged [][]search.Result
		for i := 0; i < nParts; {
			j := i + 1 + rng.Intn(nParts-i)
			premerged = append(premerged, MergeParts(parts[i:j], k))
			i = j
		}
		grouped := MergeParts(premerged, k)
		if !reflect.DeepEqual(flat, grouped) {
			t.Fatalf("trial %d: grouped merge diverged\nflat:    %v\ngrouped: %v", trial, flat, grouped)
		}

		// And against the single-collector oracle, in a shuffled offer
		// order: the retained set is a function of the multiset.
		shuffled := make([][]search.Result, nParts)
		perm := rng.Perm(nParts)
		for i, p := range perm {
			shuffled[i] = parts[p]
		}
		if oracle := topkOf(shuffled, k); !reflect.DeepEqual(flat, oracle) {
			t.Fatalf("trial %d: merge depends on offer order\nflat:   %v\noracle: %v", trial, flat, oracle)
		}
	}
}

// Pre-merging with a larger k than the final merge also composes: a
// shard configured to return more than the router asks for can never
// change the answer (it only retains more).
func TestMergePartsLargerPartialK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(8)
		parts := [][]search.Result{
			randomResults(rng, 30, 50),
			randomResults(rng, 30, 50),
			randomResults(rng, 30, 50),
		}
		flat := MergeParts(parts, k)
		var wide [][]search.Result
		for _, p := range parts {
			wide = append(wide, MergeParts([][]search.Result{p}, k+rng.Intn(5)+1))
		}
		if got := MergeParts(wide, k); !reflect.DeepEqual(flat, got) {
			t.Fatalf("trial %d: k-wider partials changed the merge\nwant: %v\ngot:  %v", trial, flat, got)
		}
	}
}
