package engine

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSketchAutoEnable: New with MethodSketch on a sketch-less
// database must enable the layer itself, and the engine's answers must
// still match the serial sketch search on the same (now enabled)
// database.
func TestSketchAutoEnable(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	db := testDB(t, rng, 150)
	if db.SketchesEnabled() {
		t.Fatal("fresh database unexpectedly has sketches")
	}
	e := New(db, Options{Workers: 4, Method: MethodSketch})
	if !db.SketchesEnabled() {
		t.Fatal("New(MethodSketch) did not enable the sketch layer")
	}
	for trial := 0; trial < 10; trial++ {
		q := db.Footprints[rng.Intn(db.Len())]
		want := e.serialTopK(q, 5)
		if got := e.TopK(q, 5); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: parallel sketch TopK diverged\ngot:  %v\nwant: %v", trial, got, want)
		}
	}
}

// TestSketchForcedFanout drives the strided parallel path directly by
// using a single-candidate-per-shard threshold-beating workload: a
// large database queried with a broad footprint so the candidate list
// far exceeds minShard per worker.
func TestSketchForcedFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := testDB(t, rng, 600)
	e := New(db, Options{Workers: 8, Method: MethodSketch})
	for trial := 0; trial < 15; trial++ {
		q := db.Footprints[rng.Intn(db.Len())]
		k := 1 + rng.Intn(12)
		want := e.uc.TopKSketch(q, k)
		if got := e.TopK(q, k); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d k=%d: diverged\ngot:  %v\nwant: %v", trial, k, got, want)
		}
	}
}
