package engine

import (
	"context"
	"sync"

	"geofootprint/internal/core"
	"geofootprint/internal/search"
	"geofootprint/internal/sketch"
	"geofootprint/internal/topk"
)

// This file parallelises the sketch filter-and-refine search
// (search.TopKSketch). The filter step — MBR candidates scored and
// sorted by their sketch upper bound — stays serial (it is a dot
// product per candidate plus one sort); the expensive refinement step
// is sharded across the worker pool.
//
// Shards are STRIDED, not contiguous: worker w of W refines candidates
// w, w+W, w+2W, … of the bound-descending list. Two consequences:
//
//   - Every worker's subsequence is itself bound-descending (any
//     subsequence of a descending list is), so the per-worker early
//     exit below is sound.
//   - Every worker sees high-bound candidates early, so its local
//     collector's threshold rises fast — with contiguous chunks, the
//     tail workers would hold only low-bound candidates and a nearly
//     empty heap, and could never exit early.
//
// Exactness of the worker-local early exit: a worker stops at
// candidate c once its local collector holds k results and
// c.Bound < local threshold. The bound dominates the similarity, so
// sim(c) ≤ c.Bound < the worker's k-th local score — meaning k
// already-offered users beat c by strictly greater score, under the
// global (score desc, ID asc) total order. Those k users exist in the
// global multiset too, so c is outside the global top k and skipping
// it (and, by descending bounds, everything after it in the shard)
// cannot change the answer. Every global top-k result is necessarily
// in its worker's local top k, so mergeParts reconstructs the exact
// answer — byte-identical to the serial search.TopKSketch, whose
// result is the unique top k under the strict total order.

// topKSketchCtx answers one MethodSketch query, sharding refinement
// when the candidate count justifies the fan-out. Cancellation: the
// filter step polls once after scoring; refinement workers poll every
// cancelStride positions and abandon their shard. Partial collectors
// are discarded — the query returns (nil, ctx.Err()).
func (e *QueryEngine) topKSketchCtx(ctx context.Context, q core.Footprint, k int) ([]search.Result, error) {
	qnorm := core.Norm(q)
	if qnorm == 0 {
		return nil, nil
	}
	qsk := sketch.Build(q, e.db.SketchParams)
	scored := e.uc.SketchCandidates(q, &qsk, qnorm)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	workers := e.shardWorkers(len(scored))
	if workers <= 1 {
		col := topk.New(k)
		e.refineBoundedCtx(ctx, col, scored, 0, 1, q, k, qnorm)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return col.Results(), nil
	}
	parts := make([]*topk.Collector, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		parts[w] = topk.New(k)
		wg.Add(1)
		go func(col *topk.Collector, w int) {
			defer wg.Done()
			e.refineBoundedCtx(ctx, col, scored, w, workers, q, k, qnorm)
		}(parts[w], w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return mergeParts(parts, k), nil
}

// refineBoundedCtx refines the strided subsequence start, start+stride,
// … of the bound-descending candidate list into col, exiting as soon as
// the best remaining bound falls strictly below the collector's
// threshold. With start=0, stride=1 this is exactly the serial
// refinement loop of search.TopKSketchStats. It polls ctx every
// cancelStride positions and returns early when it fires; the caller
// must check ctx.Err() and discard the collector.
//
//geo:cancellable
func (e *QueryEngine) refineBoundedCtx(ctx context.Context, col *topk.Collector, scored []search.SketchCandidate,
	start, stride int, q core.Footprint, k int, qnorm float64) {
	for n, i := 0, start; i < len(scored); n, i = n+1, i+stride {
		if n&(cancelStride-1) == 0 && ctx.Err() != nil {
			return
		}
		c := scored[i]
		if col.Len() == k && c.Bound < col.Threshold() {
			return
		}
		sim := e.db.UserSimilarity(c.User, q, qnorm)
		if sim > 0 {
			col.Offer(e.db.IDs[c.User], sim)
		}
	}
}
