package engine

import (
	"context"
	"sync"

	"geofootprint/internal/core"
	"geofootprint/internal/search"
	"geofootprint/internal/topk"
)

// This file is the cancellation layer of the engine: TopKCtx and
// TopKBatchCtx observe context cancellation and deadlines, and the
// non-context entry points are thin wrappers over them with
// context.Background() — so both spellings execute the identical offer
// sequence and the byte-identical determinism guarantees are
// unchanged.
//
// Cancellation protocol:
//
//   - Serial refinement loops poll ctx.Err() every cancelStride
//     candidates, like the search package.
//   - Worker goroutines poll at shard positions (every cancelStride
//     iterations within their shard) and bail out early; the
//     coordinator always waits for every worker before returning, so
//     an abandoned query never leaves a goroutine writing into
//     engine-held state.
//   - On cancellation the query returns (nil, ctx.Err()) — never a
//     partial ranking. All per-query state (collectors, candidate
//     slices) is local and unpublished, so later queries on the same
//     engine are unaffected (verified under -race by tests).

// cancelStride is how many refinement iterations run between
// ctx.Err() polls; a power of two so the test is a mask.
const cancelStride = 256

// TopKCtx is TopK honouring ctx: it returns ctx.Err() when the
// context is cancelled or past its deadline, and never a partial
// result set.
func (e *QueryEngine) TopKCtx(ctx context.Context, q core.Footprint, k int) ([]search.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	switch e.method {
	case MethodLinear:
		qnorm := core.Norm(q)
		if qnorm == 0 {
			return nil, nil
		}
		return e.refineRangeCtx(ctx, len(e.db.Footprints), q, k, qnorm)
	case MethodIterative:
		return e.roi.TopKIterativeCtx(ctx, q, k)
	case MethodBatch:
		return e.roi.TopKBatchCtx(ctx, q, k)
	case MethodSketch:
		return e.topKSketchCtx(ctx, q, k)
	default:
		qnorm := core.Norm(q)
		if qnorm == 0 {
			return nil, nil
		}
		cands := e.uc.Candidates(q.MBR(), nil)
		return e.refineCandidatesCtx(ctx, cands, q, k, qnorm)
	}
}

// serialTopKCtx runs the configured method's serial path under ctx —
// the per-query unit of TopKBatchCtx.
func (e *QueryEngine) serialTopKCtx(ctx context.Context, q core.Footprint, k int) ([]search.Result, error) {
	switch e.method {
	case MethodLinear:
		return search.NewLinearScan(e.db).TopKCtx(ctx, q, k)
	case MethodIterative:
		return e.roi.TopKIterativeCtx(ctx, q, k)
	case MethodBatch:
		return e.roi.TopKBatchCtx(ctx, q, k)
	case MethodSketch:
		return e.uc.TopKSketchCtx(ctx, q, k)
	default:
		return e.uc.TopKCtx(ctx, q, k)
	}
}

// TopKBatchCtx is TopKBatch honouring ctx. On cancellation the whole
// batch fails with ctx.Err(): per-query results computed so far are
// discarded, because a batch with silently missing entries is worse
// than a clean error. Workers drain the feed channel after a
// cancellation (each query then fails fast at its entry poll), so the
// producer never blocks and every goroutine exits before return.
//
//geo:cancellable
func (e *QueryEngine) TopKBatchCtx(ctx context.Context, queries []core.Footprint, k int) ([][]search.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([][]search.Result, len(queries))
	workers := e.workers
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		//lint:ignore ctxcancel serialTopKCtx polls at entry, so every iteration observes cancellation
		for i, q := range queries {
			res, err := e.serialTopKCtx(ctx, q, k)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() != nil {
					continue // drain; the batch is already failed
				}
				res, err := e.serialTopKCtx(ctx, queries[i], k)
				if err != nil {
					continue
				}
				out[i] = res
			}
		}()
	}
	for i := range queries {
		if ctx.Err() != nil {
			break
		}
		next <- i
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// refineCandidatesCtx shards the candidate list of a user-centric
// query across workers, each refining its shard with Algorithm 4 into
// its own bounded heap, and merges the heaps deterministically.
//
//geo:cancellable
func (e *QueryEngine) refineCandidatesCtx(ctx context.Context, cands []int, q core.Footprint, k int, qnorm float64) ([]search.Result, error) {
	workers := e.shardWorkers(len(cands))
	if workers <= 1 {
		col := topk.New(k)
		for i, u := range cands {
			if i&(cancelStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			e.offerUser(col, u, q, qnorm)
		}
		return col.Results(), nil
	}
	parts := e.runShardsCtx(ctx, workers, len(cands), k, func(col *topk.Collector, i int) {
		e.offerUser(col, cands[i], q, qnorm)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return mergeParts(parts, k), nil
}

// refineRangeCtx is refineCandidatesCtx over the dense user range
// [0, n) — the parallel linear scan.
//
//geo:cancellable
func (e *QueryEngine) refineRangeCtx(ctx context.Context, n int, q core.Footprint, k int, qnorm float64) ([]search.Result, error) {
	workers := e.shardWorkers(n)
	if workers <= 1 {
		col := topk.New(k)
		for u := 0; u < n; u++ {
			if u&(cancelStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			e.offerUser(col, u, q, qnorm)
		}
		return col.Results(), nil
	}
	parts := e.runShardsCtx(ctx, workers, n, k, func(col *topk.Collector, u int) {
		e.offerUser(col, u, q, qnorm)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return mergeParts(parts, k), nil
}

// runShardsCtx splits [0, n) into `workers` contiguous shards, runs
// `visit` over each shard on its own goroutine into a per-worker
// collector, and returns the collectors. Workers poll ctx every
// cancelStride positions within their shard and abandon the remainder
// once it fires; callers must check ctx.Err() after the wait and
// discard the partial collectors. The wait itself is unconditional —
// no goroutine outlives the call.
//
//geo:cancellable
func (e *QueryEngine) runShardsCtx(ctx context.Context, workers, n, k int, visit func(col *topk.Collector, i int)) []*topk.Collector {
	parts := make([]*topk.Collector, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			parts[w] = topk.New(k)
			continue
		}
		wg.Add(1)
		parts[w] = topk.New(k)
		go func(col *topk.Collector, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if (i-lo)&(cancelStride-1) == 0 && ctx.Err() != nil {
					return
				}
				visit(col, i)
			}
		}(parts[w], lo, hi)
	}
	wg.Wait()
	return parts
}
