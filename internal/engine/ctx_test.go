package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"geofootprint/internal/core"
)

// Every method must refuse an already-cancelled context up front: no
// result, the context's own error, and no side effects on the engine.
func TestTopKCtxPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	db := testDB(t, rng, 400)
	q := clusteredFootprints(rng, 1, 12)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, mm := range methods(db) {
		e := New(db, Options{Method: mm.m, Workers: 4})
		res, err := e.TopKCtx(ctx, q, 10)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", name, err)
		}
		if res != nil {
			t.Errorf("%s: got %d results from a cancelled query, want none", name, len(res))
		}
		if _, err := e.TopKBatchCtx(ctx, []core.Footprint{q, q}, 10); !errors.Is(err, context.Canceled) {
			t.Errorf("%s batch: err = %v, want context.Canceled", name, err)
		}
	}
}

// A context past its deadline fails with DeadlineExceeded — the error
// the server maps to a 503.
func TestTopKCtxExpiredDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	db := testDB(t, rng, 200)
	q := clusteredFootprints(rng, 1, 12)[0]
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for name, mm := range methods(db) {
		e := New(db, Options{Method: mm.m, Workers: 4})
		if _, err := e.TopKCtx(ctx, q, 10); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want context.DeadlineExceeded", name, err)
		}
	}
}

// A cancelled query must not poison the engine: the very next query on
// the same engine returns the exact serial-oracle ranking. Run under
// -race this also proves no abandoned worker is still writing.
func TestEngineUsableAfterCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	db := testDB(t, rng, 600)
	queries := clusteredFootprints(rng, 6, 12)
	for name, mm := range methods(db) {
		e := New(db, Options{Method: mm.m, Workers: 4})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := e.TopKCtx(ctx, queries[0], 10); err == nil {
			t.Fatalf("%s: cancelled query succeeded", name)
		}
		for i, q := range queries {
			got := e.TopK(q, 10)
			want := mm.serial(q, 10)
			if len(got) != len(want) {
				t.Fatalf("%s query %d after cancel: %d results, want %d", name, i, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("%s query %d after cancel: rank %d = %+v, want %+v", name, i, j, got[j], want[j])
				}
			}
		}
	}
}

// Cancelling mid-flight (from another goroutine, at a random moment)
// yields either the complete correct answer or a clean ctx error —
// never a partial or wrong ranking. The race detector guards the
// worker teardown.
func TestTopKCtxMidFlightCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	db := testDB(t, rng, 800)
	queries := clusteredFootprints(rng, 8, 12)
	for name, mm := range methods(db) {
		e := New(db, Options{Method: mm.m, Workers: 4})
		for i, q := range queries {
			ctx, cancel := context.WithCancel(context.Background())
			go func(d time.Duration) {
				time.Sleep(d)
				cancel()
			}(time.Duration(rng.Intn(200)) * time.Microsecond)
			res, err := e.TopKCtx(ctx, q, 10)
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("%s query %d: unexpected error %v", name, i, err)
				}
				if res != nil {
					t.Fatalf("%s query %d: partial results alongside ctx error", name, i)
				}
			} else {
				want := mm.serial(q, 10)
				if len(res) != len(want) {
					t.Fatalf("%s query %d: %d results, want %d", name, i, len(res), len(want))
				}
				for j := range res {
					if res[j] != want[j] {
						t.Fatalf("%s query %d: rank %d = %+v, want %+v", name, i, j, res[j], want[j])
					}
				}
			}
			cancel()
		}
	}
}

// TopKBatchCtx under an uncancelled context is byte-identical to the
// non-context batch path, and a mid-batch cancel discards everything.
func TestTopKBatchCtxAllOrNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	db := testDB(t, rng, 300)
	queries := clusteredFootprints(rng, 16, 12)
	e := New(db, Options{Method: MethodUserCentric, Workers: 4})

	out, err := e.TopKBatchCtx(context.Background(), queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := e.TopKBatch(queries, 5)
	if len(out) != len(want) {
		t.Fatalf("batch sizes differ: %d vs %d", len(out), len(want))
	}
	for i := range out {
		for j := range out[i] {
			if out[i][j] != want[i][j] {
				t.Fatalf("query %d rank %d: %+v vs %+v", i, j, out[i][j], want[i][j])
			}
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Microsecond)
		cancel()
	}()
	out2, err := e.TopKBatchCtx(ctx, queries, 5)
	if err != nil && out2 != nil {
		t.Fatal("cancelled batch returned partial results alongside the error")
	}
	cancel()
}
