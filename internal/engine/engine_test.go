package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
)

// clusteredFootprints mirrors the generator of the search tests:
// footprints drawn around shared hotspots so users genuinely overlap.
func clusteredFootprints(rng *rand.Rand, users, hotspots int) []core.Footprint {
	type hs struct{ x, y float64 }
	centers := make([]hs, hotspots)
	for i := range centers {
		centers[i] = hs{rng.Float64(), rng.Float64()}
	}
	fps := make([]core.Footprint, users)
	for u := range fps {
		n := 1 + rng.Intn(8)
		f := make(core.Footprint, n)
		for i := range f {
			c := centers[rng.Intn(hotspots)]
			x := c.x + (rng.Float64()-0.5)*0.05
			y := c.y + (rng.Float64()-0.5)*0.05
			f[i] = core.Region{
				Rect: geom.Rect{
					MinX: x, MinY: y,
					MaxX: x + 0.005 + rng.Float64()*0.02,
					MaxY: y + 0.005 + rng.Float64()*0.02,
				},
				Weight: float64(1 + rng.Intn(2)),
			}
		}
		core.SortByMinX(f)
		fps[u] = f
	}
	return fps
}

func testDB(t *testing.T, rng *rand.Rand, users int) *store.FootprintDB {
	t.Helper()
	fps := clusteredFootprints(rng, users, 12)
	ids := make([]int, users)
	for i := range ids {
		ids[i] = i*3 + 1 // non-dense external IDs
	}
	db, err := store.FromFootprints("engine-test", ids, fps)
	if err != nil {
		t.Fatalf("FromFootprints: %v", err)
	}
	return db
}

// methods lists every search path with its serial oracle.
func methods(db *store.FootprintDB) map[string]struct {
	m      Method
	serial func(q core.Footprint, k int) []search.Result
} {
	lin := search.NewLinearScan(db)
	roi := search.NewRoIIndex(db, search.BuildSTR, 0)
	uc := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	if !db.SketchesEnabled() {
		db.EnableSketches(0, 0)
	}
	return map[string]struct {
		m      Method
		serial func(q core.Footprint, k int) []search.Result
	}{
		"linear":       {MethodLinear, lin.TopK},
		"iterative":    {MethodIterative, roi.TopKIterative},
		"batch":        {MethodBatch, roi.TopKBatch},
		"user-centric": {MethodUserCentric, uc.TopK},
		"sketch":       {MethodSketch, uc.TopKSketch},
	}
}

// TestParallelTopKByteIdentical asserts that the engine's parallel
// single-query execution returns byte-identical results to the serial
// Section 6 paths, for every method, across many queries. This is the
// determinism contract of the parallel merge.
func TestParallelTopKByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	db := testDB(t, rng, 400)
	for name, mm := range methods(db) {
		e := New(db, Options{Workers: 4, Method: mm.m})
		for trial := 0; trial < 30; trial++ {
			var q core.Footprint
			if trial%2 == 0 {
				q = db.Footprints[rng.Intn(db.Len())]
			} else {
				q = clusteredFootprints(rng, 1, 12)[0]
			}
			k := 1 + rng.Intn(10)
			want := mm.serial(q, k)
			got := e.TopK(q, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: parallel TopK diverged from serial\ngot:  %v\nwant: %v", name, got, want)
			}
		}
	}
}

// TestBatchByteIdentical asserts that the batched worker-pool path
// returns, per query, byte-identical results to serial execution for
// all four methods.
func TestBatchByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	db := testDB(t, rng, 250)
	queries := make([]core.Footprint, 40)
	for i := range queries {
		if i%2 == 0 {
			queries[i] = db.Footprints[rng.Intn(db.Len())]
		} else {
			queries[i] = clusteredFootprints(rng, 1, 12)[0]
		}
	}
	const k = 5
	for name, mm := range methods(db) {
		e := New(db, Options{Workers: 4, Method: mm.m})
		got := e.TopKBatch(queries, k)
		if len(got) != len(queries) {
			t.Fatalf("%s: %d result sets for %d queries", name, len(got), len(queries))
		}
		for i, q := range queries {
			want := mm.serial(q, k)
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("%s: batch result %d diverged\ngot:  %v\nwant: %v", name, i, got[i], want)
			}
		}
	}
}

// TestRepeatedParallelRunsAgree re-runs the same parallel query many
// times: scheduling must never change the answer.
func TestRepeatedParallelRunsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	db := testDB(t, rng, 300)
	e := New(db, Options{Workers: 8, Method: MethodUserCentric})
	q := db.Footprints[17]
	want := e.TopK(q, 7)
	for i := 0; i < 50; i++ {
		if got := e.TopK(q, 7); !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d diverged\ngot:  %v\nwant: %v", i, got, want)
		}
	}
}

// TestConcurrentQueries drives the engine from many goroutines at
// once — the server's concurrent read pattern — under the race
// detector in `make check`.
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	db := testDB(t, rng, 200)
	e := New(db, Options{Workers: 4})
	queries := make([]core.Footprint, 16)
	wants := make([][]search.Result, len(queries))
	for i := range queries {
		queries[i] = db.Footprints[rng.Intn(db.Len())]
		wants[i] = e.TopK(queries[i], 5)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range queries {
				qi := (i + g) % len(queries)
				if got := e.TopK(queries[qi], 5); !reflect.DeepEqual(got, wants[qi]) {
					t.Errorf("goroutine %d query %d diverged", g, qi)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPrecomputeNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	db := testDB(t, rng, 120)
	wantNorms := append([]float64(nil), db.Norms...)
	wantMBRs := append([]geom.Rect(nil), db.MBRs...)
	// Scribble over the precomputed state, then recompute in parallel.
	for i := range db.Norms {
		db.Norms[i] = -1
		db.MBRs[i] = geom.Rect{}
	}
	e := New(db, Options{Workers: 4, Method: MethodLinear})
	e.PrecomputeNorms()
	for i := range wantNorms {
		if db.Norms[i] != wantNorms[i] {
			t.Fatalf("norm %d = %v, want %v", i, db.Norms[i], wantNorms[i])
		}
		if db.MBRs[i] != wantMBRs[i] {
			t.Fatalf("MBR %d = %v, want %v", i, db.MBRs[i], wantMBRs[i])
		}
	}
}

func TestEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := testDB(t, rng, 30)
	e := New(db, Options{Workers: 4})
	if got := e.TopK(nil, 5); got != nil {
		t.Errorf("empty query returned %v", got)
	}
	if got := e.TopK(db.Footprints[0], 0); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	degenerate := core.Footprint{{Rect: geom.Rect{MinX: 1, MinY: 1, MaxX: 1, MaxY: 1}, Weight: 1}}
	if got := e.TopK(degenerate, 5); got != nil {
		t.Errorf("zero-norm query returned %v", got)
	}
	if got := e.TopKBatch(nil, 5); len(got) != 0 {
		t.Errorf("empty batch returned %v", got)
	}

	empty, err := store.FromFootprints("empty", nil, nil)
	if err != nil {
		t.Fatalf("FromFootprints: %v", err)
	}
	ee := New(empty, Options{Workers: 4})
	if got := ee.TopK(db.Footprints[0], 5); len(got) != 0 {
		t.Errorf("empty db returned %v", got)
	}
	ee.PrecomputeNorms() // must not panic
}

func TestShardWorkersBounds(t *testing.T) {
	e := New(&store.FootprintDB{}, Options{Workers: 8, Method: MethodLinear})
	if w := e.shardWorkers(10); w > 1 {
		t.Errorf("shardWorkers(10) = %d, want <= 1 (below minShard)", w)
	}
	if w := e.shardWorkers(8 * minShard * 10); w != 8 {
		t.Errorf("shardWorkers(big) = %d, want pool cap 8", w)
	}
}
