package engine

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"geofootprint/internal/cache"
	"geofootprint/internal/core"
	"geofootprint/internal/geom"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
)

func cachedTestDB(t *testing.T, users int) *store.FootprintDB {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	ids := make([]int, users)
	fps := make([]core.Footprint, users)
	for u := 0; u < users; u++ {
		ids[u] = u + 1
		f := core.Footprint{}
		for r := 0; r < 4; r++ {
			x, y := rng.Float64()*0.9, rng.Float64()*0.9
			f = append(f, core.Region{
				Rect:   geom.Rect{MinX: x, MinY: y, MaxX: x + 0.06, MaxY: y + 0.06},
				Weight: 1 + rng.Float64(),
			})
		}
		fps[u] = f
	}
	db, err := store.FromFootprints("cached", ids, fps)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// Cached answers must be byte-identical to uncached computation for
// every search method. Since every method is itself exact (equal to
// the serial user-centric oracle), it suffices that the cache returns
// exactly what the engine computed — verified per method via a
// miss/hit/direct triangle.
func TestCachedResultsByteIdenticalAllMethods(t *testing.T) {
	db := cachedTestDB(t, 60)
	db.EnableSketches(0, 1)
	q := append(core.Footprint(nil), db.Footprints[7]...)
	ctx := context.Background()

	methods := []struct {
		name string
		m    Method
	}{
		{"user-centric", MethodUserCentric},
		{"linear", MethodLinear},
		{"iterative", MethodIterative},
		{"batch", MethodBatch},
		{"sketch", MethodSketch},
	}
	for _, tc := range methods {
		eng := New(db, Options{Workers: 2, Method: tc.m})
		direct := eng.TopK(q, 10)
		if len(direct) == 0 {
			t.Fatalf("%s: empty direct result", tc.name)
		}
		c := cache.New(16)
		key := cache.Key{Epoch: 1, Method: tc.name, K: 10, Query: cache.FootprintKey(q)}
		compute := func() (any, error) { return eng.TopKCtx(ctx, q, 10) }

		miss, hit1, err := c.GetOrCompute(ctx, key, compute)
		if err != nil || hit1 {
			t.Fatalf("%s: miss path hit=%v err=%v", tc.name, hit1, err)
		}
		hit, hit2, err := c.GetOrCompute(ctx, key, compute)
		if err != nil || !hit2 {
			t.Fatalf("%s: hit path hit=%v err=%v", tc.name, hit2, err)
		}
		if !reflect.DeepEqual(miss.([]search.Result), direct) {
			t.Fatalf("%s: computed-through-cache result diverges from direct", tc.name)
		}
		if !reflect.DeepEqual(hit.([]search.Result), direct) {
			t.Fatalf("%s: cached result diverges from direct", tc.name)
		}
	}
}

// View.TopKCached is the serving-path wrapper: transparent when the
// cache is nil, hit-reporting when warm, and method-faithful (the
// sketch engine's cached answers equal the default engine's).
func TestViewTopKCached(t *testing.T) {
	db := cachedTestDB(t, 50)
	db.EnableSketches(0, 1)
	v := NewView(db, 2)
	q := append(core.Footprint(nil), db.Footprints[3]...)
	ctx := context.Background()

	bare, _, err := v.TopKCached(ctx, nil, 1, "", q, 8)
	if err != nil || len(bare) == 0 {
		t.Fatalf("nil-cache path: res=%v err=%v", bare, err)
	}

	c := cache.New(16)
	// "" resolves to the canonical "user-centric" key, so the second
	// method's first call is already warm.
	wantFirstHit := map[string]bool{"": false, "user-centric": true, "sketch": false}
	for _, method := range []string{"", "user-centric", "sketch"} {
		first, hit, err := v.TopKCached(ctx, c, 1, method, q, 8)
		if err != nil || hit != wantFirstHit[method] {
			t.Fatalf("method %q first call: hit=%v err=%v", method, hit, err)
		}
		second, hit, err := v.TopKCached(ctx, c, 1, method, q, 8)
		if err != nil || !hit {
			t.Fatalf("method %q second call: hit=%v err=%v", method, hit, err)
		}
		if !reflect.DeepEqual(first, second) || !reflect.DeepEqual(first, bare) {
			t.Fatalf("method %q cached answers diverge", method)
		}
	}
	// "" and "user-centric" share one canonical cache key.
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (\"\" and \"user-centric\" must share a key)", st.Misses)
	}
	if _, err := v.Engine("quantum"); err == nil {
		t.Fatal("unknown method accepted")
	}
}
