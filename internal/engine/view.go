package engine

import (
	"context"
	"fmt"
	"sync"

	"geofootprint/internal/cache"
	"geofootprint/internal/core"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
)

// View bundles everything one epoch needs to answer queries: the
// frozen database, its user-centric index, and the engines for the
// HTTP-selectable methods. A View is built once per published epoch —
// off the query path, on the write side — and is logically immutable
// afterwards, so any number of queries can share it lock-free.
//
// The user-centric and sketch engines are built eagerly (they serve
// production traffic and share one index). The remaining Section 6
// methods — linear, iterative, batch — are HTTP-selectable too, but
// built lazily on first use behind a sync.Once: the iterative/batch
// RoI index costs a full R-tree over every region of every user, and
// paying that on every epoch publish would tax the ingest path for
// methods whose callers are equivalence tests (the cross-shard
// determinism suite drives all four methods through the router) and
// operators comparing methods in place.
type View struct {
	db      *store.FootprintDB
	idx     *search.UserCentricIndex
	uc      *QueryEngine
	sk      *QueryEngine // nil when the database's sketch layer is disabled
	workers int

	linOnce sync.Once
	lin     *QueryEngine
	roiOnce sync.Once
	iter    *QueryEngine
	batch   *QueryEngine
}

// NewView indexes db and builds its query engines. db must already be
// frozen (no concurrent mutation); enable the sketch layer before
// freezing — NewView never mutates db, so a disabled layer stays
// disabled and Engine("sketch") reports it instead.
func NewView(db *store.FootprintDB, workers int) *View {
	idx := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	v := &View{
		db:      db,
		idx:     idx,
		uc:      New(db, Options{Workers: workers, UserCentric: idx}),
		workers: workers,
	}
	if db.SketchesEnabled() {
		v.sk = New(db, Options{Workers: workers, UserCentric: idx, Method: MethodSketch})
	}
	return v
}

// DB returns the view's frozen database (read-only).
func (v *View) DB() *store.FootprintDB { return v.db }

// Index returns the view's user-centric index.
func (v *View) Index() *search.UserCentricIndex { return v.idx }

// Engine maps a request's method name to the engine executing it. All
// four Section 6 search paths (plus the sketch engine) are selectable,
// and on the same database they return bit-identical rankings — which
// is what lets the cross-shard determinism suite compare any of them
// against LinearScan over the wire.
func (v *View) Engine(method string) (*QueryEngine, error) {
	switch method {
	case "", "user-centric":
		return v.uc, nil
	case "sketch":
		if v.sk == nil {
			return nil, fmt.Errorf("method %q unavailable: sketch layer disabled", method)
		}
		return v.sk, nil
	case "linear":
		v.linOnce.Do(func() {
			v.lin = New(v.db, Options{Workers: v.workers, Method: MethodLinear})
		})
		return v.lin, nil
	case "iterative", "batch":
		v.roiOnce.Do(func() {
			// One RoI index shared by both Section 6.1 engines; built
			// against the frozen database, so lazy construction is safe
			// under concurrent queries (the Once is the only gate).
			roi := search.NewRoIIndex(v.db, search.BuildSTR, 0)
			v.iter = New(v.db, Options{Workers: v.workers, Method: MethodIterative, RoI: roi})
			v.batch = New(v.db, Options{Workers: v.workers, Method: MethodBatch, RoI: roi})
		})
		if method == "iterative" {
			return v.iter, nil
		}
		return v.batch, nil
	default:
		return nil, fmt.Errorf("unknown method %q (want \"user-centric\", \"linear\", \"iterative\", \"batch\" or \"sketch\")", method)
	}
}

// TopKCached answers a top-k query through the epoch-keyed result
// cache: a hit returns the previously computed (and, the epoch being
// immutable, still exact) answer; a miss computes on the selected
// engine and populates the cache. c == nil bypasses caching. The
// second return reports a hit. The returned slice is shared with the
// cache and other callers — read-only.
func (v *View) TopKCached(ctx context.Context, c *cache.Cache, epoch uint64, method string, q core.Footprint, k int) ([]search.Result, bool, error) {
	eng, err := v.Engine(method)
	if err != nil {
		return nil, false, err
	}
	if c == nil {
		res, err := eng.TopKCtx(ctx, q, k)
		return res, false, err
	}
	if method == "" {
		method = "user-centric"
	}
	key := cache.Key{Epoch: epoch, Method: method, K: k, Query: cache.FootprintKey(q)}
	val, hit, err := c.GetOrCompute(ctx, key, func() (any, error) {
		return eng.TopKCtx(ctx, q, k)
	})
	if err != nil {
		return nil, false, err
	}
	res, _ := val.([]search.Result)
	return res, hit, nil
}
