// Package engine is the parallel query-execution layer over a
// FootprintDB and the Section 6 search indexes: the piece that turns
// the paper's single-query algorithms into a service that can sustain
// top-k similarity traffic from many concurrent clients.
//
// It parallelises on three axes:
//
//   - Across queries — TopKBatch distributes a batch over a worker
//     pool (the pattern of internal/extract/parallel.go); each query
//     runs the serial search path of the configured method, so batch
//     results are byte-identical to one-at-a-time execution.
//   - Within a query — TopK shards the refinement work (every
//     candidate's join-based Algorithm 4 computation) across workers,
//     each holding its own bounded top-k heap; the per-worker heaps
//     are merged deterministically under the global (score desc,
//     ID asc) total order, so the parallel result equals the serial
//     one bit for bit.
//   - Preprocessing — PrecomputeNorms recomputes every norm and MBR
//     on a work-queue of users, which load-balances the skewed
//     footprint sizes better than static chunking.
//
// Determinism under parallel merge: a topk.Collector's retained set is
// a function of the *multiset* of offers, not of their order, because
// retention follows the strict total order (higher score first, ties
// by smaller user ID). Each candidate's similarity is computed by
// exactly one worker with the same kernel the serial path uses, so
// sharding changes neither any score bit nor the merged ranking.
package engine

import (
	"context"
	"runtime"

	"geofootprint/internal/core"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
	"geofootprint/internal/topk"
)

// Method selects which Section 6 search path the engine executes.
type Method int

const (
	// MethodUserCentric refines R-tree candidates with Algorithm 4
	// (Section 6.2) — the paper's fastest method, and the one whose
	// refinement step TopK parallelises.
	MethodUserCentric Method = iota
	// MethodLinear is the index-free baseline; TopK shards the full
	// user range across workers.
	MethodLinear
	// MethodIterative is the Section 6.1.1 search. Its per-user
	// accumulator sums floating-point contributions in traversal
	// order, so a within-query split would perturb result bits; the
	// engine therefore parallelises it across queries only.
	MethodIterative
	// MethodBatch is the Section 6.1.2 search; parallel across
	// queries only, for the same reason as MethodIterative.
	MethodBatch
	// MethodSketch is the sketch filter-and-refine search
	// (search.TopKSketch): candidates ranked by their grid-sketch
	// upper bound, refined in descending bound order with worker-local
	// early exit (see sketch.go for the exactness argument). Requires
	// the database's sketch layer; New enables it when absent.
	MethodSketch
)

// minShard is the smallest number of refinement candidates worth
// handing to an extra worker; below it, goroutine handoff costs more
// than the Algorithm 4 joins it would offload.
const minShard = 32

// Options configures a QueryEngine.
type Options struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Method is the search path to execute (default MethodUserCentric).
	Method Method
	// UserCentric optionally supplies a prebuilt Section 6.2 index;
	// when nil and Method needs one, New bulk-loads it (STR).
	UserCentric *search.UserCentricIndex
	// RoI optionally supplies a prebuilt Section 6.1 index; when nil
	// and Method needs one, New bulk-loads it (STR).
	RoI *search.RoIIndex
}

// QueryEngine executes top-k similarity queries over a FootprintDB in
// parallel. It is safe for concurrent use as long as the underlying
// database and indexes are not mutated concurrently (the server
// serialises mutations behind its write lock, as before).
type QueryEngine struct {
	db      *store.FootprintDB
	uc      *search.UserCentricIndex
	roi     *search.RoIIndex
	workers int
	method  Method
}

// New builds an engine over db, constructing whichever index the
// selected method needs unless one is supplied.
func New(db *store.FootprintDB, opts Options) *QueryEngine {
	e := &QueryEngine{
		db:      db,
		uc:      opts.UserCentric,
		roi:     opts.RoI,
		workers: opts.Workers,
		method:  opts.Method,
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	switch e.method {
	case MethodUserCentric:
		if e.uc == nil {
			e.uc = search.NewUserCentricIndex(db, search.BuildSTR, 0)
		}
	case MethodSketch:
		if !db.SketchesEnabled() {
			db.EnableSketches(0, e.workers)
		}
		if e.uc == nil {
			e.uc = search.NewUserCentricIndex(db, search.BuildSTR, 0)
		}
	case MethodIterative, MethodBatch:
		if e.roi == nil {
			e.roi = search.NewRoIIndex(db, search.BuildSTR, 0)
		}
	}
	return e
}

// Workers returns the engine's worker-pool size.
func (e *QueryEngine) Workers() int { return e.workers }

// Method returns the search path the engine executes.
func (e *QueryEngine) Method() Method { return e.method }

// DB returns the wrapped database.
func (e *QueryEngine) DB() *store.FootprintDB { return e.db }

// TopK answers a single top-k query, parallelising the refinement
// step when the method decomposes (user-centric, linear) and enough
// candidates justify the fan-out. Results are identical — including
// every score bit and tie-break — to the serial search paths. It is
// TopKCtx under a background context (which never cancels, so the
// error is statically nil).
func (e *QueryEngine) TopK(q core.Footprint, k int) []search.Result {
	res, _ := e.TopKCtx(context.Background(), q, k)
	return res
}

// serialTopK runs the configured method's serial path — the oracle the
// parallel paths must match, and the per-query unit of TopKBatch.
func (e *QueryEngine) serialTopK(q core.Footprint, k int) []search.Result {
	res, _ := e.serialTopKCtx(context.Background(), q, k)
	return res
}

// TopKBatch answers a batch of queries across the worker pool, one
// merged result set per query, in input order. Each query executes the
// serial path of the configured method on a single worker, so the
// output is byte-identical to calling TopK serially per query — for
// all four methods. It is TopKBatchCtx under a background context.
func (e *QueryEngine) TopKBatch(queries []core.Footprint, k int) [][]search.Result {
	out, _ := e.TopKBatchCtx(context.Background(), queries, k)
	return out
}

// offerUser refines one candidate with Algorithm 4 and offers the
// score — exactly what the serial user-centric and linear paths do.
func (e *QueryEngine) offerUser(col *topk.Collector, u int, q core.Footprint, qnorm float64) {
	sim := e.db.UserSimilarity(u, q, qnorm)
	if sim > 0 {
		col.Offer(e.db.IDs[u], sim)
	}
}

// shardWorkers sizes the within-query fan-out: at most one worker per
// minShard candidates, capped by the pool size.
func (e *QueryEngine) shardWorkers(n int) int {
	w := e.workers
	if byWork := n / minShard; byWork < w {
		w = byWork
	}
	return w
}

// mergeParts merges per-worker bounded heaps into the final top-k.
// The merge is deterministic regardless of worker scheduling: the
// collector's retained set depends only on the multiset of offers
// (strict total order on score desc, user ID asc), and every partial
// heap retains every result that can appear in the global top k.
func mergeParts(parts []*topk.Collector, k int) []search.Result {
	lists := make([][]search.Result, len(parts))
	for i, p := range parts {
		lists[i] = p.Results()
	}
	return MergeParts(lists, k)
}

// MergeParts merges independently computed partial top-k result lists
// into the global top-k under the system-wide total order (score
// desc, user ID asc). It is the deterministic merge seam every
// composition layer shares: per-worker heaps within a query (this
// package), and per-shard partial heaps across the wire
// (internal/router) — the cross-shard result is byte-identical to a
// single-node run exactly because both sides reduce to this function.
//
// The operation is associative: merging pre-merged partials equals
// merging the flat parts, MergeParts([MergeParts(A,k),
// MergeParts(B,k)], k) == MergeParts(A ++ B, k). Proof sketch: every
// element of the global top-k over A ∪ B is, within its own part,
// outranked by fewer than k elements, so a per-part top-k retains it;
// and the collector's retained set is a function of the multiset of
// offers, not their order (property-tested in merge_test.go).
//
// Each part must be the output of a bounded top-k over its slice of
// the corpus with at least the same k — a part truncated below k may
// have discarded a global top-k member, which is exactly the
// "partial result" case the router reports explicitly rather than
// merging silently.
func MergeParts(parts [][]search.Result, k int) []search.Result {
	col := topk.New(k)
	for _, p := range parts {
		for _, r := range p {
			col.Offer(r.ID, r.Score)
		}
	}
	return col.Results()
}

// PrecomputeNorms recomputes every user's norm (Algorithm 2) and MBR
// on the engine's worker count using a work queue, which load-balances
// skewed footprint sizes better than the static chunking of
// store.ComputeNorms. Use after bulk mutations, before serving. The
// writes themselves live in store.ComputeNormsBalanced: only
// internal/store mutates FootprintDB's parallel slices (the
// sortedfootprint geolint rule).
func (e *QueryEngine) PrecomputeNorms() {
	e.db.ComputeNormsBalanced(e.workers)
}
