package bench

import "testing"

func TestWeightedComparison(t *testing.T) {
	w := tinyWorkload(t)
	res, err := WeightedComparison(w, 20, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 20 || res.K != 5 {
		t.Errorf("shape: %+v", res)
	}
	if res.MeanJaccard < 0 || res.MeanJaccard > 1 {
		t.Errorf("Jaccard out of range: %v", res.MeanJaccard)
	}
	// Weights shift rankings somewhat, but similar users under one
	// model stay broadly similar under the other: the overlap should
	// be substantial.
	if res.MeanJaccard < 0.3 {
		t.Errorf("weighted rankings implausibly different: %+v", res)
	}
	if res.Top1Agreement < 0.3 {
		t.Errorf("top-1 agreement implausibly low: %+v", res)
	}
	if res.UnweightedMicros <= 0 || res.WeightedMicros <= 0 {
		t.Errorf("timings: %+v", res)
	}
}
