package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"geofootprint/internal/core"
	"geofootprint/internal/engine"
	"geofootprint/internal/search"

	"math/rand"
)

// Fig3aParallelRow is the Figure 3(a) workload executed twice per
// method: once on the serial Section 6 paths and once through the
// parallel query engine's batched worker pool. Identical reports
// whether every parallel result list matched its serial oracle
// byte for byte.
type Fig3aParallelRow struct {
	Part    string `json:"part"`
	Queries int    `json:"queries"`
	K       int    `json:"k"`
	Workers int    `json:"workers"`

	SerialIterativeSeconds   float64 `json:"serial_iterative_seconds"`
	ParallelIterativeSeconds float64 `json:"parallel_iterative_seconds"`

	SerialBatchSeconds   float64 `json:"serial_batch_seconds"`
	ParallelBatchSeconds float64 `json:"parallel_batch_seconds"`

	SerialUserCentricSeconds   float64 `json:"serial_user_centric_seconds"`
	ParallelUserCentricSeconds float64 `json:"parallel_user_centric_seconds"`

	Identical bool `json:"identical_results"`
}

// SpeedupUserCentric returns the parallel speedup of the headline
// (user-centric) method, 0 when unmeasurable.
func (r Fig3aParallelRow) SpeedupUserCentric() float64 {
	if r.ParallelUserCentricSeconds <= 0 {
		return 0
	}
	return r.SerialUserCentricSeconds / r.ParallelUserCentricSeconds
}

// Fig3aParallel repeats the Figure 3(a) measurement with the query
// engine: the same query set runs serially (the Fig3a paths) and then
// through engine.TopKBatch on `workers` workers, per method, with the
// parallel results verified byte-identical to the serial ones.
func Fig3aParallel(w *Workload, queries, k, workers int, seed int64) Fig3aParallelRow {
	rng := rand.New(rand.NewSource(seed))
	db := w.DB
	n := db.Len()
	if queries > n {
		queries = n
	}
	qIdx := rng.Perm(n)[:queries]
	qs := make([]core.Footprint, queries)
	for i, qi := range qIdx {
		qs[i] = db.Footprints[qi]
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	row := Fig3aParallelRow{Part: w.Part, Queries: queries, K: k, Workers: workers, Identical: true}

	// Insertion-built trees, matching Fig3a; both executions share
	// the same indexes so only the execution strategy differs.
	roi := search.NewRoIIndex(db, search.BuildInsert, 0)
	uc := search.NewUserCentricIndex(db, search.BuildInsert, 0)

	check := func(serial, parallel [][]search.Result) {
		if !reflect.DeepEqual(serial, parallel) {
			row.Identical = false
		}
	}

	run := func(method engine.Method, ix func(q core.Footprint) []search.Result) (serialS, parS float64) {
		serial := make([][]search.Result, len(qs))
		start := time.Now()
		for i, q := range qs {
			serial[i] = ix(q)
		}
		serialS = time.Since(start).Seconds()

		e := engine.New(db, engine.Options{Workers: workers, Method: method, RoI: roi, UserCentric: uc})
		start = time.Now()
		parallel := e.TopKBatch(qs, k)
		parS = time.Since(start).Seconds()
		check(serial, parallel)
		return serialS, parS
	}

	row.SerialIterativeSeconds, row.ParallelIterativeSeconds =
		run(engine.MethodIterative, func(q core.Footprint) []search.Result { return roi.TopKIterative(q, k) })
	row.SerialBatchSeconds, row.ParallelBatchSeconds =
		run(engine.MethodBatch, func(q core.Footprint) []search.Result { return roi.TopKBatch(q, k) })
	row.SerialUserCentricSeconds, row.ParallelUserCentricSeconds =
		run(engine.MethodUserCentric, func(q core.Footprint) []search.Result { return uc.TopK(q, k) })
	return row
}

// Report is the machine-readable envelope geobench writes next to its
// text tables, one BENCH_<experiment>.json per experiment, so the
// repo's performance trajectory can be tracked across commits. The
// environment fields (go_version, num_cpu, gomaxprocs, parallel) make
// a report comparable across machines and settings: a wall-clock
// regression means nothing without them.
type Report struct {
	Experiment string  `json:"experiment"`
	Scale      float64 `json:"scale"`
	Workers    int     `json:"workers"`
	GoVersion  string  `json:"go_version"`
	NumCPU     int     `json:"num_cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Parallel   bool    `json:"parallel"`
	// Warnings flags conditions that make the numbers incomparable to
	// a normal run — a GOMAXPROCS=1 process measuring parallel code,
	// for instance. Readers (and benchdiff users) should treat a
	// report with warnings as suspect.
	Warnings []string    `json:"warnings,omitempty"`
	Rows     interface{} `json:"rows"`
}

// WriteReport writes the report as indented JSON to
// <dir>/BENCH_<experiment>.json and returns the path, stamping the
// runtime environment fields when the caller left them zero.
func WriteReport(dir string, r Report) (string, error) {
	if r.GoVersion == "" {
		r.GoVersion = runtime.Version()
	}
	if r.NumCPU == 0 {
		r.NumCPU = runtime.NumCPU()
	}
	if r.GoMaxProcs == 0 {
		r.GoMaxProcs = runtime.GOMAXPROCS(0)
	}
	if r.GoMaxProcs == 1 {
		r.Warnings = append(r.Warnings,
			"GOMAXPROCS=1: parallel speedups and concurrent-ingest latencies are not meaningful in this report")
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, r.Experiment)
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
