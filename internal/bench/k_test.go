package bench

import "testing"

func TestKSensitivity(t *testing.T) {
	w := tinyWorkload(t)
	rows := KSensitivity(w, []int{1, 5, 50}, 20, 1)
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("K=%d: non-positive time", r.K)
		}
	}
	// The paper's claim: time is not affected by K. Allow generous
	// noise on a tiny run — K=50 must not cost more than 3x K=1.
	if rows[2].Seconds > 3*rows[0].Seconds+0.01 {
		t.Errorf("K=50 time %v vs K=1 %v — K sensitivity too strong",
			rows[2].Seconds, rows[0].Seconds)
	}
}
