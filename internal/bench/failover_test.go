package bench

import "testing"

// Tiny end-to-end run of the failover experiment: three phases per
// replication factor, every answer verified exact over its claimed
// coverage, and the replication payoff visible in the counters — R=1
// answers partial through the outage, R=2 stays complete.
func TestFailoverBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is not short")
	}
	w, err := NewWorkload("A", 0.002, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := FailoverBench(w, 20, 5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 phases x R in {1,2})", len(rows))
	}
	byKey := map[string]FailoverRow{}
	for _, r := range rows {
		if !r.Exact {
			t.Errorf("R=%d %s: answers not exact over claimed coverage", r.Replicas, r.Phase)
		}
		if r.QueriesPerSec <= 0 || r.MeanMicros <= 0 || r.Partials+r.Complete != r.Queries {
			t.Errorf("degenerate row: %+v", r)
		}
		byKey[r.Phase+"/"+itoa(r.Replicas)] = r
	}
	for _, R := range []int{1, 2} {
		for _, phase := range []string{"healthy", "restarted"} {
			if r := byKey[phase+"/"+itoa(R)]; r.Partials != 0 {
				t.Errorf("R=%d %s: %d partial answers on a healthy cluster", R, phase, r.Partials)
			}
		}
	}
	if r := byKey["one-down/1"]; r.Partials == 0 {
		t.Errorf("R=1 one-down: expected partial answers, got none: %+v", r)
	}
	if r := byKey["one-down/2"]; r.Partials != 0 {
		t.Errorf("R=2 one-down: %d partial answers despite replication", r.Partials)
	} else if r.FailedOver == 0 {
		t.Errorf("R=2 one-down: complete answers but zero failed-over legs: %+v", r)
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}
