package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"geofootprint/internal/core"
	"geofootprint/internal/extract"
	"geofootprint/internal/geom"
	"geofootprint/internal/ingest"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
	"geofootprint/internal/wal"
)

// Streaming-ingestion benchmark: sustained WAL-durable throughput per
// fsync policy, and the query-latency cost of ingesting concurrently
// with serving — the operational questions the paper's offline
// pipeline never had to answer.

// IngestRow is one fsync policy's measurement. Throughput fields
// deliberately do not end in _seconds/_micros: benchdiff compares
// wall-clock keys as costs (smaller is better), which would invert the
// meaning of a rate. The wall-clock and latency fields do, so
// regressions in them gate PRs.
type IngestRow struct {
	Policy  string `json:"policy"`
	Samples int    `json:"samples"`
	Batches int    `json:"batches"`
	Users   int    `json:"users"`
	RoIs    uint64 `json:"rois"`

	SamplesPerSec     float64 `json:"samples_per_sec"`
	IngestWallSeconds float64 `json:"ingest_wall_seconds"`
	// Mean top-k latency of a linear scan over the growing corpus
	// while ingestion is applying, vs after it has drained.
	QueryDuringMicros float64 `json:"query_during_micros"`
	QueryIdleMicros   float64 `json:"query_idle_micros"`
	WALBytes          int64   `json:"wal_bytes"`
}

// benchSink is the server's locking discipline without the HTTP
// server: mutations and snapshots behind a write lock, queries behind
// read locks.
type benchSink struct {
	mu sync.RWMutex
	db *store.FootprintDB
}

func (s *benchSink) ApplyBatch(updates []ingest.UserRoIs) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range updates {
		s.db.AppendRoIs(u.User, core.FromRoIs(u.RoIs, 0))
	}
}

func (s *benchSink) WithDB(fn func(db *store.FootprintDB)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.db)
}

// ingestStream generates the synthetic firehose: users dwell (emitting
// RoIs), relocate, and disappear past the session gap.
func ingestStream(users, samples int, seed int64) []ingest.Sample {
	rng := rand.New(rand.NewSource(seed))
	type cursor struct{ x, y, t float64 }
	cur := make([]cursor, users)
	for u := range cur {
		cur[u] = cursor{rng.Float64(), rng.Float64(), rng.Float64() * 5}
	}
	out := make([]ingest.Sample, 0, samples)
	for i := 0; i < samples; i++ {
		u := rng.Intn(users)
		c := &cur[u]
		switch r := rng.Float64(); {
		case r < 0.03:
			c.t += 120 + rng.Float64()*120
			c.x, c.y = rng.Float64(), rng.Float64()
		case r < 0.15:
			c.t += 1
			c.x, c.y = rng.Float64(), rng.Float64()
		default:
			c.t += 1
			c.x += (rng.Float64() - 0.5) * 0.01
			c.y += (rng.Float64() - 0.5) * 0.01
		}
		out = append(out, ingest.Sample{User: u + 1, X: c.x, Y: c.y, T: c.t})
	}
	return out
}

// ingestQuery is the fixed probe footprint for the latency
// measurements: a handful of cells across the middle of the unit
// domain, overlapping many users.
func ingestQuery() core.Footprint {
	f := core.Footprint{}
	for i := 0; i < 5; i++ {
		x := 0.15 * float64(i+1)
		f = append(f, core.Region{
			Rect:   geom.Rect{MinX: x, MinY: x, MaxX: x + 0.05, MaxY: x + 0.05},
			Weight: 1,
		})
	}
	core.SortByMinX(f)
	return f
}

// IngestBench feeds the same synthetic stream through the durable
// pipeline once per fsync policy and reports sustained throughput plus
// query latency during and after ingestion. Policies differ only in
// WAL durability, so throughput deltas isolate the fsync cost.
func IngestBench(users, samples, batchSize int, policies []wal.SyncPolicy, seed int64) ([]IngestRow, error) {
	stream := ingestStream(users, samples, seed)
	q := ingestQuery()

	var rows []IngestRow
	for _, policy := range policies {
		dir, err := os.MkdirTemp("", "geobench-ingest-*")
		if err != nil {
			return nil, err
		}
		cfg := ingest.Config{
			WALPath:      filepath.Join(dir, "bench.wal"),
			SnapshotPath: filepath.Join(dir, "bench.snap"),
			Extract:      extract.Config{Epsilon: 0.02, Tau: 10},
			SessionGap:   60,
			Sync:         policy,
			SyncInterval: 10 * time.Millisecond,
			MaxBatch:     batchSize,
		}
		sink := &benchSink{db: &store.FootprintDB{Name: "bench"}}
		p, err := ingest.New(cfg, sink, nil)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}

		// Concurrent reader: linear-scan top-k under the read lock
		// while the apply goroutine lands batches under the write lock.
		stop := make(chan struct{})
		type latency struct {
			total time.Duration
			n     int
		}
		during := make(chan latency, 1)
		go func() {
			var l latency
			lin := search.NewLinearScan(sink.db)
			for {
				select {
				case <-stop:
					during <- l
					return
				default:
				}
				t0 := time.Now()
				sink.mu.RLock()
				lin.TopK(q, 10)
				sink.mu.RUnlock()
				l.total += time.Since(t0)
				l.n++
			}
		}()

		start := time.Now()
		batches := 0
		for off := 0; off < len(stream); off += batchSize {
			end := off + batchSize
			if end > len(stream) {
				end = len(stream)
			}
			for {
				_, err := p.Ingest(stream[off:end])
				if err == nil {
					break
				}
				if err != ingest.ErrBacklogFull {
					os.RemoveAll(dir)
					return nil, err
				}
				time.Sleep(100 * time.Microsecond)
			}
			batches++
		}
		if err := p.Drain(); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		wall := time.Since(start).Seconds()
		close(stop)
		dur := <-during

		// Idle latency over the final corpus.
		lin := search.NewLinearScan(sink.db)
		idleRuns := dur.n
		if idleRuns < 10 {
			idleRuns = 10
		}
		if idleRuns > 2000 {
			idleRuns = 2000
		}
		t0 := time.Now()
		for i := 0; i < idleRuns; i++ {
			lin.TopK(q, 10)
		}
		idle := time.Since(t0)

		st := p.Stats()
		row := IngestRow{
			Policy:            policy.String(),
			Samples:           samples,
			Batches:           batches,
			Users:             sink.db.Len(),
			RoIs:              st.RoIs,
			SamplesPerSec:     float64(samples) / wall,
			IngestWallSeconds: wall,
			QueryIdleMicros:   float64(idle.Microseconds()) / float64(idleRuns),
			WALBytes:          st.WALBytes,
		}
		if dur.n > 0 {
			row.QueryDuringMicros = float64(dur.total.Microseconds()) / float64(dur.n)
		}
		if err := p.Close(); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		os.RemoveAll(dir)
		if row.Users == 0 || row.RoIs == 0 {
			return nil, fmt.Errorf("ingest bench (%s): degenerate stream, no RoIs extracted", policy)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
