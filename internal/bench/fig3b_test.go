package bench

import "testing"

func TestClusterMethods(t *testing.T) {
	w := tinyWorkload(t)
	rows, err := ClusterMethods(w, 120, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d methods", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 {
			t.Errorf("%s: non-positive time", r.Method)
		}
		if r.Purity < 0 || r.Purity > 1 {
			t.Errorf("%s: purity %v", r.Method, r.Purity)
		}
		if r.Silhouette < -1 || r.Silhouette > 1 {
			t.Errorf("%s: silhouette %v", r.Method, r.Silhouette)
		}
	}
	// Average-link (the paper's choice) should do well on persona
	// structure.
	if rows[0].Method != "average-link" || rows[0].Purity < 0.8 {
		t.Errorf("average-link purity %v", rows[0].Purity)
	}
}
