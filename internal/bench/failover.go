package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"geofootprint/internal/breaker"
	"geofootprint/internal/core"
	"geofootprint/internal/hashring"
	"geofootprint/internal/netfault"
	"geofootprint/internal/router"
	"geofootprint/internal/search"
	"geofootprint/internal/server"
	"geofootprint/internal/store"
)

// FailoverRow is one phase of the failover experiment: router top-k
// throughput and answer quality over 4 ring-split shards while one of
// them is killed and later restarted, at replication factor R. The
// experiment exists to price replication: R=1 pays nothing when
// healthy but answers partial through the outage; R=2 keeps every
// answer complete and exact while one shard is down.
type FailoverRow struct {
	Part     string `json:"part"`
	Replicas int    `json:"replicas"`
	// Phase is healthy, one-down, or restarted.
	Phase         string  `json:"phase"`
	Shards        int     `json:"shards"`
	Users         int     `json:"users"`
	Queries       int     `json:"queries"`
	K             int     `json:"k"`
	Clients       int     `json:"clients"`
	WallSeconds   float64 `json:"wall_seconds"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	MeanMicros    float64 `json:"mean_micros"`
	// Partials counts answers that named lost ring segments; Complete
	// counts answers covering the whole corpus. Partials+Complete ==
	// Queries in every phase — a query never errors out.
	Partials int `json:"partials"`
	Complete int `json:"complete"`
	// FailedOver totals fan-out legs rescued by a later replica.
	FailedOver int `json:"failed_over"`
	// Exact reports that every answer in the verification pass was
	// bit-identical to LinearScan over the corpus it claimed to cover:
	// the full store for complete answers, the surviving segments'
	// users for partial ones. False means silently-wrong results — the
	// failure mode the replication layer exists to rule out.
	Exact bool `json:"exact"`
}

// failoverCluster is the 4-shard replica-split deployment the
// experiment drives, with a fault-injecting transport in front.
type failoverCluster struct {
	router *router.Router
	ring   *hashring.Ring
	ft     *netfault.Transport
	hosts  []string
	segOf  map[int]string // user ID -> owning segment ID
	closer func()
}

func startFailoverCluster(db *store.FootprintDB, n, R int) (*failoverCluster, error) {
	pre := &hashring.Map{Version: hashring.MapVersion}
	for i := 0; i < n; i++ {
		pre.Shards = append(pre.Shards, hashring.Shard{
			ID: fmt.Sprintf("shard-%d", i), Addr: fmt.Sprintf("http://pre-%d", i),
		})
	}
	ring, err := hashring.NewRing(pre)
	if err != nil {
		return nil, err
	}
	subIDs := make([][]int, n)
	subFPs := make([][]core.Footprint, n)
	segOf := make(map[int]string, db.Len())
	for u, id := range db.IDs {
		tuple := ring.ReplicaIndices(id, R)
		segOf[id] = ring.SegmentID(tuple)
		for _, i := range tuple {
			subIDs[i] = append(subIDs[i], id)
			subFPs[i] = append(subFPs[i], db.Footprints[u])
		}
	}

	c := &failoverCluster{ring: ring, ft: netfault.New(nil), segOf: segOf}
	live := &hashring.Map{Version: hashring.MapVersion}
	var srvs []*httptest.Server
	c.closer = func() {
		for _, s := range srvs {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		sub, err := store.FromFootprints(fmt.Sprintf("shard-%d", i), subIDs[i], subFPs[i])
		if err != nil {
			c.closer()
			return nil, err
		}
		hs := httptest.NewServer(server.NewWithOptions(sub, server.Options{
			ShardID: fmt.Sprintf("shard-%d", i),
		}).Handler())
		srvs = append(srvs, hs)
		u, err := url.Parse(hs.URL)
		if err != nil {
			c.closer()
			return nil, err
		}
		c.hosts = append(c.hosts, u.Host)
		live.Shards = append(live.Shards, hashring.Shard{ID: fmt.Sprintf("shard-%d", i), Addr: hs.URL})
	}
	c.router, err = router.New(router.Config{
		Map:            live,
		Replicas:       R,
		HealthInterval: -1,
		RequestTimeout: 2 * time.Second,
		RetryBase:      time.Millisecond,
		RetryCap:       10 * time.Millisecond,
		Client:         &http.Client{Transport: c.ft},
		Logger:         log.New(io.Discard, "", 0),
		// A short open period keeps the one-down phase honest (the dead
		// shard is re-probed a few times during the run) while the
		// breaker still absorbs almost all of its cost.
		Breaker: breaker.Config{Window: 8, MinSamples: 2, OpenFor: 100 * time.Millisecond},
	})
	if err != nil {
		c.closer()
		return nil, err
	}
	srvClose := c.closer
	c.closer = func() {
		c.router.Close()
		srvClose()
	}
	c.router.CheckHealth(context.Background())
	return c, nil
}

// FailoverBench measures the distributed plane through a kill/restart
// cycle of one of 4 shards, at R=1 and R=2. Three phases per R:
// healthy, one-down (shard-1's host answers nothing), restarted
// (fault cleared, one health round, one breaker period). Every phase
// runs a verification pass first — each answer checked bit-identical
// to LinearScan over the corpus it claims to cover — then a timed
// pass with `clients` concurrent query goroutines.
func FailoverBench(w *Workload, queries, k, clients int, seed int64) ([]FailoverRow, error) {
	db := w.DB
	n := db.Len()
	if queries > n {
		queries = n
	}
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
		if clients > 8 {
			clients = 8
		}
	}
	rng := rand.New(rand.NewSource(seed))
	qIdx := rng.Perm(n)[:queries]
	bodies := make([]json.RawMessage, queries)
	for i, qi := range qIdx {
		b, err := encodeRegions(db.Footprints[qi])
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	oracle := search.NewLinearScan(db)
	want := make([][]search.Result, queries)
	for i, qi := range qIdx {
		want[i] = oracle.TopK(db.Footprints[qi], k)
	}

	const shards = 4
	deadHost := 1 // shard-1 takes the kill
	var rows []FailoverRow
	for _, R := range []int{1, 2} {
		c, err := startFailoverCluster(db, shards, R)
		if err != nil {
			return nil, err
		}
		phase := func(name string) (FailoverRow, error) {
			row := FailoverRow{
				Part: w.Part, Replicas: R, Phase: name, Shards: shards,
				Users: n, Queries: queries, K: k, Clients: clients, Exact: true,
			}
			// Verification pass: exactness over the claimed coverage.
			for i, qi := range qIdx {
				res, err := c.router.TopK(context.Background(), router.Query{Regions: bodies[i], K: k})
				if err != nil {
					return row, fmt.Errorf("failover R=%d %s: query %d: %w", R, name, i, err)
				}
				expect := want[i]
				if res.Partial {
					expect = c.survivorOracle(db, res.Missing).TopK(db.Footprints[qi], k)
				}
				g, _ := json.Marshal(res.Results)
				o, _ := json.Marshal(expect)
				if string(g) != string(o) {
					row.Exact = false
					return row, fmt.Errorf("failover R=%d %s: query %d diverged from its oracle:\nrouter: %s\noracle: %s", R, name, i, g, o)
				}
			}
			// Timed pass.
			var next int64
			var partials, complete, failedOver int64
			var wg sync.WaitGroup
			start := time.Now()
			for cl := 0; cl < clients; cl++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := int(atomic.AddInt64(&next, 1)) - 1
						if i >= queries {
							return
						}
						res, err := c.router.TopK(context.Background(), router.Query{Regions: bodies[i], K: k})
						if err != nil {
							panic(fmt.Sprintf("failover bench query failed mid-measurement: %v", err))
						}
						if res.Partial {
							atomic.AddInt64(&partials, 1)
						} else {
							atomic.AddInt64(&complete, 1)
						}
						atomic.AddInt64(&failedOver, int64(res.FailedOver))
					}
				}()
			}
			wg.Wait()
			row.WallSeconds = time.Since(start).Seconds()
			row.Partials = int(partials)
			row.Complete = int(complete)
			row.FailedOver = int(failedOver)
			if row.WallSeconds > 0 {
				row.QueriesPerSec = float64(queries) / row.WallSeconds
				row.MeanMicros = row.WallSeconds * 1e6 / float64(queries)
			}
			return row, nil
		}

		healthy, err := phase("healthy")
		if err != nil {
			c.closer()
			return nil, err
		}
		// Kill: the shard's host answers nothing, starting now.
		c.ft.Set(c.hosts[deadHost], netfault.Schedule{FailFromN: 1})
		c.router.CheckHealth(context.Background())
		oneDown, err := phase("one-down")
		if err != nil {
			c.closer()
			return nil, err
		}
		// Restart: fault cleared, one health round, one breaker period.
		c.ft.Clear(c.hosts[deadHost])
		c.router.CheckHealth(context.Background())
		time.Sleep(150 * time.Millisecond) // > Breaker.OpenFor
		restarted, err := phase("restarted")
		if err != nil {
			c.closer()
			return nil, err
		}
		c.closer()
		rows = append(rows, healthy, oneDown, restarted)
	}
	return rows, nil
}

// survivorOracle builds a LinearScan over the users outside the lost
// segments — the exact corpus a correct partial answer covers.
func (c *failoverCluster) survivorOracle(db *store.FootprintDB, missing []string) *search.LinearScan {
	lost := make(map[string]bool, len(missing))
	for _, m := range missing {
		lost[m] = true
	}
	var ids []int
	var fps []core.Footprint
	for u, id := range db.IDs {
		if !lost[c.segOf[id]] {
			ids = append(ids, id)
			fps = append(fps, db.Footprints[u])
		}
	}
	rest, err := store.FromFootprints("survivors", ids, fps)
	if err != nil {
		panic(err) // unreachable: ids and fps are built in lockstep
	}
	return search.NewLinearScan(rest)
}
