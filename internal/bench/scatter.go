package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"geofootprint/internal/core"
	"geofootprint/internal/hashring"
	"geofootprint/internal/router"
	"geofootprint/internal/search"
	"geofootprint/internal/server"
	"geofootprint/internal/store"
)

// ScatterRow is one point of the distributed-serving scaling
// measurement: top-k throughput through the georouter scatter-gather
// path with the part's corpus ring-split across N in-process geoserve
// shards (loopback HTTP, so the numbers isolate the serving plane from
// the network).
type ScatterRow struct {
	Part          string  `json:"part"`
	Shards        int     `json:"shards"`
	Users         int     `json:"users"`
	Queries       int     `json:"queries"`
	K             int     `json:"k"`
	Clients       int     `json:"clients"`
	WallSeconds   float64 `json:"wall_seconds"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	MeanMicros    float64 `json:"mean_micros"`
	// SpeedupVs1 is QueriesPerSec relative to the 1-shard run of the
	// same part — the scaling factor the experiment exists to measure.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
	// Verified reports that every response in a pre-timing pass was
	// bit-identical to LinearScan on the unpartitioned store.
	Verified bool `json:"verified"`
}

// scatterRegion mirrors the server's region wire format.
type scatterRegion struct {
	Rect   [4]float64 `json:"rect"`
	Weight float64    `json:"weight"`
}

func encodeRegions(f core.Footprint) (json.RawMessage, error) {
	regs := make([]scatterRegion, len(f))
	for i, r := range f {
		regs[i] = scatterRegion{
			Rect:   [4]float64{r.Rect.MinX, r.Rect.MinY, r.Rect.MaxX, r.Rect.MaxY},
			Weight: r.Weight,
		}
	}
	return json.Marshal(regs)
}

// ScatterBench ring-splits the workload across each shard count,
// serves every split from real geoserve handlers over loopback HTTP,
// and measures router top-k throughput with `clients` concurrent
// query goroutines (<= 0: min(8, GOMAXPROCS)). Before timing, every
// query's routed answer is checked bit-identical against LinearScan
// on the unpartitioned store; a divergence is an error, not a number.
func ScatterBench(w *Workload, shardCounts []int, queries, k, clients int, seed int64) ([]ScatterRow, error) {
	db := w.DB
	n := db.Len()
	if queries > n {
		queries = n
	}
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
		if clients > 8 {
			clients = 8
		}
	}
	rng := rand.New(rand.NewSource(seed))
	qIdx := rng.Perm(n)[:queries]
	bodies := make([]json.RawMessage, queries)
	for i, qi := range qIdx {
		b, err := encodeRegions(db.Footprints[qi])
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	oracle := search.NewLinearScan(db)
	want := make([][]search.Result, queries)
	for i, qi := range qIdx {
		want[i] = oracle.TopK(db.Footprints[qi], k)
	}

	rows := make([]ScatterRow, 0, len(shardCounts))
	var base float64
	for _, shards := range shardCounts {
		r, cleanup, err := startScatterCluster(db, shards)
		if err != nil {
			return nil, err
		}
		row := ScatterRow{Part: w.Part, Shards: shards, Users: n, Queries: queries, K: k, Clients: clients}

		// Verification pass (also warms every shard's engine and the
		// HTTP connection pool, so the timed pass measures steady
		// state).
		row.Verified = true
		for i := range bodies {
			res, err := r.TopK(context.Background(), router.Query{Regions: bodies[i], K: k})
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("scatter %d shards: query %d: %w", shards, i, err)
			}
			if res.Partial {
				cleanup()
				return nil, fmt.Errorf("scatter %d shards: query %d answered partial on a healthy cluster", shards, i)
			}
			g, _ := json.Marshal(res.Results)
			o, _ := json.Marshal(want[i])
			if string(g) != string(o) {
				cleanup()
				return nil, fmt.Errorf("scatter %d shards: query %d diverged from LinearScan:\nrouter: %s\noracle: %s", shards, i, g, o)
			}
		}

		var next int64
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= queries {
						return
					}
					if _, err := r.TopK(context.Background(), router.Query{Regions: bodies[i], K: k}); err != nil {
						panic(fmt.Sprintf("scatter bench query failed mid-measurement: %v", err))
					}
				}
			}()
		}
		wg.Wait()
		row.WallSeconds = time.Since(start).Seconds()
		cleanup()

		if row.WallSeconds > 0 {
			row.QueriesPerSec = float64(queries) / row.WallSeconds
			row.MeanMicros = row.WallSeconds * 1e6 / float64(queries)
		}
		if shards == 1 {
			base = row.QueriesPerSec
		}
		if base > 0 {
			row.SpeedupVs1 = row.QueriesPerSec / base
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// startScatterCluster ring-splits db across n in-process geoserve
// shards and fronts them with a Router. The returned cleanup closes
// the router and every shard server.
func startScatterCluster(db *store.FootprintDB, n int) (*router.Router, func(), error) {
	pre := &hashring.Map{Version: hashring.MapVersion}
	for i := 0; i < n; i++ {
		pre.Shards = append(pre.Shards, hashring.Shard{
			ID: fmt.Sprintf("shard-%d", i), Addr: fmt.Sprintf("http://pre-%d", i),
		})
	}
	ring, err := hashring.NewRing(pre)
	if err != nil {
		return nil, nil, err
	}
	subIDs := make([][]int, n)
	subFPs := make([][]core.Footprint, n)
	for u, id := range db.IDs {
		i := ring.OwnerIndex(id)
		subIDs[i] = append(subIDs[i], id)
		subFPs[i] = append(subFPs[i], db.Footprints[u])
	}

	live := &hashring.Map{Version: hashring.MapVersion}
	var srvs []*httptest.Server
	cleanup := func() {
		for _, s := range srvs {
			s.Close()
		}
	}
	for i := 0; i < n; i++ {
		sub, err := store.FromFootprints(fmt.Sprintf("shard-%d", i), subIDs[i], subFPs[i])
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		hs := httptest.NewServer(server.NewWithOptions(sub, server.Options{
			ShardID: fmt.Sprintf("shard-%d", i),
		}).Handler())
		srvs = append(srvs, hs)
		live.Shards = append(live.Shards, hashring.Shard{ID: fmt.Sprintf("shard-%d", i), Addr: hs.URL})
	}
	r, err := router.New(router.Config{
		Map:            live,
		HealthInterval: -1,
		Logger:         log.New(io.Discard, "", 0),
	})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	r.CheckHealth(context.Background())
	all := cleanup
	cleanup = func() {
		r.Close()
		all()
	}
	return r, cleanup, nil
}
