package bench

import "testing"

// Tiny end-to-end run of all three serving modes: rows well-formed,
// queries actually ran concurrently with ingest, the cache saw hits,
// and hits were strictly faster than misses (the zero-locks-after-pin
// acceptance signal at bench scale).
func TestQPSBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is not short")
	}
	rows, err := QPSBench(200, 20000, 500, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byMode := map[string]QPSRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		if r.Queries == 0 || r.QueriesPerSec <= 0 || r.Users == 0 {
			t.Errorf("%s: degenerate row %+v", r.Mode, r)
		}
	}
	for _, m := range []string{"locked", "epoch", "epoch-cache"} {
		if _, ok := byMode[m]; !ok {
			t.Fatalf("mode %s missing", m)
		}
	}
	if r := byMode["locked"]; r.CacheHits != 0 || r.EpochsPublished != 0 {
		t.Errorf("locked row leaked epoch/cache state: %+v", r)
	}
	if r := byMode["epoch"]; r.EpochsPublished == 0 {
		t.Errorf("epoch row published nothing: %+v", r)
	}
	cr := byMode["epoch-cache"]
	if cr.CacheHits == 0 || cr.CacheMisses == 0 {
		t.Fatalf("cache never exercised: %+v", cr)
	}
	if cr.HitMeanMicros >= cr.MissMeanMicros {
		t.Errorf("cache hits not faster than misses: hit=%.1fµs miss=%.1fµs",
			cr.HitMeanMicros, cr.MissMeanMicros)
	}
}
