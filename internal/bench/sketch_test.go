package bench

import (
	"reflect"
	"testing"

	"geofootprint/internal/search"
)

// TestSketchExactOnAllParts is the exactness contract at benchmark
// level: on every part preset, TopKSketch answers the Fig3a-style
// workload byte-identically to LinearScan.TopK for k ∈ {1, 5, 50}.
func TestSketchExactOnAllParts(t *testing.T) {
	for _, part := range Parts {
		w, err := NewWorkload(part, 0.0008, 0)
		if err != nil {
			t.Fatalf("part %s: %v", part, err)
		}
		db := w.DB
		db.EnableSketches(0, 0)
		lin := search.NewLinearScan(db)
		uc := search.NewUserCentricIndex(db, search.BuildSTR, 0)
		for _, k := range []int{1, 5, 50} {
			for qi := 0; qi < db.Len(); qi += 7 {
				q := db.Footprints[qi]
				want := lin.TopK(q, k)
				got := uc.TopKSketch(q, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("part %s k=%d query %d: sketch diverged\ngot:  %v\nwant: %v",
						part, k, qi, got, want)
				}
			}
		}
	}
}

// TestSketchSweep runs the sweep end to end at tiny scale and checks
// the report invariants: exact results at every G, stats ordered
// refined ≤ scored ≤ candidates, and a non-trivial filter (the sketch
// must refine strictly fewer users than the unpruned candidate set on
// at least the finest grid).
func TestSketchSweep(t *testing.T) {
	w, err := NewWorkload("A", 0.0008, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep := SketchSweep(w, []int{16, 64}, 40, 5, 0, 7)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if !r.Identical {
			t.Fatalf("G=%d: sketch results diverged from linear scan", r.G)
		}
		if r.AvgRefined > r.AvgScored+1e-9 || r.AvgScored > r.AvgCandidates+1e-9 {
			t.Fatalf("G=%d: inconsistent averages %+v", r.G, r)
		}
		if r.RefinementRate < 0 || r.RefinementRate > 1 {
			t.Fatalf("G=%d: refinement rate %v outside [0,1]", r.G, r.RefinementRate)
		}
	}
	fine := rep.Rows[len(rep.Rows)-1]
	if fine.AvgCandidates > 0 && fine.RefinementRate >= 1 {
		t.Fatalf("G=%d filters nothing: %+v", fine.G, fine)
	}
	if w.DB.SketchesEnabled() {
		t.Fatal("SketchSweep left sketches enabled")
	}
}
