package bench

import (
	"math/rand"
	"reflect"
	"time"

	"geofootprint/internal/search"
)

// SketchRow is one resolution point of the sketch filter-and-refine
// sweep: the Figure 3(a) query workload executed through TopKSketch at
// grid resolution G, with the filter effectiveness that explains the
// wall-clock.
type SketchRow struct {
	Part string `json:"part"`
	G    int    `json:"g"`

	// BuildSeconds is the one-off EnableSketches cost at this G.
	BuildSeconds float64 `json:"build_seconds"`
	// SketchSeconds is total query wall-clock through TopKSketch.
	SketchSeconds float64 `json:"sketch_seconds"`

	// Per-query averages over the workload.
	AvgCandidates float64 `json:"avg_candidates"`
	AvgScored     float64 `json:"avg_scored"`
	AvgRefined    float64 `json:"avg_refined"`
	// RefinementRate = AvgRefined / AvgCandidates: the fraction of the
	// unpruned user-centric candidate set that still pays for an
	// Algorithm 4 join. Lower is better; 1.0 would mean the sketch
	// filters nothing.
	RefinementRate float64 `json:"refinement_rate"`

	// Identical reports whether every TopKSketch result list matched
	// LinearScan.TopK byte for byte — the exactness contract.
	Identical bool `json:"identical_results"`
}

// SketchReport is the full sweep for one part: baselines measured once
// on the same query set, then one row per resolution.
type SketchReport struct {
	Part    string `json:"part"`
	Queries int    `json:"queries"`
	K       int    `json:"k"`

	LinearSeconds      float64 `json:"linear_seconds"`
	UserCentricSeconds float64 `json:"user_centric_seconds"`
	PrunedSeconds      float64 `json:"pruned_seconds"`

	Rows []SketchRow `json:"rows"`
}

// SketchSweep times the sketch search at each resolution in gs against
// the linear, user-centric and upper-bound-pruned baselines, verifying
// exactness against the linear scan at every G. The workload matches
// Fig3a: query users sampled from the data.
func SketchSweep(w *Workload, gs []int, queries, k, workers int, seed int64) SketchReport {
	rng := rand.New(rand.NewSource(seed))
	db := w.DB
	n := db.Len()
	if queries > n {
		queries = n
	}
	qIdx := rng.Perm(n)[:queries]
	rep := SketchReport{Part: w.Part, Queries: queries, K: k}

	lin := search.NewLinearScan(db)
	uc := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	uc.WarmPruning()

	// The exactness oracle, computed once per query.
	want := make([][]search.Result, queries)
	start := time.Now()
	for i, qi := range qIdx {
		want[i] = lin.TopK(db.Footprints[qi], k)
	}
	rep.LinearSeconds = time.Since(start).Seconds()

	start = time.Now()
	for _, qi := range qIdx {
		uc.TopK(db.Footprints[qi], k)
	}
	rep.UserCentricSeconds = time.Since(start).Seconds()

	start = time.Now()
	for _, qi := range qIdx {
		uc.TopKPruned(db.Footprints[qi], k)
	}
	rep.PrunedSeconds = time.Since(start).Seconds()

	for _, g := range gs {
		row := SketchRow{Part: w.Part, G: g, Identical: true}

		start = time.Now()
		db.EnableSketches(g, workers)
		row.BuildSeconds = time.Since(start).Seconds()

		var cand, scored, refined int
		start = time.Now()
		for i, qi := range qIdx {
			res, st := uc.TopKSketchStats(db.Footprints[qi], k)
			cand += st.Candidates
			scored += st.Scored
			refined += st.Refined
			if !reflect.DeepEqual(res, want[i]) {
				row.Identical = false
			}
		}
		row.SketchSeconds = time.Since(start).Seconds()

		q := float64(queries)
		row.AvgCandidates = float64(cand) / q
		row.AvgScored = float64(scored) / q
		row.AvgRefined = float64(refined) / q
		if cand > 0 {
			row.RefinementRate = float64(refined) / float64(cand)
		}
		rep.Rows = append(rep.Rows, row)
	}
	db.DisableSketches()
	return rep
}
