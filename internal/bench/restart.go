package bench

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"geofootprint/internal/colstore"
	"geofootprint/internal/core"
	"geofootprint/internal/sketch"
	"geofootprint/internal/store"
)

// Restart benchmark: how long from process start to the first answered
// query, per snapshot format and load path. The compared paths:
//
//	gob      — the legacy format: decode the full gob stream onto the
//	           heap, re-sort, then query.
//	col-read — the columnar format through io.ReadFull into aligned
//	           heap buffers (the fallback when mmap is unavailable).
//	col-mmap — the columnar format mapped zero-copy: open is O(header
//	           + CRC), the column bytes are faulted in by the first
//	           query itself.
//
// Alongside the cold-start curve it measures the flat-kernel
// throughput the columnar layout exists for: a full-database
// similarity scan (Algorithm 4 per user) and a full-database sketch
// dot scan, on the array-of-structs path vs the columnar path.

// RestartRow is one part's measurement. The *_seconds/*_micros keys
// gate in benchdiff; the speedup ratios deliberately avoid those
// suffixes (higher is better, benchdiff would invert them).
type RestartRow struct {
	Part    string `json:"part"`
	Users   int    `json:"users"`
	Regions int    `json:"regions"`

	GobBytes      int64 `json:"gob_bytes"`
	ColumnarBytes int64 `json:"columnar_bytes"`

	GobColdSeconds     float64 `json:"gob_cold_seconds"`
	ColReadColdSeconds float64 `json:"colread_cold_seconds"`
	ColMmapColdSeconds float64 `json:"colmmap_cold_seconds"`
	MmapSpeedupVsGob   float64 `json:"mmap_speedup_vs_gob"`

	JoinAoSScanMicros  float64 `json:"join_aos_scan_micros"`
	JoinColsScanMicros float64 `json:"join_cols_scan_micros"`
	DotAoSScanMicros   float64 `json:"dot_aos_scan_micros"`
	DotFlatScanMicros  float64 `json:"dot_flat_scan_micros"`
}

// restartSink defeats dead-code elimination of the measured loops.
var restartSink float64

// coldStart times load-to-first-answer: construct the database from
// the file and answer one pairwise-similarity request (the server's
// cheapest endpoint) — the number measures restart latency, not scan
// throughput, which the kernel rows below cover. Best of reps (the
// steady-state cost with a warm page cache; all three paths read the
// same cached bytes, so the difference is pure deserialisation).
func coldStart(reps, ia, ib int, load func() (*store.FootprintDB, error)) (float64, error) {
	best := math.MaxFloat64
	for r := 0; r < reps; r++ {
		// A restarted process starts with an empty heap; without this the
		// timed allocation pays GC-assist for the benchmark harness's own
		// live workload, inflating all three paths.
		runtime.GC()
		start := time.Now()
		db, err := load()
		if err != nil {
			return 0, err
		}
		restartSink += db.UserSimilarity(ia, db.Footprints[ib], db.Norms[ib])
		if d := time.Since(start).Seconds(); d < best {
			best = d
		}
	}
	return best, nil
}

// joinScanMicros times one full-database similarity scan (every user
// against q, through the store's dispatch helper) and reports the best
// per-scan cost over reps, in microseconds.
func joinScanMicros(db *store.FootprintDB, queries []core.Footprint, reps int) float64 {
	best := math.MaxFloat64
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, q := range queries {
			qn := core.Norm(q)
			for u := range db.Footprints {
				restartSink += db.UserSimilarity(u, q, qn)
			}
		}
		if d := time.Since(start).Seconds() / float64(len(queries)); d < best {
			best = d
		}
	}
	return best * 1e6
}

// dotScanMicros is joinScanMicros for the sketch filter kernel.
func dotScanMicros(db *store.FootprintDB, queries []core.Footprint, reps int) float64 {
	best := math.MaxFloat64
	for r := 0; r < reps; r++ {
		start := time.Now()
		for _, q := range queries {
			qsk := sketch.Build(q, db.SketchParams)
			for u := range db.Footprints {
				restartSink += db.UserSketchDot(u, &qsk)
			}
		}
		if d := time.Since(start).Seconds() / float64(len(queries)); d < best {
			best = d
		}
	}
	return best * 1e6
}

// RestartBench measures one part. It CONSUMES the workload: to time
// the loads against a fresh-process-like heap (the whole point of the
// zero-copy path is what it does NOT allocate, and a fat live harness
// heap would hand the gob decoder a free inflated GC target), the
// generated dataset and database are released before the first
// measurement. Restart is an explicit-only experiment, so no other
// experiment shares the workload in the same run.
func RestartBench(w *Workload, workers int, seed int64) (RestartRow, error) {
	row := RestartRow{Part: w.Part, Users: w.DB.Len(), Regions: w.DB.NumRegions()}
	if !w.DB.SketchesEnabled() {
		w.DB.EnableSketches(64, workers)
	}

	dir, err := os.MkdirTemp("", "georestart")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	gobPath := filepath.Join(dir, "db.gob")
	colPath := filepath.Join(dir, "db.col")
	if err := w.DB.SaveGob(gobPath); err != nil {
		return row, err
	}
	if err := w.DB.Save(colPath); err != nil {
		return row, err
	}
	if fi, err := os.Stat(gobPath); err == nil {
		row.GobBytes = fi.Size()
	}
	if fi, err := os.Stat(colPath); err == nil {
		row.ColumnarBytes = fi.Size()
	}

	// The pair of users the first request compares, fixed across the
	// three load paths so they answer the identical question.
	rng := rand.New(rand.NewSource(seed))
	ia, ib := rng.Intn(row.Users), rng.Intn(row.Users)
	queryAt := func(db *store.FootprintDB, frac int) core.Footprint {
		return db.Footprints[len(db.Footprints)*frac/4]
	}
	w.DB, w.Dataset, w.Personas = nil, nil, nil

	const reps = 3
	if row.GobColdSeconds, err = coldStart(reps, ia, ib, func() (*store.FootprintDB, error) {
		return store.Load(gobPath)
	}); err != nil {
		return row, err
	}
	if row.ColReadColdSeconds, err = coldStart(reps, ia, ib, func() (*store.FootprintDB, error) {
		return store.LoadColumnar(colPath, colstore.ModeRead)
	}); err != nil {
		return row, err
	}
	if row.ColMmapColdSeconds, err = coldStart(reps, ia, ib, func() (*store.FootprintDB, error) {
		return store.LoadColumnar(colPath, colstore.ModeMmap)
	}); err != nil {
		return row, err
	}
	if row.ColMmapColdSeconds > 0 {
		row.MmapSpeedupVsGob = row.GobColdSeconds / row.ColMmapColdSeconds
	}

	// Kernel throughput: the same dispatch helpers over the same data,
	// once columnar-backed (mmap) and once detached to the AoS path.
	colDB, err := store.LoadColumnar(colPath, colstore.ModeMmap)
	if err != nil {
		return row, err
	}
	aosDB, err := store.LoadColumnar(colPath, colstore.ModeRead)
	if err != nil {
		return row, err
	}
	aosDB.DetachColumns()

	queries := []core.Footprint{
		queryAt(colDB, 0), queryAt(colDB, 1), queryAt(colDB, 2), queryAt(colDB, 3),
	}
	const scanReps = 5
	row.JoinAoSScanMicros = joinScanMicros(aosDB, queries, scanReps)
	row.JoinColsScanMicros = joinScanMicros(colDB, queries, scanReps)
	row.DotAoSScanMicros = dotScanMicros(aosDB, queries, scanReps)
	row.DotFlatScanMicros = dotScanMicros(colDB, queries, scanReps)
	return row, nil
}
