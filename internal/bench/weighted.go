package bench

import (
	"math/rand"
	"time"

	"geofootprint/internal/core"
	"geofootprint/internal/extract"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
)

// WeightedResult quantifies how much the Section 8 duration weights
// change similarity rankings relative to the base (unit-frequency)
// model, and what the weights cost.
type WeightedResult struct {
	Queries int
	K       int
	// MeanJaccard is the average Jaccard overlap of the top-k ID
	// sets under the two models.
	MeanJaccard float64
	// Top1Agreement is the fraction of queries whose best match is
	// the same user under both models.
	Top1Agreement float64
	// UnweightedMicros / WeightedMicros are the average top-k query
	// costs: the weights ride along for free in Algorithm 4, so
	// these should be close.
	UnweightedMicros float64
	WeightedMicros   float64
}

// WeightedComparison re-extracts the workload's dataset under duration
// weights and compares top-k rankings between the two models over
// random query users.
func WeightedComparison(w *Workload, queries, k int, seed int64) (WeightedResult, error) {
	res := WeightedResult{K: k}
	// Duration-weighted database over the same RoIs.
	rois := extract.ExtractDataset(w.Dataset, ExtractionConfig(), 0)
	wfps := make([]core.Footprint, len(rois))
	for i, rs := range rois {
		wfps[i] = core.FromRoIs(rs, core.DurationWeight)
	}
	wdb, err := store.New(w.Dataset.Name+"-weighted", append([]int(nil), w.DB.IDs...), wfps)
	if err != nil {
		return res, err
	}
	wdb.ComputeNorms(0)

	uIdx := search.NewUserCentricIndex(w.DB, search.BuildSTR, 0)
	wIdx := search.NewUserCentricIndex(wdb, search.BuildSTR, 0)

	rng := rand.New(rand.NewSource(seed))
	n := w.DB.Len()
	if queries > n {
		queries = n
	}
	res.Queries = queries
	qs := rng.Perm(n)[:queries]

	var uTime, wTime time.Duration
	var jaccardSum float64
	top1 := 0
	for _, q := range qs {
		// Fetch k+1 and drop the query user itself: the self-match
		// tops both rankings trivially and would inflate agreement.
		self := w.DB.IDs[q]

		start := time.Now()
		ur := uIdx.TopK(w.DB.Footprints[q], k+1)
		uTime += time.Since(start)

		start = time.Now()
		wr := wIdx.TopK(wdb.Footprints[q], k+1)
		wTime += time.Since(start)

		ur = dropSelf(ur, self, k)
		wr = dropSelf(wr, self, k)
		jaccardSum += jaccard(ur, wr)
		if len(ur) > 0 && len(wr) > 0 && ur[0].ID == wr[0].ID {
			top1++
		}
	}
	res.MeanJaccard = jaccardSum / float64(queries)
	res.Top1Agreement = float64(top1) / float64(queries)
	res.UnweightedMicros = uTime.Seconds() * 1e6 / float64(queries)
	res.WeightedMicros = wTime.Seconds() * 1e6 / float64(queries)
	return res, nil
}

func dropSelf(rs []search.Result, self, k int) []search.Result {
	out := rs[:0]
	for _, r := range rs {
		if r.ID != self {
			out = append(out, r)
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func jaccard(a, b []search.Result) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[int]bool, len(a))
	for _, r := range a {
		set[r.ID] = true
	}
	inter := 0
	for _, r := range b {
		if set[r.ID] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
