package bench

import "testing"

// Tiny end-to-end run of the scatter-gather scaling measurement:
// every row verified bit-identical to LinearScan on the union store,
// well-formed throughput numbers, speedups relative to the 1-shard
// baseline.
func TestScatterBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is not short")
	}
	w, err := NewWorkload("A", 0.002, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ScatterBench(w, []int{1, 2}, 20, 5, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%d shards: row not verified against LinearScan", r.Shards)
		}
		if r.QueriesPerSec <= 0 || r.MeanMicros <= 0 || r.Users == 0 {
			t.Errorf("degenerate row: %+v", r)
		}
	}
	if rows[0].Shards != 1 || rows[0].SpeedupVs1 != 1 {
		t.Errorf("1-shard row is not its own baseline: %+v", rows[0])
	}
	if rows[1].SpeedupVs1 <= 0 {
		t.Errorf("2-shard speedup not computed: %+v", rows[1])
	}
}
