package bench

import (
	"math/rand"
	"time"

	"geofootprint/internal/cluster"
	"geofootprint/internal/geom"
)

// Fig3bResult reproduces the utility experiment of Figure 3(b):
// average-link agglomerative clustering of a user sample into nine
// clusters, and the characteristic regions of each cluster.
type Fig3bResult struct {
	SampleSize     int
	Clusters       int
	ClusterSizes   []int
	Regions        [][]geom.Rect // characteristic cells per cluster
	ASCIIMap       string        // textual analogue of Figure 3(b)
	MatrixSeconds  float64
	ClusterSeconds float64
	// PersonaPurity is measurable here because the generator plants
	// ground-truth personas: the fraction of sampled users whose
	// cluster's majority persona matches their own. The paper can
	// only inspect Figure 3(b) visually; purity quantifies the same
	// claim (footprints separate user groups that visit different
	// areas).
	PersonaPurity float64
}

// Fig3b samples `sample` users (the paper uses 4000 from Part A),
// clusters them into k groups with average-link over footprint
// distance, and extracts characteristic regions on a grid.
func Fig3b(w *Workload, sample, k int, seed int64) (*Fig3bResult, error) {
	rng := rand.New(rand.NewSource(seed))
	n := w.DB.Len()
	if sample > n {
		sample = n
	}
	idxs := rng.Perm(n)[:sample]

	start := time.Now()
	m := cluster.DistanceMatrix(w.DB, idxs, 0)
	matrixSecs := time.Since(start).Seconds()

	start = time.Now()
	labels, err := cluster.Agglomerative(m, k, cluster.AverageLink)
	if err != nil {
		return nil, err
	}
	clusterSecs := time.Since(start).Seconds()

	cfg := cluster.DefaultCharacteristicConfig()
	regions, err := cluster.CharacteristicRegions(w.DB, idxs, labels, k, cfg)
	if err != nil {
		return nil, err
	}

	res := &Fig3bResult{
		SampleSize:     sample,
		Clusters:       k,
		ClusterSizes:   make([]int, k),
		Regions:        regions,
		ASCIIMap:       cluster.RenderASCII(regions, cfg.GridN),
		MatrixSeconds:  matrixSecs,
		ClusterSeconds: clusterSecs,
	}
	for _, l := range labels {
		res.ClusterSizes[l]++
	}
	res.PersonaPurity = purity(labels, idxs, w.Personas, k)
	return res, nil
}

// ClusterMethodRow compares one clustering method on the Figure 3(b)
// task against the generator's ground-truth personas.
type ClusterMethodRow struct {
	Method     string
	Seconds    float64
	Purity     float64
	Silhouette float64
}

// ClusterMethods runs average-link (the paper's choice), single-link,
// complete-link and k-medoids on the same sample and reports persona
// purity and silhouette for each — the clustering-method ablation.
func ClusterMethods(w *Workload, sample, k int, seed int64) ([]ClusterMethodRow, error) {
	rng := rand.New(rand.NewSource(seed))
	n := w.DB.Len()
	if sample > n {
		sample = n
	}
	idxs := rng.Perm(n)[:sample]
	base := cluster.DistanceMatrix(w.DB, idxs, 0)

	copyM := func() *cluster.Matrix {
		m := cluster.NewMatrix(base.N())
		for i := 0; i < base.N(); i++ {
			for j := i + 1; j < base.N(); j++ {
				m.Set(i, j, base.At(i, j))
			}
		}
		return m
	}

	type method struct {
		name string
		run  func() ([]int, error)
	}
	methods := []method{
		{"average-link", func() ([]int, error) { return cluster.Agglomerative(copyM(), k, cluster.AverageLink) }},
		{"complete-link", func() ([]int, error) { return cluster.Agglomerative(copyM(), k, cluster.CompleteLink) }},
		{"single-link", func() ([]int, error) { return cluster.Agglomerative(copyM(), k, cluster.SingleLink) }},
		{"k-medoids", func() ([]int, error) { return cluster.KMedoids(copyM(), k, seed, 0) }},
	}
	rows := make([]ClusterMethodRow, 0, len(methods))
	for _, m := range methods {
		start := time.Now()
		labels, err := m.run()
		if err != nil {
			return nil, err
		}
		row := ClusterMethodRow{Method: m.name, Seconds: time.Since(start).Seconds()}
		row.Purity = purity(labels, idxs, w.Personas, k)
		if row.Silhouette, err = cluster.Silhouette(base, labels); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// purity computes the majority-persona purity of the clustering.
func purity(labels, idxs, personas []int, k int) float64 {
	if len(labels) == 0 || personas == nil {
		return 0
	}
	// counts[cluster][persona]
	counts := make(map[int]map[int]int, k)
	for i, l := range labels {
		if counts[l] == nil {
			counts[l] = make(map[int]int)
		}
		counts[l][personas[idxs[i]]]++
	}
	correct := 0
	for _, pc := range counts {
		best := 0
		for _, c := range pc {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(labels))
}
