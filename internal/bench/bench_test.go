package bench

import (
	"testing"
)

// tinyWorkload builds a very small Part A for fast harness tests.
func tinyWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := NewWorkload("A", 0.0008, 0) // ~222 users
	if err != nil {
		t.Fatalf("NewWorkload: %v", err)
	}
	return w
}

func TestNewWorkloadUnknownPart(t *testing.T) {
	if _, err := NewWorkload("Z", 0.001, 0); err == nil {
		t.Error("unknown part accepted")
	}
}

func TestTable1(t *testing.T) {
	w := tinyWorkload(t)
	row := Table1(w)
	if row.Part != "A" {
		t.Errorf("Part = %q", row.Part)
	}
	if row.Users < 200 || row.Users > 250 {
		t.Errorf("Users = %d, want ≈222", row.Users)
	}
	if row.AvgRegions < 10 || row.AvgRegions > 25 {
		t.Errorf("AvgRegions = %.1f, want ≈16", row.AvgRegions)
	}
	if row.AvgXExtent < 0.01 || row.AvgXExtent > 0.03 {
		t.Errorf("AvgXExtent = %.4f, want ≈0.02", row.AvgXExtent)
	}
	if row.AvgYExtent >= row.AvgXExtent {
		t.Errorf("y-extent %.4f should be below x-extent %.4f", row.AvgYExtent, row.AvgXExtent)
	}
}

func TestTable2(t *testing.T) {
	w := tinyWorkload(t)
	row := Table2(w)
	if row.ExtractSeconds <= 0 || row.NormSeconds <= 0 {
		t.Errorf("non-positive timings: %+v", row)
	}
	if row.FootprintsPerSec <= 0 {
		t.Errorf("FootprintsPerSec = %v", row.FootprintsPerSec)
	}
}

func TestTable3(t *testing.T) {
	w := tinyWorkload(t)
	row := Table3(w, 5, 1)
	if row.Queries != 5 || row.Pairs != 5*w.DB.Len() {
		t.Errorf("row shape: %+v", row)
	}
	if row.Alg3Micros <= 0 || row.Alg4Micros <= 0 {
		t.Errorf("non-positive timings: %+v", row)
	}
	// The headline result: Algorithm 4 is faster (paper: 1-2 orders
	// of magnitude; we only assert the direction on this tiny run).
	if row.SpeedupAlg4 < 1 {
		t.Errorf("Algorithm 4 slower than Algorithm 3: %+v", row)
	}
	// Queries clamp to the population size.
	row = Table3(w, 10*w.DB.Len(), 1)
	if row.Queries != w.DB.Len() {
		t.Errorf("Queries not clamped: %d", row.Queries)
	}
}

func TestTable4(t *testing.T) {
	w := tinyWorkload(t)
	row := Table4(w)
	if row.RoIEntries <= row.UserEntries {
		t.Errorf("RoI tree should have more entries than user-centric: %+v", row)
	}
	if row.RoITreeSeconds <= 0 || row.UserTreeSeconds <= 0 || row.RoITreeSTRSeconds <= 0 {
		t.Errorf("non-positive timings: %+v", row)
	}
	// The headline result: the user-centric tree builds faster.
	if row.UserTreeSeconds >= row.RoITreeSeconds {
		t.Errorf("user-centric build not faster: %+v", row)
	}
}

func TestFig3a(t *testing.T) {
	w := tinyWorkload(t)
	row := Fig3a(w, 20, 5, 1)
	if row.Queries != 20 || row.K != 5 {
		t.Errorf("row shape: %+v", row)
	}
	if row.IterativeSeconds <= 0 || row.BatchSeconds <= 0 || row.UserCentricSeconds <= 0 {
		t.Errorf("non-positive timings: %+v", row)
	}
}

func TestFig3b(t *testing.T) {
	w := tinyWorkload(t)
	res, err := Fig3b(w, 120, 9, 1)
	if err != nil {
		t.Fatalf("Fig3b: %v", err)
	}
	if res.SampleSize != 120 || res.Clusters != 9 {
		t.Errorf("shape: %+v", res)
	}
	total := 0
	for _, s := range res.ClusterSizes {
		total += s
	}
	if total != 120 {
		t.Errorf("cluster sizes sum to %d, want 120", total)
	}
	if res.ASCIIMap == "" {
		t.Error("empty ASCII map")
	}
	// The generator plants 9 personas; average-link over footprints
	// should recover them almost perfectly (the paper's Figure 3(b)
	// claim, made quantitative).
	if res.PersonaPurity < 0.8 {
		t.Errorf("persona purity = %.2f, want >= 0.8", res.PersonaPurity)
	}
	// Several clusters should own characteristic regions. With only
	// ~13 users per cluster the 5% exclusivity cap is noisy (one
	// off-persona visit is already 7.7%), so the bar here is low;
	// the full-size Figure 3(b) run in geobench colours most of the
	// nine clusters.
	withRegions := 0
	for _, rs := range res.Regions {
		if len(rs) > 0 {
			withRegions++
		}
	}
	if withRegions < 3 {
		t.Errorf("only %d/9 clusters have characteristic regions", withRegions)
	}
}

func TestMBRSensitivity(t *testing.T) {
	w := tinyWorkload(t)
	rows := MBRSensitivity(w, []float64{0.1, 0.8}, 10, 5, 1)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Larger spread must refine more candidates.
	if rows[1].CandidatesRefined <= rows[0].CandidatesRefined {
		t.Errorf("large-MBR queries should refine more users: %+v", rows)
	}
	for _, r := range rows {
		if r.CandidatesRelevant > r.CandidatesRefined {
			t.Errorf("relevant > refined: %+v", r)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		123.4:  "123",
		5.25:   "5.25",
		0.1234: "0.1234",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}
