package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"geofootprint/internal/cache"
	"geofootprint/internal/core"
	"geofootprint/internal/engine"
	"geofootprint/internal/extract"
	"geofootprint/internal/ingest"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
	"geofootprint/internal/wal"
)

// Concurrent-throughput benchmark for the serving plane: N query
// goroutines hammer top-k while the durable ingest pipeline applies a
// live sample stream, once per serving discipline:
//
//	locked       — the pre-epoch architecture: one RWMutex, queries
//	               under RLock, batch application under Lock.
//	epoch        — epoch-based MVCC: queries pin an immutable epoch
//	               (lock-free), each batch freezes and publishes the
//	               next epoch.
//	epoch-cache  — epoch MVCC plus the epoch-keyed result cache.
//
// The interesting numbers: queries_per_sec across modes (the lock
// removal), and cache_hit_mean_micros vs cache_miss_mean_micros (the
// cache win; hits must be strictly faster).

// QPSRow is one serving mode's measurement. Rates deliberately do not
// end in _seconds/_micros (benchdiff treats such keys as costs and
// would invert their meaning); the per-query latency fields do, so
// regressions in them gate PRs.
type QPSRow struct {
	Mode            string `json:"mode"`
	QueryGoroutines int    `json:"query_goroutines"`
	Users           int    `json:"users"`
	Queries         uint64 `json:"queries"`

	QueriesPerSec   float64 `json:"queries_per_sec"`
	QueryMeanMicros float64 `json:"query_mean_micros"`
	SamplesPerSec   float64 `json:"samples_per_sec"`

	// Cache behaviour; zero/omitted for the uncached modes.
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	HitMeanMicros  float64 `json:"cache_hit_mean_micros,omitempty"`
	MissMeanMicros float64 `json:"cache_miss_mean_micros,omitempty"`

	EpochsPublished uint64 `json:"epochs_published"`
	EpochsReclaimed uint64 `json:"epochs_reclaimed"`
}

// qpsServing abstracts one serving discipline: an ingest.Sink plus a
// query entry point reporting whether the answer came from a cache.
type qpsServing interface {
	ingest.Sink
	query(q core.Footprint, k int) (hit bool)
	users() int
	epochStats() (published, reclaimed uint64)
}

// lockedServing replicates the pre-epoch server: RWMutex around one
// mutable database with an incrementally maintained index.
type lockedServing struct {
	mu  sync.RWMutex
	db  *store.FootprintDB
	idx *search.UserCentricIndex
	eng *engine.QueryEngine
}

func newLockedServing() *lockedServing {
	db := &store.FootprintDB{Name: "qps"}
	idx := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	return &lockedServing{db: db, idx: idx, eng: engine.New(db, engine.Options{UserCentric: idx})}
}

func (s *lockedServing) ApplyBatch(updates []ingest.UserRoIs) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range updates {
		s.idx.UpdateUser(s.db.AppendRoIs(u.User, core.FromRoIs(u.RoIs, 0)))
	}
}

func (s *lockedServing) WithDB(fn func(db *store.FootprintDB)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.db)
}

func (s *lockedServing) query(q core.Footprint, k int) bool {
	s.mu.RLock()
	s.eng.TopK(q, k)
	s.mu.RUnlock()
	return false
}

func (s *lockedServing) users() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.db.Len()
}

func (s *lockedServing) epochStats() (uint64, uint64) { return 0, 0 }

// epochServing is the MVCC discipline of internal/server: mutations
// into a builder behind a mutex, one publish per batch, queries
// pinning the current epoch lock-free, optionally through the
// epoch-keyed cache.
type epochServing struct {
	mu sync.Mutex
	b  *store.EpochBuilder
	es *store.EpochStore
	c  *cache.Cache // nil = cache off
}

func newEpochServing(c *cache.Cache) *epochServing {
	s := &epochServing{
		b:  store.NewEpochBuilder(&store.FootprintDB{Name: "qps"}),
		es: store.NewEpochStore(),
		c:  c,
	}
	s.publishLocked()
	return s
}

func (s *epochServing) publishLocked() {
	db := s.b.Freeze()
	ep := s.es.Publish(db, engine.NewView(db, 0))
	if s.c != nil {
		s.c.Purge(ep.Seq())
	}
}

func (s *epochServing) ApplyBatch(updates []ingest.UserRoIs) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, u := range updates {
		s.b.AppendRoIs(u.User, core.FromRoIs(u.RoIs, 0))
	}
	s.publishLocked()
}

func (s *epochServing) WithDB(fn func(db *store.FootprintDB)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.b.DB())
}

func (s *epochServing) query(q core.Footprint, k int) bool {
	ep := s.es.Acquire()
	v := ep.Aux().(*engine.View)
	_, hit, _ := v.TopKCached(context.Background(), s.c, ep.Seq(), "", q, k)
	ep.Release()
	return hit
}

func (s *epochServing) users() int {
	ep := s.es.Acquire()
	defer ep.Release()
	return ep.DB().Len()
}

func (s *epochServing) epochStats() (uint64, uint64) {
	st := s.es.Stats()
	return st.Published, st.Reclaimed
}

// qpsProbes derives n distinct probe footprints from the fixed ingest
// query by sliding it across the domain: enough variety to exercise
// the cache's key space, few enough that hits recur within an epoch.
func qpsProbes(n int) []core.Footprint {
	base := ingestQuery()
	out := make([]core.Footprint, n)
	for i := range out {
		off := 0.012 * float64(i)
		f := make(core.Footprint, len(base))
		copy(f, base)
		for j := range f {
			f[j].Rect.MinX += off
			f[j].Rect.MaxX += off
		}
		out[i] = f
	}
	return out
}

// QPSBench runs the synthetic firehose through each serving mode while
// `goroutines` query workers run top-10 probes flat out, and reports
// sustained concurrent query throughput, per-query latency (split
// hit/miss where a cache is on), ingest throughput and epoch-lifecycle
// counters. The WAL runs SyncNone so the disciplines under test — not
// fsync — bound throughput.
func QPSBench(users, samples, batchSize, goroutines int, seed int64) ([]QPSRow, error) {
	stream := ingestStream(users, samples, seed)
	probes := qpsProbes(8)

	modes := []struct {
		name string
		mk   func() qpsServing
	}{
		{"locked", func() qpsServing { return newLockedServing() }},
		{"epoch", func() qpsServing { return newEpochServing(nil) }},
		{"epoch-cache", func() qpsServing { return newEpochServing(cache.New(256)) }},
	}

	var rows []QPSRow
	for _, mode := range modes {
		dir, err := os.MkdirTemp("", "geobench-qps-*")
		if err != nil {
			return nil, err
		}
		cfg := ingest.Config{
			WALPath:      filepath.Join(dir, "qps.wal"),
			SnapshotPath: filepath.Join(dir, "qps.snap"),
			Extract:      extract.Config{Epsilon: 0.02, Tau: 10},
			SessionGap:   60,
			Sync:         wal.SyncNone,
			MaxBatch:     batchSize,
		}
		srv := mode.mk()
		p, err := ingest.New(cfg, srv, nil)
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}

		type tally struct {
			queries, hits, misses     uint64
			total, hitTime, missTime  time.Duration
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		tallies := make([]tally, goroutines)
		var next atomic.Uint64
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				tl := &tallies[g]
				for {
					select {
					case <-stop:
						return
					default:
					}
					q := probes[next.Add(1)%uint64(len(probes))]
					t0 := time.Now()
					hit := srv.query(q, 10)
					d := time.Since(t0)
					tl.queries++
					tl.total += d
					if hit {
						tl.hits++
						tl.hitTime += d
					} else {
						tl.misses++
						tl.missTime += d
					}
				}
			}(g)
		}

		start := time.Now()
		for off := 0; off < len(stream); off += batchSize {
			end := off + batchSize
			if end > len(stream) {
				end = len(stream)
			}
			for {
				_, err := p.Ingest(stream[off:end])
				if err == nil {
					break
				}
				if err != ingest.ErrBacklogFull {
					close(stop)
					os.RemoveAll(dir)
					return nil, err
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
		if err := p.Drain(); err != nil {
			close(stop)
			os.RemoveAll(dir)
			return nil, err
		}
		ingestWall := time.Since(start).Seconds()
		// If the stream drained faster than a meaningful measurement
		// window, keep the queriers running against the final corpus so
		// every mode's throughput is measured over comparable wall time.
		const minWindow = 300 * time.Millisecond
		if left := minWindow - time.Since(start); left > 0 {
			time.Sleep(left)
		}
		wall := time.Since(start).Seconds()
		close(stop)
		wg.Wait()
		if err := p.Close(); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		os.RemoveAll(dir)

		var sum tally
		for _, tl := range tallies {
			sum.queries += tl.queries
			sum.hits += tl.hits
			sum.misses += tl.misses
			sum.total += tl.total
			sum.hitTime += tl.hitTime
			sum.missTime += tl.missTime
		}
		if sum.queries == 0 || srv.users() == 0 {
			return nil, fmt.Errorf("qps bench (%s): degenerate run (%d queries, %d users)",
				mode.name, sum.queries, srv.users())
		}
		pub, rec := srv.epochStats()
		row := QPSRow{
			Mode:            mode.name,
			QueryGoroutines: goroutines,
			Users:           srv.users(),
			Queries:         sum.queries,
			QueriesPerSec:   float64(sum.queries) / wall,
			QueryMeanMicros: float64(sum.total.Microseconds()) / float64(sum.queries),
			SamplesPerSec:   float64(samples) / ingestWall,
			CacheHits:       sum.hits,
			CacheMisses:     sum.misses,
			EpochsPublished: pub,
			EpochsReclaimed: rec,
		}
		if sum.hits > 0 {
			row.HitMeanMicros = float64(sum.hitTime.Microseconds()) / float64(sum.hits)
		}
		if sum.misses > 0 {
			row.MissMeanMicros = float64(sum.missTime.Microseconds()) / float64(sum.misses)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
