package bench

import "testing"

func TestGridComparison(t *testing.T) {
	w := tinyWorkload(t)
	row, err := GridComparison(w, 20, 5, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Queries != 20 || row.GridN != 32 {
		t.Errorf("shape: %+v", row)
	}
	if row.RTreeMicros <= 0 || row.GridMicros <= 0 {
		t.Errorf("timings: %+v", row)
	}
	if row.GridReplication < 1 {
		t.Errorf("replication %v < 1", row.GridReplication)
	}
	if _, err := GridComparison(w, 5, 5, 0, 1); err == nil {
		t.Error("gridN=0 accepted")
	}
}
