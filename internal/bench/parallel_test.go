package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestFig3aParallel(t *testing.T) {
	w := tinyWorkload(t)
	r := Fig3aParallel(w, 20, 5, 4, 7)
	if r.Part != "A" || r.Queries != 20 || r.K != 5 || r.Workers != 4 {
		t.Errorf("row header = %+v", r)
	}
	if !r.Identical {
		t.Fatal("parallel results diverged from serial")
	}
	for name, s := range map[string]float64{
		"serial iterative":      r.SerialIterativeSeconds,
		"parallel iterative":    r.ParallelIterativeSeconds,
		"serial batch":          r.SerialBatchSeconds,
		"parallel batch":        r.ParallelBatchSeconds,
		"serial user-centric":   r.SerialUserCentricSeconds,
		"parallel user-centric": r.ParallelUserCentricSeconds,
	} {
		if s < 0 {
			t.Errorf("%s = %v, want >= 0", name, s)
		}
	}
}

func TestWriteReport(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteReport(dir, Report{Experiment: "fig3a", Scale: 0.05, Rows: []int{1, 2}})
	if err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	if filepath.Base(path) != "BENCH_fig3a.json" {
		t.Errorf("path = %q", path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var got Report
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Experiment != "fig3a" || got.Scale != 0.05 {
		t.Errorf("round-trip = %+v", got)
	}
	if got.NumCPU <= 0 || got.GoMaxProcs <= 0 {
		t.Errorf("num_cpu/gomaxprocs not populated: %+v", got)
	}
	if got.GoVersion == "" {
		t.Errorf("go_version not populated: %+v", got)
	}
}
