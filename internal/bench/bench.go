// Package bench is the experiment harness: it regenerates every table
// and figure of the paper's evaluation (Section 7) on the synthetic
// ATC-substitute datasets, timing the same operations the paper times.
//
// Each experiment returns structured rows; cmd/geobench formats them
// side by side with the paper's published numbers. Absolute times
// differ from the paper (different hardware, Go instead of C++, and —
// unless scale=1.0 — smaller datasets); the comparisons of interest
// are the relative ones: which method wins and by roughly what factor.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"geofootprint/internal/core"
	"geofootprint/internal/extract"
	"geofootprint/internal/geom"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
	"geofootprint/internal/synth"
	"geofootprint/internal/traj"
)

// ExtractionConfig returns the paper's extraction parameters: ε=0.02
// (≈2 m in the normalized space) and τ=30 (≈3 s).
func ExtractionConfig() extract.Config {
	return extract.Config{Epsilon: 0.02, Tau: 30}
}

// Workload is one evaluation dataset (a "part") with everything the
// experiments need: raw trajectories, extracted footprints and
// precomputed norms, plus the ground-truth personas of the generator.
type Workload struct {
	Part     string
	Scale    float64
	Dataset  *traj.Dataset
	DB       *store.FootprintDB
	Personas []int

	// Preprocessing timings captured while building (Table 2).
	ExtractSeconds float64
	NormSeconds    float64
}

// NewWorkload generates the given part at the given scale and runs the
// full preprocessing pipeline, recording its timings. workers <= 0
// uses GOMAXPROCS.
func NewWorkload(part string, scale float64, workers int) (*Workload, error) {
	cfg, err := synth.PartConfig(part, scale)
	if err != nil {
		return nil, err
	}
	ds, personas, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	w := &Workload{Part: part, Scale: scale, Dataset: ds, Personas: personas}

	ecfg := ExtractionConfig()
	start := time.Now()
	rois := extract.ExtractDataset(ds, ecfg, workers)
	w.ExtractSeconds = time.Since(start).Seconds()

	ids := make([]int, len(ds.Users))
	fps := make([]core.Footprint, len(ds.Users))
	for i := range ds.Users {
		ids[i] = ds.Users[i].ID
		fps[i] = core.FromRoIs(rois[i], core.UnitWeight)
	}
	db, err := store.New(ds.Name, ids, fps)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	db.ComputeNorms(workers)
	w.NormSeconds = time.Since(start).Seconds()
	w.DB = db
	return w, nil
}

// Parts is the canonical evaluation order.
var Parts = []string{"A", "B", "C", "D"}

// Table1Row reproduces one row of Table 1: dataset statistics after
// footprint extraction.
type Table1Row struct {
	Part       string
	Users      int
	AvgRegions float64
	AvgXExtent float64
	AvgYExtent float64
}

// Table1 computes the dataset statistics of the workload.
func Table1(w *Workload) Table1Row {
	row := Table1Row{Part: w.Part, Users: w.DB.Len()}
	var regions int
	var sx, sy float64
	for _, f := range w.DB.Footprints {
		regions += len(f)
		for _, r := range f {
			sx += r.Rect.Width()
			sy += r.Rect.Height()
		}
	}
	if w.DB.Len() > 0 {
		row.AvgRegions = float64(regions) / float64(w.DB.Len())
	}
	if regions > 0 {
		row.AvgXExtent = sx / float64(regions)
		row.AvgYExtent = sy / float64(regions)
	}
	return row
}

// Table2Row reproduces one column of Table 2: preprocessing times.
type Table2Row struct {
	Part             string
	ExtractSeconds   float64
	NormSeconds      float64
	FootprintsPerSec float64
}

// Table2 reports the preprocessing timings captured by NewWorkload.
func Table2(w *Workload) Table2Row {
	r := Table2Row{Part: w.Part, ExtractSeconds: w.ExtractSeconds, NormSeconds: w.NormSeconds}
	if w.ExtractSeconds > 0 {
		r.FootprintsPerSec = float64(w.DB.Len()) / w.ExtractSeconds
	}
	return r
}

// Table3Row reproduces one column of Table 3: average similarity
// computation cost in microseconds, Algorithm 3 vs Algorithm 4.
type Table3Row struct {
	Part        string  `json:"part"`
	Queries     int     `json:"queries"`
	Pairs       int     `json:"pairs"`
	Alg3Micros  float64 `json:"alg3_micros"`
	Alg4Micros  float64 `json:"alg4_micros"`
	SpeedupAlg4 float64 `json:"speedup_alg4"`
}

// Table3 picks `queries` random user footprints and computes their
// similarity to every user in the part with Algorithm 3 and with
// Algorithm 4 (norms precomputed, as in the paper), reporting average
// per-computation cost.
func Table3(w *Workload, queries int, seed int64) Table3Row {
	rng := rand.New(rand.NewSource(seed))
	db := w.DB
	n := db.Len()
	if queries > n {
		queries = n
	}
	qIdx := rng.Perm(n)[:queries]
	row := Table3Row{Part: w.Part, Queries: queries, Pairs: queries * n}

	var sink float64
	start := time.Now()
	for _, qi := range qIdx {
		q, qn := db.Footprints[qi], db.Norms[qi]
		for j := 0; j < n; j++ {
			sink += core.SimilaritySweep(q, db.Footprints[j], qn, db.Norms[j])
		}
	}
	row.Alg3Micros = time.Since(start).Seconds() * 1e6 / float64(row.Pairs)

	start = time.Now()
	for _, qi := range qIdx {
		q, qn := db.Footprints[qi], db.Norms[qi]
		for j := 0; j < n; j++ {
			sink += core.SimilarityJoin(q, db.Footprints[j], qn, db.Norms[j])
		}
	}
	row.Alg4Micros = time.Since(start).Seconds() * 1e6 / float64(row.Pairs)
	if row.Alg4Micros > 0 {
		row.SpeedupAlg4 = row.Alg3Micros / row.Alg4Micros
	}
	_ = sink
	return row
}

// Table4Row reproduces one column of Table 4: index construction time
// for the RoI R-tree vs the user-centric R-tree.
type Table4Row struct {
	Part              string
	RoITreeSeconds    float64
	UserTreeSeconds   float64
	RoIEntries        int
	UserEntries       int
	RoITreeSTRSeconds float64 // ablation: bulk-loaded build
}

// Table4 times index construction. The paper's build path is
// insertion; the STR bulk load is reported as an ablation column.
func Table4(w *Workload) Table4Row {
	row := Table4Row{Part: w.Part}

	start := time.Now()
	roi := search.NewRoIIndex(w.DB, search.BuildInsert, 0)
	row.RoITreeSeconds = time.Since(start).Seconds()
	row.RoIEntries = roi.Tree().Len()

	start = time.Now()
	uc := search.NewUserCentricIndex(w.DB, search.BuildInsert, 0)
	row.UserTreeSeconds = time.Since(start).Seconds()
	row.UserEntries = uc.Tree().Len()

	start = time.Now()
	search.NewRoIIndex(w.DB, search.BuildSTR, 0)
	row.RoITreeSTRSeconds = time.Since(start).Seconds()
	return row
}

// Fig3aRow reproduces one group of Figure 3(a): total runtime of
// top-K similarity queries under the three search methods.
type Fig3aRow struct {
	Part               string  `json:"part"`
	Queries            int     `json:"queries"`
	K                  int     `json:"k"`
	IterativeSeconds   float64 `json:"iterative_seconds"`
	BatchSeconds       float64 `json:"batch_seconds"`
	UserCentricSeconds float64 `json:"user_centric_seconds"`
}

// Fig3a runs `queries` random top-K queries (query users sampled from
// the data, as in the paper) against each of the three methods of
// Section 6 and reports total wall time per method.
func Fig3a(w *Workload, queries, k int, seed int64) Fig3aRow {
	rng := rand.New(rand.NewSource(seed))
	db := w.DB
	n := db.Len()
	if queries > n {
		queries = n
	}
	qIdx := rng.Perm(n)[:queries]
	row := Fig3aRow{Part: w.Part, Queries: queries, K: k}

	// Insertion-built trees, matching the paper's indexing path
	// (Table 4 times insertion); STR-packed trees have near-perfect
	// leaves, which flatters the iterative method beyond what the
	// paper's setting shows.
	roi := search.NewRoIIndex(db, search.BuildInsert, 0)
	uc := search.NewUserCentricIndex(db, search.BuildInsert, 0)

	start := time.Now()
	for _, qi := range qIdx {
		roi.TopKIterative(db.Footprints[qi], k)
	}
	row.IterativeSeconds = time.Since(start).Seconds()

	start = time.Now()
	for _, qi := range qIdx {
		roi.TopKBatch(db.Footprints[qi], k)
	}
	row.BatchSeconds = time.Since(start).Seconds()

	start = time.Now()
	for _, qi := range qIdx {
		uc.TopK(db.Footprints[qi], k)
	}
	row.UserCentricSeconds = time.Since(start).Seconds()
	return row
}

// MBRSensitivityRow is the ablation the paper mentions in prose: for
// queries with very large MBRs the user-centric index degrades because
// it refines many users whose RoIs do not actually overlap the query.
type MBRSensitivityRow struct {
	Spread            float64 // query footprint spread (MBR side length)
	BatchMicros       float64
	UserCentricMicros float64
	// PrunedMicros is the upper-bound-pruned user-centric search
	// (internal/search.TopKPruned), this library's extension
	// addressing the degradation.
	PrunedMicros       float64
	CandidatesRefined  float64 // avg users refined by the user-centric index
	CandidatesRelevant float64 // avg users with non-zero similarity
}

// MBRSensitivity queries synthetic footprints of increasing spatial
// spread against the part's indexes and reports per-query cost of
// batch vs user-centric search.
func MBRSensitivity(w *Workload, spreads []float64, queries, k int, seed int64) []MBRSensitivityRow {
	rng := rand.New(rand.NewSource(seed))
	db := w.DB
	roi := search.NewRoIIndex(db, search.BuildSTR, 0)
	uc := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	uc.WarmPruning()

	rows := make([]MBRSensitivityRow, 0, len(spreads))
	for _, spread := range spreads {
		// Build query footprints: a handful of paper-sized RoIs
		// scattered over a spread×spread area.
		qs := make([]core.Footprint, queries)
		for i := range qs {
			cx := rng.Float64() * (1 - spread)
			cy := rng.Float64() * (1 - spread)
			f := make(core.Footprint, 8)
			for j := range f {
				x := cx + rng.Float64()*spread
				y := cy + rng.Float64()*spread
				f[j] = core.Region{
					Rect:   geom.Rect{MinX: x, MinY: y, MaxX: x + 0.02, MaxY: y + 0.017},
					Weight: 1,
				}
			}
			// Sort once at construction: unsorted queries would push
			// every downstream SimilarityJoin onto its copy+sort
			// fallback — once per candidate, per query.
			core.SortByMinX(f)
			qs[i] = f
		}
		row := MBRSensitivityRow{Spread: spread}

		start := time.Now()
		for _, q := range qs {
			roi.TopKBatch(q, k)
		}
		row.BatchMicros = time.Since(start).Seconds() * 1e6 / float64(queries)

		start = time.Now()
		for _, q := range qs {
			uc.TopK(q, k)
		}
		row.UserCentricMicros = time.Since(start).Seconds() * 1e6 / float64(queries)

		start = time.Now()
		for _, q := range qs {
			uc.TopKPruned(q, k)
		}
		row.PrunedMicros = time.Since(start).Seconds() * 1e6 / float64(queries)

		// Candidate statistics.
		var refined, relevant int
		for _, q := range qs {
			qmbr := q.MBR()
			for u := 0; u < db.Len(); u++ {
				if db.MBRs[u].Intersects(qmbr) && !db.MBRs[u].IsEmpty() {
					refined++
					if core.SimilarityJoin(db.Footprints[u], q, db.Norms[u], core.Norm(q)) > 0 {
						relevant++
					}
				}
			}
		}
		row.CandidatesRefined = float64(refined) / float64(queries)
		row.CandidatesRelevant = float64(relevant) / float64(queries)
		rows = append(rows, row)
	}
	return rows
}

// KSensitivityRow verifies the paper's parenthetical claim that query
// time "is not affected by K": total runtime of the user-centric
// search at one K.
type KSensitivityRow struct {
	K       int
	Seconds float64
}

// KSensitivity re-times the Figure 3(a) user-centric measurement for
// several K values on the same query set.
func KSensitivity(w *Workload, ks []int, queries int, seed int64) []KSensitivityRow {
	rng := rand.New(rand.NewSource(seed))
	db := w.DB
	n := db.Len()
	if queries > n {
		queries = n
	}
	qIdx := rng.Perm(n)[:queries]
	uc := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	rows := make([]KSensitivityRow, 0, len(ks))
	for _, k := range ks {
		start := time.Now()
		for _, qi := range qIdx {
			uc.TopK(db.Footprints[qi], k)
		}
		rows = append(rows, KSensitivityRow{K: k, Seconds: time.Since(start).Seconds()})
	}
	return rows
}

// ScaleSweepRow is one point of the search-method scale sweep: the
// Figure 3(a) measurement repeated at growing dataset sizes, showing
// where batch search overtakes iterative search.
type ScaleSweepRow struct {
	Scale              float64
	Users              int
	IterativeSeconds   float64
	BatchSeconds       float64
	UserCentricSeconds float64
}

// ScaleSweep regenerates the part at each scale and repeats the
// Figure 3(a) measurement. Expensive: each scale pays a full
// generation + extraction pass.
func ScaleSweep(part string, scales []float64, queries, k, workers int, seed int64) ([]ScaleSweepRow, error) {
	rows := make([]ScaleSweepRow, 0, len(scales))
	for _, sc := range scales {
		w, err := NewWorkload(part, sc, workers)
		if err != nil {
			return nil, err
		}
		f := Fig3a(w, queries, k, seed)
		rows = append(rows, ScaleSweepRow{
			Scale:              sc,
			Users:              w.DB.Len(),
			IterativeSeconds:   f.IterativeSeconds,
			BatchSeconds:       f.BatchSeconds,
			UserCentricSeconds: f.UserCentricSeconds,
		})
	}
	return rows, nil
}

// GridRow compares the RoI R-tree against the uniform-grid index on
// the same iterative top-k semantics — the "is the R-tree needed?"
// ablation.
type GridRow struct {
	Queries         int
	GridN           int
	RTreeMicros     float64
	GridMicros      float64
	GridReplication float64 // avg grid cells per entry
}

// GridComparison times top-k queries against both index substrates.
func GridComparison(w *Workload, queries, k, gridN int, seed int64) (GridRow, error) {
	db := w.DB
	rt := search.NewRoIIndex(db, search.BuildSTR, 0)
	gr, err := search.NewGridIndex(db, geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, gridN)
	if err != nil {
		return GridRow{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	n := db.Len()
	if queries > n {
		queries = n
	}
	qs := rng.Perm(n)[:queries]
	row := GridRow{Queries: queries, GridN: gridN, GridReplication: gr.Grid().Stats().Replication}

	start := time.Now()
	for _, q := range qs {
		rt.TopKIterative(db.Footprints[q], k)
	}
	row.RTreeMicros = time.Since(start).Seconds() * 1e6 / float64(queries)

	start = time.Now()
	for _, q := range qs {
		gr.TopK(db.Footprints[q], k)
	}
	row.GridMicros = time.Since(start).Seconds() * 1e6 / float64(queries)
	return row, nil
}

// Tuning runs the extraction-parameter sweep of the paper's tuning
// procedure on the workload's raw trajectories.
func Tuning(w *Workload, epsilons []float64, taus []int) []extract.ParamStats {
	return extract.SweepParams(w.Dataset, epsilons, taus, extract.DiameterL2, 0)
}

// FormatSeconds renders a duration in seconds with sensible precision.
func FormatSeconds(s float64) string {
	switch {
	case s >= 100:
		return fmt.Sprintf("%.0f", s)
	case s >= 1:
		return fmt.Sprintf("%.2f", s)
	default:
		return fmt.Sprintf("%.4f", s)
	}
}
