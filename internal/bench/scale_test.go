package bench

import "testing"

func TestScaleSweep(t *testing.T) {
	rows, err := ScaleSweep("A", []float64{0.0005, 0.001}, 10, 5, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[1].Users <= rows[0].Users {
		t.Errorf("users not growing: %+v", rows)
	}
	for _, r := range rows {
		if r.IterativeSeconds <= 0 || r.BatchSeconds <= 0 || r.UserCentricSeconds <= 0 {
			t.Errorf("timings: %+v", r)
		}
	}
	if _, err := ScaleSweep("Z", []float64{0.001}, 5, 5, 0, 1); err == nil {
		t.Error("unknown part accepted")
	}
}
