// Package wal implements the write-ahead log that makes streaming
// ingestion durable: a single append-only file of length-prefixed,
// CRC-checked records, each carrying a monotonically increasing log
// sequence number (LSN).
//
// On-disk record layout (little endian):
//
//	offset  size  field
//	0       4     payload length n
//	4       8     LSN
//	12      4     CRC-32C over (LSN bytes ‖ payload)
//	16      n     payload
//
// The CRC covers the LSN so a record can never be replayed under a
// sequence number it was not written with. A crash can leave a torn
// tail — a partially written record, or garbage after the last
// complete one. Open detects this (short header, short payload, or CRC
// mismatch), truncates the file back to the last valid record, and
// appends from there; Replay applied to an un-repaired file simply
// stops at the first invalid record. Everything before a torn tail is
// trusted: corruption is assumed to happen only at the end of the file
// (the append-only write pattern), which is the standard WAL contract.
//
// # Sealing
//
// The log SEALS on the first write, fsync, or truncate error: it
// becomes fail-fast read-only. The rationale is the torn-tail
// contract itself — after a failed or short append the file may end in
// a partial record, and appending anything after it would strand every
// later record behind the damage (scan stops at the first invalid
// record), silently losing acknowledged data. A failed fsync is just
// as terminal: the kernel may have dropped the dirty pages, so the
// log's clean prefix is no longer known, and retrying the fsync would
// report success without making the lost pages durable. Sealed state
// is permanent for the handle; Err reports the sealing cause (also for
// errors raised by the background interval-sync goroutine, so an
// idle-but-broken log is visible without another Append), and the
// serving layer surfaces it in /healthz and /v1/ingest/stats. Recovery
// is a restart: reopen the path, which repairs the tail and trusts the
// intact prefix.
//
// All file I/O goes through a faultfs.FS, so the crash-matrix tests
// can drive every one of these paths with deterministic fault
// schedules; production callers use the OS passthrough.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"geofootprint/internal/faultfs"
)

// headerSize is the fixed per-record overhead.
const headerSize = 4 + 8 + 4

// MaxRecordSize bounds a single payload; a length prefix beyond it is
// treated as tail corruption rather than an attempt to allocate it.
const MaxRecordSize = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncPolicy selects when appended records are forced to stable
// storage.
type SyncPolicy int

const (
	// SyncEveryAppend fsyncs after every Append: an acknowledged
	// record survives any crash. The slowest, safest policy.
	SyncEveryAppend SyncPolicy = iota
	// SyncInterval fsyncs from a background timer: at most
	// Options.Interval worth of acknowledged records can be lost.
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS decides. A crash of
	// the process alone loses nothing (writes are in the page
	// cache), a machine crash loses what the kernel had not flushed.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryAppend:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParsePolicy maps the CLI spelling to a policy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch", "always":
		return SyncEveryAppend, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf(`wal: unknown sync policy %q (want "batch", "interval" or "none")`, s)
	}
}

// Options configures Open.
type Options struct {
	Policy SyncPolicy
	// Interval is the background fsync period for SyncInterval
	// (default 100ms when zero).
	Interval time.Duration
}

// Log is an open write-ahead log. All methods are safe for concurrent
// use.
type Log struct {
	mu      sync.Mutex
	f       faultfs.File
	path    string
	opts    Options
	nextLSN uint64
	size    int64 // current valid file size
	closed  bool

	stopSync chan struct{} // closes the interval-sync goroutine
	syncDone chan struct{}
	sealErr  error // first I/O error; the log is read-only once set
}

// Open opens (creating if absent) the log at path through the OS
// filesystem. See OpenFS.
func Open(path string, opts Options) (*Log, error) {
	return OpenFS(faultfs.OS, path, opts)
}

// OpenFS opens (creating if absent) the log at path on fsys, scans it
// to find the end of the valid record sequence, truncates any torn
// tail, and positions appends after the last valid record. The
// returned log's next LSN is one past the highest LSN on disk (or 1
// for an empty log).
func OpenFS(fsys faultfs.FS, path string, opts Options) (*Log, error) {
	if opts.Policy == SyncInterval && opts.Interval <= 0 {
		opts.Interval = 100 * time.Millisecond
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	lastLSN, validSize, _, err := scan(f, nil)
	if err != nil {
		_ = f.Close() // the scan error is the one worth surfacing
		return nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() > validSize {
		// Torn or corrupt tail: drop it so the next append starts a
		// clean record boundary.
		if err := f.Truncate(validSize); err != nil {
			_ = f.Close() // the truncate error is the one worth surfacing
			return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() // the sync error is the one worth surfacing
			return nil, err
		}
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		_ = f.Close() // the seek error is the one worth surfacing
		return nil, err
	}
	l := &Log{f: f, path: path, opts: opts, nextLSN: lastLSN + 1, size: validSize}
	if opts.Policy == SyncInterval {
		l.stopSync = make(chan struct{})
		l.syncDone = make(chan struct{})
		go l.syncLoop()
	}
	return l, nil
}

func (l *Log) syncLoop() {
	defer close(l.syncDone)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.sealErr == nil {
				if err := l.f.Sync(); err != nil {
					// Seal immediately: an idle-but-broken log must be
					// visible through Err() without waiting for the
					// next Append to trip over it.
					l.sealLocked(fmt.Errorf("wal: background fsync: %w", err))
				}
			}
			l.mu.Unlock()
		case <-l.stopSync:
			return
		}
	}
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrSealed marks every error returned by a log that sealed after an
// I/O fault; errors.Is(err, ErrSealed) identifies them. The sealing
// cause is available via Err and wrapped into the returned error.
var ErrSealed = errors.New("wal: log sealed after I/O error")

// sealLocked marks the log permanently read-only with the given cause.
// Callers hold l.mu. Only the first cause is kept.
func (l *Log) sealLocked(cause error) {
	if l.sealErr == nil {
		l.sealErr = cause
	}
}

// Err reports the error that sealed the log, or nil while it is
// healthy. Unlike the pre-seal design, a background fsync failure is
// visible here immediately, not only on the next Append.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sealErr
}

// Sealed reports whether the log has sealed.
func (l *Log) Sealed() bool { return l.Err() != nil }

// sealedErrLocked builds the fail-fast error for mutating calls on a
// sealed log. Callers hold l.mu.
func (l *Log) sealedErrLocked() error {
	return fmt.Errorf("%w: %w", ErrSealed, l.sealErr)
}

// Append writes one record and returns its LSN. Under SyncEveryAppend
// the record is on stable storage when Append returns; under the other
// policies it is in the OS page cache. Any write or fsync error seals
// the log: the failed record is not acknowledged, and every later
// Append fails fast with ErrSealed — appending past a possibly-torn
// tail would strand all later records behind the damage.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("wal: payload of %d bytes exceeds MaxRecordSize", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.sealErr != nil {
		return 0, l.sealedErrLocked()
	}
	lsn := l.nextLSN
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:12], lsn)
	crc := crc32.Update(crc32.Checksum(buf[4:12], castagnoli), castagnoli, payload)
	binary.LittleEndian.PutUint32(buf[12:16], crc)
	copy(buf[headerSize:], payload)
	if _, err := l.f.Write(buf); err != nil {
		err = fmt.Errorf("wal: append: %w", err)
		l.sealLocked(err)
		return 0, err
	}
	l.size += int64(len(buf))
	l.nextLSN++
	if l.opts.Policy == SyncEveryAppend {
		if err := l.f.Sync(); err != nil {
			err = fmt.Errorf("wal: fsync: %w", err)
			l.sealLocked(err)
			return 0, err
		}
	}
	return lsn, nil
}

// Sync forces everything appended so far to stable storage. An fsync
// error seals the log.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.sealErr != nil {
		return l.sealedErrLocked()
	}
	if err := l.f.Sync(); err != nil {
		l.sealLocked(err)
		return err
	}
	return nil
}

// NextLSN returns the LSN the next Append will be assigned.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// AdvanceLSN raises the next LSN to at least lsn. Recovery calls it
// with one past the snapshot's sequence number: after a snapshot that
// made the whole log obsolete (and a Reset before the crash), the file
// alone no longer witnesses how far the sequence got, so the snapshot
// supplies the floor. It never lowers the sequence.
func (l *Log) AdvanceLSN(lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn > l.nextLSN {
		l.nextLSN = lsn
	}
}

// Size returns the current file size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Reset discards every record (after a snapshot has made them
// obsolete) while keeping the LSN sequence monotone: the next Append
// continues from the pre-reset sequence, so a stale record that
// somehow survives can never alias a post-reset one. A sealed log
// refuses to reset — its contents are the only recovery evidence left.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.sealErr != nil {
		return l.sealedErrLocked()
	}
	if err := l.f.Truncate(0); err != nil {
		err = fmt.Errorf("wal: reset: %w", err)
		l.sealLocked(err)
		return err
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		l.sealLocked(err)
		return err
	}
	l.size = 0
	if err := l.f.Sync(); err != nil {
		l.sealLocked(err)
		return err
	}
	return nil
}

// Close syncs and closes the log. A sealed log skips the final sync
// (it cannot promise durability anyway) and returns its sealing cause.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	var syncErr error
	if l.sealErr != nil {
		syncErr = l.sealedErrLocked()
	} else if err := l.f.Sync(); err != nil {
		l.sealLocked(err)
		syncErr = err
	}
	closeErr := l.f.Close()
	stop := l.stopSync
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.syncDone
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Record is one replayed WAL entry.
type Record struct {
	LSN     uint64
	Payload []byte
}

// Replay reads the log at path through the OS filesystem. See
// ReplayFS.
func Replay(path string, fn func(rec Record) error) (n int, damaged bool, err error) {
	return ReplayFS(faultfs.OS, path, fn)
}

// ReplayFS reads the log at path on fsys from the beginning, calling
// fn for each valid record in order. Payload is only valid for the
// duration of the call. It stops cleanly at the first torn or corrupt
// record (the crash-recovery contract) and returns the number of valid
// records together with whether a damaged tail was skipped. A missing
// file replays zero records.
func ReplayFS(fsys faultfs.FS, path string, fn func(rec Record) error) (n int, damaged bool, err error) {
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	//lint:ignore errdiscard read-only replay handle; a Close error after a complete scan carries no data-loss signal
	defer f.Close()
	_, validSize, n, err := scan(f, fn)
	if err != nil {
		return n, false, err
	}
	fi, statErr := f.Stat()
	if statErr != nil {
		return n, false, statErr
	}
	return n, fi.Size() > validSize, nil
}

// scan walks the record sequence from the current start of f, calling
// fn (when non-nil) per valid record, and returns the last LSN seen,
// the byte offset one past the last valid record, and the record
// count. Damage — short header, short payload, absurd length, CRC
// mismatch — ends the scan without error.
func scan(f faultfs.File, fn func(rec Record) error) (lastLSN uint64, validSize int64, n int, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, 0, err
	}
	// The bufio layer turns the two small reads per record (header +
	// payload) into large sequential file reads; countingReader sits
	// above it so validSize counts bytes consumed by the scan, not
	// bytes the buffer read ahead.
	r := &countingReader{r: bufio.NewReaderSize(f, 1<<20)}
	hdr := make([]byte, headerSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			return lastLSN, validSize, n, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		lsn := binary.LittleEndian.Uint64(hdr[4:12])
		want := binary.LittleEndian.Uint32(hdr[12:16])
		if length > MaxRecordSize {
			return lastLSN, validSize, n, nil // corrupt length prefix
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return lastLSN, validSize, n, nil // torn payload
		}
		got := crc32.Update(crc32.Checksum(hdr[4:12], castagnoli), castagnoli, payload)
		if got != want {
			return lastLSN, validSize, n, nil // bit rot / torn overwrite
		}
		if fn != nil {
			if err := fn(Record{LSN: lsn, Payload: payload}); err != nil {
				return lastLSN, validSize, n, err
			}
		}
		lastLSN = lsn
		validSize = r.n
		n++
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
