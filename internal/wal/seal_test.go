package wal

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"geofootprint/internal/faultfs"
)

// sealSetup opens a log on a fault-injecting filesystem.
func sealSetup(t *testing.T, sched faultfs.Schedule, opts Options) (*Log, *faultfs.Fault, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seal.wal")
	fs := faultfs.NewFault(faultfs.OS, sched)
	l, err := OpenFS(fs, path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, fs, path
}

// A failed append seals the log: the record is not acknowledged, Err
// reports the cause, and every later mutation fails fast with
// ErrSealed instead of appending past a possibly-torn tail.
func TestAppendErrorSealsLog(t *testing.T) {
	l, _, path := sealSetup(t, faultfs.Schedule{FailWriteN: 2}, Options{Policy: SyncNone})
	defer l.Close()

	if _, err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("two")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("faulted append: %v, want EIO", err)
	}
	if l.Err() == nil || !l.Sealed() {
		t.Fatal("log did not seal after append error")
	}
	if _, err := l.Append([]byte("three")); !errors.Is(err, ErrSealed) {
		t.Fatalf("append on sealed log: %v, want ErrSealed", err)
	}
	if err := l.Reset(); !errors.Is(err, ErrSealed) {
		t.Fatalf("reset on sealed log: %v, want ErrSealed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrSealed) {
		t.Fatalf("sync on sealed log: %v, want ErrSealed", err)
	}

	// The intact prefix is untouched: reopening on a clean filesystem
	// recovers exactly the acknowledged record.
	if err := l.Close(); !errors.Is(err, ErrSealed) {
		t.Fatalf("close of sealed log: %v, want the seal surfaced", err)
	}
	var got [][]byte
	n, _, err := Replay(path, func(rec Record) error {
		got = append(got, append([]byte(nil), rec.Payload...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || string(got[0]) != "one" {
		t.Fatalf("replayed %d records %q, want exactly the acknowledged one", n, got)
	}
}

// A short write leaves a torn record; the seal prevents the next
// append from landing after the damage, and the reopened log truncates
// the tear back to the acknowledged prefix.
func TestShortWriteSealsAndRecovers(t *testing.T) {
	l, _, path := sealSetup(t, faultfs.Schedule{ShortWriteN: 3}, Options{Policy: SyncNone})
	defer l.Close()

	for i := 0; i < 2; i++ {
		if _, err := l.Append([]byte("intact")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Append([]byte("torn-record-payload")); !errors.Is(err, syscall.EIO) {
		t.Fatal("short write did not error")
	}
	if !l.Sealed() {
		t.Fatal("log did not seal after short write")
	}
	_ = l.Close()

	l2, err := Open(path, Options{Policy: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Size() != 2*(16+6) {
		t.Fatalf("reopened size %d, want the two intact records", l2.Size())
	}
	if got := l2.NextLSN(); got != 3 {
		t.Fatalf("next LSN %d, want 3 (two acknowledged records)", got)
	}
}

// An fsync error under SyncEveryAppend seals the log even though the
// bytes reached the file: durability is unknown, so nothing further
// may be acknowledged.
func TestFsyncErrorSealsLog(t *testing.T) {
	// Sync #1 is the first Append's fsync.
	l, _, _ := sealSetup(t, faultfs.Schedule{FailSyncN: 1}, Options{Policy: SyncEveryAppend})
	defer l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append under failing fsync: %v, want EIO", err)
	}
	if !l.Sealed() {
		t.Fatal("log did not seal on fsync error")
	}
}

// A background interval-sync failure surfaces through Err() while the
// log is idle — the satellite fix: an idle-but-broken WAL must be
// visible without another Append poking it.
func TestBackgroundSyncErrorVisibleWhileIdle(t *testing.T) {
	l, _, _ := sealSetup(t, faultfs.Schedule{FailSyncN: 1},
		Options{Policy: SyncInterval, Interval: time.Millisecond})
	defer l.Close()
	if _, err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("background fsync error never surfaced via Err()")
		}
		time.Sleep(time.Millisecond)
	}
	if !errors.Is(l.Err(), syscall.EIO) {
		t.Fatalf("Err() = %v, want the injected EIO", l.Err())
	}
	if _, err := l.Append([]byte("y")); !errors.Is(err, ErrSealed) {
		t.Fatalf("append after background seal: %v, want ErrSealed", err)
	}
}

// ENOSPC mid-record seals; recovery trusts the intact prefix.
func TestENOSPCSealsAndPrefixSurvives(t *testing.T) {
	rec := []byte("0123456789") // 16 header + 10 payload = 26 bytes/record
	l, _, path := sealSetup(t, faultfs.Schedule{ENOSPCAfter: 26*2 + 10}, Options{Policy: SyncNone})
	defer l.Close()
	var acked int
	for i := 0; i < 4; i++ {
		if _, err := l.Append(rec); err != nil {
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("append %d: %v, want ENOSPC", i, err)
			}
			break
		}
		acked++
	}
	if acked != 2 {
		t.Fatalf("acknowledged %d records, want 2 before the volume filled", acked)
	}
	if !l.Sealed() {
		t.Fatal("log did not seal on ENOSPC")
	}
	_ = l.Close()
	n, damaged, err := Replay(path, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != acked {
		t.Fatalf("replayed %d, want the %d acknowledged", n, acked)
	}
	if !damaged {
		t.Fatal("torn ENOSPC tail not reported as damaged")
	}
}
