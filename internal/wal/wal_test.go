package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func appendAll(t *testing.T, l *Log, payloads ...string) []uint64 {
	t.Helper()
	lsns := make([]uint64, len(payloads))
	for i, p := range payloads {
		lsn, err := l.Append([]byte(p))
		if err != nil {
			t.Fatalf("append %q: %v", p, err)
		}
		lsns[i] = lsn
	}
	return lsns
}

func replayAll(t *testing.T, path string) (recs []Record, damaged bool) {
	t.Helper()
	_, damaged, err := Replay(path, func(r Record) error {
		recs = append(recs, Record{LSN: r.LSN, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, damaged
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{Policy: SyncEveryAppend})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "", "gamma with a longer payload"}
	lsns := appendAll(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, damaged := replayAll(t, path)
	if damaged {
		t.Fatal("clean log reported damaged")
	}
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.LSN != lsns[i] || string(r.Payload) != want[i] {
			t.Errorf("record %d = (%d, %q), want (%d, %q)", i, r.LSN, r.Payload, lsns[i], want[i])
		}
	}
	if lsns[0] != 1 {
		t.Errorf("first LSN = %d, want 1", lsns[0])
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b")
	l.Close()

	l, err = Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lsns := appendAll(t, l, "c")
	l.Close()
	if lsns[0] != 3 {
		t.Fatalf("LSN after reopen = %d, want 3", lsns[0])
	}
	recs, _ := replayAll(t, path)
	if len(recs) != 3 || string(recs[2].Payload) != "c" {
		t.Fatalf("replay after reopen = %+v", recs)
	}
}

// Torn tails of every length — from one byte of a header to one byte
// short of a full record — must replay exactly the intact prefix and
// reopen cleanly, with the damaged suffix truncated away.
func TestTornTail(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "first", "second", "third-record-payload")
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastLen := headerSize + len("third-record-payload")
	for cut := 1; cut < lastLen; cut++ {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			torn := filepath.Join(t.TempDir(), "torn.wal")
			if err := os.WriteFile(torn, full[:len(full)-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			recs, damaged := replayAll(t, torn)
			if !damaged {
				t.Error("torn tail not reported")
			}
			if len(recs) != 2 || string(recs[1].Payload) != "second" {
				t.Fatalf("replayed %d records", len(recs))
			}
			// Reopen repairs: truncates to the valid prefix and appends
			// with the next LSN after the surviving records.
			l, err := Open(torn, Options{})
			if err != nil {
				t.Fatal(err)
			}
			lsns := appendAll(t, l, "recovered")
			l.Close()
			if lsns[0] != 3 {
				t.Errorf("post-repair LSN = %d, want 3", lsns[0])
			}
			recs, damaged = replayAll(t, torn)
			if damaged || len(recs) != 3 || string(recs[2].Payload) != "recovered" {
				t.Fatalf("post-repair replay: damaged=%v recs=%d", damaged, len(recs))
			}
		})
	}
}

// A flipped bit anywhere in the final record fails its CRC; replay
// keeps the prefix.
func TestCorruptTail(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "keep-me", "corrupt-me")
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := headerSize + len("keep-me")
	for _, off := range []int{firstLen + 4, firstLen + 12, firstLen + headerSize, len(full) - 1} {
		t.Run(fmt.Sprintf("flip@%d", off), func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "bad.wal")
			mut := append([]byte(nil), full...)
			mut[off] ^= 0x40
			if err := os.WriteFile(bad, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			recs, damaged := replayAll(t, bad)
			if !damaged {
				t.Error("corruption not reported")
			}
			if len(recs) != 1 || string(recs[0].Payload) != "keep-me" {
				t.Fatalf("replay kept %d records", len(recs))
			}
		})
	}
}

// Corrupting the length prefix to an absurd value must not allocate or
// read gigabytes — it is tail damage like any other.
func TestCorruptLengthPrefix(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "good", "bad")
	l.Close()
	full, _ := os.ReadFile(path)
	mut := append([]byte(nil), full...)
	off := headerSize + len("good")
	mut[off], mut[off+1], mut[off+2], mut[off+3] = 0xff, 0xff, 0xff, 0x7f
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, damaged := replayAll(t, path)
	if !damaged || len(recs) != 1 {
		t.Fatalf("damaged=%v recs=%d, want true/1", damaged, len(recs))
	}
}

func TestResetKeepsSequence(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b", "c")
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	lsns := appendAll(t, l, "d")
	l.Close()
	if lsns[0] != 4 {
		t.Fatalf("LSN after reset = %d, want 4", lsns[0])
	}
	recs, _ := replayAll(t, path)
	if len(recs) != 1 || recs[0].LSN != 4 {
		t.Fatalf("replay after reset = %+v", recs)
	}
}

func TestAdvanceLSN(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.AdvanceLSN(100)
	l.AdvanceLSN(50) // never lowers
	lsns := appendAll(t, l, "x")
	l.Close()
	if lsns[0] != 100 {
		t.Fatalf("LSN after advance = %d, want 100", lsns[0])
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, damaged, err := Replay(filepath.Join(t.TempDir(), "absent.wal"), nil)
	if err != nil || n != 0 || damaged {
		t.Fatalf("missing file: n=%d damaged=%v err=%v", n, damaged, err)
	}
}

func TestIntervalPolicySyncs(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{Policy: SyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "tick")
	time.Sleep(30 * time.Millisecond) // lets the background fsync fire
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, path)
	if len(recs) != 1 || !bytes.Equal(recs[0].Payload, []byte("tick")) {
		t.Fatalf("interval log replay = %+v", recs)
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := tmpLog(t)
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 50
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	recs, damaged := replayAll(t, path)
	if damaged || len(recs) != writers*each {
		t.Fatalf("damaged=%v recs=%d, want %d", damaged, len(recs), writers*each)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d; sequence not dense", i, r.LSN)
		}
	}
}
