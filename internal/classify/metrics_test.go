package classify

import (
	"math"
	"strings"
	"testing"

	"geofootprint/internal/search"
)

func TestEvaluateDetailed(t *testing.T) {
	db, labels, _ := plantedWorld(t, 20)
	idx := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	c, err := New(db, idx, labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	ev := c.EvaluateDetailed()
	if ev.Total != len(labels) {
		t.Fatalf("Total = %d, want %d", ev.Total, len(labels))
	}
	if math.Abs(ev.Accuracy-c.Evaluate()) > 1e-12 {
		t.Errorf("detailed accuracy %v != simple %v", ev.Accuracy, c.Evaluate())
	}
	if len(ev.Labels) != 3 {
		t.Fatalf("labels = %v", ev.Labels)
	}
	// Confusion rows sum to class sizes.
	for i := range ev.Labels {
		rowSum := 0
		for _, v := range ev.Confusion[i] {
			rowSum += v
		}
		classSize := 0
		for _, l := range labels {
			if l == ev.Labels[i] {
				classSize++
			}
		}
		if rowSum != classSize {
			t.Errorf("row %d sums to %d, class size %d", i, rowSum, classSize)
		}
	}
	// Well-separated classes: strong diagonals.
	for i := range ev.Labels {
		if ev.Precision[i] < 0.9 || ev.Recall[i] < 0.9 || ev.F1[i] < 0.9 {
			t.Errorf("class %s metrics weak: p=%.2f r=%.2f f1=%.2f",
				ev.Labels[i], ev.Precision[i], ev.Recall[i], ev.F1[i])
		}
	}
	out := ev.String()
	for _, want := range []string{"accuracy", "precision", "electronics"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestEvaluateDetailedDeterministic(t *testing.T) {
	db, labels, _ := plantedWorld(t, 8)
	idx := search.NewLinearScan(db)
	c, _ := New(db, idx, labels, 3)
	a := c.EvaluateDetailed()
	b := c.EvaluateDetailed()
	if a.String() != b.String() {
		t.Error("evaluation not deterministic")
	}
}
