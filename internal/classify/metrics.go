package classify

import (
	"fmt"
	"sort"
	"strings"
)

// Evaluation is the detailed leave-one-out report of a classifier:
// overall accuracy plus the confusion matrix and per-class
// precision/recall/F1 — what a practitioner inspects before trusting
// movement-based segment inference.
type Evaluation struct {
	Total    int
	Correct  int
	Accuracy float64
	// Labels lists the class labels in the report's row/column
	// order (sorted).
	Labels []string
	// Confusion[i][j] counts users whose true label is Labels[i]
	// and predicted label Labels[j]. Users with no prediction (no
	// labelled neighbour) count in the extra last column.
	Confusion [][]int
	// Precision, Recall and F1 are per true label, aligned with
	// Labels. A class never predicted has precision 0.
	Precision []float64
	Recall    []float64
	F1        []float64
}

// EvaluateDetailed runs leave-one-out classification over the
// labelled users and returns the full evaluation.
func (c *Classifier) EvaluateDetailed() Evaluation {
	labelSet := map[string]int{}
	for _, l := range c.labels {
		labelSet[l] = 0
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for i, l := range labels {
		labelSet[l] = i
	}
	k := len(labels)
	ev := Evaluation{Labels: labels, Confusion: make([][]int, k)}
	for i := range ev.Confusion {
		ev.Confusion[i] = make([]int, k+1) // last column: "no prediction"
	}

	// Deterministic iteration order.
	ids := make([]int, 0, len(c.labels))
	for id := range c.labels {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		truth := labelSet[c.labels[id]]
		p, err := c.ClassifyUser(id)
		ev.Total++
		if err != nil || p.Label == "" {
			ev.Confusion[truth][k]++
			continue
		}
		pred := labelSet[p.Label]
		ev.Confusion[truth][pred]++
		if pred == truth {
			ev.Correct++
		}
	}
	if ev.Total > 0 {
		ev.Accuracy = float64(ev.Correct) / float64(ev.Total)
	}

	ev.Precision = make([]float64, k)
	ev.Recall = make([]float64, k)
	ev.F1 = make([]float64, k)
	for i := 0; i < k; i++ {
		var rowSum, colSum int
		for j := 0; j <= k; j++ {
			rowSum += ev.Confusion[i][j]
		}
		for j := 0; j < k; j++ {
			colSum += ev.Confusion[j][i]
		}
		tp := ev.Confusion[i][i]
		if colSum > 0 {
			ev.Precision[i] = float64(tp) / float64(colSum)
		}
		if rowSum > 0 {
			ev.Recall[i] = float64(tp) / float64(rowSum)
		}
		if pr := ev.Precision[i] + ev.Recall[i]; pr > 0 {
			ev.F1[i] = 2 * ev.Precision[i] * ev.Recall[i] / pr
		}
	}
	return ev
}

// String renders the evaluation as a compact table.
func (ev Evaluation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accuracy: %.3f (%d/%d)\n", ev.Accuracy, ev.Correct, ev.Total)
	fmt.Fprintf(&b, "%-20s %9s %9s %9s\n", "class", "precision", "recall", "F1")
	for i, l := range ev.Labels {
		fmt.Fprintf(&b, "%-20s %9.3f %9.3f %9.3f\n", l, ev.Precision[i], ev.Recall[i], ev.F1[i])
	}
	return b.String()
}
