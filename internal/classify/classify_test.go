package classify

import (
	"math/rand"
	"testing"

	"geofootprint/internal/core"
	"geofootprint/internal/geom"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
)

// plantedWorld builds users in three well-separated areas with labels
// matching the areas.
func plantedWorld(t *testing.T, perClass int) (*store.FootprintDB, map[int]string, []string) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	centers := []struct {
		x, y float64
		lbl  string
	}{
		{0.2, 0.2, "electronics"},
		{0.7, 0.3, "fashion"},
		{0.4, 0.8, "grocery"},
	}
	var fps []core.Footprint
	var ids []int
	truth := make([]string, 0, 3*perClass)
	for ci, c := range centers {
		for u := 0; u < perClass; u++ {
			var f core.Footprint
			for r := 0; r < 4; r++ {
				x := c.x + (rng.Float64()-0.5)*0.1
				y := c.y + (rng.Float64()-0.5)*0.1
				f = append(f, core.Region{
					Rect:   geom.Rect{MinX: x, MinY: y, MaxX: x + 0.04, MaxY: y + 0.04},
					Weight: 1,
				})
			}
			core.SortByMinX(f)
			ids = append(ids, ci*1000+u)
			fps = append(fps, f)
			truth = append(truth, c.lbl)
		}
	}
	db, err := store.FromFootprints("knn", ids, fps)
	if err != nil {
		t.Fatal(err)
	}
	labels := map[int]string{}
	for i, id := range ids {
		// Label only half of each class; the rest are "unknown"
		// users that must not break voting.
		if i%2 == 0 {
			labels[id] = truth[i]
		}
	}
	return db, labels, truth
}

func TestClassifierRecoversPlantedLabels(t *testing.T) {
	db, labels, truth := plantedWorld(t, 20)
	idx := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	c, err := New(db, idx, labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for i, id := range db.IDs {
		if _, labelled := labels[id]; labelled {
			continue // evaluate only unlabelled users
		}
		p, err := c.ClassifyUser(id)
		if err != nil {
			t.Fatalf("ClassifyUser(%d): %v", id, err)
		}
		total++
		if p.Label == truth[i] {
			correct++
		}
		if p.Neighbours == 0 {
			t.Errorf("user %d: no labelled neighbours voted", id)
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.95 {
		t.Errorf("accuracy on unlabelled users = %.2f, want >= 0.95", acc)
	}
}

func TestClassifyFreshFootprint(t *testing.T) {
	db, labels, _ := plantedWorld(t, 15)
	idx := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	c, err := New(db, idx, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh visitor dwelling in the "fashion" area.
	q := core.Footprint{{Rect: geom.Rect{MinX: 0.7, MinY: 0.3, MaxX: 0.74, MaxY: 0.34}, Weight: 1}}
	p := c.Classify(q)
	if p.Label != "fashion" {
		t.Errorf("Label = %q, want fashion (votes %v)", p.Label, p.Votes)
	}
	if p.Score <= 0 || p.Neighbours == 0 {
		t.Errorf("degenerate prediction: %+v", p)
	}
	// A visitor overlapping nobody.
	far := core.Footprint{{Rect: geom.Rect{MinX: 10, MinY: 10, MaxX: 11, MaxY: 11}, Weight: 1}}
	p = c.Classify(far)
	if p.Label != "" || p.Neighbours != 0 {
		t.Errorf("far query should predict nothing: %+v", p)
	}
}

func TestLeaveOneOutEvaluate(t *testing.T) {
	db, labels, _ := plantedWorld(t, 20)
	idx := search.NewUserCentricIndex(db, search.BuildSTR, 0)
	c, err := New(db, idx, labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc := c.Evaluate(); acc < 0.95 {
		t.Errorf("leave-one-out accuracy = %.2f, want >= 0.95", acc)
	}
}

func TestClassifierErrors(t *testing.T) {
	db, labels, _ := plantedWorld(t, 3)
	idx := search.NewLinearScan(db)
	if _, err := New(db, idx, labels, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(db, idx, map[int]string{}, 3); err == nil {
		t.Error("empty labels accepted")
	}
	c, _ := New(db, idx, labels, 3)
	if _, err := c.ClassifyUser(-5); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestTieBreaking(t *testing.T) {
	// Two labels with exactly equal votes: the lexicographically
	// smaller label wins, deterministically.
	db, _, _ := plantedWorld(t, 4)
	idx := search.NewLinearScan(db)
	labels := map[int]string{db.IDs[0]: "zeta", db.IDs[1]: "alpha"}
	c, err := New(db, idx, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Query equally similar to users 0 and 1 (identical areas →
	// near-equal scores); whatever the scores, the prediction must
	// be deterministic across runs.
	q := db.Footprints[2]
	first := c.Classify(q)
	for i := 0; i < 5; i++ {
		if got := c.Classify(q); got.Label != first.Label {
			t.Fatalf("nondeterministic prediction: %q vs %q", got.Label, first.Label)
		}
	}
}
