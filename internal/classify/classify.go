// Package classify implements a k-nearest-neighbour classifier over
// geo-footprints, one of the data-mining applications the paper's
// introduction motivates: footprint similarity (Equation 1) acts as
// the affinity measure, neighbours are retrieved with any Section 6
// search method, and the label is decided by similarity-weighted vote.
//
// Typical use: labels come from an external source for a subset of
// users (e.g. survey responses, loyalty-program segments) and the
// classifier infers them for everybody else from movement alone.
package classify

import (
	"fmt"

	"geofootprint/internal/core"
	"geofootprint/internal/search"
	"geofootprint/internal/store"
)

// Classifier predicts user labels from footprint similarity.
type Classifier struct {
	db     *store.FootprintDB
	idx    search.Searcher
	labels map[int]string // external user ID → label
	k      int
}

// New builds a classifier over the labelled subset of db. labels maps
// external user IDs to class labels; users of db absent from labels
// are simply never voted for. k is the neighbourhood size.
func New(db *store.FootprintDB, idx search.Searcher, labels map[int]string, k int) (*Classifier, error) {
	if k < 1 {
		return nil, fmt.Errorf("classify: k must be positive, got %d", k)
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("classify: no labelled users")
	}
	return &Classifier{db: db, idx: idx, labels: labels, k: k}, nil
}

// Prediction is a classification result: the winning label, its
// aggregate similarity-weighted vote, and the votes of all labels.
type Prediction struct {
	Label string
	Score float64
	Votes map[string]float64
	// Neighbours counts the labelled neighbours that actually
	// voted. Zero means the footprint overlapped no labelled user
	// and Label is empty.
	Neighbours int
}

// Classify predicts the label of an arbitrary query footprint.
func (c *Classifier) Classify(q core.Footprint) Prediction {
	// Over-fetch so that k *labelled* neighbours can vote even when
	// unlabelled users rank in between.
	res := c.idx.TopK(q, c.k+len(c.labels))
	p := Prediction{Votes: map[string]float64{}}
	for _, r := range res {
		lbl, ok := c.labels[r.ID]
		if !ok {
			continue
		}
		p.Votes[lbl] += r.Score
		if p.Neighbours++; p.Neighbours == c.k {
			break
		}
	}
	for lbl, v := range p.Votes {
		if v > p.Score || (v == p.Score && lbl < p.Label) {
			p.Label, p.Score = lbl, v
		}
	}
	return p
}

// ClassifyUser predicts the label of an existing user by ID, excluding
// the user's own (possibly labelled) entry from the vote.
func (c *Classifier) ClassifyUser(id int) (Prediction, error) {
	i, ok := c.db.IndexOf(id)
	if !ok {
		return Prediction{}, fmt.Errorf("classify: unknown user ID %d", id)
	}
	res := c.idx.TopK(c.db.Footprints[i], c.k+1+len(c.labels))
	p := Prediction{Votes: map[string]float64{}}
	for _, r := range res {
		if r.ID == id {
			continue
		}
		lbl, ok := c.labels[r.ID]
		if !ok {
			continue
		}
		p.Votes[lbl] += r.Score
		if p.Neighbours++; p.Neighbours == c.k {
			break
		}
	}
	for lbl, v := range p.Votes {
		if v > p.Score || (v == p.Score && lbl < p.Label) {
			p.Label, p.Score = lbl, v
		}
	}
	return p, nil
}

// Evaluate runs leave-one-out classification over the labelled users
// and returns the accuracy (fraction of users whose predicted label
// matches their true one). Users whose footprints overlap no labelled
// neighbour count as misclassified.
func (c *Classifier) Evaluate() float64 {
	if len(c.labels) == 0 {
		return 0
	}
	correct := 0
	for id, truth := range c.labels {
		p, err := c.ClassifyUser(id)
		if err == nil && p.Label == truth {
			correct++
		}
	}
	return float64(correct) / float64(len(c.labels))
}
