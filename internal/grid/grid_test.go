package grid

import (
	"math/rand"
	"sort"
	"testing"

	"geofootprint/internal/geom"
)

func unit() geom.Rect { return geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1} }

func randEntries(rng *rand.Rand, n int) []Entry {
	es := make([]Entry, n)
	for i := range es {
		x, y := rng.Float64(), rng.Float64()
		es[i] = Entry{
			Rect: geom.Rect{MinX: x, MinY: y,
				MaxX: x + rng.Float64()*0.1, MaxY: y + rng.Float64()*0.1},
			Data: int64(i),
		}
	}
	return es
}

func collect(g *Index, q geom.Rect) []int64 {
	var out []int64
	g.Search(q, func(e Entry) bool {
		out = append(out, e.Data)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func linear(es []Entry, q geom.Rect) []int64 {
	var out []int64
	for _, e := range es {
		if e.Rect.Intersects(q) {
			out = append(out, e.Data)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(unit(), 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(geom.EmptyRect(), 8); err == nil {
		t.Error("empty world accepted")
	}
	if _, err := New(geom.Rect{MinX: 1, MinY: 1, MaxX: 1, MaxY: 1}, 8); err == nil {
		t.Error("zero-area world accepted")
	}
	g, err := New(unit(), 8)
	if err != nil || g.Len() != 0 {
		t.Fatalf("valid construction failed: %v", err)
	}
}

func TestSearchMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 4, 32} {
		g, err := New(unit(), n)
		if err != nil {
			t.Fatal(err)
		}
		es := randEntries(rng, 800)
		for _, e := range es {
			g.Insert(e.Rect, e.Data)
		}
		if g.Len() != len(es) {
			t.Fatalf("Len = %d", g.Len())
		}
		for trial := 0; trial < 60; trial++ {
			x, y := rng.Float64(), rng.Float64()
			q := geom.Rect{MinX: x, MinY: y,
				MaxX: x + rng.Float64()*0.3, MaxY: y + rng.Float64()*0.3}
			got, want := collect(g, q), linear(es, q)
			if len(got) != len(want) {
				t.Fatalf("n=%d trial %d: %d hits, want %d", n, trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d trial %d: hit %d = %d, want %d", n, trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNoDuplicateVisits(t *testing.T) {
	// A rectangle spanning many cells must be reported once.
	g, _ := New(unit(), 16)
	g.Insert(geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}, 42)
	count := 0
	g.Search(unit(), func(e Entry) bool {
		count++
		return true
	})
	if count != 1 {
		t.Errorf("entry visited %d times, want 1", count)
	}
}

func TestEntriesOutsideWorld(t *testing.T) {
	// Entries beyond the world clamp into boundary cells and remain
	// findable.
	g, _ := New(unit(), 8)
	g.Insert(geom.Rect{MinX: -5, MinY: -5, MaxX: -4, MaxY: -4}, 1)
	g.Insert(geom.Rect{MinX: 3, MinY: 0.5, MaxX: 4, MaxY: 0.6}, 2)
	if got := collect(g, geom.Rect{MinX: -10, MinY: -10, MaxX: 10, MaxY: 10}); len(got) != 2 {
		t.Errorf("hits = %v, want both out-of-world entries", got)
	}
	// A query far from them (but clamping to the same boundary cells)
	// must not return them: the exact Intersects check filters.
	if got := collect(g, geom.Rect{MinX: 0.4, MinY: 0.9, MaxX: 0.5, MaxY: 0.95}); len(got) != 0 {
		t.Errorf("interior query returned %v", got)
	}
}

func TestEarlyStop(t *testing.T) {
	g, _ := New(unit(), 4)
	for i := 0; i < 10; i++ {
		g.Insert(geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.51, MaxY: 0.51}, int64(i))
	}
	count := 0
	g.Search(unit(), func(e Entry) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
}

func TestStats(t *testing.T) {
	g, _ := New(unit(), 4)
	g.Insert(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 1) // all 16 cells
	g.Insert(geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.12, MaxY: 0.12}, 2)
	s := g.Stats()
	if s.Cells != 16 || s.Entries != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if s.TotalSlotted != 17 {
		t.Errorf("TotalSlotted = %d, want 17", s.TotalSlotted)
	}
	if s.Replication != 8.5 {
		t.Errorf("Replication = %v, want 8.5", s.Replication)
	}
	if s.MaxPerCell != 2 {
		t.Errorf("MaxPerCell = %d, want 2", s.MaxPerCell)
	}
}

func TestManySearchesStampStability(t *testing.T) {
	// Repeated searches must keep deduplicating correctly.
	rng := rand.New(rand.NewSource(5))
	g, _ := New(unit(), 8)
	es := randEntries(rng, 100)
	for _, e := range es {
		g.Insert(e.Rect, e.Data)
	}
	q := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	want := collect(g, q)
	for i := 0; i < 1000; i++ {
		got := collect(g, q)
		if len(got) != len(want) {
			t.Fatalf("search %d: %d hits, want %d", i, len(got), len(want))
		}
	}
}
