// Package grid implements a uniform-grid spatial index over
// rectangles, the classic alternative to the R-tree of Section 6. It
// answers the same intersection queries and backs a drop-in top-k
// searcher, so the benchmark harness can ask whether the R-tree is
// actually needed for geo-footprint search (an ablation the paper does
// not run but any adopter would ask about).
//
// The index hashes each rectangle into every grid cell it overlaps;
// queries visit the cells overlapping the query rectangle and
// deduplicate multi-cell entries by id.
package grid

import (
	"fmt"
	"math"

	"geofootprint/internal/geom"
)

// Entry is one indexed item, mirroring rtree.Entry.
type Entry struct {
	Rect geom.Rect
	Data int64
}

// Index is a uniform grid over a known bounding world. The zero value
// is unusable; construct with New.
type Index struct {
	world geom.Rect
	n     int // n×n cells
	cellW float64
	cellH float64
	cells [][]int32 // entry indices per cell
	ents  []Entry
	// stamp/visit implement O(1) per-query deduplication of entries
	// that span multiple cells.
	stamp []int32
	cur   int32
}

// New creates an empty grid of n×n cells over the world rectangle.
// Entries may extend beyond the world; they are clamped into the
// boundary cells.
func New(world geom.Rect, n int) (*Index, error) {
	if n < 1 {
		return nil, fmt.Errorf("grid: need at least one cell, got %d", n)
	}
	if world.IsEmpty() || world.Area() == 0 {
		return nil, fmt.Errorf("grid: world must have positive area, got %v", world)
	}
	return &Index{
		world: world,
		n:     n,
		cellW: world.Width() / float64(n),
		cellH: world.Height() / float64(n),
		cells: make([][]int32, n*n),
	}, nil
}

// Len returns the number of indexed entries.
func (g *Index) Len() int { return len(g.ents) }

// Insert adds an entry to the index.
func (g *Index) Insert(r geom.Rect, data int64) {
	id := int32(len(g.ents))
	g.ents = append(g.ents, Entry{Rect: r, Data: data})
	g.stamp = append(g.stamp, 0)
	x0, y0, x1, y1 := g.cellRange(r)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			ci := cy*g.n + cx
			g.cells[ci] = append(g.cells[ci], id)
		}
	}
}

// Search calls fn for every entry whose rectangle intersects q, each
// exactly once. Traversal stops early when fn returns false. Search is
// not safe for concurrent use (the deduplication stamps are shared).
func (g *Index) Search(q geom.Rect, fn func(Entry) bool) {
	g.cur++
	if g.cur == math.MaxInt32 {
		// Stamp wrap-around: reset all marks.
		for i := range g.stamp {
			g.stamp[i] = 0
		}
		g.cur = 1
	}
	x0, y0, x1, y1 := g.cellRange(q)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			for _, id := range g.cells[cy*g.n+cx] {
				if g.stamp[id] == g.cur {
					continue
				}
				g.stamp[id] = g.cur
				if e := &g.ents[id]; e.Rect.Intersects(q) {
					if !fn(*e) {
						return
					}
				}
			}
		}
	}
}

// cellRange returns the inclusive cell coordinates overlapped by r,
// clamped to the grid.
func (g *Index) cellRange(r geom.Rect) (x0, y0, x1, y1 int) {
	x0 = g.clamp(int(math.Floor((r.MinX - g.world.MinX) / g.cellW)))
	y0 = g.clamp(int(math.Floor((r.MinY - g.world.MinY) / g.cellH)))
	x1 = g.clamp(int(math.Floor((r.MaxX - g.world.MinX) / g.cellW)))
	y1 = g.clamp(int(math.Floor((r.MaxY - g.world.MinY) / g.cellH)))
	return
}

func (g *Index) clamp(i int) int {
	if i < 0 {
		return 0
	}
	if i >= g.n {
		return g.n - 1
	}
	return i
}

// Stats summarises occupancy for tuning the resolution.
type Stats struct {
	Cells        int
	Entries      int
	MaxPerCell   int
	AvgPerCell   float64 // over non-empty cells
	EmptyCells   int
	Replication  float64 // average cells per entry
	TotalSlotted int
}

// Stats returns occupancy statistics.
func (g *Index) Stats() Stats {
	s := Stats{Cells: g.n * g.n, Entries: len(g.ents)}
	nonEmpty := 0
	for _, c := range g.cells {
		if len(c) == 0 {
			s.EmptyCells++
			continue
		}
		nonEmpty++
		s.TotalSlotted += len(c)
		if len(c) > s.MaxPerCell {
			s.MaxPerCell = len(c)
		}
	}
	if nonEmpty > 0 {
		s.AvgPerCell = float64(s.TotalSlotted) / float64(nonEmpty)
	}
	if len(g.ents) > 0 {
		s.Replication = float64(s.TotalSlotted) / float64(len(g.ents))
	}
	return s
}
