package extract

import (
	"runtime"
	"sync"

	"geofootprint/internal/traj"
)

// ExtractUser runs Algorithm 1 over every session of a user and
// returns the concatenation of the extracted RoIs, in session order.
// Per Definition 3.3, the collection of these RoIs — disregarding
// their temporal dimension — is the user's geo-footprint.
func ExtractUser(u *traj.User, cfg Config) []RoI {
	var out []RoI
	for _, s := range u.Sessions {
		out = append(out, Extract(s, cfg)...)
	}
	return out
}

// ExtractDataset extracts the RoIs of every user in the dataset,
// returning one slice per user in d.Users order. If workers <= 0, it
// uses GOMAXPROCS goroutines; workers == 1 forces a sequential run.
func ExtractDataset(d *traj.Dataset, cfg Config, workers int) [][]RoI {
	out := make([][]RoI, len(d.Users))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(d.Users) < 2 {
		for i := range d.Users {
			out[i] = ExtractUser(&d.Users[i], cfg)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = ExtractUser(&d.Users[i], cfg)
			}
		}()
	}
	for i := range d.Users {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
