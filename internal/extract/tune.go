package extract

import (
	"geofootprint/internal/traj"
)

// The paper tunes ε and τ by trying values and keeping the ones that
// "led to a reasonable number of RoIs for each user" (Section 7,
// footprint extraction). ParamStats and SweepParams mechanise that
// process: evaluate a grid of (ε, τ) pairs over a dataset sample and
// report the footprint statistics for each, so a deployment can pick
// parameters the same way the authors did.

// ParamStats summarises one (ε, τ) choice over a dataset.
type ParamStats struct {
	Epsilon float64
	Tau     int
	// AvgRegions is the mean number of RoIs per user.
	AvgRegions float64
	// AvgXExtent and AvgYExtent are the mean RoI extents.
	AvgXExtent float64
	AvgYExtent float64
	// CoveredUsers is the fraction of users with at least one RoI.
	CoveredUsers float64
	// AvgCoverage is the mean fraction of a user's locations that
	// fall inside some RoI.
	AvgCoverage float64
}

// SweepParams evaluates every (ε, τ) combination on the dataset using
// `workers` goroutines per extraction pass and returns one ParamStats
// per pair, in epsilons-major order.
func SweepParams(d *traj.Dataset, epsilons []float64, taus []int, mode Mode, workers int) []ParamStats {
	out := make([]ParamStats, 0, len(epsilons)*len(taus))
	for _, eps := range epsilons {
		for _, tau := range taus {
			cfg := Config{Epsilon: eps, Tau: tau, Mode: mode}
			rois := ExtractDataset(d, cfg, workers)
			out = append(out, summarize(d, cfg, rois))
		}
	}
	return out
}

func summarize(d *traj.Dataset, cfg Config, rois [][]RoI) ParamStats {
	s := ParamStats{Epsilon: cfg.Epsilon, Tau: cfg.Tau}
	users := len(rois)
	if users == 0 {
		return s
	}
	var regions, covered int
	var sx, sy, coverage float64
	for i, rs := range rois {
		regions += len(rs)
		if len(rs) > 0 {
			covered++
		}
		inRoI := 0
		for _, r := range rs {
			sx += r.Rect.Width()
			sy += r.Rect.Height()
			inRoI += r.Count
		}
		if n := d.Users[i].NumLocations(); n > 0 {
			coverage += float64(inRoI) / float64(n)
		}
	}
	s.AvgRegions = float64(regions) / float64(users)
	if regions > 0 {
		s.AvgXExtent = sx / float64(regions)
		s.AvgYExtent = sy / float64(regions)
	}
	s.CoveredUsers = float64(covered) / float64(users)
	s.AvgCoverage = coverage / float64(users)
	return s
}
